// Quickstart: measure SGEMM variability on a small cluster and print the
// paper-style analysis. Start here.
//
//   $ ./quickstart
//
// The flow is always the same four steps:
//   1. build (or describe) a cluster
//   2. pick a workload
//   3. run the campaign
//   4. analyze: variability, correlations, flags
#include <iostream>

#include "gpuvar.hpp"

int main() {
  using namespace gpuvar;

  // 1. A cluster: CloudLab's 12 air-cooled V100s (Table I). Factories for
  //    Longhorn, Summit, Corona, Vortex and Frontera exist too — or build
  //    your own ClusterSpec.
  Cluster cluster(cloudlab_spec());
  std::cout << "cluster: " << cluster.name() << " with " << cluster.size()
            << "x " << cluster.sku().name << "\n";

  // 2. A workload: 12 repetitions of the paper's 25536^3 SGEMM.
  const WorkloadSpec workload = sgemm_workload(25536, 12);

  // 3. The campaign: 3 runs per GPU, exclusive nodes, warm-up included.
  const ExperimentConfig config = default_config(cluster, workload, 3);
  const ExperimentResult result = run_experiment(cluster, config);
  std::cout << "collected " << result.frame.size() << " runs across "
            << result.gpus_measured << " GPUs\n";

  // 4a. Variability: the paper's box/IQR statistics per metric.
  print_section(std::cout, "variability");
  print_variability_table(std::cout, analyze_variability(result.frame));

  // 4b. Correlations: who tracks whom.
  print_section(std::cout, "correlations");
  print_correlation_table(std::cout, correlate_metrics(result.frame));

  // 4c. Per-GPU box chart, one row per node.
  print_section(std::cout, "kernel duration by node");
  print_group_boxes(std::cout, result.frame, Metric::kPerf,
                    GroupBy::kNode);

  // 4d. Anything an operator should look at?
  print_section(std::cout, "flags");
  FlagOptions opts;
  opts.slowdown_temp = cluster.sku().slowdown_temp;
  print_flags(std::cout, flag_anomalies(result.frame, opts));
  return 0;
}
