// Operator workflow (§VII "Blacklisting, Maintenance"): run periodic
// variability benchmarking across a cluster, flag anomalous GPUs and
// suspect cabinets, cross-check against a second workload, and score the
// audit against the simulator's injected ground truth.
//
// This is exactly the loop that let the paper's authors hand TACC and
// LLNL actionable lists of nodes to investigate.
#include <iostream>

#include "gpuvar.hpp"

int main(int argc, char** argv) {
  using namespace gpuvar;
  const std::string which = argc > 1 ? argv[1] : "longhorn";
  ClusterSpec spec = which == "frontera" ? frontera_spec()
                     : which == "corona" ? corona_spec()
                                         : longhorn_spec();
  Cluster cluster(std::move(spec));
  std::cout << "auditing " << cluster.name() << " (" << cluster.size()
            << " GPUs)\n";

  const std::size_t n =
      cluster.sku().vendor == Vendor::kAmd ? 24576 : 25536;

  // Campaign 1: the SGEMM canary (compute-bound, clock-sensitive).
  auto sgemm_cfg = default_config(cluster, sgemm_workload(n, 10), 2);
  const auto sgemm_result = run_experiment(cluster, sgemm_cfg);

  // Campaign 2: a balanced ML job — outliers that repeat across both are
  // hardware, not workload artifacts.
  auto ml_cfg = default_config(cluster, resnet50_multi_workload(25), 1);
  const auto ml_result = run_experiment(cluster, ml_cfg);

  FlagOptions opts;
  opts.slowdown_temp = cluster.sku().slowdown_temp;
  const auto sgemm_flags = flag_anomalies(sgemm_result.frame, opts);
  const auto ml_flags = flag_anomalies(ml_result.frame, opts);

  print_section(std::cout, "SGEMM canary flags");
  print_flags(std::cout, sgemm_flags);
  print_section(std::cout, "ML workload flags");
  print_flags(std::cout, ml_flags);

  print_section(std::cout, "repeat offenders (flagged by both)");
  const std::vector<FlagReport> reports{sgemm_flags, ml_flags};
  const auto offenders = repeat_offenders(reports, 2);
  if (offenders.empty()) {
    std::cout << "  none — single-workload flags may be workload artifacts\n";
  }
  for (const auto& f : offenders) {
    const auto& inst = cluster.gpu(f.gpu_index);
    std::cout << "  " << f.name << " (severity " << f.severity << ")";
    if (inst.faults.any()) {
      std::cout << "  [ground truth:";
      for (const auto k : inst.faults.kinds) std::cout << " " << to_string(k);
      std::cout << "]";
    }
    std::cout << "\n";
  }

  print_section(std::cout, "audit score vs injected ground truth");
  const auto score = score_against_ground_truth(cluster, sgemm_flags);
  std::cout << "  true positives: " << score.true_positives
            << ", false positives: " << score.false_positives
            << ", false negatives: " << score.false_negatives << "\n"
            << "  precision " << score.precision << ", recall "
            << score.recall
            << "  (false positives are often organic anomalies — hot "
               "aisles, bottom-bin silicon — that also merit a look)\n";
  return 0;
}
