// The proposed PM-introspection standard in action (§VII "New Hardware
// and System Design"): watch *why* each GPU runs below its boost clock.
// On a real system these calls would be backed by NVML/rocm-smi plus the
// throttle-residency counters vendors don't expose today; here the
// simulated devices implement the same interface.
#include <cstdio>

#include "gpuvar.hpp"

int main() {
  using namespace gpuvar;
  Cluster longhorn(longhorn_spec());
  const auto k = make_sgemm_kernel(25536);
  SimOptions sim;
  sim.tick = longhorn.sku().dvfs_control_period;

  std::printf("%-16s %9s %8s %7s %-10s | %8s %8s %8s %6s\n", "gpu",
              "freq MHz", "power W", "temp C", "reason", "boost%",
              "power%", "therm%", "steps");
  // A slice of GPUs across cabinets, including the faulty ones.
  std::vector<std::size_t> sample{0, 40, 120, 200, 300, 400};
  for (std::size_t f : longhorn.faulty_gpus()) {
    if (sample.size() >= 10) break;
    sample.push_back(f);
  }

  for (std::size_t gi : sample) {
    auto dev = longhorn.make_device(gi, sim);
    dev->run_kernel(k, nullptr);
    dev->run_kernel(k, nullptr);

    // Everything below reads ONLY the vendor-neutral interface.
    const PmIntrospection& api = *dev;
    const PmSnapshot snap = api.pm_snapshot();
    const ThrottleAccounting acct = api.pm_accounting();
    std::printf("%-16s %9.0f %8.1f %7.1f %-10s | %7.1f%% %7.1f%% %7.1f%% %6ld\n",
                longhorn.gpu(gi).loc.name.c_str(), snap.sm_freq, snap.power,
                snap.temperature, to_string(snap.reason).c_str(),
                acct.max_clock_residency() * 100.0,
                acct.power_limited_residency() * 100.0,
                acct.thermal_limited_residency() * 100.0,
                acct.down_steps + acct.up_steps);
  }

  std::printf(
      "\nWith this interface a runtime can tell apart the three stories the "
      "paper had to reverse-engineer from profilers:\n"
      "  power-cap residency  -> silicon lottery / board power fault\n"
      "  thermal residency    -> cooling problem (hot aisle, pump, clog)\n"
      "  full boost residency -> the GPU is fine; look at the host/network\n");
  return 0;
}
