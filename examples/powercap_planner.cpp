// Power-budget planning (§VI-B + the 20 MW exascale constraint): sweep
// cluster-wide power caps and report the throughput / energy / fairness
// trade-off, including how much *more* variable the cluster becomes at
// low caps — the effect the paper measured on CloudLab.
#include <iostream>

#include "gpuvar.hpp"

int main() {
  using namespace gpuvar;
  Cluster cluster(cloudlab_spec());
  std::cout << "power-cap planning on " << cluster.name() << " ("
            << cluster.size() << " GPUs)\n\n";

  std::printf("%8s %12s %10s %12s %12s %10s\n", "cap (W)", "median ms",
              "var %", "J / kernel", "GFLOP/s/W", "cluster W");
  const double flops = 2.0 * 25536.0 * 25536.0 * 25536.0;

  for (double cap : {300.0, 250.0, 200.0, 175.0, 150.0, 125.0, 100.0}) {
    auto cfg = default_config(cluster, sgemm_workload(25536, 8), 2);
    cfg.run_options.power_limit_override = Watts{cap};
    const auto result = run_experiment(cluster, cfg);
    const auto rep = analyze_variability(result.frame);

    const double med_s = rep.perf.box.median / 1e3;
    const double med_power = rep.power.box.median;
    const double joules = med_power * med_s;
    const double eff = flops / med_s / med_power * 1e-9;
    std::printf("%8.0f %12.0f %10.2f %12.0f %12.2f %10.0f\n", cap,
                rep.perf.box.median, rep.perf.variation_pct, joules, eff,
                med_power * static_cast<double>(cluster.size()));
  }

  std::cout
      << "\nReading the table:\n"
         "  * energy per kernel has a sweet spot below the TDP (race-to-"
         "idle is not optimal for GEMM)\n"
         "  * but variability grows as caps drop (paper: 9% -> 18% between "
         "300 W and 150 W)\n"
         "  * bulk-synchronous jobs pay for the *slowest* GPU, so the "
         "fairness loss compounds at scale\n";
  return 0;
}
