// Telemetry pipeline: run a campaign and export (a) one CSV row per run
// with medians — the format the paper's artifact ships — and (b) a full
// profiler-resolution time series for one GPU. Feed these to pandas/R.
//
//   $ ./fleet_telemetry_export out_dir
#include <filesystem>
#include <fstream>
#include <iostream>

#include "gpuvar.hpp"

int main(int argc, char** argv) {
  using namespace gpuvar;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "telemetry_out";
  std::filesystem::create_directories(out_dir);

  Cluster cluster(vortex_spec());
  auto cfg = default_config(cluster, sgemm_workload(25536, 8), 2);
  const auto result = run_experiment(cluster, cfg);

  // Per-run summary CSV.
  std::vector<GpuRunResult> rows;  // re-run one node to get result objects
  const auto opts = RunOptions::for_sku(cluster.sku());
  for (int node = 0; node < cluster.node_count(); ++node) {
    for (auto& r : run_on_node(cluster, node, cfg.workload, 0, opts)) {
      rows.push_back(std::move(r));
    }
  }
  const auto summary_path = out_dir / "vortex_sgemm_runs.csv";
  {
    std::ofstream out(summary_path);
    export_results_csv(out, cluster.name(), cluster.locations(), rows);
  }
  std::cout << "wrote " << rows.size() << " run rows to " << summary_path
            << "\n";

  // Full time series for GPU 0 (profiler resolution).
  RunOptions series_opts = opts;
  series_opts.collect_series = true;
  series_opts.series_interval = Seconds{0.001};  // the 1 ms profiler floor
  const auto traced =
      run_on_gpu(cluster, 0, sgemm_workload(25536, 3), 0, series_opts);
  const auto series_path = out_dir / "vortex_gpu0_series.csv";
  {
    std::ofstream out(series_path);
    export_series_csv(out, traced.series);
  }
  std::cout << "wrote " << traced.series.size() << " samples to "
            << series_path << "\n";

  // And the analysis headline, so the CSV consumer knows what to expect.
  const auto rep = analyze_variability(result.frame);
  std::cout << "headline: " << rep.perf.variation_pct
            << "% performance variation across " << rep.gpus << " GPUs\n";
  return 0;
}
