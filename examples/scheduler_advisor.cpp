// Application-aware placement (§VII "Application-aware Frameworks"):
// classify workloads from their profiler counters, rank the cluster's
// nodes by measured variability, and assign clock-sensitive jobs to the
// stable nodes while memory-bound jobs absorb the variable ones.
#include <algorithm>
#include <iostream>

#include "gpuvar.hpp"

int main() {
  using namespace gpuvar;
  Cluster cluster(longhorn_spec());
  std::cout << "profiling node quality on " << cluster.name() << "...\n";

  // Step 1: a quick SGEMM canary gives each node a quality score (median
  // settled frequency — the paper's strongest predictor of performance).
  auto cfg = default_config(cluster, sgemm_workload(25536, 8), 1);
  const auto result = run_experiment(cluster, cfg);

  struct NodeQuality {
    int node;
    double median_freq;
    double median_perf;
  };
  std::map<int, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < result.frame.size(); ++i) {
    by_node[result.frame.loc(i).node].push_back(i);
  }
  std::vector<NodeQuality> nodes;
  for (const auto& [node, rows] : by_node) {
    std::vector<double> freq, perf;
    for (std::size_t i : rows) {
      freq.push_back(result.frame.freq_mhz()[i]);
      perf.push_back(result.frame.perf_ms()[i]);
    }
    nodes.push_back(NodeQuality{node, stats::median(freq),
                                stats::median(perf)});
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const NodeQuality& a, const NodeQuality& b) {
              return a.median_freq > b.median_freq;
            });

  std::cout << "best nodes:  ";
  for (std::size_t i = 0; i < 5; ++i) {
    std::cout << "n" << nodes[i].node << " (" << nodes[i].median_freq
              << " MHz) ";
  }
  std::cout << "\nworst nodes: ";
  for (std::size_t i = nodes.size() - 5; i < nodes.size(); ++i) {
    std::cout << "n" << nodes[i].node << " (" << nodes[i].median_freq
              << " MHz) ";
  }
  std::cout << "\n";

  // Step 2: classify the queue's applications from their counters and
  // advise placement.
  print_section(std::cout, "queue classification & placement");
  const auto sku = make_v100_sxm2();
  const SiliconSample typical;
  for (const auto& w :
       {sgemm_workload(), resnet50_multi_workload(), bert_workload(),
        lammps_workload(), pagerank_workload()}) {
    CounterAccumulator acc;
    for (const auto& step : w.iteration) {
      acc.add(step.kernel,
              kernel_time_at(step.kernel, sku, typical, sku.max_mhz) *
                  step.count);
    }
    const auto advice = advise_placement(acc.aggregate());
    std::cout << "  " << w.name << ": " << to_string(advice.app_class)
              << " -> "
              << (advice.tolerates_variable_nodes
                      ? "schedule on WORST nodes (no penalty)"
                      : "schedule on BEST nodes")
              << "  [" << advice.note << "]\n";
  }

  // Step 3: quantify the win — run PageRank on the worst node and SGEMM
  // on the best, versus the reverse assignment.
  print_section(std::cout, "placement win quantified");
  const int best = nodes.front().node;
  const int worst = nodes.back().node;
  const auto opts = RunOptions::for_sku(cluster.sku());
  auto perf_of = [&](const WorkloadSpec& w, int node) {
    return run_on_node(cluster, node, w, 0, opts).front().perf_ms;
  };
  const auto sgemm = sgemm_workload(25536, 6);
  const auto pr = pagerank_workload(10);
  const double good = perf_of(sgemm, best) + perf_of(pr, worst);
  const double bad = perf_of(sgemm, worst) + perf_of(pr, best);
  std::cout << "  SGEMM@best + PageRank@worst: " << good << " ms total\n"
            << "  SGEMM@worst + PageRank@best: " << bad << " ms total\n"
            << "  variability-aware placement saves "
            << (bad - good) / bad * 100.0 << "% wall-clock\n";
  return 0;
}
