#!/usr/bin/env bash
# SARIF 2.1.0 shape contract: the --sarif report must parse as JSON and
# carry the structure CI annotators rely on — schema/version header, a
# driver with a rule table covering every registered rule (including
# the flow-aware passes'), and results whose ruleId/ruleIndex point
# back into that table with 1-based line numbers. Runs against a tree
# assembled from the lockorder/hotpath/lifetime fixtures so results
# from all three new passes are present.
# Usage: test_analyzer_sarif.sh <analyzer> <repo_src_dir> <work_dir>
set -euo pipefail

BIN=$1
SRC=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK/src/core"
cp "$SRC/tools/fixtures/hotpath_bad.cpp" "$WORK/src/core/"
cp "$SRC/tools/fixtures/lifetime_bad.cpp" "$WORK/src/core/"
cp "$SRC"/tools/fixtures/lockorder_bad/src/core/*.cpp "$WORK/src/core/"

# Findings are the point here: exit 1 is expected, the report is not.
"$BIN" "$WORK" --sarif "$WORK/out.sarif" > /dev/null && {
  echo "FAIL: fixture tree produced no findings"
  exit 1
}

python3 - "$WORK/out.sarif" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

def need(cond, what):
    if not cond:
        print(f"FAIL: {what}")
        sys.exit(1)

need("sarif-2.1.0" in doc.get("$schema", ""), "$schema names sarif-2.1.0")
need(doc.get("version") == "2.1.0", "version is 2.1.0")
runs = doc.get("runs")
need(isinstance(runs, list) and len(runs) == 1, "exactly one run")
driver = runs[0]["tool"]["driver"]
need(driver.get("name") == "gpuvar-analyzer", "driver name")

rules = driver.get("rules")
need(isinstance(rules, list) and rules, "driver.rules present")
ids = [r["id"] for r in rules]
need(len(ids) == len(set(ids)), "rule ids unique")
need(ids == sorted(ids), "rule table sorted by id")
for r in rules:
    need(r.get("shortDescription", {}).get("text"),
         f"rule {r['id']} has a shortDescription")
for rule in ("lock-cycle", "lock-held-across-wait", "alloc-in-hot-loop",
             "lock-in-hot-path", "io-in-hot-path",
             "string-format-in-hot-loop", "dangling-span"):
    need(rule in ids, f"rule table includes {rule}")

results = runs[0].get("results")
need(isinstance(results, list) and results, "results present")
fired = set()
for res in results:
    rid = res.get("ruleId")
    need(rid in ids, f"result ruleId {rid} registered")
    need(res.get("ruleIndex") == ids.index(rid),
         f"ruleIndex consistent for {rid}")
    need(res.get("level") in ("warning", "error", "note"),
         f"result level valid for {rid}")
    need(res.get("message", {}).get("text"), f"result message for {rid}")
    locs = res.get("locations")
    need(isinstance(locs, list) and len(locs) == 1, "one location per result")
    phys = locs[0]["physicalLocation"]
    need(phys["artifactLocation"]["uri"].startswith("src/"),
         "artifact uri is repo-relative")
    need(phys["region"]["startLine"] >= 1, "startLine is 1-based")
    fired.add(rid)
for rule in ("lock-cycle", "lock-held-across-wait", "alloc-in-hot-loop",
             "dangling-span"):
    need(rule in fired, f"results include {rule}")

print(f"SARIF shape OK: {len(results)} result(s), {len(ids)} rule(s)")
EOF
