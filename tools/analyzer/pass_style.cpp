// Style pass: the PR 1 lint rules, unchanged in spirit but now
// suppression-aware like every other pass (suppressions are applied
// centrally after all passes run).
#include <set>

#include "passes.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

namespace {

/// The final '_'-separated word of an identifier, trailing member
/// underscore removed: "before_power_w" -> "w", "duration_" -> "duration".
std::string last_word(const std::string& ident) {
  std::string s = ident;
  while (!s.empty() && s.back() == '_') s.pop_back();
  const auto pos = s.rfind('_');
  return pos == std::string::npos ? s : s.substr(pos + 1);
}

bool is_bare_quantity_name(const std::string& ident) {
  static const std::set<std::string> kBanned = {
      "power",    "watts",     "temp",    "temperature", "celsius",
      "freq",     "frequency", "hertz",   "duration",    "time",
      "seconds",  "energy",    "joules",  "voltage",     "volts"};
  return kBanned.count(last_word(ident)) > 0;
}

void lint_file(const SourceFile& f, std::vector<Finding>& findings) {
  const bool in_src = f.in_src();
  const bool check_pragma = f.header;
  const bool check_double =
      in_src && f.header && f.filename() != "units.hpp";
  const bool check_rng = in_src && f.filename().rfind("rng.", 0) != 0;

  if (check_pragma && f.code.find("#pragma once") == std::string::npos) {
    findings.push_back(
        {f.rel, 1, "pragma-once", "header is missing '#pragma once'"});
  }

  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (check_double && t.text == "double" && i + 1 < f.tokens.size()) {
      const Token& name = f.tokens[i + 1];
      if (is_bare_quantity_name(name.text)) {
        findings.push_back(
            {f.rel, name.line, "raw-double-quantity",
             "'double " + name.text +
                 "' in a public header: use a Quantity<Tag> strong type "
                 "from common/units.hpp (or suffix the unit, e.g. " +
                 name.text + "_w)"});
      }
    }
    if (check_rng) {
      if ((t.text == "rand" || t.text == "srand") && t.next == '(') {
        findings.push_back({f.rel, t.line, "raw-rng",
                            "'" + t.text +
                                "()' breaks reproducibility: draw through "
                                "common/rng.hpp instead"});
      }
      if (t.text == "random_device") {
        findings.push_back({f.rel, t.line, "raw-rng",
                            "'std::random_device' breaks reproducibility: "
                            "draw through common/rng.hpp instead"});
      }
    }
    if (in_src && t.text == "cout" && i > 0 &&
        f.tokens[i - 1].text == "std") {
      findings.push_back({f.rel, t.line, "cout-in-library",
                          "'std::cout' in library code: return data or "
                          "take an std::ostream& parameter"});
    }
    if (in_src && t.text == "assert" && t.next == '(') {
      findings.push_back({f.rel, t.line, "bare-assert",
                          "bare 'assert()': use GPUVAR_REQUIRE (argument "
                          "checks) or GPUVAR_ASSERT (invariants)"});
    }
  }
}

}  // namespace

void run_style_pass(const Repo& repo, std::vector<Finding>& findings) {
  for (const auto& f : repo.files) lint_file(f, findings);
}

}  // namespace gpuvar::analyzer
