// Determinism pass: flags the constructions that historically make
// "same seed, different bytes" bugs. The simulator's contract is that
// every output is a pure function of (spec, seed), whatever the thread
// count, locale, or standard library — these rules guard the ways that
// contract quietly breaks:
//
//   unordered-iteration  range-for over a std::unordered_* container:
//                        hash iteration order is implementation- and
//                        run-dependent, so anything built from it is too.
//   parallel-accum       `x += ...` inside a parallel_for body where x
//                        is captured from outside: FP addition is not
//                        associative, so the sum depends on scheduling.
//                        Accumulate into per-index slots and reduce in
//                        index order instead (see core/experiment.cpp).
//   float-sort-key       std::sort with a lambda comparator in the
//                        result-producing layers (stats, telemetry,
//                        core) and no visible tie-breaker (std::tie, a
//                        conditional, or ||): equal keys make the order
//                        — and introsort's output — unspecified.
//   locale-format        locale-dependent number conversion (stod,
//                        strtod, atof, sscanf, setlocale) anywhere in
//                        src; printf-family float formatting and
//                        std::to_string additionally in the CSV/export
//                        interchange files. Use common/numfmt.hpp.
//   wall-clock           std::chrono clock reads in src/**: simulated
//                        results must never depend on when they run.
//                        Real measurement code suppresses this rule
//                        with a comment explaining itself.
#include <algorithm>
#include <set>

#include "passes.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

namespace {

bool word_at(const std::string& code, std::size_t pos,
             const std::string& word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= code.size() || !ident_char(code[end]);
}

/// Index of the last non-space character before `pos`, npos if none.
std::size_t prev_nonspace_pos(const std::string& code, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(code[pos]))) return pos;
  }
  return std::string::npos;
}

char prev_nonspace(const std::string& code, std::size_t pos) {
  const std::size_t p = prev_nonspace_pos(code, pos);
  return p == std::string::npos ? '\0' : code[p];
}

char next_nonspace(const std::string& code, std::size_t pos) {
  while (pos < code.size()) {
    if (!std::isspace(static_cast<unsigned char>(code[pos]))) {
      return code[pos];
    }
    ++pos;
  }
  return '\0';
}

void check_unordered_iteration(const SourceFile& f,
                               std::vector<Finding>& findings) {
  static const std::vector<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const std::string& code = f.code;

  // Names declared with an unordered container type.
  std::set<std::string> unordered_names;
  for (const auto& type : kTypes) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string::npos) {
      const std::size_t after = pos + type.size();
      if (!word_at(code, pos, type) || after >= code.size() ||
          code[after] != '<') {
        pos = after;
        continue;
      }
      // Skip the balanced template argument list.
      int depth = 0;
      std::size_t i = after;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
      // Then an optional &/* and the declared name.
      while (i < code.size() &&
             (std::isspace(static_cast<unsigned char>(code[i])) ||
              code[i] == '&' || code[i] == '*')) {
        ++i;
      }
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      if (j > i) unordered_names.insert(code.substr(i, j - i));
      pos = after;
    }
  }

  // Range-for over any of those names: `for (... : name)`.
  for (const auto& name : unordered_names) {
    std::size_t pos = 0;
    while ((pos = code.find(name, pos)) != std::string::npos) {
      if (word_at(code, pos, name)) {
        const std::size_t bp = prev_nonspace_pos(code, pos);
        // A single ':' before the name and ')' after it is the
        // range-for shape; "::name" is qualification, not iteration.
        const bool range_colon = bp != std::string::npos &&
                                 code[bp] == ':' &&
                                 (bp == 0 || code[bp - 1] != ':');
        const char after = next_nonspace(code, pos + name.size());
        if (range_colon && after == ')') {
          findings.push_back(
              {f.rel, f.line_of(pos), "unordered-iteration",
               "iterating '" + name +
                   "' (unordered container): hash order is not "
                   "deterministic — copy to a sorted container or use "
                   "std::map when the order can reach a result"});
        }
      }
      pos += name.size();
    }
  }
}

void check_parallel_accum(const SourceFile& f,
                          std::vector<Finding>& findings) {
  const std::string& code = f.code;
  std::size_t pos = 0;
  while ((pos = code.find("parallel_for", pos)) != std::string::npos) {
    if (!word_at(code, pos, "parallel_for")) {
      pos += 12;
      continue;
    }
    const std::size_t open = code.find('(', pos);
    if (open == std::string::npos) break;
    const std::size_t end = matching_paren_end(code, open);
    if (end == std::string::npos) break;
    const std::string region = code.substr(open, end - open);

    for (const char* op : {"+=", "-=", "*="}) {
      std::size_t opos = 0;
      while ((opos = region.find(op, opos)) != std::string::npos) {
        // Identify the left-hand side identifier.
        std::size_t p = opos;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(region[p - 1]))) {
          --p;
        }
        if (p == 0 || !ident_char(region[p - 1])) {
          opos += 2;  // indexed (x[i] +=) or member write: per-slot is fine
          continue;
        }
        std::size_t s = p;
        while (s > 0 && ident_char(region[s - 1])) --s;
        // Member accesses (batch.pending +=) have their own locking
        // discipline; this rule targets captured locals.
        if (s > 0 && (region[s - 1] == '.' ||
                      (s > 1 && region[s - 1] == '>' &&
                       region[s - 2] == '-'))) {
          opos += 2;
          continue;
        }
        const std::string id = region.substr(s, p - s);
        // Declared inside the body? Then every task has its own copy
        // (or the chunk loop owns it) and the order is fixed.
        bool local = false;
        std::size_t q = 0;
        while ((q = region.find(id, q)) != std::string::npos) {
          if (word_at(region, q, id) && q > 0) {
            const char before = prev_nonspace(region, q);
            if (ident_char(before) || before == '&' || before == '*') {
              local = true;
              break;
            }
          }
          q += id.size();
        }
        if (!local) {
          findings.push_back(
              {f.rel, f.line_of(open + opos), "parallel-accum",
               "'" + id + " " + op +
                   " ...' inside a parallel_for body accumulates into "
                   "captured state: FP addition is schedule-dependent — "
                   "write per-index slots and reduce in index order "
                   "(core/experiment.cpp shows the pattern)"});
        }
        opos += 2;
      }
    }
    pos = end;
  }
}

void check_float_sort_key(const SourceFile& f,
                          std::vector<Finding>& findings) {
  static const std::set<std::string> kScopedModules = {"stats", "telemetry",
                                                       "core"};
  if (!kScopedModules.count(f.module)) return;
  const std::string& code = f.code;
  for (std::size_t i = 1; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (t.text != "sort" || f.tokens[i - 1].text != "std" || t.next != '(') {
      continue;
    }
    const std::size_t open = code.find('(', t.pos);
    if (open == std::string::npos) continue;
    const std::size_t end = matching_paren_end(code, open);
    if (end == std::string::npos) continue;
    const std::string region = code.substr(open, end - open);
    const bool has_lambda = region.find('[') != std::string::npos;
    bool has_tiebreak = region.find('?') != std::string::npos ||
                        region.find("||") != std::string::npos;
    for (std::size_t q = 0; !has_tiebreak && q < region.size(); ++q) {
      if (region[q] == 't' && word_at(region, q, "tie")) has_tiebreak = true;
    }
    if (has_lambda && !has_tiebreak) {
      findings.push_back(
          {f.rel, t.line, "float-sort-key",
           "std::sort with a custom comparator and no visible "
           "tie-breaker: equal keys leave the order (and introsort's "
           "output) unspecified — break ties on a unique field "
           "(std::tie(key, index)) or use std::stable_sort"});
    }
  }
}

void check_locale_format(const SourceFile& f,
                         std::vector<Finding>& findings) {
  static const std::set<std::string> kParseFns = {
      "stod", "stof", "stold", "strtod", "strtof", "strtold",
      "atof",  "sscanf", "vsscanf", "setlocale"};
  static const std::set<std::string> kFormatFns = {"snprintf", "sprintf",
                                                   "vsnprintf"};
  const bool interchange = f.rel.find("csv") != std::string::npos ||
                           f.rel.find("export") != std::string::npos;
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (kParseFns.count(t.text) && t.next == '(') {
      findings.push_back(
          {f.rel, t.line, "locale-format",
           "'" + t.text +
               "' consults LC_NUMERIC (\"3.14\" parses as 3 under a "
               "comma-decimal locale): use parse_double/parse_int from "
               "common/numfmt.hpp"});
    }
    if (interchange && kFormatFns.count(t.text) && t.next == '(') {
      findings.push_back(
          {f.rel, t.line, "locale-format",
           "'" + t.text +
               "' float formatting consults LC_NUMERIC in an "
               "interchange file: use format_double/format_int from "
               "common/numfmt.hpp"});
    }
    if (interchange && t.text == "to_string" && i > 0 &&
        f.tokens[i - 1].text == "std") {
      findings.push_back(
          {f.rel, t.line, "locale-format",
           "'std::to_string' formats through the C locale machinery in "
           "an interchange file: use format_double/format_int from "
           "common/numfmt.hpp"});
    }
  }
}

void check_wall_clock(const SourceFile& f, std::vector<Finding>& findings) {
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  for (const auto& t : f.tokens) {
    if (kClocks.count(t.text)) {
      findings.push_back(
          {f.rel, t.line, "wall-clock",
           "'std::chrono::" + t.text +
               "' in library code: simulated results must not depend on "
               "when they run — derive time from the simulation clock "
               "or seeds; real measurement code may suppress this with "
               "a justifying comment"});
    }
  }
}

}  // namespace

void run_determinism_pass(const Repo& repo, std::vector<Finding>& findings) {
  for (const auto& f : repo.files) {
    if (!f.in_src()) continue;
    check_unordered_iteration(f, findings);
    check_parallel_accum(f, findings);
    check_float_sort_key(f, findings);
    check_locale_format(f, findings);
    check_wall_clock(f, findings);
  }
}

}  // namespace gpuvar::analyzer
