// Reduction hygiene over the analysis planes (src/core, src/query):
// hand-rolled floating-point reductions bypass stats/kernels.hpp, and
// with it both the SIMD dispatch and the pinned 4-lane accumulation
// order the determinism contract is built on. Two shapes fire
// raw-loop-reduction:
//
//   - a range-for whose loop variable is declared double (by value,
//     const, or reference) with a `+=` accumulation in its body —
//     the textbook serial sum the kernels replaced;
//   - the <numeric> reduction algorithms (std::accumulate, reduce,
//     inner_product, transform_reduce), whose seed-and-fold order is
//     neither vectorized nor the kernels' lane order.
//
// Integer loops (counters, histogram bins) are out of scope: their
// reduction order cannot change the result, and the kernels' mask
// utilities already cover the hot ones.
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "core.hpp"
#include "passes.hpp"

namespace gpuvar::analyzer {

namespace {

bool word_at(const std::string& code, std::size_t pos,
             const std::string& word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= code.size() || !ident_char(code[end]);
}

/// Index just past the block that starts at `open` ('{'), npos when
/// unbalanced.
std::size_t matching_brace_end(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// A single ':' at paren depth 0 of a for-header is the range-for
/// separator; "::" is qualification.
bool is_range_for_header(const std::string& header) {
  int depth = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == '(' || header[i] == '<') ++depth;
    if (header[i] == ')' || header[i] == '>') --depth;
    if (header[i] == ':' && depth == 0) {
      const bool left = i > 0 && header[i - 1] == ':';
      const bool right = i + 1 < header.size() && header[i + 1] == ':';
      if (!left && !right) return true;
    }
  }
  return false;
}

/// The declared-element-type half of a range-for header (before the
/// ':') names double — `double x`, `const double& x` — so the loop
/// walks a floating-point column, not indices or pairs.
bool declares_double(const std::string& header) {
  std::size_t pos = 0;
  while ((pos = header.find("double", pos)) != std::string::npos) {
    if (word_at(header, pos, "double")) return true;
    pos += 6;
  }
  return false;
}

void check_range_for(const SourceFile& f, std::vector<Finding>& findings) {
  const std::string& code = f.code;
  for (const auto& t : f.tokens) {
    if (t.text != "for" || t.next != '(') continue;
    const std::size_t open = code.find('(', t.pos);
    if (open == std::string::npos) continue;
    const std::size_t close = matching_paren_end(code, open);
    if (close == std::string::npos) continue;
    const std::string header = code.substr(open + 1, close - open - 1);
    if (!is_range_for_header(header) || !declares_double(header)) continue;

    // The body: a braced block, or the single statement up to ';'.
    std::size_t b = close + 1;
    while (b < code.size() &&
           std::isspace(static_cast<unsigned char>(code[b]))) {
      ++b;
    }
    std::size_t body_end;
    if (b < code.size() && code[b] == '{') {
      body_end = matching_brace_end(code, b);
    } else {
      body_end = code.find(';', b);
    }
    if (body_end == std::string::npos) continue;
    const std::string body = code.substr(b, body_end - b);
    const std::size_t acc = body.find("+=");
    if (acc == std::string::npos) continue;
    findings.push_back(
        {f.rel, f.line_of(b + acc), "raw-loop-reduction",
         "serial '+=' over a double range: the fold order is neither "
         "vectorized nor the kernels' pinned lane order — use "
         "stats::kernels::sum / centered_sumsq / describe_sweep"});
  }
}

void check_numeric_algorithms(const SourceFile& f,
                              std::vector<Finding>& findings) {
  static const std::set<std::string> kAlgos = {
      "accumulate", "reduce", "inner_product", "transform_reduce"};
  for (std::size_t i = 1; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (!kAlgos.count(t.text) || f.tokens[i - 1].text != "std" ||
        t.next != '(') {
      continue;
    }
    findings.push_back(
        {f.rel, t.line, "raw-loop-reduction",
         "'std::" + t.text +
             "' folds in iterator order outside the kernel layer — use "
             "stats::kernels::sum / centered_products (or keep the "
             "reduction in src/stats where the lane order is pinned)"});
  }
}

}  // namespace

void run_reduction_pass(const Repo& repo, std::vector<Finding>& findings) {
  static const std::set<std::string> kScopedModules = {"core", "query"};
  for (const auto& f : repo.files) {
    if (!f.in_src() || !kScopedModules.count(f.module)) continue;
    check_range_for(f, findings);
    check_numeric_algorithms(f, findings);
  }
}

}  // namespace gpuvar::analyzer
