// Thread-safety pass: keeps the clang -Wthread-safety story honest.
//
// The analysis (tools/ci.sh thread-safety job) can only check what is
// annotated, and it only understands capabilities it can see — a raw
// std::mutex is invisible to it. Two rules close the gap:
//
//   raw-std-mutex     src/** uses gpuvar::Mutex / MutexLock
//                     (common/mutex.hpp) instead of std::mutex and the
//                     std lock wrappers, so every lock is a capability.
//   unguarded-mutex   every mutex declared in src/** is named by at
//                     least one GPUVAR_GUARDED_BY / GPUVAR_REQUIRES /
//                     ... annotation in the same file — a mutex that
//                     guards nothing is either dead or, worse, the
//                     data it guards is unannotated.
#include <set>

#include "passes.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

namespace {

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

const std::set<std::string>& annotation_macros() {
  static const std::set<std::string> kMacros = {
      "GPUVAR_GUARDED_BY",  "GPUVAR_PT_GUARDED_BY", "GPUVAR_REQUIRES",
      "GPUVAR_EXCLUDES",    "GPUVAR_ACQUIRE",       "GPUVAR_RELEASE",
      "GPUVAR_TRY_ACQUIRE", "GPUVAR_RETURN_CAPABILITY"};
  return kMacros;
}

void check_file(const SourceFile& f, std::vector<Finding>& findings) {
  // The wrapper itself must touch std::mutex; everything else goes
  // through it.
  if (f.rel == "src/common/mutex.hpp") return;

  // Names referenced by any annotation macro in this file.
  std::set<std::string> annotated;
  for (std::size_t i = 0; i + 1 < f.tokens.size(); ++i) {
    if (annotation_macros().count(f.tokens[i].text)) {
      annotated.insert(f.tokens[i + 1].text);
    }
  }

  static const std::set<std::string> kStdMutexTypes = {
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex"};
  static const std::set<std::string> kStdLockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};

  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    const bool after_std = i > 0 && f.tokens[i - 1].text == "std";

    if (after_std && kStdMutexTypes.count(t.text)) {
      findings.push_back(
          {f.rel, t.line, "raw-std-mutex",
           "'std::" + t.text +
               "' is invisible to clang -Wthread-safety: use "
               "gpuvar::Mutex from common/mutex.hpp"});
    }
    if (after_std && kStdLockTypes.count(t.text)) {
      findings.push_back(
          {f.rel, t.line, "raw-std-mutex",
           "'std::" + t.text +
               "' acquires no capability: use gpuvar::MutexLock from "
               "common/mutex.hpp"});
    }

    // Mutex member/variable declarations: `Mutex name;` or
    // `std::mutex name;` (initializer-free declarations — the shapes
    // this codebase uses for members).
    std::string declared;
    if (t.text == "Mutex" && ident_start(t.next) &&
        i + 1 < f.tokens.size() && f.tokens[i + 1].next == ';') {
      declared = f.tokens[i + 1].text;
    } else if (after_std && kStdMutexTypes.count(t.text) &&
               i + 1 < f.tokens.size() && ident_start(t.next) &&
               f.tokens[i + 1].next == ';') {
      declared = f.tokens[i + 1].text;
    }
    if (!declared.empty() && !annotated.count(declared)) {
      findings.push_back(
          {f.rel, t.line, "unguarded-mutex",
           "mutex '" + declared +
               "' guards nothing: name it in a GPUVAR_GUARDED_BY / "
               "GPUVAR_REQUIRES / GPUVAR_ACQUIRE annotation (see "
               "common/thread_annotations.hpp) or delete it"});
    }
  }
}

}  // namespace

void run_thread_pass(const Repo& repo, std::vector<Finding>& findings) {
  for (const auto& f : repo.files) {
    if (f.in_src()) check_file(f, findings);
  }
}

}  // namespace gpuvar::analyzer
