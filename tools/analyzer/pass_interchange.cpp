// Interchange pass: keeps the analysis layer on the columnar data plane.
//
//   row-record-param   a std::vector<RunRecord> or std::span<const
//                      RunRecord> in a core/telemetry *header*: public
//                      bulk interfaces must take const RecordFrame&
//                      (telemetry/frame.hpp) so column extraction stays
//                      zero-copy and per-GPU grouping stays O(rows).
//                      Strict since the deprecation-cycle adapters were
//                      deleted: an inline allow() no longer suppresses
//                      it (core.cpp strict_rule) — row-oriented bulk
//                      APIs must not appear at all.
//
// Single-record uses (const RunRecord&, RunRecord row(...)) are fine —
// the rule targets bulk row-oriented interchange, not the row schema.
#include "passes.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

void run_interchange_pass(const Repo& repo, std::vector<Finding>& findings) {
  for (const auto& f : repo.files) {
    if (!f.in_src() || !f.header) continue;
    if (f.module != "core" && f.module != "telemetry") continue;
    for (std::size_t i = 1; i < f.tokens.size(); ++i) {
      const Token& t = f.tokens[i];
      if (t.text != "RunRecord") continue;
      const Token& prev = f.tokens[i - 1];
      const bool vector_of = prev.text == "vector" && prev.next == '<';
      const bool span_of = prev.text == "const" && i >= 2 &&
                           f.tokens[i - 2].text == "span" &&
                           f.tokens[i - 2].next == '<';
      if (!vector_of && !span_of) continue;
      findings.push_back(
          {f.rel, t.line, "row-record-param",
           std::string(vector_of ? "std::vector<RunRecord>"
                                 : "std::span<const RunRecord>") +
               " in an analysis-layer header: bulk interfaces take "
               "const RecordFrame& (telemetry/frame.hpp). The "
               "deprecation cycle is over — this rule is strict and "
               "cannot be suppressed with an inline allow()"});
    }
  }
}

}  // namespace gpuvar::analyzer
