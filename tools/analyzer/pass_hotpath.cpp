// Hot-path hygiene: the closure of GPUVAR_HOT functions over resolved
// call edges (BFS from every annotated definition) must stay cheap.
//
//   alloc-in-hot-loop        heap allocation lexically inside a loop,
//                            or an in-loop call to a helper whose
//                            transitive effects include allocation
//   lock-in-hot-path         MutexLock anywhere in the closure
//   io-in-hot-path           stream/stdio tokens anywhere
//   string-format-in-hot-loop  formatting inside a loop (directly or
//                            via an in-loop call to a formatting helper)
//
// Open edges are never traversed: a helper the graph cannot resolve is
// outside the closure, so the pass under-reports rather than guesses.
#include <string>
#include <vector>

#include "core.hpp"
#include "flow.hpp"
#include "index.hpp"
#include "passes.hpp"

namespace gpuvar::analyzer {

namespace {

bool src_file(const std::string& rel) {
  return rel.rfind("src/", 0) == 0;
}

std::string bare_of(const std::string& name) {
  const auto pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

}  // namespace

void run_hotpath_pass(const Tree& tree, const FlowGraph& graph,
                      std::vector<Finding>& findings) {
  (void)tree;
  const std::size_t n = graph.nodes.size();
  std::vector<char> hot(n, 0);
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.nodes[i].fn->hot && src_file(graph.nodes[i].file)) {
      hot[i] = 1;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t i = queue.back();
    queue.pop_back();
    for (const int t : graph.callee[i]) {
      if (t >= 0 && !hot[static_cast<std::size_t>(t)]) {
        hot[static_cast<std::size_t>(t)] = 1;
        queue.push_back(static_cast<std::size_t>(t));
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (!hot[i] || !src_file(graph.nodes[i].file)) continue;
    const auto& node = graph.nodes[i];
    const FlowFunction& fn = *node.fn;
    const std::string where =
        fn.hot ? "in hot function '" + fn.name + "'"
               : "in '" + fn.name +
                     "' on a hot path (reached from a GPUVAR_HOT "
                     "function)";
    const auto emit = [&](int line, const std::string& rule,
                          const std::string& what,
                          const std::string& symbol) {
      Finding fd;
      fd.file = node.file;
      fd.line = line;
      fd.rule = rule;
      fd.symbol = symbol;
      fd.message = what + " " + where;
      findings.push_back(std::move(fd));
    };

    for (const auto& a : fn.allocs) {
      if (a.in_loop) {
        emit(a.line, "alloc-in-hot-loop",
             "heap allocation (" + a.what + ") inside a loop", fn.name);
      }
    }
    for (const auto& lk : fn.locks) {
      emit(lk.line, "lock-in-hot-path",
           "mutex acquisition ('" + lk.lock + "')", fn.name);
    }
    for (const auto& io : fn.io) {
      emit(io.line, "io-in-hot-path", "IO (" + io.what + ")", fn.name);
    }
    for (const auto& f : fn.fmt) {
      if (f.in_loop) {
        emit(f.line, "string-format-in-hot-loop",
             "string formatting (" + f.what + ") inside a loop",
             fn.name);
      }
    }
    // In-loop calls into helpers that allocate / format: the cost is
    // paid here, once per iteration, so the finding anchors at the
    // call site.
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const FlowCall& call = fn.calls[c];
      if (!call.in_loop) continue;
      const int t = graph.callee[i][c];
      if (t < 0) continue;
      const auto& eff = graph.effects[static_cast<std::size_t>(t)];
      const std::string sym = fn.name + "->" + bare_of(call.callee);
      if (eff.allocates) {
        emit(call.line, "alloc-in-hot-loop",
             "call to '" + call.callee + "' (which allocates) inside a "
             "loop", sym);
      }
      if (eff.formats) {
        emit(call.line, "string-format-in-hot-loop",
             "call to '" + call.callee + "' (which formats strings) "
             "inside a loop", sym);
      }
    }
  }
}

}  // namespace gpuvar::analyzer
