// gpuvar-analyzer core: file loading, token scanning, inline
// suppressions, and finding output shared by every analysis pass.
//
// The analyzer works on a token/character level rather than a real C++
// AST: the conventions it enforces (layering, annotation presence,
// determinism hygiene, include hygiene) are all visible in the token
// stream, and a dependency-free scanner can run as a ctest on every
// build. Comments and string/char literals are stripped before matching
// (newlines preserved so line numbers survive), so a banned name inside
// a doc comment or log message never trips a rule.
//
// Inline suppressions: a finding on line N is suppressed by an allow
// comment naming its rule on line N or on the line above, e.g.
//   ... = std::chrono::steady_clock::now();  // gpuvar-lint: allow(wall-clock)
// (comma-separate several rules inside one allow(...), e.g.
// allow(wall-clock,locale-format)).
// Unknown rule names inside allow(...) are themselves findings
// (rule `unknown-rule`), so a typo can never silently disable a check.
//
// Scanning, caching, and pass orchestration live in driver.hpp; the
// cross-TU symbol index in index.hpp.
#pragma once

#include <filesystem>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace gpuvar::analyzer {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// The symbol the finding is about (function, lock pair, member...).
  /// Part of the baseline fingerprint (rule + file + symbol) so the
  /// ratchet is line-number independent; empty for token-level rules.
  std::string symbol;

  Finding() = default;
  Finding(std::string f, int l, std::string r, std::string m,
          std::string s = {})
      : file(std::move(f)),
        line(l),
        rule(std::move(r)),
        message(std::move(m)),
        symbol(std::move(s)) {}
};

/// One registered rule. The registry (rules()) is the single authority:
/// known_rules(), strict_rule(), --list-rules, docs/rules.md, and the
/// SARIF rule table all derive from it.
struct RuleInfo {
  std::string id;
  std::string pass;         ///< owning pass name, as in --stats
  std::string description;  ///< one line, for --list-rules and SARIF
  bool strict = false;      ///< not suppressible via allow()
};

/// All rules, sorted by id.
const std::vector<RuleInfo>& rules();

/// One identifier/keyword token plus enough context for the rules: its
/// line, its byte offset in the stripped code (for balanced-delimiter
/// scans), and the first non-space character that follows it.
struct Token {
  std::string text;
  int line = 0;
  std::size_t pos = 0;  // offset of the token's first char in `code`
  char next = '\0';     // first non-space character after the token
};

/// One scanned file with everything the passes need precomputed.
struct SourceFile {
  std::filesystem::path path;  // as opened
  std::string rel;             // root-relative, '/'-separated
  std::string top;     // first path component: src/tests/tools/bench/examples
  std::string module;  // for src files: the layer dir ("common", ...);
                       // empty for files directly under src/ (the umbrella)
  bool header = false;
  std::string raw;   // original bytes (suppressions are parsed from here)
  std::string code;  // comments and literals stripped, newlines kept
  std::vector<Token> tokens;
  /// Quoted #include targets as written, with their line numbers.
  std::vector<std::pair<int, std::string>> includes;
  /// line -> rule names suppressed on that line via gpuvar-lint: allow().
  std::map<int, std::set<std::string>> allows;

  bool in_src() const { return top == "src"; }
  std::string filename() const { return path.filename().string(); }
  /// Line number of a byte offset into `code` (1-based).
  int line_of(std::size_t pos) const;
};

/// A bag of SourceFiles handed to the file-local passes. The scan
/// driver feeds passes one file at a time (so results are cacheable
/// per file); fixture modes load a handful at once.
struct Repo {
  std::filesystem::path root;
  std::vector<SourceFile> files;
};

/// Strips // and /* */ comments plus string/char literals, preserving
/// newlines so line numbers survive.
std::string strip_comments_and_literals(const std::string& in);

std::vector<Token> tokenize(const std::string& code);

bool ident_char(char c);

/// Offset just past the parenthesized region opened at `open` (which
/// must point at '('); std::string::npos when unbalanced.
std::size_t matching_paren_end(const std::string& code, std::size_t open);

/// Loads and preprocesses one file. `rel` uses '/' separators and
/// determines `top`/`module`. Returns false if the file can't be read.
bool load_source_file(const std::filesystem::path& path,
                      const std::string& rel, SourceFile& out);

/// Every rule id any pass can emit (derived from rules(); kept as a
/// set for unknown-rule checking).
const std::set<std::string>& known_rules();

/// True for rules an inline allow() cannot suppress (unknown-rule, and
/// rules whose deprecation grace period has ended: row-record-param).
bool strict_rule(const std::string& rule);

/// Sorts findings by (file, line, rule) — the one canonical emit order,
/// so text, JSON, and SARIF outputs are stable for diffing in CI
/// regardless of scan order or thread count.
void sort_findings(std::vector<Finding>& findings);

/// "file:line: [rule] message" per finding. Expects findings already in
/// canonical order (sort_findings).
void print_findings(const std::vector<Finding>& findings, std::ostream& out);

/// Machine-readable report: {"files_scanned": N, "findings": [...]}.
/// Expects findings already in canonical order.
void write_json(const std::vector<Finding>& findings,
                std::size_t files_scanned, std::ostream& out);

/// SARIF 2.1.0 report for CI annotation (one run, one result per
/// finding, rule registry in the driver). Expects findings already in
/// canonical order.
void write_sarif(const std::vector<Finding>& findings, std::ostream& out);

}  // namespace gpuvar::analyzer
