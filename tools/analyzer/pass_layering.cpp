// Layering pass: enforces the module DAG over src/**'s include graph.
//
//   rank 0  common      foundations: units, rng, csv, require, threads
//   rank 1  stats       numerics on plain data
//   rank 1  obs         tracing + metrics (instrumentable from any layer)
//   rank 2  gpu, thermal, hostbench   device models + host benchmarks
//   rank 3  telemetry   sampling, counters, export (plain-data API)
//   rank 4  cluster, workloads, query  populations, campaigns, and the
//                                      streaming query plane over stores
//   rank 5  core        experiment runner, reports, CLI
//
// A file may include same-rank or lower-rank modules only; same-rank
// edges must stay acyclic (one direction per pair). Files directly
// under src/ (the gpuvar.hpp umbrella) may include anything. Modules
// not in the table are findings too: adding a layer is a deliberate
// act that updates this pass.
#include <algorithm>
#include <map>
#include <set>

#include "passes.hpp"
#include "core.hpp"
#include "index.hpp"

namespace gpuvar::analyzer {

namespace {

const std::map<std::string, int>& module_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},   {"stats", 1},   {"obs", 1},
      {"gpu", 2},      {"thermal", 2}, {"hostbench", 2},
      {"telemetry", 3}, {"cluster", 4}, {"workloads", 4},
      {"query", 4},    {"core", 5}};
  return kRanks;
}

int rank_of(const std::string& module) {
  const auto it = module_ranks().find(module);
  return it == module_ranks().end() ? -1 : it->second;
}

/// Module of a quoted include like "common/units.hpp"; "" when the
/// include has no directory (a sibling include).
std::string include_module(const std::string& target) {
  const auto slash = target.find('/');
  return slash == std::string::npos ? "" : target.substr(0, slash);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct Edge {
  std::string to;
  int line;
};

/// Emits one include-cycle finding per back edge found by a DFS over
/// the file-level include graph (a clean tree has none).
void find_file_cycles(
    const std::map<std::string, std::vector<Edge>>& graph,
    std::vector<Finding>& findings) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [node, _] : graph) color[node] = Color::kWhite;

  // Iterative DFS keeping the gray path so the cycle can be printed.
  for (const auto& [start, _] : graph) {
    if (color[start] != Color::kWhite) continue;
    struct Frame {
      std::string node;
      std::size_t next_edge = 0;
    };
    std::vector<Frame> stack{{start}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto git = graph.find(fr.node);
      if (git == graph.end() || fr.next_edge >= git->second.size()) {
        color[fr.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const Edge& e = git->second[fr.next_edge++];
      if (!color.count(e.to)) continue;  // include of a non-src file
      if (color[e.to] == Color::kGray) {
        // Back edge: the gray path from e.to to fr.node plus this edge
        // closes the cycle.
        std::string path = e.to;
        bool in_cycle = false;
        for (const auto& f2 : stack) {
          if (f2.node == e.to) in_cycle = true;
          if (in_cycle && f2.node != e.to) path += " -> " + f2.node;
        }
        path += " -> " + e.to;
        findings.push_back({fr.node, e.line, "include-cycle",
                            "include cycle: " + path});
      } else if (color[e.to] == Color::kWhite) {
        color[e.to] = Color::kGray;
        stack.push_back({e.to});
      }
    }
  }
}

}  // namespace

void run_layering_pass(const Tree& tree, std::vector<Finding>& findings) {
  std::map<std::string, std::vector<Edge>> file_graph;
  std::map<std::string, std::set<std::string>> module_edges;

  for (const auto& f : tree.files) {
    if (!f.in_src()) continue;
    // Files directly under src/ (the umbrella header) sit above every
    // layer: no rank restriction, but they still join cycle detection.
    const bool umbrella = f.module.empty();
    const int own_rank = umbrella ? 1000 : rank_of(f.module);
    if (!umbrella && own_rank < 0) {
      findings.push_back(
          {f.rel, 1, "unknown-module",
           "src/" + f.module +
               "/ is not a registered layer; add it to the DAG in "
               "tools/analyzer/pass_layering.cpp (a deliberate act) or "
               "move the file"});
    }

    for (const auto& inc : f.includes) {
      const bool in_src_tree =
          !inc.resolved.empty() && starts_with(inc.resolved, "src/");
      if (in_src_tree) {
        file_graph[f.rel].push_back({inc.resolved, inc.line});
      }
      const std::string tm = include_module(inc.target);
      if (tm.empty() || !in_src_tree) continue;
      const int target_rank = rank_of(tm);
      if (target_rank < 0) continue;  // flagged at the file itself
      if (own_rank >= 0 && target_rank > own_rank) {
        findings.push_back(
            {f.rel, inc.line, "upward-include",
             "layer '" + f.module + "' (rank " + std::to_string(own_rank) +
                 ") must not include '" + inc.target + "' from layer '" +
                 tm + "' (rank " + std::to_string(target_rank) +
                 "): dependencies point down the stack only"});
      }
      // Only legal (non-upward) edges join the module graph: an upward
      // include is already its own finding, and the cycle check targets
      // same-rank pairs that point at each other.
      if (!umbrella && tm != f.module && own_rank >= 0 &&
          target_rank <= own_rank) {
        module_edges[f.module].insert(tm);
      }
    }
  }

  find_file_cycles(file_graph, findings);

  // Same-rank module pairs may depend on each other in one direction
  // only; a mutual edge is a module-level cycle even when no single
  // file chain closes it.
  for (const auto& [a, outs] : module_edges) {
    for (const auto& b : outs) {
      if (a < b && module_edges.count(b) && module_edges.at(b).count(a)) {
        findings.push_back(
            {"src/" + a, 1, "include-cycle",
             "module-level include cycle: " + a + " <-> " + b +
                 " (pick one direction and move shared types down a "
                 "layer)"});
      }
    }
  }
}

void write_layering_dot(const Tree& tree, std::ostream& out) {
  // Collect nodes and the module-level edge multiset, then emit both
  // from explicitly sorted vectors: determinism of this dump is a
  // structural property of the emission loop, not a side effect of
  // whichever container happened to hold the data.
  std::map<std::pair<std::string, std::string>, int> edge_counts;
  std::set<std::string> module_set;
  for (const auto& f : tree.files) {
    if (!f.in_src() || f.module.empty()) continue;
    module_set.insert(f.module);
    for (const auto& inc : f.includes) {
      const std::string tm = include_module(inc.target);
      if (tm.empty() || tm == f.module) continue;
      if (inc.resolved.empty() || !starts_with(inc.resolved, "src/")) {
        continue;
      }
      ++edge_counts[{f.module, tm}];
    }
  }

  std::vector<std::string> modules(module_set.begin(), module_set.end());
  std::sort(modules.begin(), modules.end());
  struct DotEdge {
    std::string from, to;
    int count;
  };
  std::vector<DotEdge> edges;
  edges.reserve(edge_counts.size());
  for (const auto& [edge, count] : edge_counts) {
    edges.push_back({edge.first, edge.second, count});
  }
  std::sort(edges.begin(), edges.end(),
            [](const DotEdge& a, const DotEdge& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });

  out << "// Module-level include graph of src/**, generated by\n"
         "//   gpuvar-analyzer <root> --dot <file>\n"
         "// Edges point from includer down to includee; edge labels\n"
         "// count the #include directives. Same rank = same row.\n"
         "digraph gpuvar_layers {\n"
         "  rankdir=BT;\n"
         "  node [shape=box, fontname=\"Helvetica\"];\n";
  std::map<int, std::vector<std::string>> by_rank;
  for (const auto& m : modules) by_rank[rank_of(m)].push_back(m);
  for (const auto& [rank, mods] : by_rank) {
    out << "  { rank=same;";
    for (const auto& m : mods) out << " \"" << m << "\";";
    out << " }  // rank " << rank << "\n";
  }
  for (const auto& e : edges) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
        << e.count << "\"];\n";
  }
  out << "}\n";

  // Second graph: the header-level include graph, the granularity the
  // include-hygiene passes actually shrink. The module projection
  // above stays near-constant under cleanup (the module DAG was
  // already tight); unused-include deletions and forward-declaration
  // replacements show up here, as fewer file edges and a smaller
  // rebuild fan-out.
  std::vector<std::pair<std::string, std::string>> hdr_edges;
  for (const auto& f : tree.files) {
    if (!f.in_src() || !f.header) continue;
    for (const auto& inc : f.includes) {
      if (inc.resolved.empty() || !starts_with(inc.resolved, "src/")) {
        continue;
      }
      hdr_edges.emplace_back(f.rel.substr(4), inc.resolved.substr(4));
    }
  }
  std::sort(hdr_edges.begin(), hdr_edges.end());
  hdr_edges.erase(std::unique(hdr_edges.begin(), hdr_edges.end()),
                  hdr_edges.end());
  out << "\n// Header include graph of src/** (" << hdr_edges.size()
      << " edges): every edge is one #include of a project header by a\n"
         "// header, i.e. interface coupling that multiplies across "
         "consumers.\n"
         "digraph gpuvar_headers {\n"
         "  rankdir=BT;\n"
         "  node [shape=box, fontsize=9, fontname=\"Helvetica\"];\n";
  for (const auto& [from, to] : hdr_edges) {
    out << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  out << "}\n";
}

}  // namespace gpuvar::analyzer
