// Dead-code pass: a namespace-scope symbol declared in a src/ header
// that nothing in the tree uses is dead weight — it costs compile time
// on every rebuild, bloats the umbrella's export surface, and rots
// silently because nothing exercises it.
//
// "Used" is token-level, from three sources (an over-approximation,
// which is the safe direction for a deletion advisory):
//   1. any identifier token with the symbol's name in a file other
//      than the header and its associated .cpp / _test.cpp;
//   2. the header itself mentioning the name more often than it
//      declares it — macro bodies, alias targets, and inline
//      implementations are uses even though the declaration is not;
//   3. the associated .cpp mentioning the name, where for types,
//      aliases, enums, and macros any occurrence is a use, while for
//      functions and variables the out-of-line definition accounts
//      for one occurrence and only additional ones count.
// Enums additionally stay alive if any member is referenced anywhere.
// Symbols meant for downstream users rather than this tree go on the
// public-surface allowlist below with a justification, or carry an
// inline `gpuvar-lint: allow(dead-symbol)`.
#include <algorithm>
#include <set>

#include "passes.hpp"
#include "core.hpp"
#include "index.hpp"

namespace gpuvar::analyzer {

namespace {

/// Symbols that are intentionally unreferenced inside this repository
/// because they exist for downstream users of the public headers.
/// Every entry needs a justification; an entry whose justification no
/// longer holds is itself dead code.
const std::set<std::string>& public_surface_allowlist() {
  static const std::set<std::string> kAllow = {
      // thread_annotations.hpp mirrors the full clang -Wthread-safety
      // vocabulary; annotating a new guarded member must never require
      // re-adding a macro, so the currently-unapplied ones stay.
      "GPUVAR_EXCLUDES",
      "GPUVAR_NO_THREAD_SAFETY_ANALYSIS",
      "GPUVAR_PT_GUARDED_BY",
      "GPUVAR_REQUIRES",
      "GPUVAR_RETURN_CAPABILITY",
  };
  return kAllow;
}

/// Occurrence count of `name` in `f` (0 when absent).
int count_in(const FileSummary& f, const std::string& name) {
  const auto it = std::lower_bound(f.refs.begin(), f.refs.end(), name);
  if (it == f.refs.end() || *it != name) return 0;
  return f.ref_counts[static_cast<std::size_t>(it - f.refs.begin())];
}

}  // namespace

void run_deadcode_pass(const Tree& tree, const SymbolIndex& index,
                       std::vector<Finding>& findings) {
  (void)index;
  for (const auto& header : tree.files) {
    if (!header.in_src() || !header.header) continue;

    // Declaration sites per name: a name that appears in the header no
    // more often than it is declared there is never self-kept-alive.
    std::map<std::string, int> declared_sites;
    for (const auto& s : header.declared) ++declared_sites[s.name];

    // Member lists per enum in this header, for the liveness check.
    std::map<std::string, std::vector<const Symbol*>> enum_members;
    for (const auto& s : header.declared) {
      if (s.kind == 'g') enum_members[s.parent].push_back(&s);
    }

    std::set<std::string> reported;
    for (const auto& s : header.declared) {
      // Enum members ride with their enum; forward declarations carry
      // no definition to delete.
      if (s.kind == 'g' || s.kind == 'd') continue;
      if (public_surface_allowlist().count(s.name)) continue;
      if (reported.count(s.name)) continue;

      // Self-use: the header mentions the name beyond declaring it.
      bool alive = count_in(header, s.name) > declared_sites[s.name];

      const bool definable_out_of_line = s.kind == 'f' || s.kind == 'v';
      for (const auto& other : tree.files) {
        if (alive) break;
        if (other.rel == header.rel) continue;
        if (is_associated_header(other.rel, header.rel)) {
          // For functions/variables one occurrence is the out-of-line
          // definition, not a use; for everything else any mention is.
          const int uses = count_in(other, s.name);
          alive = definable_out_of_line ? uses > 1 : uses > 0;
          continue;
        }
        if (count_in(other, s.name) > 0) {
          alive = true;
          break;
        }
        if (s.kind == 'e') {
          const auto mit = enum_members.find(s.name);
          if (mit != enum_members.end()) {
            for (const Symbol* m : mit->second) {
              if (count_in(other, m->name) > 0) {
                alive = true;
                break;
              }
            }
          }
        }
      }
      if (alive) continue;

      reported.insert(s.name);
      findings.push_back(
          {header.rel, s.line, "dead-symbol",
           "'" + s.name +
               "' is declared here but never used — not by another "
               "file, not by this header beyond the declaration; "
               "delete it, or if it exists for downstream users add it "
               "to public_surface_allowlist() in "
               "tools/analyzer/pass_deadcode.cpp with a justification"});
    }
  }
}

}  // namespace gpuvar::analyzer
