#include "baseline.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <tuple>

#include "core.hpp"

namespace gpuvar::analyzer {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Extracts the value of `"key": "..."` or `"key": N` from one line.
/// The writer emits one fingerprint object per line with no escapes
/// beyond \" and \\, so a line-based reader round-trips exactly; any
/// shape it cannot read is a parse error, never a guess.
bool field(const std::string& line, const std::string& key,
           std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    ++i;
    std::string v;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) ++i;
      v += line[i++];
    }
    if (i >= line.size()) return false;
    out = v;
    return true;
  }
  std::string v;
  while (i < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[i])) ||
          line[i] == '-')) {
    v += line[i++];
  }
  if (v.empty()) return false;
  out = v;
  return true;
}

void sort_entries(std::vector<BaselineEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& b) {
              return std::tie(a.rule, a.file, a.symbol) <
                     std::tie(b.rule, b.file, b.symbol);
            });
}

}  // namespace

Baseline baseline_from_findings(const std::vector<Finding>& findings) {
  std::map<std::tuple<std::string, std::string, std::string>, int> counts;
  for (const auto& fd : findings) {
    ++counts[{fd.rule, fd.file, fd.symbol}];
  }
  Baseline b;
  for (const auto& [key, count] : counts) {
    b.entries.push_back(
        {std::get<0>(key), std::get<1>(key), std::get<2>(key), count});
  }
  return b;  // map iteration order == sorted order
}

bool load_baseline(const std::filesystem::path& path, Baseline& out) {
  out = Baseline{};
  std::ifstream in(path);
  if (!in) return true;  // absent => empty baseline
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.find("\"fingerprints\"") != std::string::npos) {
      saw_header = true;
    }
    if (line.find("\"rule\"") == std::string::npos) continue;
    BaselineEntry e;
    std::string count;
    if (!field(line, "rule", e.rule) || !field(line, "file", e.file) ||
        !field(line, "symbol", e.symbol) ||
        !field(line, "count", count)) {
      return false;
    }
    try {
      e.count = std::stoi(count);
    } catch (...) {
      return false;
    }
    if (e.count <= 0) return false;
    out.entries.push_back(std::move(e));
  }
  if (!saw_header) return false;
  sort_entries(out.entries);
  return true;
}

bool write_baseline(const std::filesystem::path& path, const Baseline& b) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n  \"fingerprints\": [";
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    const auto& e = b.entries[i];
    out << (i ? "," : "") << "\n    {\"rule\": \"" << escape(e.rule)
        << "\", \"file\": \"" << escape(e.file) << "\", \"symbol\": \""
        << escape(e.symbol) << "\", \"count\": " << e.count << "}";
  }
  out << (b.entries.empty() ? "" : "\n  ") << "]\n}\n";
  return static_cast<bool>(out);
}

RatchetResult ratchet(const Baseline& baseline,
                      const std::vector<Finding>& findings) {
  RatchetResult r;
  r.current = baseline_from_findings(findings);
  std::map<std::tuple<std::string, std::string, std::string>, int> allowed;
  for (const auto& e : baseline.entries) {
    allowed[{e.rule, e.file, e.symbol}] = e.count;
  }
  int matched_total = 0;
  for (const auto& e : r.current.entries) {
    const auto it = allowed.find({e.rule, e.file, e.symbol});
    const int cap = it == allowed.end() ? 0 : it->second;
    if (e.count > cap) {
      r.grown.push_back({e.rule, e.file, e.symbol, e.count - cap});
    }
    matched_total += std::min(e.count, cap);
  }
  int baseline_total = 0;
  for (const auto& e : baseline.entries) baseline_total += e.count;
  r.shrunk = matched_total < baseline_total;
  return r;
}

}  // namespace gpuvar::analyzer
