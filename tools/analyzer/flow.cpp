#include "flow.hpp"

#include <algorithm>
#include <set>

#include "core.hpp"
#include "index.hpp"

namespace gpuvar::analyzer {

namespace {

bool space_char(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

/// MACRO_LIKE: all caps/digits/underscores with at least one letter.
bool macro_like(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

/// Tokens that can never be a callee or a declared name.
const std::set<std::string>& keywords() {
  static const std::set<std::string> kw = {
      "if",        "else",       "for",          "while",
      "do",        "switch",     "case",         "default",
      "return",    "break",      "continue",     "goto",
      "sizeof",    "alignof",    "alignas",      "decltype",
      "typeid",    "new",        "delete",       "throw",
      "try",       "catch",      "static_cast",  "dynamic_cast",
      "const_cast","reinterpret_cast",           "operator",
      "this",      "true",       "false",        "nullptr",
      "const",     "constexpr",  "consteval",    "constinit",
      "static",    "inline",     "extern",       "mutable",
      "volatile",  "thread_local",               "typename",
      "template",  "using",      "namespace",    "class",
      "struct",    "enum",       "union",        "public",
      "private",   "protected",  "friend",       "virtual",
      "override",  "final",      "noexcept",     "explicit",
      "auto",      "void",       "bool",         "char",
      "short",     "int",        "long",         "float",
      "double",    "signed",     "unsigned",     "requires",
      "concept",   "co_await",   "co_return",    "co_yield",
      "and",       "or",         "not"};
  return kw;
}

/// std:: types whose construction owns heap storage. Deliberately the
/// owning containers only — push_back/reserve on an existing container
/// is amortized reuse, not a fresh allocation, and must not trip the
/// hot-loop rule after a scratch-buffer fix.
const std::set<std::string>& owner_types() {
  static const std::set<std::string> s = {
      "vector",        "string",        "wstring",       "basic_string",
      "map",           "set",           "multimap",      "multiset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset",             "deque",         "list",
      "queue",         "priority_queue","stack",         "function",
      "stringstream",  "ostringstream", "istringstream"};
  return s;
}

const std::set<std::string>& io_tokens() {
  static const std::set<std::string> s = {
      "cout",  "cerr",    "clog",  "ofstream", "ifstream", "fstream",
      "fopen", "fprintf", "fputs", "fwrite",   "fread",    "puts",
      "printf"};
  return s;
}

const std::set<std::string>& fmt_tokens() {
  static const std::set<std::string> s = {
      "to_string",     "snprintf",     "sprintf",       "stringstream",
      "ostringstream", "format_double","format_int"};
  return s;
}

bool is_wait_name(const std::string& bare) {
  return bare == "submit" || bare == "wait_idle" || bare == "parallel_for";
}

std::string bare_of(const std::string& name) {
  const auto pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

/// The statement/loop/lock/call scanner. One instance per file; walks
/// the stripped code character-by-character (like the DeclScanner) with
/// a scope stack, and records events into FlowFunctions. Anything it
/// cannot classify it drops — the passes only reason over what is
/// recorded, so a missed shape weakens coverage but never fabricates a
/// finding.
class FlowScanner {
 public:
  explicit FlowScanner(const SourceFile& f) : f_(f) {}

  std::vector<FlowFunction> run() {
    const std::string& code = f_.code;
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == '\n') {
        ++line_;
        ++i;
        continue;
      }
      if (space_char(c)) {
        ++i;
        continue;
      }
      if (c == '#') {
        i = directive(i);
        continue;
      }
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        const std::size_t consumed = on_ident(code.substr(i, j - i), i, j);
        prev2_ = prev_;
        prev_ = 'a';  // any identifier char
        i = consumed != 0 ? consumed : j;
        continue;
      }
      i = on_char(c, i);
    }
    return std::move(out_);
  }

 private:
  struct Scope {
    char kind = 'b';  // 'n' ns, 't' type, 'F' function, 'l' loop, 'b' block
    std::string name;
    int base_paren = 0;
    std::size_t locks_at_entry = 0;
  };

  struct ActiveLock {
    std::string id;
    std::string var;
  };

  /// Per-open-function context the lifetime rules need.
  struct FnCtx {
    std::set<std::string> owner_locals;
    std::set<std::string> view_params;
    std::set<std::string> owner_params;
    bool returns_view = false;
  };

  // ---- scope helpers -------------------------------------------------

  bool in_function() const { return !fn_stack_.empty(); }

  FlowFunction& fn() { return out_[static_cast<std::size_t>(fn_stack_.back())]; }
  FnCtx& ctx() { return fn_ctx_.back(); }

  int scope_base_paren() const {
    return scopes_.empty() ? 0 : scopes_.back().base_paren;
  }

  /// Loop nesting within the innermost function only.
  bool in_loop() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == 'F') break;
      if (it->kind == 'l') return true;
    }
    return loop_body_pending_ || loop_kw_pending_;
  }

  /// Locks held by the innermost function (outer functions' textually
  /// enclosing locks are NOT held when a lambda body later executes).
  std::vector<std::string> held() const {
    std::size_t from = 0;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == 'F') {
        from = it->locks_at_entry;
        break;
      }
    }
    std::vector<std::string> ids;
    for (std::size_t k = from; k < locks_.size(); ++k) {
      ids.push_back(locks_[k].id);
    }
    return ids;
  }

  std::string scope_prefix() const {
    std::string p;
    for (const auto& s : scopes_) {
      if ((s.kind == 'n' || s.kind == 't') && !s.name.empty()) {
        if (!p.empty()) p += "::";
        p += s.name;
      }
    }
    return p;
  }

  /// Canonical id for a lock argument: bare member/global names get the
  /// owning class (or namespace tail) as a prefix so the same mutex
  /// unifies across that class's methods; dotted expressions get the
  /// enclosing (non-lambda) function's qualified name, so two instances
  /// in one function stay distinct while a lambda and its host agree.
  std::string lock_id(const std::string& arg) const {
    std::string owner;
    for (auto it = fn_stack_.rbegin(); it != fn_stack_.rend(); ++it) {
      const FlowFunction& f = out_[static_cast<std::size_t>(*it)];
      if (!f.is_lambda) {
        owner = f.name;
        break;
      }
    }
    bool bare = !arg.empty();
    for (char c : arg) {
      if (!ident_char(c)) bare = false;
    }
    if (!bare) return owner.empty() ? arg : owner + "::" + arg;
    // Bare name: qualify with the class / namespace component just
    // above the function name.
    const auto pos = owner.rfind("::");
    if (pos == std::string::npos) return arg;
    const std::string qual = owner.substr(0, pos);
    const auto pos2 = qual.rfind("::");
    const std::string tail =
        pos2 == std::string::npos ? qual : qual.substr(pos2 + 2);
    return tail.empty() ? arg : tail + "::" + arg;
  }

  // ---- statement state ----------------------------------------------

  void reset_stmt() {
    qual_.clear();
    stmt_idents_ = 0;
    func_cand_.clear();
    func_cand_bare_.clear();
    func_line_ = 0;
    stmt_hot_ = false;
    stmt_view_type_ = false;
    is_namespace_ = false;
    ns_name_.clear();
    class_name_.clear();
    class_kw_ = 0;
    operator_stmt_ = false;
    eq_seen_ = false;
    saw_auto_ = false;
    pending_lambda_ = false;
    lambda_name_.clear();
    pending_mutexlock_ = false;
    finish_return();
    assign_stage_ = 0;
    assign_lhs_.clear();
    loop_body_pending_ = false;
    loop_kw_pending_ = false;
    last_ident_.clear();
  }

  /// Statement ends inside a function: finalize return / assignment.
  void end_fn_statement() {
    if (return_active_) {
      char kind = 0;
      std::string name;
      if (return_idents_ == 1 &&
          (ctx().owner_locals.count(return_first_) ||
           ctx().owner_params.count(return_first_))) {
        kind = ctx().owner_locals.count(return_first_) ? 'l' : 'p';
        name = return_first_;
      } else if (return_temp_seen_) {
        kind = 't';
        name = return_temp_;
      }
      if (kind != 0) {
        fn().view_returns.push_back({return_line_, kind, name});
      }
    }
    if (assign_stage_ == 1 && assign_rhs_idents_ == 1 &&
        assign_lhs_member_ && ctx().view_params.count(assign_rhs_)) {
      fn().view_stores.push_back({assign_line_, assign_lhs_, assign_rhs_});
    }
    finish_return();
    assign_stage_ = 0;
  }

  void finish_return() {
    return_active_ = false;
    return_idents_ = 0;
    return_first_.clear();
    return_temp_.clear();
    return_temp_seen_ = false;
    return_line_ = 0;
  }

  // ---- lookahead helpers --------------------------------------------

  char next_sig(std::size_t j) const {
    const std::string& code = f_.code;
    while (j < code.size() && space_char(code[j])) ++j;
    return j < code.size() ? code[j] : '\0';
  }

  std::size_t next_sig_pos(std::size_t j) const {
    const std::string& code = f_.code;
    while (j < code.size() && space_char(code[j])) ++j;
    return j;
  }

  /// After an owner-type token ending at `end`: classify the shape.
  /// Returns 'd' (declaration, `name` = the variable), 't' (temporary
  /// construction `std::string(...)`), or 0 (a bare type mention).
  char classify_owner_use(std::size_t end, std::string& name) const {
    const std::string& code = f_.code;
    std::size_t i = next_sig_pos(end);
    if (i < code.size() && code[i] == '<') {
      int depth = 0;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
        if (code[i] == ';' || code[i] == '{') return 0;
      }
    }
    i = next_sig_pos(i);
    if (i >= code.size()) return 0;
    if (code[i] == '(') return 't';
    if (!ident_char(code[i])) return 0;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string word = code.substr(i, j - i);
    if (word == "const") return classify_owner_use(j, name);
    const char after = next_sig(j);
    if (after == '(' || after == '{' || after == '=' || after == ';' ||
        after == ',' || after == ')') {
      name = word;
      return 'd';
    }
    return 0;
  }

  /// Consumes a balanced (...) or {...} region starting at `open`,
  /// counting lines; returns [content-idents, end-pos].
  std::size_t consume_region(std::size_t open, std::vector<std::string>* idents) {
    const std::string& code = f_.code;
    const char oc = code[open];
    const char cc = oc == '(' ? ')' : '}';
    int depth = 0;
    std::size_t i = open;
    for (; i < code.size(); ++i) {
      if (code[i] == '\n') ++line_;
      if (code[i] == oc) ++depth;
      if (code[i] == cc && --depth == 0) return i + 1;
      if (idents != nullptr && ident_char(code[i]) &&
          (i == 0 || !ident_char(code[i - 1]))) {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        idents->push_back(code.substr(i, j - i));
      }
    }
    return code.size();
  }

  /// Skips a balanced braced region, counting lines.
  std::size_t skip_braces(std::size_t open) {
    return consume_region(open, nullptr);
  }

  std::size_t directive(std::size_t hash) {
    const std::string& code = f_.code;
    std::size_t i = hash + 1;
    while (i < code.size()) {
      if (code[i] == '\n') {
        if (i > 0 && code[i - 1] == '\\') {
          ++line_;
          ++i;
          continue;
        }
        break;
      }
      ++i;
    }
    return i;
  }

  // ---- identifier handling ------------------------------------------

  /// Returns a new scan position when it consumed beyond the token,
  /// 0 to continue at the token's end.
  std::size_t on_ident(const std::string& tok, std::size_t start,
                       std::size_t end) {
    const std::size_t sigp = next_sig_pos(end);
    const char next = sigp < f_.code.size() ? f_.code[sigp] : '\0';

    // Qualifier accumulation: `A::` chains glue onto the next token.
    if (next == ':' && sigp + 1 < f_.code.size() &&
        f_.code[sigp + 1] == ':') {
      qual_ += tok + "::";
      return sigp + 2;
    }
    const std::string full = qual_.empty() ? tok : qual_ + tok;
    const std::string quals = qual_;
    qual_.clear();

    if (in_function()) {
      on_fn_ident(tok, full, quals, start, next, sigp);
    } else {
      on_decl_ident(tok, full, next);
    }
    last_ident_ = tok;
    return 0;
  }

  /// Namespace / class scope: function-definition detection.
  void on_decl_ident(const std::string& tok, const std::string& full,
                     char next) {
    if (tok == "operator") {
      operator_stmt_ = true;
      return;
    }
    if (tok == "namespace") {
      is_namespace_ = true;
      return;
    }
    if (is_namespace_) {
      ns_name_ = full;
      return;
    }
    if (tok == "class" || tok == "struct" || tok == "enum" ||
        tok == "union") {
      if (class_kw_ == 0 || tok == "class" || tok == "struct") {
        class_kw_ = tok[0];
      }
      class_name_.clear();
      return;
    }
    if (class_kw_ != 0 && class_name_.empty()) {
      if (tok != "final" && tok != "alignas" && tok != "class" &&
          !(macro_like(tok) && next == '(')) {
        class_name_ = tok;
      }
      return;
    }
    if (post_sig_) {
      on_post_sig_ident(tok, next);
      return;
    }
    if (in_params_) {
      on_param_ident(tok, full);
      return;
    }
    if (tok == "GPUVAR_HOT") {
      stmt_hot_ = true;
      ++stmt_idents_;
      return;
    }
    if (tok == "span" || tok == "string_view") stmt_view_type_ = true;
    const bool ctor_shape =
        !scopes_.empty() && scopes_.back().kind == 't' &&
        scopes_.back().name == tok;
    const bool qual_ctor =
        full.size() >= tok.size() * 2 + 2 &&
        full.compare(full.size() - (tok.size() * 2 + 2), tok.size() + 2,
                     "::" + tok) == 0 &&
        bare_of(full.substr(0, full.size() - tok.size() - 2)) == tok;
    if (next == '(' && paren_ == scope_base_paren() && func_cand_.empty() &&
        !eq_seen_ && !operator_stmt_ && !keywords().count(tok) &&
        (stmt_idents_ >= 1 || ctor_shape || qual_ctor)) {
      func_cand_ = full;
      func_cand_bare_ = tok;
      func_line_ = line_;
      in_params_ = true;
      params_base_paren_ = paren_;
      angle_ = 0;
      reset_param();
      pending_view_params_.clear();
      pending_owner_params_.clear();
      pending_view_stores_.clear();
      return;
    }
    ++stmt_idents_;
  }

  void reset_param() {
    p_view_ = p_owner_ = p_indirect_ = p_frozen_ = false;
    p_name_.clear();
  }

  void finish_param() {
    if (!p_name_.empty() && !p_indirect_) {
      if (p_view_) pending_view_params_.insert(p_name_);
      if (p_owner_) pending_owner_params_.insert(p_name_);
    }
    reset_param();
  }

  void on_param_ident(const std::string& tok, const std::string& full) {
    if (tok == "span" || tok == "string_view") {
      p_view_ = true;
      return;
    }
    if (owner_types().count(tok) && full == "std::" + tok) {
      p_owner_ = true;
      return;
    }
    if (!p_frozen_ && angle_ == 0 && !keywords().count(tok)) p_name_ = tok;
  }

  void on_post_sig_ident(const std::string& tok, char next) {
    if (tok == "GPUVAR_HOT") stmt_hot_ = true;
    if (tok == "span" || tok == "string_view") stmt_view_type_ = true;
    // Ctor-init list: `member_(param)` / `member_{param}` storing a
    // view parameter into a member that outlives the call.
    if (!tok.empty() && tok.back() == '_' && (next == '(' || next == '{')) {
      pending_init_member_ = tok;
      pending_init_line_ = line_;
    } else {
      pending_init_member_.clear();
    }
  }

  /// Function scope: event detection.
  void on_fn_ident(const std::string& tok, const std::string& full,
                   const std::string& quals, std::size_t start, char next,
                   std::size_t sigp) {
    if (tok == "for" || tok == "while") {
      loop_kw_pending_ = true;
      loop_paren_ = paren_;
      return;
    }
    if (tok == "do") {
      loop_body_pending_ = true;
      return;
    }
    if (tok == "auto") {
      saw_auto_ = true;
      return;
    }
    if (tok == "return") {
      if (ctx().returns_view) {
        return_active_ = true;
        return_line_ = line_;
      }
      return;
    }
    if (tok == "MutexLock") {
      pending_mutexlock_ = true;
      return;
    }
    if (pending_mutexlock_) {
      // `MutexLock var(expr);` — var is this token, expr follows.
      pending_mutexlock_ = false;
      if (next == '(') {
        const std::size_t close = matching_paren_end(f_.code, sigp);
        if (close != std::string::npos) {
          std::string arg;
          for (std::size_t k = sigp + 1; k + 1 < close; ++k) {
            if (!space_char(f_.code[k])) arg += f_.code[k];
          }
          const std::string id = lock_id(arg);
          fn().locks.push_back({id, line_, in_loop(), held()});
          locks_.push_back({id, tok});
        }
        return;
      }
    }
    if (tok == "new") {
      fn().allocs.push_back({"new", line_, in_loop()});
      return;
    }

    // Owner-type construction: `std::vector<T> name...` (declaration of
    // an owning local) or `std::string(...)` (temporary).
    if (owner_types().count(tok) && quals == "std::") {
      std::string var;
      const char use = classify_owner_use(sigp > 0 ? sigp : start, var);
      // classify from the token's end, not the next-sig position.
      const char use2 = use;
      (void)use2;
      if (use == 'd') {
        fn().allocs.push_back({"std::" + tok, line_, in_loop()});
        ctx().owner_locals.insert(var);
      } else if (use == 't') {
        fn().allocs.push_back({"std::" + tok, line_, in_loop()});
        if (return_active_) {
          return_temp_seen_ = true;
          if (return_temp_.empty()) return_temp_ = "std::" + tok;
        }
      }
    }

    if (io_tokens().count(tok)) {
      fn().io.push_back({tok, line_, in_loop()});
    }
    if (fmt_tokens().count(tok)) {
      fn().fmt.push_back({tok, line_, in_loop()});
      if (return_active_ && tok == "to_string") {
        return_temp_seen_ = true;
        if (return_temp_.empty()) return_temp_ = "to_string";
      }
    }

    const bool member = prev_is_member_access(start);
    if (return_active_) {
      ++return_idents_;
      if (return_idents_ == 1) return_first_ = tok;
      if (tok == "substr" && member &&
          (ctx().owner_locals.count(last_ident_) ||
           ctx().owner_params.count(last_ident_) ||
           (!last_ident_.empty() && last_ident_.back() == '_'))) {
        return_temp_seen_ = true;
        if (return_temp_.empty()) return_temp_ = last_ident_ + ".substr";
      }
    }
    if (assign_stage_ == 1) {
      ++assign_rhs_idents_;
      assign_rhs_ = tok;
    }

    // Early lock release: `lockvar.unlock()`.
    if (tok == "unlock" && member && next == '(') {
      for (std::size_t k = locks_.size(); k > 0; --k) {
        if (locks_[k - 1].var == last_ident_ && !locks_[k - 1].var.empty()) {
          locks_.erase(locks_.begin() + static_cast<std::ptrdiff_t>(k - 1));
          break;
        }
      }
    }

    // Call sites. `Type name(` declarations are excluded by the
    // preceding-character check; unresolvable callees become open
    // edges in the graph, so over-recording is harmless.
    if (next == '(' && !keywords().count(tok) && !macro_like(tok)) {
      const char p = prev_sig_before(start);
      bool decl_shape =
          ident_char(p) || p == '>' || p == '&' || p == '*' ||
          (p == ':' && !prev_is_scope_colon(start));
      // `return f(...)`, `else f(...)`, `co_yield f(...)`: the
      // preceding identifier is a statement keyword in value position,
      // not a type name — this is a call, not a declaration.
      static const std::set<std::string> value_kw = {
          "return", "co_return", "co_yield", "co_await", "throw",
          "else",   "do",        "case",     "and",      "or",
          "not"};
      if (ident_char(p) && value_kw.count(last_ident_)) decl_shape = false;
      if (member || !decl_shape) {
        fn().calls.push_back({full, line_, in_loop(), member, held()});
      }
    }

    if (!keywords().count(tok)) ++stmt_idents_;
  }

  char prev_sig_before(std::size_t start) const {
    std::size_t i = start;
    while (i > 0 && space_char(f_.code[i - 1])) --i;
    return i > 0 ? f_.code[i - 1] : '\0';
  }

  bool prev_is_member_access(std::size_t start) const {
    std::size_t i = start;
    while (i > 0 && space_char(f_.code[i - 1])) --i;
    if (i == 0) return false;
    if (f_.code[i - 1] == '.') {
      // Not a float literal like `0.5f`.
      return !(i >= 2 &&
               std::isdigit(static_cast<unsigned char>(f_.code[i - 2])));
    }
    return i >= 2 && f_.code[i - 2] == '-' && f_.code[i - 1] == '>';
  }

  bool prev_is_scope_colon(std::size_t start) const {
    std::size_t i = start;
    while (i > 0 && space_char(f_.code[i - 1])) --i;
    return i >= 2 && f_.code[i - 1] == ':' && f_.code[i - 2] == ':';
  }

  // ---- character handling -------------------------------------------

  std::size_t on_char(char c, std::size_t i) {
    const std::string& code = f_.code;
    switch (c) {
      case '(':
        if (!in_function() && post_sig_ && !pending_init_member_.empty()) {
          const std::size_t end = consume_init(i);
          pending_init_member_.clear();
          prev2_ = prev_;
          prev_ = ')';
          return end;
        }
        ++paren_;
        break;
      case ')':
        if (paren_ > 0) --paren_;
        if (in_params_ && paren_ == params_base_paren_) {
          finish_param();
          in_params_ = false;
          post_sig_ = true;
          pending_init_member_.clear();
        }
        if (loop_kw_pending_ && paren_ == loop_paren_) {
          loop_kw_pending_ = false;
          loop_body_pending_ = true;
        }
        break;
      case ',':
        if (in_params_ && angle_ == 0 &&
            paren_ == params_base_paren_ + 1) {
          finish_param();
        }
        break;
      case '<':
        if (in_params_) ++angle_;
        break;
      case '>':
        if (in_params_ && angle_ > 0) --angle_;
        break;
      case '&':
      case '*':
        if (in_params_ && angle_ == 0) p_indirect_ = true;
        break;
      case '=': {
        const char pc = i > 0 ? code[i - 1] : '\0';
        const char nc = i + 1 < code.size() ? code[i + 1] : '\0';
        const bool compound = pc == '=' || pc == '!' || pc == '<' ||
                              pc == '>' || pc == '+' || pc == '-' ||
                              pc == '*' || pc == '/' || pc == '%' ||
                              pc == '&' || pc == '|' || pc == '^' ||
                              nc == '=';
        if (in_params_) {
          p_frozen_ = true;
        } else if (!compound && paren_ == scope_base_paren()) {
          eq_seen_ = true;
          if (in_function()) {
            if (saw_auto_ && !last_ident_.empty() &&
                next_sig(i + 1) == '[') {
              pending_lambda_ = true;
              lambda_name_ = last_ident_;
            }
            if (assign_stage_ == 0 && !last_ident_.empty() &&
                !pending_lambda_) {
              assign_lhs_ = last_ident_;
              assign_lhs_member_ =
                  last_ident_.back() == '_' || last_assign_memberish(i);
              assign_line_ = line_;
              assign_stage_ = 1;
              assign_rhs_idents_ = 0;
              assign_rhs_.clear();
            }
          }
        }
        break;
      }
      case '{':
        return on_open_brace(i);
      case '}':
        if (!scopes_.empty()) {
          const Scope s = scopes_.back();
          scopes_.pop_back();
          paren_ = s.base_paren;
          if (locks_.size() > s.locks_at_entry) {
            locks_.resize(s.locks_at_entry);
          }
          if (s.kind == 'F') {
            fn_stack_.pop_back();
            fn_ctx_.pop_back();
          }
        }
        reset_stmt();
        break;
      case ';':
        if (paren_ == scope_base_paren()) {
          if (in_function()) end_fn_statement();
          post_sig_ = false;
          in_params_ = false;
          reset_stmt();
        }
        break;
      default:
        break;
    }
    prev2_ = prev_;
    prev_ = c;
    return i + 1;
  }

  /// A ctor-init entry `member_(args)`: consume it, record a view store
  /// when the argument is exactly one view parameter.
  std::size_t consume_init(std::size_t open) {
    std::vector<std::string> idents;
    const std::size_t end = consume_region(open, &idents);
    if (idents.size() == 1 && pending_view_params_.count(idents[0])) {
      pending_view_stores_.push_back(
          {pending_init_line_, pending_init_member_, idents[0]});
    }
    return end;
  }

  std::size_t on_open_brace(std::size_t i) {
    // Ctor-init `member_{param}` uses braces.
    if (!in_function() && post_sig_ && !pending_init_member_.empty()) {
      const std::size_t end = consume_init(i);
      pending_init_member_.clear();
      prev2_ = prev_;
      prev_ = '}';
      return end;
    }
    if (in_function() && pending_lambda_) {
      open_function(fn().name + "::" + lambda_name_, lambda_name_, true,
                    false, {}, {});
      reset_stmt();
      prev2_ = prev_;
      prev_ = '{';
      return i + 1;
    }
    if (!in_function() && post_sig_ && !func_cand_.empty() && !eq_seen_) {
      const std::string prefix = scope_prefix();
      const std::string name =
          prefix.empty() ? func_cand_ : prefix + "::" + func_cand_;
      open_function(name, func_cand_bare_, false, stmt_hot_,
                    pending_view_params_, pending_owner_params_);
      ctx().returns_view = stmt_view_type_;
      for (const auto& vs : pending_view_stores_) {
        fn().view_stores.push_back(vs);
      }
      post_sig_ = false;
      reset_stmt();
      prev2_ = prev_;
      prev_ = '{';
      return i + 1;
    }
    if (!in_function() && is_namespace_) {
      push_scope('n', ns_name_);
    } else if (!in_function() && !class_name_.empty()) {
      push_scope('t', class_name_);
    } else if (eq_seen_) {
      // Braced initializer: skip the balanced region; the statement
      // continues to ';'.
      const std::size_t end = skip_braces(i);
      prev2_ = prev_;
      prev_ = '}';
      return end;
    } else if (in_function() && loop_body_pending_) {
      loop_body_pending_ = false;
      push_scope('l', "");
    } else {
      push_scope('b', "");
    }
    reset_stmt();
    prev2_ = prev_;
    prev_ = '{';
    return i + 1;
  }

  void push_scope(char kind, const std::string& name) {
    scopes_.push_back({kind, name, paren_, locks_.size()});
  }

  void open_function(const std::string& name, const std::string& bare,
                     bool lambda, bool hot,
                     const std::set<std::string>& view_params,
                     const std::set<std::string>& owner_params) {
    FlowFunction f;
    f.name = name;
    f.bare = bare;
    f.line = lambda ? line_ : func_line_;
    f.hot = hot;
    f.is_lambda = lambda;
    out_.push_back(std::move(f));
    push_scope('F', "");
    fn_stack_.push_back(static_cast<int>(out_.size()) - 1);
    FnCtx c;
    c.view_params = view_params;
    c.owner_params = owner_params;
    fn_ctx_.push_back(std::move(c));
  }

  /// Whether the token feeding an `=` was a member access (`x.f = ...`).
  bool last_assign_memberish(std::size_t eq_pos) const {
    // Walk back over the identifier before '=' and check what precedes.
    std::size_t i = eq_pos;
    while (i > 0 && space_char(f_.code[i - 1])) --i;
    while (i > 0 && ident_char(f_.code[i - 1])) --i;
    return prev_is_member_access(i);
  }

  const SourceFile& f_;
  std::vector<FlowFunction> out_;
  std::vector<Scope> scopes_;
  std::vector<int> fn_stack_;
  std::vector<FnCtx> fn_ctx_;
  std::vector<ActiveLock> locks_;
  int line_ = 1;
  int paren_ = 0;
  char prev_ = '\0', prev2_ = '\0';

  // Declaration-detection state (outside functions).
  std::string qual_;
  int stmt_idents_ = 0;
  std::string func_cand_, func_cand_bare_;
  int func_line_ = 0;
  bool stmt_hot_ = false, stmt_view_type_ = false;
  bool is_namespace_ = false, operator_stmt_ = false;
  std::string ns_name_, class_name_;
  char class_kw_ = 0;
  bool eq_seen_ = false;
  bool in_params_ = false, post_sig_ = false;
  int params_base_paren_ = 0, angle_ = 0;
  bool p_view_ = false, p_owner_ = false, p_indirect_ = false,
       p_frozen_ = false;
  std::string p_name_;
  std::set<std::string> pending_view_params_, pending_owner_params_;
  std::vector<FlowViewStore> pending_view_stores_;
  std::string pending_init_member_;
  int pending_init_line_ = 0;

  // Function-scope statement state.
  bool loop_kw_pending_ = false, loop_body_pending_ = false;
  int loop_paren_ = -1;
  bool saw_auto_ = false, pending_lambda_ = false;
  std::string lambda_name_;
  bool pending_mutexlock_ = false;
  bool return_active_ = false, return_temp_seen_ = false;
  int return_line_ = 0, return_idents_ = 0;
  std::string return_first_, return_temp_;
  int assign_stage_ = 0, assign_rhs_idents_ = 0, assign_line_ = 0;
  std::string assign_lhs_, assign_rhs_;
  bool assign_lhs_member_ = false;
  std::string last_ident_;
};

}  // namespace

std::vector<FlowFunction> scan_flow(const SourceFile& f) {
  return FlowScanner(f).run();
}

namespace {

bool name_suffix_match(const std::string& qualified,
                       const std::string& callee) {
  if (qualified == callee) return true;
  return qualified.size() > callee.size() + 2 &&
         qualified.compare(qualified.size() - callee.size() - 2,
                           callee.size() + 2, "::" + callee) == 0;
}

}  // namespace

FlowGraph build_call_graph(const Tree& tree) {
  FlowGraph g;
  for (const auto& file : tree.files) {
    for (const auto& fn : file.functions) {
      g.nodes.push_back({&fn, file.rel});
    }
  }
  const std::size_t n = g.nodes.size();

  std::map<std::string, std::vector<int>> by_bare;
  for (std::size_t i = 0; i < n; ++i) {
    by_bare[g.nodes[i].fn->bare].push_back(static_cast<int>(i));
  }

  g.callee.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FlowGraph::Node& node = g.nodes[i];
    for (const auto& call : node.fn->calls) {
      const std::string bare = bare_of(call.callee);
      int target = -1;
      const auto it = by_bare.find(bare);
      if (it != by_bare.end()) {
        if (bare != call.callee) {
          // Qualified: unique suffix match tree-wide.
          int found = -1;
          int matches = 0;
          for (int cand : it->second) {
            if (name_suffix_match(g.nodes[static_cast<std::size_t>(cand)]
                                      .fn->name,
                                  call.callee)) {
              found = cand;
              ++matches;
            }
          }
          if (matches == 1) target = found;
        } else {
          // Unqualified: the caller's own named lambda first, then a
          // unique same-file definition, then a unique tree-wide one.
          int own = -1, own_n = 0, local = -1, local_n = 0;
          for (int cand : it->second) {
            const auto& cn = g.nodes[static_cast<std::size_t>(cand)];
            if (cn.file == node.file) {
              local = cand;
              ++local_n;
              if (cn.fn->name == node.fn->name + "::" + bare) {
                own = cand;
                ++own_n;
              }
            }
          }
          if (own_n == 1) {
            target = own;
          } else if (local_n == 1) {
            target = local;
          } else if (local_n == 0 && it->second.size() == 1) {
            target = it->second[0];
          }
        }
      }
      if (target < 0) ++g.open_edges;
      g.callee[i].push_back(target);
    }
  }

  // Direct effects, then a fixpoint over resolved edges. The iteration
  // order is index order and the merge is monotone, so the result is
  // deterministic regardless of graph shape.
  g.effects.resize(n);
  std::vector<std::set<std::string>> acq(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FlowFunction& fn = *g.nodes[i].fn;
    g.effects[i].allocates = !fn.allocs.empty();
    g.effects[i].formats = !fn.fmt.empty();
    for (const auto& call : fn.calls) {
      if (is_wait_name(bare_of(call.callee))) g.effects[i].waits = true;
    }
    for (const auto& lk : fn.locks) acq[i].insert(lk.lock);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < g.callee[i].size(); ++c) {
        const int t = g.callee[i][c];
        if (t < 0) continue;
        const auto& te = g.effects[static_cast<std::size_t>(t)];
        auto& e = g.effects[i];
        if (te.allocates && !e.allocates) e.allocates = changed = true;
        if (te.waits && !e.waits) e.waits = changed = true;
        if (te.formats && !e.formats) e.formats = changed = true;
        for (const auto& lk : acq[static_cast<std::size_t>(t)]) {
          if (acq[i].insert(lk).second) changed = true;
        }
      }
    }
  }
  g.acquired.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.acquired[i].assign(acq[i].begin(), acq[i].end());
  }
  return g;
}

}  // namespace gpuvar::analyzer
