// Lock discipline over the flow call graph.
//
// The order relation is built from two sources, both per call-graph
// node: (1) a MutexLock site's held_before set — every held lock is
// ordered before the newly acquired one — and (2) a call made with
// locks held into a callee whose transitive acquired set is known —
// every held lock is ordered before every lock the callee can take.
// Open edges contribute nothing (sound-by-admission): a cycle can be
// missed through a call the graph cannot resolve, never invented.
//
// lock-cycle fires once per unordered lock pair seen in both orders,
// anchored at the lexicographically-first witness site so the finding
// is stable across scan order and thread count.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core.hpp"
#include "flow.hpp"
#include "index.hpp"
#include "passes.hpp"

namespace gpuvar::analyzer {

namespace {

bool src_file(const std::string& rel) {
  return rel.rfind("src/", 0) == 0;
}

std::string bare_of(const std::string& name) {
  const auto pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

bool wait_name(const std::string& bare) {
  return bare == "submit" || bare == "wait_idle" || bare == "parallel_for";
}

struct Witness {
  std::string file;
  int line = 0;
  std::string fn;
};

bool earlier(const Witness& a, const Witness& b) {
  return std::tie(a.file, a.line) < std::tie(b.file, b.line);
}

}  // namespace

void run_lockorder_pass(const Tree& tree, const FlowGraph& graph,
                        std::vector<Finding>& findings) {
  (void)tree;
  // (held, acquired) -> first witness.
  std::map<std::pair<std::string, std::string>, Witness> order;
  const auto record = [&order](const std::string& held,
                               const std::string& acquired,
                               const Witness& w) {
    if (held == acquired) return;
    auto [it, inserted] = order.emplace(std::make_pair(held, acquired), w);
    if (!inserted && earlier(w, it->second)) it->second = w;
  };

  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const auto& node = graph.nodes[i];
    if (!src_file(node.file)) continue;
    const FlowFunction& fn = *node.fn;
    for (const auto& lk : fn.locks) {
      for (const auto& held : lk.held_before) {
        record(held, lk.lock, {node.file, lk.line, fn.name});
      }
    }
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const FlowCall& call = fn.calls[c];
      if (call.locks_held.empty()) continue;
      const int t = graph.callee[i][c];
      if (t >= 0) {
        for (const auto& acq :
             graph.acquired[static_cast<std::size_t>(t)]) {
          for (const auto& held : call.locks_held) {
            record(held, acq, {node.file, call.line, fn.name});
          }
        }
      }
      // lock-held-across-wait: the callee is a pool wait point, or
      // transitively reaches one.
      const bool waits =
          wait_name(bare_of(call.callee)) ||
          (t >= 0 && graph.effects[static_cast<std::size_t>(t)].waits);
      if (waits) {
        std::string held_list;
        for (const auto& held : call.locks_held) {
          if (!held_list.empty()) held_list += ", ";
          held_list += "'" + held + "'";
        }
        Finding fd;
        fd.file = node.file;
        fd.line = call.line;
        fd.rule = "lock-held-across-wait";
        fd.symbol = fn.name + "->" + bare_of(call.callee);
        fd.message = "lock " + held_list + " held across '" +
                     call.callee +
                     "' — a pool worker that needs it deadlocks the "
                     "pool (release before dispatching)";
        findings.push_back(std::move(fd));
      }
    }
  }

  // Inconsistent pairwise order -> one finding per unordered pair.
  std::set<std::pair<std::string, std::string>> reported;
  for (const auto& [pair, w] : order) {
    const auto rev = order.find({pair.second, pair.first});
    if (rev == order.end()) continue;
    const std::string a = std::min(pair.first, pair.second);
    const std::string b = std::max(pair.first, pair.second);
    if (!reported.insert({a, b}).second) continue;
    const Witness& first = earlier(w, rev->second) ? w : rev->second;
    const Witness& other = earlier(w, rev->second) ? rev->second : w;
    Finding fd;
    fd.file = first.file;
    fd.line = first.line;
    fd.rule = "lock-cycle";
    fd.symbol = a + "<->" + b;
    fd.message = "locks '" + a + "' and '" + b +
                 "' are acquired in both orders (here in '" + first.fn +
                 "', opposite order in '" + other.fn + "' at " +
                 other.file + ":" + std::to_string(other.line) +
                 ") — a deadlock window once both paths run concurrently";
    findings.push_back(std::move(fd));
  }
}

}  // namespace gpuvar::analyzer
