#include "driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

#include "analyzer_version.hpp"
#include "common/thread_pool.hpp"
#include "flow.hpp"
#include "passes.hpp"
#include "core.hpp"
#include "fix.hpp"
#include "index.hpp"

namespace gpuvar::analyzer {

namespace fs = std::filesystem;

namespace {

/// Bump when the FileSummary serialization or the scanner's semantics
/// change: a stale format must read as a cold cache, never as data.
/// (v3: FlowFunction records, finding symbols, and the analyzer's own
/// source hash folded into the key — see pass_set_hash.)
constexpr const char* kCacheFormatVersion = "gpuvar-analyzer-cache-v3";

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h ^= '\n';
  h *= 1099511628211ULL;
  return h;
}

/// Percent-encodes a field for the space-separated cache format; the
/// empty string encodes as "%".
std::string enc(const std::string& s) {
  if (s.empty()) return "%";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ' ': out += "%20"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      case '\t': out += "%09"; break;
      default: out += c;
    }
  }
  return out;
}

std::string dec(const std::string& s) {
  if (s == "%") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const std::string hex = s.substr(i + 1, 2);
      out += static_cast<char>(std::stoi(hex, nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

struct CachedFile {
  std::uint64_t size = 0;
  std::int64_t mtime = 0;
  FileSummary summary;
};

using CacheMap = std::map<std::string, CachedFile>;

CacheMap load_cache(const fs::path& path) {
  CacheMap cache;
  std::ifstream in(path);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line)) return cache;
  {
    std::istringstream h(line);
    std::string tag, version;
    std::uint64_t hash = 0;
    if (!(h >> tag >> version >> hash) || tag != "H" ||
        version != kCacheFormatVersion || hash != pass_set_hash()) {
      return cache;
    }
  }
  CachedFile cur;
  bool open = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;
    if (op == "F") {
      std::string rel, top, module;
      int header = 0, oper = 0;
      if (!(ls >> rel >> cur.size >> cur.mtime >> top >> module >> header >>
            oper)) {
        return CacheMap{};
      }
      cur.summary = FileSummary{};
      cur.summary.rel = dec(rel);
      cur.summary.top = dec(top);
      cur.summary.module = dec(module);
      cur.summary.header = header != 0;
      cur.summary.declares_operator = oper != 0;
      open = true;
    } else if (!open) {
      return CacheMap{};
    } else if (op == "I") {
      IncludeDirective inc;
      int keep = 0, exported = 0;
      std::string target;
      if (!(ls >> inc.line >> keep >> exported >> target)) return CacheMap{};
      inc.keep = keep != 0;
      inc.exported = exported != 0;
      inc.target = dec(target);
      cur.summary.includes.push_back(std::move(inc));
    } else if (op == "A") {
      int aline = 0;
      std::string rules;
      if (!(ls >> aline >> rules)) return CacheMap{};
      std::istringstream rs(dec(rules));
      std::string rule;
      while (std::getline(rs, rule, ',')) {
        if (!rule.empty()) cur.summary.allows[aline].insert(rule);
      }
    } else if (op == "S") {
      Symbol s;
      std::string kind, name, ns, parent;
      if (!(ls >> kind >> s.line >> name >> ns >> parent) || kind.empty()) {
        return CacheMap{};
      }
      s.kind = kind[0];
      s.name = dec(name);
      s.ns = dec(ns);
      s.parent = dec(parent);
      cur.summary.declared.push_back(std::move(s));
    } else if (op == "R") {
      // `name:count` pairs; ':' cannot appear in an identifier token.
      std::string item;
      while (ls >> item) {
        const auto colon = item.rfind(':');
        if (colon == std::string::npos) return CacheMap{};
        int count = 0;
        try {
          count = std::stoi(item.substr(colon + 1));
        } catch (...) {
          return CacheMap{};
        }
        if (count <= 0) return CacheMap{};
        cur.summary.refs.push_back(dec(item.substr(0, colon)));
        cur.summary.ref_counts.push_back(count);
      }
    } else if (op == "P") {
      std::string name;
      while (ls >> name) cur.summary.ptr_ref_only.push_back(dec(name));
    } else if (op == "FN") {
      FlowFunction fn;
      std::string name;
      int hot = 0, lambda = 0;
      if (!(ls >> name >> fn.line >> hot >> lambda)) return CacheMap{};
      fn.name = dec(name);
      const auto sep = fn.name.rfind("::");
      fn.bare = sep == std::string::npos ? fn.name : fn.name.substr(sep + 2);
      fn.hot = hot != 0;
      fn.is_lambda = lambda != 0;
      cur.summary.functions.push_back(std::move(fn));
    } else if (op == "FC" || op == "FK" || op == "FA" || op == "FO" ||
               op == "FM") {
      if (cur.summary.functions.empty()) return CacheMap{};
      FlowFunction& fn = cur.summary.functions.back();
      int fline = 0, in_loop = 0;
      if (!(ls >> fline >> in_loop)) return CacheMap{};
      if (op == "FC") {
        FlowCall call;
        int member = 0;
        std::string callee, locks;
        if (!(ls >> member >> callee >> locks)) return CacheMap{};
        call.line = fline;
        call.in_loop = in_loop != 0;
        call.member = member != 0;
        call.callee = dec(callee);
        std::istringstream lks(dec(locks));
        std::string lk;
        while (std::getline(lks, lk, ',')) {
          if (!lk.empty()) call.locks_held.push_back(lk);
        }
        fn.calls.push_back(std::move(call));
      } else if (op == "FK") {
        FlowLock lock;
        std::string id, held;
        if (!(ls >> id >> held)) return CacheMap{};
        lock.line = fline;
        lock.in_loop = in_loop != 0;
        lock.lock = dec(id);
        std::istringstream hs(dec(held));
        std::string h;
        while (std::getline(hs, h, ',')) {
          if (!h.empty()) lock.held_before.push_back(h);
        }
        fn.locks.push_back(std::move(lock));
      } else {
        FlowSite site;
        std::string what;
        if (!(ls >> what)) return CacheMap{};
        site.line = fline;
        site.in_loop = in_loop != 0;
        site.what = dec(what);
        auto& sites = op == "FA" ? fn.allocs : op == "FO" ? fn.io : fn.fmt;
        sites.push_back(std::move(site));
      }
    } else if (op == "L") {
      Finding fd;
      std::string rule, symbol, message;
      if (!(ls >> fd.line >> rule >> symbol >> message)) return CacheMap{};
      fd.file = cur.summary.rel;
      fd.rule = dec(rule);
      fd.symbol = dec(symbol);
      fd.message = dec(message);
      cur.summary.local_findings.push_back(std::move(fd));
    } else if (op == "E") {
      cache[cur.summary.rel] = cur;
      cur = CachedFile{};
      open = false;
    } else {
      return CacheMap{};
    }
  }
  return cache;
}

void write_cache(const fs::path& path, const CacheMap& cache) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return;  // best effort: an unwritable cache is just cold
  out << "H " << kCacheFormatVersion << " " << pass_set_hash() << "\n";
  for (const auto& [rel, cf] : cache) {
    const FileSummary& s = cf.summary;
    out << "F " << enc(rel) << " " << cf.size << " " << cf.mtime << " "
        << enc(s.top) << " " << enc(s.module) << " " << (s.header ? 1 : 0)
        << " " << (s.declares_operator ? 1 : 0) << "\n";
    for (const auto& inc : s.includes) {
      out << "I " << inc.line << " " << (inc.keep ? 1 : 0) << " "
          << (inc.exported ? 1 : 0) << " " << enc(inc.target) << "\n";
    }
    for (const auto& [line, rules] : s.allows) {
      std::string joined;
      for (const auto& r : rules) {
        if (!joined.empty()) joined += ',';
        joined += r;
      }
      out << "A " << line << " " << enc(joined) << "\n";
    }
    for (const auto& sym : s.declared) {
      out << "S " << sym.kind << " " << sym.line << " " << enc(sym.name)
          << " " << enc(sym.ns) << " " << enc(sym.parent) << "\n";
    }
    if (!s.refs.empty()) {
      out << "R";
      for (std::size_t i = 0; i < s.refs.size(); ++i) {
        out << " " << enc(s.refs[i]) << ":" << s.ref_counts[i];
      }
      out << "\n";
    }
    if (!s.ptr_ref_only.empty()) {
      out << "P";
      for (const auto& r : s.ptr_ref_only) out << " " << enc(r);
      out << "\n";
    }
    const auto join = [](const std::vector<std::string>& v) {
      std::string j;
      for (const auto& e : v) {
        if (!j.empty()) j += ',';
        j += e;
      }
      return j;
    };
    for (const auto& fn : s.functions) {
      out << "FN " << enc(fn.name) << " " << fn.line << " "
          << (fn.hot ? 1 : 0) << " " << (fn.is_lambda ? 1 : 0) << "\n";
      for (const auto& c : fn.calls) {
        out << "FC " << c.line << " " << (c.in_loop ? 1 : 0) << " "
            << (c.member ? 1 : 0) << " " << enc(c.callee) << " "
            << enc(join(c.locks_held)) << "\n";
      }
      for (const auto& lk : fn.locks) {
        out << "FK " << lk.line << " " << (lk.in_loop ? 1 : 0) << " "
            << enc(lk.lock) << " " << enc(join(lk.held_before)) << "\n";
      }
      for (const auto& a : fn.allocs) {
        out << "FA " << a.line << " " << (a.in_loop ? 1 : 0) << " "
            << enc(a.what) << "\n";
      }
      for (const auto& io : fn.io) {
        out << "FO " << io.line << " " << (io.in_loop ? 1 : 0) << " "
            << enc(io.what) << "\n";
      }
      for (const auto& fm : fn.fmt) {
        out << "FM " << fm.line << " " << (fm.in_loop ? 1 : 0) << " "
            << enc(fm.what) << "\n";
      }
    }
    for (const auto& fd : s.local_findings) {
      out << "L " << fd.line << " " << enc(fd.rule) << " "
          << enc(fd.symbol) << " " << enc(fd.message) << "\n";
    }
    out << "E\n";
  }
}

bool is_source_name(const fs::path& p) {
  return p.extension() == ".hpp" || p.extension() == ".cpp";
}

struct TreeItem {
  fs::path path;
  std::string rel;
  std::uint64_t size = 0;
  std::int64_t mtime = 0;
};

std::vector<TreeItem> enumerate(const fs::path& root) {
  std::vector<TreeItem> items;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    std::vector<fs::path> paths;
    auto it = fs::recursive_directory_iterator(base);
    for (const auto& entry : it) {
      if (entry.is_directory() && entry.path().filename() == "fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (entry.is_regular_file() && is_source_name(entry.path())) {
        paths.push_back(entry.path());
      }
    }
    // Directory iteration order is filesystem-dependent; sort so the
    // analyzer's own output is deterministic.
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) {
      TreeItem item;
      item.path = p;
      item.rel = fs::relative(p, root).generic_string();
      std::error_code ec;
      item.size = static_cast<std::uint64_t>(fs::file_size(p, ec));
      if (ec) continue;
      const auto mt = fs::last_write_time(p, ec);
      if (ec) continue;
      item.mtime = static_cast<std::int64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              mt.time_since_epoch())
              .count());
      items.push_back(std::move(item));
    }
  }
  return items;
}

/// Parses `IWYU pragma:` marks off each include's raw line.
void mark_iwyu_pragmas(const SourceFile& f, FileSummary& out) {
  std::vector<std::string> lines;
  {
    std::size_t pos = 0;
    while (pos <= f.raw.size()) {
      const std::size_t eol = f.raw.find('\n', pos);
      lines.push_back(f.raw.substr(
          pos, (eol == std::string::npos ? f.raw.size() : eol) - pos));
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
  }
  for (auto& inc : out.includes) {
    const std::size_t i = static_cast<std::size_t>(inc.line - 1);
    if (i >= lines.size()) continue;
    if (lines[i].find("IWYU pragma: keep") != std::string::npos) {
      inc.keep = true;
    }
    if (lines[i].find("IWYU pragma: export") != std::string::npos) {
      inc.exported = true;
    }
  }
}

}  // namespace

const std::vector<std::string>& pass_names() {
  static const std::vector<std::string> kNames = {
      "style",    "layering", "thread",    "determinism",
      "interchange", "obs",   "include",   "deadcode",
      "lockorder",   "hotpath", "lifetime", "analysis",
      "reduction"};
  return kNames;
}

std::uint64_t pass_set_hash() {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(h, kCacheFormatVersion);
  // The analyzer's own source hash (generated at build time): a
  // rebuilt analyzer with changed pass logic must read every prior
  // cache as cold, even when the pass/rule lists are unchanged.
  h = fnv1a(h, kAnalyzerSourceHash);
  // Test hook: lets the cache tests simulate an analyzer rebuild
  // without actually recompiling.
  if (const char* salt = std::getenv("GPUVAR_ANALYZER_CACHE_SALT")) {
    h = fnv1a(h, salt);
  }
  for (const auto& name : pass_names()) h = fnv1a(h, name);
  for (const auto& rule : known_rules()) h = fnv1a(h, rule);
  return h;
}

bool scan_file(const fs::path& path, const std::string& rel,
               FileSummary& out) {
  SourceFile f;
  if (!load_source_file(path, rel, f)) return false;

  out = FileSummary{};
  out.rel = f.rel;
  out.top = f.top;
  out.module = f.module;
  out.header = f.header;
  for (const auto& [line, target] : f.includes) {
    IncludeDirective inc;
    inc.line = line;
    inc.target = target;
    out.includes.push_back(std::move(inc));
  }
  out.allows = f.allows;
  mark_iwyu_pragmas(f, out);
  scan_symbols(f, out);
  out.functions = scan_flow(f);

  // File-local passes (everything except the tree passes is a pure
  // function of one file — that is what makes the scan cacheable per
  // file). The lifetime pass is file-local too: dangling-span needs
  // only one function body at a time.
  Repo one;
  one.root = path.parent_path();
  one.files.push_back(std::move(f));
  run_style_pass(one, out.local_findings);
  run_thread_pass(one, out.local_findings);
  run_determinism_pass(one, out.local_findings);
  run_interchange_pass(one, out.local_findings);
  run_obs_pass(one, out.local_findings);
  run_lifetime_pass(one, out.local_findings);
  run_analysis_pass(one, out.local_findings);
  run_reduction_pass(one, out.local_findings);
  return true;
}

Tree scan_tree(const fs::path& root, const ScanOptions& opts,
               ScanStats* stats) {
  const std::vector<TreeItem> items = enumerate(root);

  CacheMap cache;
  if (!opts.cache_path.empty()) cache = load_cache(opts.cache_path);

  Tree tree;
  tree.root = root;
  tree.files.resize(items.size());
  std::vector<std::size_t> misses;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto it = cache.find(items[i].rel);
    if (it != cache.end() && it->second.size == items[i].size &&
        it->second.mtime == items[i].mtime) {
      tree.files[i] = it->second.summary;
      ++hits;
    } else {
      misses.push_back(i);
    }
  }

  std::vector<char> ok(misses.size(), 0);
  if (!misses.empty()) {
    ThreadPool pool(opts.threads);
    pool.parallel_for(misses.size(), [&](std::size_t k) {
      const std::size_t i = misses[k];
      ok[k] = scan_file(items[i].path, items[i].rel, tree.files[i]) ? 1 : 0;
    });
  }

  // Drop unreadable files, preserving order.
  std::vector<char> keep(items.size(), 1);
  for (std::size_t k = 0; k < misses.size(); ++k) {
    if (!ok[k]) keep[misses[k]] = 0;
  }
  if (std::find(keep.begin(), keep.end(), 0) != keep.end()) {
    Tree pruned;
    pruned.root = tree.root;
    std::vector<TreeItem> kept_items;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (keep[i]) pruned.files.push_back(std::move(tree.files[i]));
    }
    tree = std::move(pruned);
  }

  if (stats != nullptr) {
    stats->files = tree.files.size();
    stats->scanned = misses.size();
    stats->cache_hits = hits;
  }

  if (!opts.cache_path.empty()) {
    CacheMap fresh;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!keep[i]) continue;
      CachedFile cf;
      cf.size = items[i].size;
      cf.mtime = items[i].mtime;
      // tree.files may have been compacted; find by rel.
      cf.summary = FileSummary{};
      fresh[items[i].rel] = std::move(cf);
    }
    for (auto& f : tree.files) {
      auto it = fresh.find(f.rel);
      if (it != fresh.end()) it->second.summary = f;
    }
    write_cache(opts.cache_path, fresh);
  }

  resolve_includes(tree);
  return tree;
}

void check_suppression_names(const FileSummary& file,
                             std::vector<Finding>& findings) {
  for (const auto& [line, rules] : file.allows) {
    for (const auto& rule : rules) {
      if (!known_rules().count(rule)) {
        findings.push_back({file.rel, line, "unknown-rule",
                            "suppression names unknown rule '" + rule +
                                "' (run --list-rules for the registry); "
                                "a typo here would silently disable "
                                "nothing"});
      }
    }
  }
}

std::vector<Finding> apply_suppressions(const Tree& tree,
                                        std::vector<Finding> findings) {
  std::map<std::string, const FileSummary*> by_rel;
  for (const auto& f : tree.files) by_rel[f.rel] = &f;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& fd : findings) {
    bool suppressed = false;
    if (!strict_rule(fd.rule)) {
      const auto it = by_rel.find(fd.file);
      if (it != by_rel.end()) {
        const auto& allows = it->second->allows;
        for (int line : {fd.line, fd.line - 1}) {
          const auto a = allows.find(line);
          if (a != allows.end() && a->second.count(fd.rule)) {
            suppressed = true;
            break;
          }
        }
      }
    }
    if (!suppressed) kept.push_back(std::move(fd));
  }
  return kept;
}

AnalysisResult analyze_tree(const Tree& tree) {
  AnalysisResult result;
  std::vector<Finding> findings;
  for (const auto& f : tree.files) {
    findings.insert(findings.end(), f.local_findings.begin(),
                    f.local_findings.end());
  }

  run_layering_pass(tree, findings);
  const SymbolIndex idx = build_index(tree);
  std::vector<FixEdit> edits;
  run_include_pass(tree, idx, findings, &edits);
  run_deadcode_pass(tree, idx, findings);
  const FlowGraph graph = build_call_graph(tree);
  result.open_edges = graph.open_edges;
  run_lockorder_pass(tree, graph, findings);
  run_hotpath_pass(tree, graph, findings);
  for (const auto& f : tree.files) check_suppression_names(f, findings);

  findings = apply_suppressions(tree, std::move(findings));
  sort_findings(findings);

  // Keep only edits whose finding survived suppression.
  std::set<std::tuple<std::string, int, std::string>> alive;
  for (const auto& fd : findings) alive.insert({fd.file, fd.line, fd.rule});
  for (auto& e : edits) {
    if (alive.count({e.file, e.line, e.rule})) {
      result.edits.push_back(std::move(e));
    }
  }
  result.findings = std::move(findings);
  return result;
}

}  // namespace gpuvar::analyzer
