// The analyzer's scan driver: parallel per-file scanning on
// gpuvar::ThreadPool, an on-disk scan cache for incremental warm runs,
// and the pass/suppression orchestration shared by the tree and
// fixture entry points.
//
// Scanning is embarrassingly parallel and deterministic: files are
// enumerated in sorted order, each file's scan (load, strip, tokenize,
// file-local passes, symbol tables) writes into its own slot, and every
// tree-level pass runs on the ordered summaries — so findings are
// byte-identical at any thread count.
//
// The cache stores one FileSummary per file keyed by (path, size,
// mtime, pass-set hash). A warm run re-reads only files whose stat
// changed; everything else skips loading the file at all. The pass-set
// hash covers the pass list, the rule registry, a format version, and
// a build-time hash of the analyzer's own sources, so adding a pass,
// changing the serialization, or rebuilding the analyzer with edited
// pass logic invalidates the cache wholesale rather than mixing stale
// results.
#pragma once

#include <cstdint>

#include "fix.hpp"
#include "index.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

struct ScanOptions {
  /// Cache file path; empty disables the cache.
  std::filesystem::path cache_path;
  /// Worker threads for the scan; 0 = one per hardware thread.
  std::size_t threads = 0;
};

struct ScanStats {
  std::size_t files = 0;
  std::size_t scanned = 0;     ///< files loaded and scanned this run
  std::size_t cache_hits = 0;  ///< files served from the cache
};

/// Names of every pass, in execution order (file-local passes first).
const std::vector<std::string>& pass_names();

/// FNV-1a over pass names, rule registry, and the cache format version.
std::uint64_t pass_set_hash();

/// Scans one file: load + file-local passes + symbol tables. Returns
/// false when the file can't be read.
bool scan_file(const std::filesystem::path& path, const std::string& rel,
               FileSummary& out);

/// Scans root/{src,tools,bench,examples,tests} for .hpp/.cpp files
/// (skipping fixtures/ directories), in parallel, through the cache.
/// Include targets are resolved before returning.
Tree scan_tree(const std::filesystem::path& root, const ScanOptions& opts,
               ScanStats* stats);

/// Findings for allow() entries naming rules the analyzer doesn't have.
void check_suppression_names(const FileSummary& file,
                             std::vector<Finding>& findings);

/// Drops findings covered by an allow() on the same or preceding line.
/// Strict rules (core.hpp strict_rule) are never suppressible.
std::vector<Finding> apply_suppressions(const Tree& tree,
                                        std::vector<Finding> findings);

struct AnalysisResult {
  std::vector<Finding> findings;  ///< post-suppression, canonical order
  std::vector<FixEdit> edits;     ///< edits whose findings survived
  /// Call-graph edges that resolved to no known definition
  /// (sound-by-admission: counted, never traversed). Surfaced by
  /// --stats so a resolution regression is visible.
  std::size_t open_edges = 0;
};

/// Runs every pass over the scanned tree: collects the cached
/// file-local findings, runs the tree-level passes (layering, include
/// hygiene, dead code), applies suppressions, and sorts.
AnalysisResult analyze_tree(const Tree& tree);

}  // namespace gpuvar::analyzer
