// Intraprocedural span/string_view lifetime: dangling-span.
//
// File-local by design (it runs during the parallel scan and its
// findings cache with the file): the facts it needs — a view-returning
// function returning an owning local / by-value owner parameter /
// temporary, or a view parameter stored into a member — are all
// visible inside one function body via scan_flow(). Cross-function
// escapes are out of scope; the rule under-reports rather than chases
// aliases it cannot see.
#include <string>
#include <vector>

#include "core.hpp"
#include "flow.hpp"
#include "passes.hpp"

namespace gpuvar::analyzer {

void run_lifetime_pass(const Repo& repo, std::vector<Finding>& findings) {
  for (const auto& f : repo.files) {
    if (!f.in_src()) continue;
    for (const FlowFunction& fn : scan_flow(f)) {
      for (const auto& vr : fn.view_returns) {
        Finding fd;
        fd.file = f.rel;
        fd.line = vr.line;
        fd.rule = "dangling-span";
        fd.symbol = fn.name;
        switch (vr.kind) {
          case 'l':
            fd.message = "returns a span/string_view bound to local "
                         "owner '" +
                         vr.name + "' — the backing storage dies at "
                         "return";
            break;
          case 'p':
            fd.message = "returns a span/string_view bound to by-value "
                         "owner parameter '" +
                         vr.name + "' — the backing storage dies at "
                         "return";
            break;
          default:
            fd.message = "returns a span/string_view bound to a "
                         "temporary (" +
                         vr.name + ") destroyed at the end of the "
                         "statement";
            break;
        }
        findings.push_back(std::move(fd));
      }
      for (const auto& vs : fn.view_stores) {
        Finding fd;
        fd.file = f.rel;
        fd.line = vs.line;
        fd.rule = "dangling-span";
        fd.symbol = fn.name + "::" + vs.member;
        fd.message = "stores view parameter '" + vs.param +
                     "' into member '" + vs.member +
                     "' — the member outlives the caller's backing "
                     "storage";
        findings.push_back(std::move(fd));
      }
    }
  }
}

}  // namespace gpuvar::analyzer
