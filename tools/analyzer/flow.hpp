// Lightweight flow-aware analysis on top of the token scanner.
//
// scan_flow() walks one preprocessed file and extracts, per function
// definition, the events the flow passes need: call sites (with the
// lock set held at each), lock acquisitions (gpuvar::MutexLock),
// loop nesting, allocation / IO / string-formatting trigger sites,
// and the span/string_view lifetime facts the dangling-span rule
// consumes. Like the DeclScanner it is deliberately AST-free: every
// recognized shape is a token pattern this codebase actually writes,
// and anything the scanner cannot classify is simply not recorded.
//
// build_call_graph() then stitches the per-file FlowFunction lists
// into a cross-TU call graph. Resolution is name-based and
// sound-by-admission:
//
//   1. a callee naming a local lambda / helper defined in the same
//      file resolves there (innermost first);
//   2. otherwise a qualifier-suffix match against every function in
//      the tree resolves iff it is unique;
//   3. otherwise the edge stays OPEN: it is counted (ScanStats /
//      --stats) but never traversed, so the passes only ever reason
//      about code they can actually see. A finding can be missed
//      through an open edge; one can never be fabricated by it.
//
// The lockorder and hotpath passes run on the graph; the lifetime
// pass is intraprocedural and runs during the per-file scan (its
// findings are cached with the file like any file-local pass).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace gpuvar::analyzer {

struct SourceFile;
struct Tree;

/// One call site inside a function body.
struct FlowCall {
  std::string callee;  ///< as written, "::"-joined ("stats::median")
  int line = 0;
  bool in_loop = false;  ///< lexically inside a loop of this function
  bool member = false;   ///< object call: `x.f()` / `x->f()`
  /// Canonical ids of the locks held when the call executes.
  std::vector<std::string> locks_held;
};

/// One gpuvar::MutexLock acquisition site.
struct FlowLock {
  std::string lock;  ///< canonical id, e.g. "Registry::mu_"
  int line = 0;
  bool in_loop = false;
  /// Locks already held when this one is acquired — the per-function
  /// source of pairwise acquisition order.
  std::vector<std::string> held_before;
};

/// An allocation / IO / string-formatting trigger site.
struct FlowSite {
  std::string what;  ///< the trigger token, for messages
  int line = 0;
  bool in_loop = false;
};

/// A `return <expr>` in a view-returning function where <expr> is
/// known to die with the call: kind 'l' = local owner, 'p' = by-value
/// owner parameter, 't' = temporary (substr / to_string / owner ctor).
struct FlowViewReturn {
  int line = 0;
  char kind = 'l';
  std::string name;  ///< the local/param, or the temporary-making token
};

/// A view parameter stored into a member (`name_ = p;`, `x->f = p;`,
/// ctor init `name_(p)`) — the member outlives the argument's backing
/// storage unless the caller guarantees otherwise.
struct FlowViewStore {
  int line = 0;
  std::string member;
  std::string param;
};

/// Everything scan_flow() learns about one function definition
/// (free function, member function defined in-class or out-of-line,
/// or a named local lambda, which is modeled as a nested function).
struct FlowFunction {
  std::string name;  ///< qualified: "RecordFrame::intern",
                     ///< "per_gpu_medians::median_of" for lambdas
  std::string bare;  ///< last "::" component
  int line = 0;
  bool hot = false;       ///< GPUVAR_HOT on the definition
  bool is_lambda = false; ///< named local lambda callable
  std::vector<FlowCall> calls;
  std::vector<FlowLock> locks;
  std::vector<FlowSite> allocs;  ///< `new`, owner-type local construction
  std::vector<FlowSite> io;      ///< stream/stdio tokens
  std::vector<FlowSite> fmt;     ///< to_string/snprintf/ostringstream/...
  // Lifetime facts (consumed at scan time by the lifetime pass; not
  // serialized into the scan cache).
  std::vector<FlowViewReturn> view_returns;
  std::vector<FlowViewStore> view_stores;
};

/// Extracts every function definition (with events) from one file.
std::vector<FlowFunction> scan_flow(const SourceFile& f);

/// The cross-TU call graph over every FlowFunction in the tree.
struct FlowGraph {
  struct Node {
    const FlowFunction* fn = nullptr;
    std::string file;  ///< rel path of the defining file
  };
  /// Sorted by (file, function order within file) — deterministic.
  std::vector<Node> nodes;
  /// node index -> per-call resolved callee node (-1 = open edge),
  /// parallel to nodes[i].fn->calls.
  std::vector<std::vector<int>> callee;
  std::size_t open_edges = 0;  ///< calls that resolved to no node

  /// Transitive effect bits per node, closed over resolved edges.
  struct Effects {
    bool allocates = false;
    bool waits = false;    ///< reaches submit/wait_idle/parallel_for
    bool formats = false;
  };
  std::vector<Effects> effects;
  /// Locks transitively acquired by each node (canonical ids).
  std::vector<std::vector<std::string>> acquired;
};

FlowGraph build_call_graph(const Tree& tree);

}  // namespace gpuvar::analyzer
