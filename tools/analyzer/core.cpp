#include "core.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

namespace gpuvar::analyzer {

namespace fs = std::filesystem;

std::string strip_comments_and_literals(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLineComment;
          ++i;
        } else if (c == '/' && n == '*') {
          st = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && n == '/') {
          st = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += '\n';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = State::kCode;
        } else if (c == '\n') {
          out += '\n';  // unterminated; keep line counts sane
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        } else if (c == '\n') {
          out += '\n';
          st = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (!ident_char(c)) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    // A digit-led chunk is a numeric literal; a glued `_suffix` makes
    // it a user-defined-literal reference (`250.0_W` uses `_W`), so
    // the token becomes the suffix. Chunk count is preserved either
    // way — declaration scanning sees the same stream shape.
    std::size_t start = i;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (start < j && code[start] != '_') ++start;
      if (start == j) start = i;  // plain number: keep it verbatim
    }
    Token t;
    t.text = code.substr(start, j - start);
    t.line = line;
    t.pos = start;
    std::size_t k = j;
    while (k < code.size() &&
           std::isspace(static_cast<unsigned char>(code[k])) &&
           code[k] != '\n') {
      ++k;
    }
    t.next = k < code.size() ? code[k] : '\0';
    tokens.push_back(std::move(t));
    i = j;
  }
  return tokens;
}

int SourceFile::line_of(std::size_t pos) const {
  return 1 + static_cast<int>(
                 std::count(code.begin(),
                            code.begin() +
                                static_cast<std::ptrdiff_t>(
                                    std::min(pos, code.size())),
                            '\n'));
}

std::size_t matching_paren_end(const std::string& code, std::size_t open) {
  if (open >= code.size() || code[open] != '(') return std::string::npos;
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') ++depth;
    if (code[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

namespace {

void parse_includes(SourceFile& f) {
  // Walk code and raw line by line in lockstep (stripping preserves
  // newlines): the stripped line tells us a '#' directive is real code,
  // the raw line still holds the quoted path that stripping blanked.
  const std::string& code = f.code;
  std::size_t cpos = 0, rpos = 0;
  int line = 1;
  while (cpos <= code.size()) {
    const std::size_t ceol = code.find('\n', cpos);
    const std::size_t cend = ceol == std::string::npos ? code.size() : ceol;
    const std::size_t reol = f.raw.find('\n', rpos);
    std::size_t p = cpos;
    while (p < cend && std::isspace(static_cast<unsigned char>(code[p]))) ++p;
    if (p < cend && code[p] == '#' && code.find("include", p) < cend) {
      const std::string raw_line = f.raw.substr(
          rpos, (reol == std::string::npos ? f.raw.size() : reol) - rpos);
      const std::size_t inc = raw_line.find("include");
      if (inc != std::string::npos) {
        const std::size_t q0 = raw_line.find('"', inc);
        if (q0 != std::string::npos) {
          const std::size_t q1 = raw_line.find('"', q0 + 1);
          if (q1 != std::string::npos) {
            f.includes.emplace_back(line,
                                    raw_line.substr(q0 + 1, q1 - q0 - 1));
          }
        }
      }
    }
    if (ceol == std::string::npos) break;
    cpos = ceol + 1;
    rpos = reol == std::string::npos ? f.raw.size() : reol + 1;
    ++line;
  }
}

void parse_allows(SourceFile& f) {
  static const std::string kMarker = "gpuvar-lint:";
  std::size_t pos = 0;
  while ((pos = f.raw.find(kMarker, pos)) != std::string::npos) {
    const int line =
        1 + static_cast<int>(std::count(
                f.raw.begin(),
                f.raw.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
    std::size_t p = pos + kMarker.size();
    while (p < f.raw.size() && f.raw[p] == ' ') ++p;
    if (f.raw.compare(p, 6, "allow(") == 0) {
      p += 6;
      const std::size_t close = f.raw.find(')', p);
      if (close != std::string::npos) {
        std::string list = f.raw.substr(p, close - p);
        std::stringstream ss(list);
        std::string rule;
        while (std::getline(ss, rule, ',')) {
          const auto b = rule.find_first_not_of(" \t");
          const auto e = rule.find_last_not_of(" \t");
          if (b != std::string::npos) {
            f.allows[line].insert(rule.substr(b, e - b + 1));
          }
        }
      }
    }
    pos += kMarker.size();
  }
}

}  // namespace

bool load_source_file(const fs::path& path, const std::string& rel,
                      SourceFile& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::stringstream ss;
  ss << f.rdbuf();
  out.path = path;
  out.rel = rel;
  out.raw = ss.str();
  out.code = strip_comments_and_literals(out.raw);
  out.tokens = tokenize(out.code);

  const auto slash = rel.find('/');
  out.top = slash == std::string::npos ? "" : rel.substr(0, slash);
  out.module.clear();
  if (out.top == "src" && slash != std::string::npos) {
    const auto slash2 = rel.find('/', slash + 1);
    if (slash2 != std::string::npos) {
      out.module = rel.substr(slash + 1, slash2 - slash - 1);
    }
  }
  const std::string name = out.filename();
  out.header = name.size() >= 4 &&
               (name.rfind(".hpp") == name.size() - 4 ||
                name.find(".hpp.") != std::string::npos);

  parse_includes(out);
  parse_allows(out);
  return true;
}

const std::vector<RuleInfo>& rules() {
  // Strictness notes: unknown-rule is structurally strict (a
  // suppression must never hide a typo'd suppression);
  // row-record-param graduated to strict once the last
  // deprecation-cycle row adapters were deleted — an allow() on it now
  // marks a dead grace period, not an exemption.
  static const std::vector<RuleInfo> kRules = {
      {"alloc-in-hot-loop", "hotpath",
       "heap allocation inside a loop on a GPUVAR_HOT path", false},
      {"analysis-signature", "analysis",
       "analysis entry point in a core header off the unified "
       "analyze_*(source, const ...Options&) shape, or a deprecated "
       "pre-redesign spelling kept outside an allow()'d shim", false},
      {"bare-assert", "style",
       "assert() in library code; use GPUVAR_CHECK so release builds "
       "keep the invariant", false},
      {"cout-in-library", "style",
       "std::cout/std::cerr in src/ library code; report through the "
       "caller or obs sinks", false},
      {"dangling-span", "lifetime",
       "span/string_view bound to storage that dies with the call "
       "(local, temporary, or view parameter stored past return)",
       false},
      {"dead-symbol", "deadcode",
       "namespace-scope symbol in a src/ header no other TU references",
       false},
      {"float-sort-key", "determinism",
       "std::sort comparator on floating-point keys without a "
       "tie-breaker; ties make the order platform-dependent", false},
      {"forward-declarable", "include",
       "header included for a type used only by pointer/reference; a "
       "forward declaration suffices", false},
      {"include-cycle", "layering",
       "include cycle among src/ modules", false},
      {"io-in-hot-path", "hotpath",
       "stream/stdio IO reachable on a GPUVAR_HOT path", false},
      {"locale-format", "interchange",
       "locale-dependent number formatting in interchange code; use "
       "numfmt", false},
      {"lock-cycle", "lockorder",
       "two locks acquired in opposite orders on different paths; a "
       "deadlock window once both run concurrently", false},
      {"lock-held-across-wait", "lockorder",
       "lock held across ThreadPool submit/wait_idle/parallel_for; "
       "workers that need the lock deadlock the pool", false},
      {"lock-in-hot-path", "hotpath",
       "mutex acquisition inside a GPUVAR_HOT function or a helper it "
       "calls", false},
      {"missing-direct-include", "include",
       "symbol used but its header reached only transitively; include "
       "it directly", false},
      {"parallel-accum", "determinism",
       "compound assignment to a captured accumulator inside "
       "parallel_for; reduction order is nondeterministic", false},
      {"pragma-once", "style",
       "header missing #pragma once", false},
      {"raw-double-quantity", "style",
       "bare double for a physical quantity in a public header; use "
       "the unit-named aliases", false},
      {"raw-loop-reduction", "reduction",
       "serial double reduction (range-for '+=' or a <numeric> "
       "algorithm) in src/core or src/query; use the stats::kernels "
       "reductions, which pin the lane order", false},
      {"raw-rng", "style",
       "rand()/srand()/random_device in library code; use the seeded "
       "gpuvar RNG", false},
      {"raw-std-mutex", "thread",
       "std::mutex/std::lock_guard directly; use gpuvar::Mutex / "
       "MutexLock so clang -Wthread-safety sees a capability", false},
      {"raw-trace-api", "obs",
       "trace-layer internals used outside src/obs; use the "
       "GPUVAR_TRACE_* macros", false},
      {"row-record-param", "interchange",
       "row-oriented RunRecord bulk interface in a core/telemetry "
       "header; the data plane is const RecordFrame&", true},
      {"string-format-in-hot-loop", "hotpath",
       "string formatting inside a loop on a GPUVAR_HOT path", false},
      {"unguarded-mutex", "thread",
       "Mutex member not named by any GPUVAR_GUARDED_BY/REQUIRES/"
       "ACQUIRE annotation in its file", false},
      {"unknown-module", "layering",
       "src/ directory not registered in the layer DAG", false},
      {"unknown-rule", "meta",
       "gpuvar-lint: allow() names a rule that does not exist", true},
      {"unordered-iteration", "determinism",
       "iteration over an unordered container where order can reach "
       "output", false},
      {"unused-include", "include",
       "direct include whose export closure contributes no referenced "
       "symbol", false},
      {"upward-include", "layering",
       "src/ module includes a higher-ranked module", false},
      {"wall-clock", "determinism",
       "wall-clock time in result-affecting code; clocks are injected",
       false},
  };
  return kRules;
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kIds = [] {
    std::set<std::string> ids;
    for (const auto& r : rules()) ids.insert(r.id);
    return ids;
  }();
  return kIds;
}

bool strict_rule(const std::string& rule) {
  static const std::set<std::string> kStrict = [] {
    std::set<std::string> ids;
    for (const auto& r : rules()) {
      if (r.strict) ids.insert(r.id);
    }
    return ids;
  }();
  return kStrict.count(rule) != 0;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message, a.symbol) <
                     std::tie(b.file, b.line, b.rule, b.message, b.symbol);
            });
}

void print_findings(const std::vector<Finding>& findings, std::ostream& out) {
  for (const auto& fd : findings) {
    out << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
        << fd.message << "\n";
  }
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_json(const std::vector<Finding>& findings,
                std::size_t files_scanned, std::ostream& out) {
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& fd = findings[i];
    out << (i ? "," : "") << "\n    {\"file\": \"" << json_escape(fd.file)
        << "\", \"line\": " << fd.line << ", \"rule\": \""
        << json_escape(fd.rule) << "\", \"message\": \""
        << json_escape(fd.message) << "\"";
    if (!fd.symbol.empty()) {
      out << ", \"symbol\": \"" << json_escape(fd.symbol) << "\"";
    }
    out << "}";
  }
  out << (findings.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_sarif(const std::vector<Finding>& findings, std::ostream& out) {
  // Rule index for SARIF's ruleIndex cross-references. rules() is
  // sorted by id, so indexes are stable across runs.
  std::map<std::string, std::size_t> rule_index;
  for (const auto& rule : rules()) {
    const std::size_t n = rule_index.size();
    rule_index[rule.id] = n;
  }
  out << "{\n"
         "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"gpuvar-analyzer\",\n"
         "          \"informationUri\": "
         "\"https://example.invalid/gpuvar-analyzer\",\n"
         "          \"rules\": [";
  bool first = true;
  for (const auto& rule : rules()) {
    out << (first ? "" : ",") << "\n            {\"id\": \""
        << json_escape(rule.id)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule.description)
        << "\"}, \"defaultConfiguration\": {\"level\": \"error\"}}";
    first = false;
  }
  out << "\n          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& fd = findings[i];
    const auto it = rule_index.find(fd.rule);
    out << (i ? "," : "") << "\n        {\"ruleId\": \""
        << json_escape(fd.rule) << "\"";
    if (it != rule_index.end()) {
      out << ", \"ruleIndex\": " << it->second;
    }
    out << ", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(fd.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(fd.file)
        << "\"}, \"region\": {\"startLine\": " << std::max(fd.line, 1)
        << "}}}]}";
  }
  out << (findings.empty() ? "" : "\n      ") << "]\n"
         "    }\n"
         "  ]\n"
         "}\n";
}

}  // namespace gpuvar::analyzer
