// Analysis pass: keeps the analysis plane on the unified signature.
//
//   analysis-signature   in a src/core *header*, an analyze_* function
//                        whose parameter list does not end in a
//                        `const <X>Options&` parameter, or one of the
//                        pre-redesign entry-point spellings
//                        (flag_anomalies, detect_performance_drift,
//                        compare_campaigns, impact_table,
//                        correlate_metrics). Every analysis entry point
//                        takes its tunables as one trailing options
//                        struct — analyze_*(source, options) — so call
//                        sites never grow positional parameter lists.
//                        Forwarding shims from the one-cycle
//                        deprecation window carry inline allow()s; when
//                        the cycle ends they are deleted and the rule
//                        joins the strict list (like row-record-param).
//
// Helper functions (correlate_pair, job_impact, estimate_run_noise_ms)
// are not entry points and are not matched: the rule targets the
// analyze_* surface plus the known legacy spellings.
#include <array>
#include <string>

#include "passes.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

namespace {

/// The pre-redesign entry-point names, finding-worthy by spelling alone
/// (their replacements are the analyze_* functions).
constexpr std::array<const char*, 5> kLegacyEntryPoints = {
    "flag_anomalies", "detect_performance_drift", "compare_campaigns",
    "impact_table", "correlate_metrics"};

bool legacy_entry_point(const std::string& name) {
  for (const char* legacy : kLegacyEntryPoints) {
    if (name == legacy) return true;
  }
  return false;
}

/// True when the parameter list spanning [open, close) — close just
/// past the ')' — ends in a `const <X>Options&` parameter. A default
/// argument after the type is fine; a pointer or by-value options
/// parameter is not.
bool ends_with_options_param(const std::string& code, std::size_t open,
                             std::size_t close) {
  // Find the start of the last top-level parameter segment.
  int depth = 0;
  std::size_t seg = open + 1;
  for (std::size_t i = open + 1; i + 1 < close; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}' || c == '>') {
      --depth;
    } else if (c == ',' && depth == 0) {
      seg = i + 1;
    }
  }
  std::string text = code.substr(seg, close - 1 - seg);
  const std::size_t eq = text.find('=');
  if (eq != std::string::npos) text.resize(eq);  // drop the default arg

  // The segment must tokenize as `const`, an identifier ending in
  // "Options", a '&', and at most a parameter name.
  std::vector<std::string> words;
  bool ref = false;
  std::string cur;
  for (const char c : text) {
    if (ident_char(c)) {
      cur += c;
      continue;
    }
    if (!cur.empty()) {
      words.push_back(cur);
      cur.clear();
    }
    if (c == '&') ref = true;
    if (c == '*') return false;
  }
  if (!cur.empty()) words.push_back(cur);
  if (!ref || words.size() < 2 || words.size() > 3 || words[0] != "const") {
    return false;
  }
  const std::string& type = words[1];
  const std::string suffix = "Options";
  return type.size() > suffix.size() &&
         type.compare(type.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

void run_analysis_pass(const Repo& repo, std::vector<Finding>& findings) {
  for (const auto& f : repo.files) {
    if (!f.in_src() || !f.header || f.module != "core") continue;
    for (const Token& t : f.tokens) {
      if (t.next != '(') continue;
      const bool unified = t.text.rfind("analyze_", 0) == 0;
      const bool legacy = legacy_entry_point(t.text);
      if (!unified && !legacy) continue;
      const std::size_t open = f.code.find('(', t.pos + t.text.size());
      if (open == std::string::npos) continue;
      const std::size_t close = matching_paren_end(f.code, open);
      if (close == std::string::npos) continue;
      if (legacy) {
        findings.push_back(
            {f.rel, t.line, "analysis-signature",
             "deprecated analysis entry point '" + t.text +
                 "': the unified surface is analyze_*(source, const "
                 "...Options&). Forwarding shims may keep the old "
                 "spelling for one deprecation cycle behind an inline "
                 "allow()",
             t.text});
      } else if (!ends_with_options_param(f.code, open, close)) {
        findings.push_back(
            {f.rel, t.line, "analysis-signature",
             "'" + t.text +
                 "' does not end in a const <X>Options& parameter: "
                 "analysis entry points share the analyze_*(source, "
                 "options) shape — one trailing options struct, never a "
                 "positional tunable list",
             t.text});
      }
    }
  }
}

}  // namespace gpuvar::analyzer
