#include "fix.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace gpuvar::analyzer {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      if (pos < text.size()) lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

/// Per-line plan for one file: 1-based original line -> replacement
/// lines (empty vector = delete, absent = keep) plus insertions keyed
/// by the original line they go before.
struct FilePlan {
  std::map<int, std::vector<std::string>> replace;
  std::map<int, std::vector<std::string>> insert_before;
};

std::vector<std::string> apply_plan(const std::vector<std::string>& old_lines,
                                    const FilePlan& plan) {
  std::vector<std::string> out;
  out.reserve(old_lines.size() + 8);
  for (int i = 1; i <= static_cast<int>(old_lines.size()) + 1; ++i) {
    const auto ins = plan.insert_before.find(i);
    if (ins != plan.insert_before.end()) {
      out.insert(out.end(), ins->second.begin(), ins->second.end());
    }
    if (i > static_cast<int>(old_lines.size())) break;
    const auto rep = plan.replace.find(i);
    if (rep != plan.replace.end()) {
      out.insert(out.end(), rep->second.begin(), rep->second.end());
    } else {
      out.push_back(old_lines[static_cast<std::size_t>(i - 1)]);
    }
  }
  return out;
}

/// Unified diff with 3 lines of context, built directly from the edit
/// plan (no LCS needed — we know exactly which lines changed).
std::string unified_diff(const std::string& rel,
                         const std::vector<std::string>& old_lines,
                         const FilePlan& plan) {
  // Collect changed original line numbers (for inserts: the line the
  // insertion precedes, clamped into range so context surrounds it).
  std::set<int> changed;
  for (const auto& [line, _] : plan.replace) changed.insert(line);
  for (const auto& [line, _] : plan.insert_before) {
    changed.insert(std::min(line, static_cast<int>(old_lines.size())));
  }
  if (changed.empty()) return "";

  // Merge into hunks: ranges of original lines, context included.
  const int n = static_cast<int>(old_lines.size());
  struct Hunk {
    int begin, end;  // inclusive original-line range
  };
  std::vector<Hunk> hunks;
  for (int line : changed) {
    const int b = std::max(1, line - 3);
    const int e = std::min(n, line + 3);
    if (!hunks.empty() && b <= hunks.back().end + 1) {
      hunks.back().end = std::max(hunks.back().end, e);
    } else {
      hunks.push_back({b, e});
    }
  }

  std::ostringstream out;
  out << "--- a/" << rel << "\n+++ b/" << rel << "\n";
  // New-file line number of the first line of each hunk: track the
  // cumulative delta of all edits before it.
  for (const auto& h : hunks) {
    int delta_before = 0;
    for (const auto& [line, repl] : plan.replace) {
      if (line < h.begin) {
        delta_before += static_cast<int>(repl.size()) - 1;
      }
    }
    for (const auto& [line, ins] : plan.insert_before) {
      if (line < h.begin) delta_before += static_cast<int>(ins.size());
    }
    std::vector<std::string> body;
    int old_count = 0, new_count = 0;
    for (int i = h.begin; i <= h.end; ++i) {
      const auto ins = plan.insert_before.find(i);
      if (ins != plan.insert_before.end()) {
        for (const auto& l : ins->second) {
          body.push_back("+" + l);
          ++new_count;
        }
      }
      const auto rep = plan.replace.find(i);
      if (rep != plan.replace.end()) {
        body.push_back("-" + old_lines[static_cast<std::size_t>(i - 1)]);
        ++old_count;
        for (const auto& l : rep->second) {
          body.push_back("+" + l);
          ++new_count;
        }
      } else {
        body.push_back(" " + old_lines[static_cast<std::size_t>(i - 1)]);
        ++old_count;
        ++new_count;
      }
    }
    // Insertions that land just past the hunk's last line.
    const auto tail = plan.insert_before.find(h.end + 1);
    if (tail != plan.insert_before.end() && h.end == n) {
      for (const auto& l : tail->second) {
        body.push_back("+" + l);
        ++new_count;
      }
    }
    out << "@@ -" << h.begin << "," << old_count << " +"
        << (h.begin + delta_before) << "," << new_count << " @@\n";
    for (const auto& l : body) out << l << "\n";
  }
  return out.str();
}

}  // namespace

FixOutcome apply_fixes(const std::filesystem::path& root,
                       const std::vector<FixEdit>& edits, bool dry_run) {
  FixOutcome outcome;

  std::map<std::string, std::vector<const FixEdit*>> by_file;
  for (const auto& e : edits) by_file[e.file].push_back(&e);

  for (const auto& [rel, file_edits] : by_file) {
    const std::filesystem::path path = root / rel;
    std::ifstream in(path);
    if (!in) {
      outcome.errors.push_back("cannot read " + rel);
      continue;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    in.close();
    const std::string raw = ss.str();
    const std::vector<std::string> old_lines = split_lines(raw);

    FilePlan plan;
    std::set<std::string> inserts;
    for (const FixEdit* e : file_edits) {
      switch (e->kind) {
        case FixEdit::Kind::kDeleteInclude:
          plan.replace[e->line] = {};
          ++outcome.deleted;
          break;
        case FixEdit::Kind::kReplaceWithFwd:
          plan.replace[e->line] = e->fwd_lines;
          ++outcome.forward_declared;
          break;
        case FixEdit::Kind::kInsertInclude:
          inserts.insert(e->include_text);
          break;
      }
    }

    if (!inserts.empty()) {
      // Anchor: after the last surviving quoted include line; if every
      // quoted include was deleted or replaced, reuse the first edited
      // include's position instead.
      int anchor = 0;  // 0 = none found yet
      for (int i = 1; i <= static_cast<int>(old_lines.size()); ++i) {
        const std::string& l = old_lines[static_cast<std::size_t>(i - 1)];
        const auto hash = l.find_first_not_of(" \t");
        if (hash == std::string::npos || l[hash] != '#') continue;
        if (l.find("include", hash) == std::string::npos) continue;
        if (l.find('"') == std::string::npos) continue;
        if (plan.replace.count(i)) continue;  // deleted or replaced
        anchor = i;
      }
      std::vector<std::string> lines;
      for (const auto& t : inserts) {
        lines.push_back("#include \"" + t + "\"");
        ++outcome.inserted;
      }
      if (anchor > 0) {
        plan.insert_before[anchor + 1] = std::move(lines);
      } else if (!plan.replace.empty()) {
        plan.insert_before[plan.replace.begin()->first] = std::move(lines);
      } else {
        // No include block at all: put the block at the top.
        plan.insert_before[1] = std::move(lines);
      }
    }

    outcome.diff += unified_diff(rel, old_lines, plan);
    ++outcome.files_changed;

    if (!dry_run) {
      const std::vector<std::string> new_lines = apply_plan(old_lines, plan);
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        outcome.errors.push_back("cannot write " + rel);
        continue;
      }
      for (const auto& l : new_lines) out << l << "\n";
    }
  }
  return outcome;
}

}  // namespace gpuvar::analyzer
