// Observability pass: keeps instrumentation on the macro/RAII surface.
//
//   raw-trace-api      a use of the trace layer's internals — the tokens
//                      current_lane, TraceSpan or trace_instant — in a
//                      src/ file outside the obs module. Instrumented
//                      code goes through GPUVAR_TRACE_SPAN /
//                      GPUVAR_TRACE_INSTANT / GPUVAR_TRACE_ADVANCE,
//                      which compile to a branch-on-null when no sink is
//                      installed; touching the internals directly skips
//                      that fast path and couples call sites to the
//                      sink's lane machinery. The installation surface
//                      (TraceSink, ScopedTrace, LaneScope, the
//                      exporters) is fine anywhere — hosts must own
//                      sink lifetime.
#include "passes.hpp"
#include "core.hpp"

namespace gpuvar::analyzer {

void run_obs_pass(const Repo& repo, std::vector<Finding>& findings) {
  static const char* const kRawTokens[] = {"current_lane", "TraceSpan",
                                           "trace_instant"};
  for (const auto& f : repo.files) {
    if (!f.in_src() || f.module == "obs") continue;
    for (const auto& t : f.tokens) {
      for (const char* raw : kRawTokens) {
        if (t.text != raw) continue;
        findings.push_back(
            {f.rel, t.line, "raw-trace-api",
             "'" + t.text +
                 "' is a trace-layer internal: instrument with the "
                 "GPUVAR_TRACE_* macros (branch-on-null fast path), and "
                 "install sinks via obs::ScopedTrace / obs::LaneScope"});
      }
    }
  }
}

}  // namespace gpuvar::analyzer
