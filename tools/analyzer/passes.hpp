// The analyzer's pluggable passes. Each pass walks the preprocessed
// Repo and appends findings; suppressions are applied centrally
// afterwards (core.hpp), so passes report everything they see.
#pragma once

#include <ostream>
#include <vector>

#include "core.hpp"

namespace gpuvar::analyzer {

/// PR 1 conventions: raw-double-quantity, raw-rng, cout-in-library,
/// bare-assert, pragma-once.
void run_style_pass(const Repo& repo, std::vector<Finding>& findings);

/// Include-graph layering over src/**: upward-include, include-cycle,
/// unknown-module. The layer DAG (rank grows upward, same-rank groups
/// may depend one-way on each other but never cyclically):
///   common(0) -> stats(1) -> {gpu, thermal, hostbench}(2)
///     -> telemetry(3) -> {cluster, workloads}(4) -> core(5)
/// Files directly under src/ (the gpuvar.hpp umbrella) sit above core.
void run_layering_pass(const Repo& repo, std::vector<Finding>& findings);

/// Thread-safety annotation coverage: raw-std-mutex (use gpuvar::Mutex
/// so clang -Wthread-safety sees a capability), unguarded-mutex (every
/// mutex member must be named by at least one GPUVAR_GUARDED_BY /
/// GPUVAR_REQUIRES / GPUVAR_ACQUIRE... annotation in the same file).
void run_thread_pass(const Repo& repo, std::vector<Finding>& findings);

/// Determinism hygiene: unordered-iteration, parallel-accum,
/// float-sort-key, locale-format, wall-clock.
void run_determinism_pass(const Repo& repo, std::vector<Finding>& findings);

/// Columnar interchange: row-record-param (no std::vector<RunRecord> /
/// std::span<const RunRecord> bulk interfaces in core/telemetry headers
/// — the data plane is const RecordFrame&). Strict: with the
/// deprecation-cycle adapters deleted, this rule is no longer
/// suppressible (core.cpp apply_suppressions keeps it on a strict list).
void run_interchange_pass(const Repo& repo, std::vector<Finding>& findings);

/// Observability surface: raw-trace-api (trace-layer internals —
/// current_lane, TraceSpan, trace_instant — stay inside src/obs;
/// instrumented code uses the GPUVAR_TRACE_* macros and installs sinks
/// via obs::ScopedTrace / obs::LaneScope).
void run_obs_pass(const Repo& repo, std::vector<Finding>& findings);

/// DOT dump of the module-level include graph (for DESIGN.md).
void write_layering_dot(const Repo& repo, std::ostream& out);

struct PassInfo {
  const char* name;
  void (*run)(const Repo&, std::vector<Finding>&);
};

/// All passes, in the order a full run executes them.
const std::vector<PassInfo>& all_passes();

}  // namespace gpuvar::analyzer
