// The analyzer's pluggable passes, in two tiers.
//
// File-local passes (style, thread, determinism, interchange, obs)
// are pure functions of one file: the driver runs them on a
// single-file Repo during the parallel scan and caches their findings
// with the file's summary.
//
// Tree passes (layering, include hygiene, dead code) need the whole
// tree — the include graph or the cross-TU symbol index — so they run
// on the ordered FileSummary list every invocation, cache or not.
//
// Suppressions are applied centrally afterwards (driver.hpp), so
// passes report everything they see.
#pragma once

#include <ostream>
#include <vector>

#include "core.hpp"
#include "fix.hpp"
namespace gpuvar::analyzer { struct SymbolIndex; struct Tree; struct FlowGraph; }  // was: #include "index.hpp"

namespace gpuvar::analyzer {

/// PR 1 conventions: raw-double-quantity, raw-rng, cout-in-library,
/// bare-assert, pragma-once.
void run_style_pass(const Repo& repo, std::vector<Finding>& findings);

/// Thread-safety annotation coverage: raw-std-mutex (use gpuvar::Mutex
/// so clang -Wthread-safety sees a capability), unguarded-mutex (every
/// mutex member must be named by at least one GPUVAR_GUARDED_BY /
/// GPUVAR_REQUIRES / GPUVAR_ACQUIRE... annotation in the same file).
void run_thread_pass(const Repo& repo, std::vector<Finding>& findings);

/// Determinism hygiene: unordered-iteration, parallel-accum,
/// float-sort-key, locale-format, wall-clock.
void run_determinism_pass(const Repo& repo, std::vector<Finding>& findings);

/// Columnar interchange: row-record-param (no std::vector<RunRecord> /
/// std::span<const RunRecord> bulk interfaces in core/telemetry headers
/// — the data plane is const RecordFrame&). Strict: with the
/// deprecation-cycle adapters deleted, this rule is no longer
/// suppressible (core.cpp strict_rule keeps it on the strict list).
void run_interchange_pass(const Repo& repo, std::vector<Finding>& findings);

/// Reduction hygiene (src/core, src/query): raw-loop-reduction — a
/// serial `+=` fold over a double range, or a <numeric> reduction
/// algorithm, outside the kernel layer; stats/kernels.hpp owns the
/// SIMD dispatch and the pinned lane order these bypass.
void run_reduction_pass(const Repo& repo, std::vector<Finding>& findings);

/// Observability surface: raw-trace-api (trace-layer internals —
/// current_lane, TraceSpan, trace_instant — stay inside src/obs;
/// instrumented code uses the GPUVAR_TRACE_* macros and installs sinks
/// via obs::ScopedTrace / obs::LaneScope).
void run_obs_pass(const Repo& repo, std::vector<Finding>& findings);

/// Include-graph layering over src/**: upward-include, include-cycle,
/// unknown-module. The layer DAG (rank grows upward, same-rank groups
/// may depend one-way on each other but never cyclically):
///   common(0) -> stats/obs(1) -> {gpu, thermal, hostbench}(2)
///     -> telemetry(3) -> {cluster, workloads, query}(4) -> core(5)
/// Files directly under src/ (the gpuvar.hpp umbrella) sit above core.
void run_layering_pass(const Tree& tree, std::vector<Finding>& findings);

/// Include hygiene over the cross-TU symbol index: unused-include (a
/// direct include whose export closure contributes no referenced
/// symbol), missing-direct-include (a used symbol reached only
/// transitively), forward-declarable (a header consumer that uses a
/// type only by pointer/reference). When `edits` is non-null, emits
/// one mechanical FixEdit per finding for --fix.
void run_include_pass(const Tree& tree, const SymbolIndex& index,
                      std::vector<Finding>& findings,
                      std::vector<FixEdit>* edits);

/// Dead code over src/ headers: a namespace-scope symbol declared in a
/// src/ header that no file outside the header and its associated
/// .cpp references. The public surface (src/gpuvar.hpp re-exports meant
/// for downstream users) is allowlisted in pass_deadcode.cpp.
void run_deadcode_pass(const Tree& tree, const SymbolIndex& index,
                       std::vector<Finding>& findings);

/// Lock discipline over the flow call graph (src/ only): lock-cycle
/// (two locks acquired in opposite orders on different paths — the
/// per-function held_before sets plus transitive acquired sets of
/// callees yield the pairwise order relation) and lock-held-across-wait
/// (a call made with a lock held whose callee is — or transitively
/// reaches — ThreadPool::submit/wait_idle/parallel_for).
void run_lockorder_pass(const Tree& tree, const FlowGraph& graph,
                        std::vector<Finding>& findings);

/// Hot-path hygiene (src/ only): the closure of GPUVAR_HOT functions
/// over resolved call edges must not allocate in loops
/// (alloc-in-hot-loop — directly or by calling an allocating helper
/// from a loop), take locks (lock-in-hot-path), do stream/stdio IO
/// (io-in-hot-path), or format strings in loops
/// (string-format-in-hot-loop).
void run_hotpath_pass(const Tree& tree, const FlowGraph& graph,
                      std::vector<Finding>& findings);

/// Analysis-plane surface: analysis-signature (in src/core headers,
/// analyze_* entry points must end in a `const <X>Options&` parameter,
/// and the pre-redesign entry-point spellings are findings by name —
/// forwarding shims survive one deprecation cycle behind inline
/// allow()s).
void run_analysis_pass(const Repo& repo, std::vector<Finding>& findings);

/// Intraprocedural span/string_view lifetime (src/ only, file-local —
/// runs during the scan and caches like any file-local pass):
/// dangling-span on returning a view bound to an owning local,
/// by-value owner parameter, or temporary, and on storing a view
/// parameter into a member (`name_ = p`, ctor-init `name_(p)`).
void run_lifetime_pass(const Repo& repo, std::vector<Finding>& findings);

/// DOT dump of the module-level include graph (for DESIGN.md). Nodes
/// and edges are emitted from explicitly sorted vectors so the output
/// is stable byte-for-byte across platforms and thread counts.
void write_layering_dot(const Tree& tree, std::ostream& out);

}  // namespace gpuvar::analyzer
