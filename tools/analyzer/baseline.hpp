// The findings ratchet: a checked-in baseline of finding fingerprints
// that may only shrink.
//
// A fingerprint is (rule, file, symbol) with an occurrence count —
// deliberately line-independent, so moving code around a file neither
// masks a new finding nor invents one. With --baseline:
//
//   * a finding whose fingerprint is not in the baseline (or whose
//     count grew) FAILS the run — new debt is rejected at the door;
//   * a baseline entry no longer matched (or matched fewer times)
//     auto-shrinks the file in place — burning debt down is recorded
//     by the same commit that fixes it, and CI (tools/ci.sh) fails on
//     a dirty baseline, enforcing monotone non-growth.
//
// An absent baseline file reads as empty: the tree is expected clean.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core.hpp"

namespace gpuvar::analyzer {

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string symbol;
  int count = 0;
};

/// Entries sorted by (rule, file, symbol) — the on-disk order.
struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Collapses findings into sorted fingerprint counts.
Baseline baseline_from_findings(const std::vector<Finding>& findings);

/// Loads `path`. A missing file is an empty baseline (returns true);
/// a malformed file returns false.
bool load_baseline(const std::filesystem::path& path, Baseline& out);

/// Writes the canonical JSON form (one fingerprint object per line).
bool write_baseline(const std::filesystem::path& path, const Baseline& b);

struct RatchetResult {
  /// Fingerprints present now but absent from (or larger than) the
  /// baseline, with the excess count. Non-empty => the run fails.
  std::vector<BaselineEntry> grown;
  /// True when some baseline entry is no longer fully matched — the
  /// file should be rewritten with `current`.
  bool shrunk = false;
  /// The fingerprints of the current findings.
  Baseline current;
};

RatchetResult ratchet(const Baseline& baseline,
                      const std::vector<Finding>& findings);

}  // namespace gpuvar::analyzer
