// gpuvar-analyzer — the repo's multi-pass static analysis tool.
//
// Grown from PR 1's gpuvar_lint: the same token-level scanning core now
// feeds eight passes (style, layering, thread-safety, determinism,
// interchange, observability, include hygiene, dead code; see
// passes.hpp for the rule catalogue) through a parallel, cached scan
// driver (driver.hpp), with inline suppressions, JSON / SARIF output,
// a DOT dump of the module layering graph, and a --fix mode that
// rewrites include blocks in place.
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "driver.hpp"
#include "passes.hpp"
#include "core.hpp"
#include "fix.hpp"
#include "index.hpp"

namespace gpuvar::analyzer {

namespace {

std::vector<std::string> split_rules(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    if (!rule.empty()) out.push_back(rule);
  }
  return out;
}

/// Fixture contract: the multiset of fired rules equals the expected
/// list — every expected rule fires exactly as often as listed, and no
/// unexpected rule fires at all (a decoy tripping a rule, or literal
/// stripping regressing, fails the self-test).
int check_expectations(const std::vector<Finding>& findings,
                       const std::vector<std::string>& expected) {
  print_findings(findings, std::cout);
  std::map<std::string, int> want, got;
  for (const auto& r : expected) ++want[r];
  for (const auto& fd : findings) ++got[fd.rule];
  int failures = 0;
  for (const auto& [rule, n] : want) {
    if (got[rule] != n) {
      std::cerr << "expected rule '" << rule << "' to fire " << n
                << "x, fired " << got[rule] << "x\n";
      ++failures;
    }
  }
  for (const auto& [rule, n] : got) {
    if (!want.count(rule)) {
      std::cerr << "unexpected rule fired " << n << "x: '" << rule
                << "' (decoy tripped?)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "fixture OK: " << findings.size()
              << " finding(s), all expected\n";
  }
  return failures == 0 ? 0 : 1;
}

int run_fixture(const std::string& file, const std::string& expect) {
  // Lint the fixture as a file of src/core: every src rule applies,
  // including the module-scoped ones (float-sort-key).
  const std::string rel =
      "src/core/" + std::filesystem::path(file).filename().string();
  Tree tree;
  tree.root = std::filesystem::path(file).parent_path();
  tree.files.emplace_back();
  if (!scan_file(file, rel, tree.files.back())) {
    std::cerr << "cannot read fixture: " << file << "\n";
    return 2;
  }
  resolve_includes(tree);
  AnalysisResult result = analyze_tree(tree);
  // dead-symbol is a cross-TU property: on a one-file tree every
  // declaration is vacuously unreferenced, so the rule is dropped here
  // instead of polluting every single-file fixture's expectations.
  std::erase_if(result.findings,
                [](const Finding& fd) { return fd.rule == "dead-symbol"; });
  return check_expectations(result.findings, split_rules(expect));
}

int run_fixture_tree(const std::string& dir, const std::string& expect) {
  ScanOptions opts;
  opts.threads = 1;
  const Tree tree = scan_tree(dir, opts, nullptr);
  if (tree.files.empty()) {
    std::cerr << "no source files under fixture tree: " << dir << "\n";
    return 2;
  }
  const AnalysisResult result = analyze_tree(tree);
  return check_expectations(result.findings, split_rules(expect));
}

struct TreeOptions {
  std::string root;
  std::string json_file, sarif_file, dot_file;
  ScanOptions scan;
  bool fix = false;
  bool dry_run = false;
  bool stats = false;
};

int run_tree(const TreeOptions& opts) {
  ScanStats stats;
  const Tree tree = scan_tree(opts.root, opts.scan, &stats);
  if (tree.files.empty()) {
    std::cerr << "gpuvar-analyzer: no source files under '" << opts.root
              << "' — wrong repo root?\n";
    return 2;
  }
  AnalysisResult result = analyze_tree(tree);

  if (opts.stats) {
    std::cout << "stats: files=" << stats.files
              << " scanned=" << stats.scanned
              << " cache_hits=" << stats.cache_hits << "\n";
  }
  if (!opts.dot_file.empty()) {
    std::ofstream out(opts.dot_file);
    if (!out) {
      std::cerr << "cannot write " << opts.dot_file << "\n";
      return 2;
    }
    write_layering_dot(tree, out);
  }
  if (!opts.json_file.empty()) {
    std::ofstream out(opts.json_file);
    if (!out) {
      std::cerr << "cannot write " << opts.json_file << "\n";
      return 2;
    }
    write_json(result.findings, tree.files.size(), out);
  }
  if (!opts.sarif_file.empty()) {
    std::ofstream out(opts.sarif_file);
    if (!out) {
      std::cerr << "cannot write " << opts.sarif_file << "\n";
      return 2;
    }
    write_sarif(result.findings, out);
  }

  if (opts.fix) {
    const FixOutcome outcome =
        apply_fixes(opts.root, result.edits, opts.dry_run);
    if (opts.dry_run) {
      std::cout << outcome.diff;
    }
    std::cerr << "fix: " << outcome.files_changed << " file(s), "
              << outcome.deleted << " include(s) deleted, "
              << outcome.inserted << " inserted, "
              << outcome.forward_declared << " forward-declared"
              << (opts.dry_run ? " (dry run, nothing written)" : "")
              << "\n";
    for (const auto& e : outcome.errors) std::cerr << "fix: " << e << "\n";
    // Exit code reflects what --fix could NOT fix: findings with no
    // mechanical edit still need a human.
    std::set<std::tuple<std::string, int, std::string>> fixed;
    for (const auto& e : result.edits) fixed.insert({e.file, e.line, e.rule});
    std::vector<Finding> remaining;
    for (auto& fd : result.findings) {
      if (!fixed.count({fd.file, fd.line, fd.rule})) {
        remaining.push_back(std::move(fd));
      }
    }
    print_findings(remaining, std::cerr);
    if (!outcome.errors.empty()) return 2;
    return remaining.empty() ? 0 : 1;
  }

  print_findings(result.findings, std::cerr);
  if (!result.findings.empty()) {
    std::cerr << result.findings.size() << " finding(s) in "
              << tree.files.size() << " files\n";
    return 1;
  }
  std::cout << "gpuvar-analyzer: " << tree.files.size() << " files clean ("
            << pass_names().size() << " passes)\n";
  return 0;
}

int usage(bool full) {
  std::ostream& out = full ? std::cout : std::cerr;
  out << "usage:\n"
         "  gpuvar-analyzer <repo_root> [options]\n"
         "  gpuvar-analyzer --fixture FILE --expect rule,rule,...\n"
         "  gpuvar-analyzer --fixture-tree DIR --expect rule,rule,...\n"
         "  gpuvar-analyzer --list-rules\n"
         "  gpuvar-analyzer --help\n";
  if (full) {
    out << "\n"
           "tree options:\n"
           "  --json FILE    write findings as JSON\n"
           "  --sarif FILE   write findings as SARIF 2.1.0\n"
           "  --dot FILE     write the module layering graph as DOT\n"
           "  --cache FILE   on-disk scan cache; a warm run rescans\n"
           "                 only files whose size or mtime changed\n"
           "  --threads N    scan worker threads (0 = hardware)\n"
           "  --fix          rewrite include blocks in place: delete\n"
           "                 unused includes, insert missing direct\n"
           "                 includes (sorted), replace forward-\n"
           "                 declarable includes with declarations\n"
           "  --dry-run      with --fix: print a unified diff, write\n"
           "                 nothing\n"
           "  --stats        print files/scanned/cache-hit counts\n"
           "\n"
           "exit codes:\n"
           "  0  clean (with --fix: every finding had a mechanical fix)\n"
           "  1  findings (with --fix: findings remain that need a\n"
           "     human)\n"
           "  2  bad usage, unreadable/unwritable file, or an empty\n"
           "     tree (a typo'd CI path must not read as clean)\n"
           "\n"
           "passes: ";
    for (std::size_t i = 0; i < pass_names().size(); ++i) {
      out << (i ? ", " : "") << pass_names()[i];
    }
    out << "\nsuppression: // gpuvar-lint: allow(bare-assert) or\n"
           "  allow(bare-assert,wall-clock) on the finding line or the\n"
           "  line above; unknown names are themselves findings\n";
  }
  return full ? 0 : 2;
}

}  // namespace

}  // namespace gpuvar::analyzer

int main(int argc, char** argv) {
  using namespace gpuvar::analyzer;
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0] == "--help") return usage(true);
  if (args.size() == 1 && args[0] == "--list-rules") {
    for (const auto& rule : known_rules()) std::cout << rule << "\n";
    return 0;
  }
  if (args.size() == 4 && args[0] == "--fixture" && args[2] == "--expect") {
    return run_fixture(args[1], args[3]);
  }
  if (args.size() == 4 && args[0] == "--fixture-tree" &&
      args[2] == "--expect") {
    return run_fixture_tree(args[1], args[3]);
  }
  if (args.empty() || args[0].rfind("--", 0) == 0) return usage(false);

  TreeOptions opts;
  opts.root = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    if (a == "--json" && has_value) {
      opts.json_file = args[++i];
    } else if (a == "--sarif" && has_value) {
      opts.sarif_file = args[++i];
    } else if (a == "--dot" && has_value) {
      opts.dot_file = args[++i];
    } else if (a == "--cache" && has_value) {
      opts.scan.cache_path = args[++i];
    } else if (a == "--threads" && has_value) {
      opts.scan.threads = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (a == "--fix") {
      opts.fix = true;
    } else if (a == "--dry-run") {
      opts.dry_run = true;
    } else if (a == "--stats") {
      opts.stats = true;
    } else {
      return usage(false);
    }
  }
  if (opts.dry_run && !opts.fix) return usage(false);
  return run_tree(opts);
}
