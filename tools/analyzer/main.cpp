// gpuvar-analyzer — the repo's multi-pass static analysis tool.
//
// Grown from PR 1's gpuvar_lint: the same token-level scanning core now
// feeds six passes (style, layering, thread-safety, determinism,
// interchange, observability; see passes.hpp for the rule catalogue)
// with inline suppressions, JSON output, and a DOT dump of the module
// layering graph.
//
// Usage:
//   gpuvar-analyzer <repo_root> [--json FILE] [--dot FILE]
//       Analyze the tree. Exit 0 clean, 1 on findings, 2 on bad usage
//       or an empty tree (a typo'd CI path must not read as clean).
//   gpuvar-analyzer --fixture FILE --expect r1,r2,...
//       Self-test: analyze one file as if it were a src/core file; the
//       findings' rules must match the expected list exactly (each
//       listed rule fires exactly once, nothing else fires). Decoy
//       violations inside comments/strings prove literal stripping.
//   gpuvar-analyzer --fixture-tree DIR --expect r1,r2,...
//       Same, for a whole mini-repo (layering rules need a tree).
//   gpuvar-analyzer --list-rules
//       Print the rule registry (the authority for allow() names).
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "core.hpp"
#include "passes.hpp"

namespace gpuvar::analyzer {

const std::vector<PassInfo>& all_passes() {
  static const std::vector<PassInfo> kPasses = {
      {"style", run_style_pass},
      {"layering", run_layering_pass},
      {"thread", run_thread_pass},
      {"determinism", run_determinism_pass},
      {"interchange", run_interchange_pass},
      {"obs", run_obs_pass},
  };
  return kPasses;
}

namespace {

std::vector<Finding> analyze(const Repo& repo) {
  std::vector<Finding> findings;
  for (const auto& pass : all_passes()) pass.run(repo, findings);
  for (const auto& f : repo.files) check_suppression_names(f, findings);
  return apply_suppressions(repo, findings);
}

std::vector<std::string> split_rules(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    if (!rule.empty()) out.push_back(rule);
  }
  return out;
}

/// Fixture contract: the multiset of fired rules equals the expected
/// list — every expected rule fires exactly as often as listed, and no
/// unexpected rule fires at all (a decoy tripping a rule, or literal
/// stripping regressing, fails the self-test).
int check_expectations(const std::vector<Finding>& findings,
                       const std::vector<std::string>& expected) {
  print_findings(findings, std::cout);
  std::map<std::string, int> want, got;
  for (const auto& r : expected) ++want[r];
  for (const auto& fd : findings) ++got[fd.rule];
  int failures = 0;
  for (const auto& [rule, n] : want) {
    if (got[rule] != n) {
      std::cerr << "expected rule '" << rule << "' to fire " << n
                << "x, fired " << got[rule] << "x\n";
      ++failures;
    }
  }
  for (const auto& [rule, n] : got) {
    if (!want.count(rule)) {
      std::cerr << "unexpected rule fired " << n << "x: '" << rule
                << "' (decoy tripped?)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "fixture OK: " << findings.size()
              << " finding(s), all expected\n";
  }
  return failures == 0 ? 0 : 1;
}

int run_fixture(const std::string& file, const std::string& expect) {
  SourceFile f;
  // Lint the fixture as a file of src/core: every src rule applies,
  // including the module-scoped ones (float-sort-key).
  const std::string rel =
      "src/core/" + std::filesystem::path(file).filename().string();
  if (!load_source_file(file, rel, f)) {
    std::cerr << "cannot read fixture: " << file << "\n";
    return 2;
  }
  Repo repo;
  repo.root = std::filesystem::path(file).parent_path();
  repo.files.push_back(std::move(f));
  return check_expectations(analyze(repo), split_rules(expect));
}

int run_fixture_tree(const std::string& dir, const std::string& expect) {
  const Repo repo = load_repo(dir);
  if (repo.files.empty()) {
    std::cerr << "no source files under fixture tree: " << dir << "\n";
    return 2;
  }
  return check_expectations(analyze(repo), split_rules(expect));
}

int run_tree(const std::string& root, const std::string& json_file,
             const std::string& dot_file) {
  const Repo repo = load_repo(root);
  if (repo.files.empty()) {
    std::cerr << "gpuvar-analyzer: no source files under '" << root
              << "' — wrong repo root?\n";
    return 2;
  }
  const auto findings = analyze(repo);

  if (!dot_file.empty()) {
    std::ofstream out(dot_file);
    if (!out) {
      std::cerr << "cannot write " << dot_file << "\n";
      return 2;
    }
    write_layering_dot(repo, out);
  }
  if (!json_file.empty()) {
    std::ofstream out(json_file);
    if (!out) {
      std::cerr << "cannot write " << json_file << "\n";
      return 2;
    }
    write_json(findings, repo.files.size(), out);
  }

  print_findings(findings, std::cerr);
  if (!findings.empty()) {
    std::cerr << findings.size() << " finding(s) in " << repo.files.size()
              << " files\n";
    return 1;
  }
  std::cout << "gpuvar-analyzer: " << repo.files.size() << " files clean ("
            << all_passes().size() << " passes)\n";
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  gpuvar-analyzer <repo_root> [--json FILE] [--dot FILE]\n"
         "  gpuvar-analyzer --fixture FILE --expect rule,rule,...\n"
         "  gpuvar-analyzer --fixture-tree DIR --expect rule,rule,...\n"
         "  gpuvar-analyzer --list-rules\n";
  return 2;
}

}  // namespace

}  // namespace gpuvar::analyzer

int main(int argc, char** argv) {
  using namespace gpuvar::analyzer;
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0] == "--list-rules") {
    for (const auto& rule : known_rules()) std::cout << rule << "\n";
    return 0;
  }
  if (args.size() == 4 && args[0] == "--fixture" && args[2] == "--expect") {
    return run_fixture(args[1], args[3]);
  }
  if (args.size() == 4 && args[0] == "--fixture-tree" &&
      args[2] == "--expect") {
    return run_fixture_tree(args[1], args[3]);
  }
  if (args.empty() || args[0].rfind("--", 0) == 0) return usage();
  std::string root = args[0], json_file, dot_file;
  for (std::size_t i = 1; i < args.size(); i += 2) {
    if (i + 1 >= args.size()) return usage();
    if (args[i] == "--json") {
      json_file = args[i + 1];
    } else if (args[i] == "--dot") {
      dot_file = args[i + 1];
    } else {
      return usage();
    }
  }
  return run_tree(root, json_file, dot_file);
}
