// Cross-TU symbol index: per-file declared/referenced symbol tables
// extracted from the token scanner, merged tree-wide.
//
// The scanner stays deliberately AST-free (see core.hpp): declarations
// are recognized from the token stream at namespace scope only — class/
// struct/enum definitions, `using` aliases, free functions, namespace-
// scope constants, and `#define` macros. That set is precise enough for
// the two passes built on top of it:
//
//   * include-hygiene — "file A uses header H" means A's identifier
//     tokens intersect the names H provides (directly, or re-exported
//     through `// IWYU pragma: export` includes, the gpuvar.hpp
//     umbrella pattern). Unused direct includes, symbols reached only
//     transitively, and includes needed only for a type used by
//     pointer/reference all fall out of that one relation.
//   * dead-code — a namespace-scope symbol declared in a src/ header
//     that no other TU references (its own defining .cpp excepted) is
//     dead weight on every rebuild.
//
// Over-collection is safe where it is conservative (an extra provided
// name can only keep an include alive), and the scanner refuses to
// guess where a wrong guess would delete working code: headers that
// declare operators (ADL, user-defined literals) are opaque to
// unused-include, and only plain class/struct types qualify for
// forward-declaration advice.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core.hpp"
#include "flow.hpp"

namespace gpuvar::analyzer {

/// One namespace-scope declaration found in a header.
///
/// Kinds: 's' struct, 'c' class, 'T' template class/struct, 'e' enum,
/// 'g' enum member (parent = the enum's name), 'a' using-alias,
/// 'f' function, 'v' namespace-scope variable/constant, 'm' macro,
/// 'd' forward declaration.
struct Symbol {
  std::string name;
  std::string ns;      ///< enclosing namespace path, e.g. "gpuvar::stats"
  std::string parent;  ///< for 'g': the enum this member belongs to
  char kind = 'f';
  int line = 0;
};

/// One quoted #include directive with its IWYU pragma marks.
struct IncludeDirective {
  int line = 0;
  std::string target;    ///< path between the quotes, as written
  bool keep = false;     ///< line carries `IWYU pragma: keep`
  bool exported = false; ///< line carries `IWYU pragma: export`
  /// Repo-relative path of the included file when it is part of this
  /// tree, "" otherwise. Not cached: resolution depends on which files
  /// exist, so resolve_includes() recomputes it every run.
  std::string resolved;
};

/// Everything the tree-level passes need from one file, small enough to
/// serialize into the on-disk scan cache (core.hpp). SourceFile carries
/// the heavyweight token stream; a FileSummary outlives it.
struct FileSummary {
  std::string rel;     ///< root-relative, '/'-separated
  std::string top;     ///< first path component (src, tests, ...)
  std::string module;  ///< src layer dir, "" elsewhere
  bool header = false;
  std::vector<IncludeDirective> includes;
  /// line -> rules suppressed there by a gpuvar-lint allow comment.
  std::map<int, std::set<std::string>> allows;
  /// Namespace-scope declarations (headers only; empty for .cpp files).
  std::vector<Symbol> declared;
  /// Sorted unique identifier tokens appearing anywhere in the file.
  std::vector<std::string> refs;
  /// Occurrence count for refs[i] (member-access tokens excluded), so
  /// the dead-code pass can tell a lone declaration (count == declared
  /// sites) from a name its own header actually uses.
  std::vector<int> ref_counts;
  /// Subset of refs whose every occurrence is followed by '&' or '*'
  /// (declarator-only use: a candidate for a forward declaration).
  std::vector<std::string> ptr_ref_only;
  /// True when the file declares any `operator` at namespace scope
  /// (ADL operators, user-defined literals): its consumers can use it
  /// without naming any symbol, so unused-include must not fire.
  bool declares_operator = false;
  /// Findings from the file-local passes, before suppressions.
  std::vector<Finding> local_findings;
  /// Function definitions with flow events (scan_flow), serialized
  /// into the scan cache; input to the tree-level flow passes.
  std::vector<FlowFunction> functions;

  bool in_src() const { return top == "src"; }
};

/// The scanned tree: one summary per file, sorted by rel path.
struct Tree {
  std::filesystem::path root;
  std::vector<FileSummary> files;
};

/// Extracts declared symbols, refs, and ptr/ref-only names from one
/// preprocessed file into `out` (which must already carry rel/top/
/// module/header from load_source_file).
void scan_symbols(const SourceFile& f, FileSummary& out);

/// Fills IncludeDirective::resolved for every file: targets with a
/// directory component resolve against src/, bare names against the
/// including file's directory and then src/ (the gpuvar.hpp umbrella).
void resolve_includes(Tree& tree);

/// True when `inc` is `file`'s associated header (same directory, same
/// stem: gpu/dvfs.cpp <-> gpu/dvfs.hpp). Associated headers are always
/// kept: the .cpp defines what they declare.
bool is_associated_header(const std::string& file_rel,
                          const std::string& include_rel);

/// The tree-wide symbol index the include-hygiene and dead-code passes
/// query. Build once per run after resolve_includes().
struct SymbolIndex {
  /// header rel -> names it declares directly (all kinds, enum members
  /// and forward declarations included).
  std::map<std::string, std::set<std::string>> provides;
  /// header rel -> provides plus everything re-exported through
  /// `IWYU pragma: export` includes, transitively.
  std::map<std::string, std::set<std::string>> provides_exported;
  /// header rel -> true when the export closure declares any operator.
  std::map<std::string, bool> opaque;
  /// header rel -> every repo file reachable through its includes
  /// (transitively, itself included).
  std::map<std::string, std::set<std::string>> reachable;
  /// symbol name -> headers declaring it.
  std::map<std::string, std::set<std::string>> declaring_headers;
  /// rel -> summary, for passes that need to look a file up.
  std::map<std::string, const FileSummary*> by_rel;
};

SymbolIndex build_index(const Tree& tree);

}  // namespace gpuvar::analyzer
