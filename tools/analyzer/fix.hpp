// --fix engine: rewrites include blocks in place from the include-
// hygiene pass's edit list — delete unused includes, insert missing
// direct includes in sorted order, replace forward-declarable includes
// with namespace-scoped forward declarations. `--fix --dry-run` emits a
// unified diff instead of writing.
#pragma once

#include <filesystem>
#include <string>
#include <vector>


namespace gpuvar::analyzer {

/// One mechanical edit proposed by the include-hygiene pass. Each edit
/// mirrors a finding (same file/line/rule), so suppressed findings can
/// be filtered out of the edit list before applying.
struct FixEdit {
  enum class Kind { kDeleteInclude, kInsertInclude, kReplaceWithFwd };
  Kind kind = Kind::kDeleteInclude;
  std::string file;  ///< repo-relative path of the file to edit
  int line = 0;      ///< finding line (delete/replace: the include line)
  std::string rule;  ///< rule of the originating finding
  std::string include_text;  ///< for insert: path to write between quotes
  std::vector<std::string> fwd_lines;  ///< for replace: the fwd-decl lines
};

struct FixOutcome {
  int files_changed = 0;
  int deleted = 0;
  int inserted = 0;
  int forward_declared = 0;
  std::string diff;  ///< unified diff of every change (a/ b/ prefixes)
  std::vector<std::string> errors;
};

/// Applies the edits to the files under `root` (or only computes the
/// diff when `dry_run`). Edits are grouped per file; insertions land
/// after the last surviving quoted project include, sorted among
/// themselves.
FixOutcome apply_fixes(const std::filesystem::path& root,
                       const std::vector<FixEdit>& edits, bool dry_run);

}  // namespace gpuvar::analyzer
