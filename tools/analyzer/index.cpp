#include "index.hpp"
#include "core.hpp"

#include <algorithm>
#include <cctype>
#include <functional>

namespace gpuvar::analyzer {

namespace {

bool space_char(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/// True for MACRO_LIKE names: all caps/digits/underscores with at least
/// one letter. Used to step over annotation macros in declarations,
/// e.g. `class GPUVAR_CAPABILITY("mutex") Mutex`.
bool macro_like(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

/// The declaration scanner: a scope-tracking walk over the stripped
/// code that records namespace-scope declarations. It never guesses
/// below namespace scope — members, locals, and parameters are
/// invisible by design (a member name in the index would alias every
/// `.size()` call in the tree).
class DeclScanner {
 public:
  DeclScanner(const SourceFile& f, FileSummary& out) : f_(f), out_(out) {}

  void run() {
    const std::string& code = f_.code;
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (c == '\n') {
        ++line_;
        ++i;
        continue;
      }
      if (space_char(c)) {
        ++i;
        continue;
      }
      if (c == '#') {
        i = directive(i);
        continue;
      }
      if (ident_char(c)) {
        std::size_t j = i;
        while (j < code.size() && ident_char(code[j])) ++j;
        on_ident(code.substr(i, j - i), next_sig(j));
        i = j;
        continue;
      }
      switch (c) {
        case '(': ++paren_; break;
        case ')': if (paren_ > 0) --paren_; break;
        case '=':
          // '==' / '<=' / '>=' / '!=' never appear between namespace-
          // scope declarator tokens; a bare '=' outside parens starts
          // an initializer.
          if (paren_ == 0 && (i + 1 >= code.size() || code[i + 1] != '=') &&
              (i == 0 || (code[i - 1] != '=' && code[i - 1] != '!' &&
                          code[i - 1] != '<' && code[i - 1] != '>'))) {
            eq_seen_ = true;
            enum_init_ = true;
          }
          break;
        case ',':
          enum_init_ = false;
          if (paren_ == 0) enum_member_pending_ = in_enum_scope();
          break;
        case '{':
          if (eq_seen_ && at_ns_scope()) {
            // Braced initializer of a namespace-scope constant: skip
            // the balanced region, the statement continues to ';'.
            i = skip_braces(i);
            continue;
          }
          open_scope();
          break;
        case '}':
          if (!scopes_.empty()) scopes_.pop_back();
          reset_stmt();
          break;
        case ';':
          if (paren_ == 0) end_statement();
          break;
        default: break;
      }
      ++i;
    }
  }

 private:
  struct Scope {
    char kind;  // 'n' namespace, 't' type, 'b' block/other
    std::string name;
    bool is_enum = false;
  };

  bool at_ns_scope() const {
    for (const auto& s : scopes_) {
      if (s.kind != 'n') return false;
    }
    return true;
  }

  /// Directly inside an enum whose enclosing scopes are all namespaces.
  bool in_enum_scope() const {
    if (scopes_.empty() || !scopes_.back().is_enum) return false;
    for (std::size_t k = 0; k + 1 < scopes_.size(); ++k) {
      if (scopes_[k].kind != 'n') return false;
    }
    return true;
  }

  std::string ns_path() const {
    std::string path;
    for (const auto& s : scopes_) {
      if (s.kind != 'n' || s.name.empty()) continue;
      if (!path.empty()) path += "::";
      path += s.name;
    }
    return path;
  }

  char next_sig(std::size_t j) const {
    const std::string& code = f_.code;
    while (j < code.size() && space_char(code[j])) ++j;
    return j < code.size() ? code[j] : '\0';
  }

  void declare(const std::string& name, char kind, int line,
               const std::string& parent = "") {
    out_.declared.push_back({name, ns_path(), parent, kind, line});
  }

  void reset_stmt() {
    stmt_idents_ = 0;
    last_ident_.clear();
    prev_ident_.clear();
    func_cand_.clear();
    class_name_.clear();
    class_kw_ = '\0';
    alias_name_.clear();
    ns_name_.clear();
    is_namespace_ = is_using_ = false;
    eq_seen_ = false;
    enum_init_ = false;
    stmt_template_ = false;
    enum_member_pending_ = in_enum_scope();
  }

  void on_ident(const std::string& tok, char next) {
    if (in_enum_scope()) {
      if (enum_member_pending_ && !enum_init_ &&
          !std::isdigit(static_cast<unsigned char>(tok[0]))) {
        declare(tok, 'g', line_, scopes_.back().name);
        enum_member_pending_ = false;
      }
      return;
    }
    if (tok == "template") {
      stmt_template_ = true;
      return;
    }
    if (tok == "operator") {
      if (at_ns_scope()) out_.declares_operator = true;
      return;
    }
    if (tok == "namespace") {
      is_namespace_ = true;
      return;
    }
    if (is_namespace_) {
      if (!ns_name_.empty()) ns_name_ += "::";
      ns_name_ += tok;
      return;
    }
    if (tok == "using") {
      is_using_ = true;
      return;
    }
    if (is_using_ && alias_name_.empty() && stmt_idents_ == 0) {
      if (next == '=') alias_name_ = tok;
      ++stmt_idents_;
      last_ident_ = tok;
      last_line_ = line_;
      return;
    }
    if (tok == "class" || tok == "struct") {
      if (class_kw_ != 'e') class_kw_ = tok[0] == 'c' ? 'c' : 's';
      class_name_.clear();
      return;
    }
    if (tok == "enum") {
      class_kw_ = 'e';
      class_name_.clear();
      return;
    }
    if (class_kw_ != '\0' && class_name_.empty()) {
      // The tag name: first identifier after the keyword that is not a
      // specifier and not a macro invocation (attribute-style macros
      // are followed by '(').
      if (tok != "final" && tok != "alignas" &&
          !(macro_like(tok) && next == '(')) {
        class_name_ = tok;
        class_line_ = line_;
      }
      return;
    }
    if (!eq_seen_) {
      if (next == '(' && paren_ == 0 && func_cand_.empty() &&
          stmt_idents_ >= 1) {
        func_cand_ = tok;
        func_line_ = line_;
      }
      prev_ident_ = last_ident_;
      last_ident_ = tok;
      last_line_ = line_;
      ++stmt_idents_;
    }
  }

  void open_scope() {
    if (is_namespace_) {
      scopes_.push_back({'n', ns_name_, false});
    } else if (!class_name_.empty()) {
      if (at_ns_scope()) {
        const char kind = class_kw_ == 'e'  ? 'e'
                          : stmt_template_  ? 'T'
                          : class_kw_ == 'c' ? 'c'
                                             : 's';
        declare(class_name_, kind, class_line_);
      }
      scopes_.push_back({'t', class_name_, class_kw_ == 'e'});
    } else if (!func_cand_.empty() && at_ns_scope() && stmt_idents_ >= 2) {
      declare(func_cand_, 'f', func_line_);
      scopes_.push_back({'b', "", false});
    } else {
      scopes_.push_back({'b', "", false});
    }
    reset_stmt();
  }

  void end_statement() {
    if (at_ns_scope()) {
      if (class_kw_ != '\0' && !class_name_.empty()) {
        declare(class_name_, 'd', class_line_);  // forward declaration
      } else if (!alias_name_.empty()) {
        declare(alias_name_, 'a', last_line_);
      } else if (!func_cand_.empty() && stmt_idents_ >= 2) {
        declare(func_cand_, 'f', func_line_);
      } else if (eq_seen_ && stmt_idents_ >= 2 && !is_using_ &&
                 !last_ident_.empty()) {
        declare(last_ident_, 'v', last_line_);
      }
    }
    reset_stmt();
  }

  /// Skips the balanced braced region opening at `open`, counting lines.
  std::size_t skip_braces(std::size_t open) {
    const std::string& code = f_.code;
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '\n') ++line_;
      if (code[i] == '{') ++depth;
      if (code[i] == '}' && --depth == 0) return i + 1;
    }
    return code.size();
  }

  /// Handles a preprocessor directive (with backslash continuations);
  /// records `#define NAME` as a macro declaration in headers.
  std::size_t directive(std::size_t hash) {
    const std::string& code = f_.code;
    std::size_t i = hash + 1;
    while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
    std::size_t w = i;
    while (w < code.size() && ident_char(code[w])) ++w;
    const std::string word = code.substr(i, w - i);
    if (word == "define") {
      std::size_t n = w;
      while (n < code.size() && (code[n] == ' ' || code[n] == '\t')) ++n;
      std::size_t e = n;
      while (e < code.size() && ident_char(code[e])) ++e;
      if (e > n) declare(code.substr(n, e - n), 'm', line_);
    }
    // Skip to the end of the (possibly continued) directive.
    i = w;
    while (i < code.size()) {
      if (code[i] == '\n') {
        if (i > 0 && code[i - 1] == '\\') {
          ++line_;
          ++i;
          continue;
        }
        break;  // leave the '\n' for the main loop
      }
      ++i;
    }
    return i;
  }

  const SourceFile& f_;
  FileSummary& out_;
  std::vector<Scope> scopes_;
  int line_ = 1;
  int paren_ = 0;

  // Statement state (reset at ';', '{', '}').
  int stmt_idents_ = 0;
  std::string last_ident_, prev_ident_, func_cand_, class_name_;
  std::string alias_name_, ns_name_;
  char class_kw_ = '\0';
  int func_line_ = 0, class_line_ = 0, last_line_ = 0;
  bool is_namespace_ = false, is_using_ = false;
  bool eq_seen_ = false, enum_init_ = false, stmt_template_ = false;
  bool enum_member_pending_ = false;
};

}  // namespace

namespace {

/// True when the token starting at `pos` is a member access (preceded
/// by '.' or '->', whitespace allowed): `x.size` must not count as a
/// reference to a free function named `size`.
bool member_access(const std::string& code, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && space_char(code[i - 1])) --i;
  if (i == 0) return false;
  if (code[i - 1] == '.') return true;
  return i >= 2 && code[i - 2] == '-' && code[i - 1] == '>';
}

}  // namespace

void scan_symbols(const SourceFile& f, FileSummary& out) {
  // refs / ptr_ref_only straight from the token stream: member-access
  // occurrences don't count as references at all, and a name is a
  // forward-declaration candidate only if every non-member occurrence
  // is followed by '&' or '*'.
  std::map<std::string, std::pair<bool, int>> ptr_only;
  for (const auto& t : f.tokens) {
    if (member_access(f.code, t.pos)) continue;
    const bool pr = t.next == '&' || t.next == '*';
    auto [it, inserted] = ptr_only.try_emplace(t.text, std::pair{pr, 1});
    if (!inserted) {
      it->second.first = it->second.first && pr;
      ++it->second.second;
    }
  }
  out.refs.clear();
  out.ref_counts.clear();
  out.ptr_ref_only.clear();
  out.refs.reserve(ptr_only.size());
  out.ref_counts.reserve(ptr_only.size());
  for (const auto& [name, pc] : ptr_only) {
    out.refs.push_back(name);
    out.ref_counts.push_back(pc.second);
    if (pc.first) out.ptr_ref_only.push_back(name);
  }
  out.declared.clear();
  out.declares_operator = false;
  DeclScanner(f, out).run();
}

void resolve_includes(Tree& tree) {
  std::set<std::string> rels;
  for (const auto& f : tree.files) rels.insert(f.rel);
  for (auto& f : tree.files) {
    const auto slash = f.rel.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "" : f.rel.substr(0, slash + 1);
    for (auto& inc : f.includes) {
      inc.resolved.clear();
      if (inc.target.find('/') != std::string::npos) {
        const std::string cand = "src/" + inc.target;
        if (rels.count(cand)) inc.resolved = cand;
      } else {
        const std::string sibling = dir + inc.target;
        if (rels.count(sibling)) {
          inc.resolved = sibling;
        } else if (rels.count("src/" + inc.target)) {
          inc.resolved = "src/" + inc.target;
        }
      }
    }
  }
}

bool is_associated_header(const std::string& file_rel,
                          const std::string& include_rel) {
  const auto strip_ext = [](const std::string& rel) {
    const auto dot = rel.rfind('.');
    return dot == std::string::npos ? rel : rel.substr(0, dot);
  };
  return file_rel != include_rel &&
         strip_ext(file_rel) == strip_ext(include_rel);
}

SymbolIndex build_index(const Tree& tree) {
  SymbolIndex idx;
  for (const auto& f : tree.files) {
    idx.by_rel[f.rel] = &f;
    if (!f.header) continue;
    auto& p = idx.provides[f.rel];
    for (const auto& s : f.declared) {
      // A forward declaration provides nothing: a consumer reaching a
      // name only through someone else's `struct X;` still needs the
      // defining header, and crediting the fwd-decl here would mask
      // that missing-direct-include (and mis-route the fix).
      if (s.kind == 'd') continue;
      p.insert(s.name);
      idx.declaring_headers[s.name].insert(f.rel);
    }
  }

  // provides_exported / opaque: DFS with memoization over `IWYU
  // pragma: export` edges. Gray nodes (a cycle, itself a layering
  // finding) contribute their direct provides only.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::function<void(const std::string&)> visit =
      [&](const std::string& rel) {
        if (color[rel] != 0) return;
        color[rel] = 1;
        const FileSummary* f = idx.by_rel.count(rel) ? idx.by_rel.at(rel)
                                                     : nullptr;
        std::set<std::string> names =
            idx.provides.count(rel) ? idx.provides.at(rel)
                                    : std::set<std::string>{};
        bool op = f != nullptr && f->declares_operator;
        if (f != nullptr) {
          for (const auto& inc : f->includes) {
            if (!inc.exported || inc.resolved.empty()) continue;
            visit(inc.resolved);
            const auto it = idx.provides_exported.find(inc.resolved);
            if (it != idx.provides_exported.end()) {
              names.insert(it->second.begin(), it->second.end());
            }
            const auto ot = idx.opaque.find(inc.resolved);
            if (ot != idx.opaque.end() && ot->second) op = true;
          }
        }
        idx.provides_exported[rel] = std::move(names);
        idx.opaque[rel] = op;
        color[rel] = 2;
      };
  for (const auto& f : tree.files) visit(f.rel);

  // reachable: memoized DFS over all resolved includes.
  std::map<std::string, int> rcolor;
  std::function<void(const std::string&)> reach =
      [&](const std::string& rel) {
        if (rcolor[rel] != 0) return;
        rcolor[rel] = 1;
        std::set<std::string> r{rel};
        const auto fit = idx.by_rel.find(rel);
        if (fit != idx.by_rel.end()) {
          for (const auto& inc : fit->second->includes) {
            if (inc.resolved.empty()) continue;
            reach(inc.resolved);
            const auto it = idx.reachable.find(inc.resolved);
            if (it != idx.reachable.end()) {
              r.insert(it->second.begin(), it->second.end());
            } else {
              r.insert(inc.resolved);  // gray: cycle, partial closure
            }
          }
        }
        idx.reachable[rel] = std::move(r);
        rcolor[rel] = 2;
      };
  for (const auto& f : tree.files) reach(f.rel);

  return idx;
}

}  // namespace gpuvar::analyzer
