// Include hygiene over the cross-TU symbol index (index.hpp).
//
// The single relation everything derives from:
//
//   uses(A, H) = refs(A) ∩ provides_exported(H)
//
// * unused-include: a direct include H of A with uses(A, H) empty. The
//   pass refuses to judge headers it cannot see through: IWYU keep /
//   export pragmas, associated headers, opaque headers (operator or
//   user-defined-literal declarations reach consumers without a name),
//   and headers whose export closure declares nothing recognizable.
// * forward-declarable: a header consumer whose every used symbol from
//   H is a plain class/struct referenced only by pointer/reference —
//   the include can become a namespace-scoped forward declaration.
// * missing-direct-include: a symbol A references that no direct
//   include's export closure provides, but which some header reachable
//   only transitively declares. Attribution lands on the include line
//   the symbol currently travels through.
//
// Every finding carries a mechanical FixEdit so --fix can rewrite the
// include block; unused-deletion and missing-direct-insertion come
// from the same uses() relation in the same run, which is what makes
// a fixed tree re-analyze clean in one step.
#include <algorithm>
#include <map>
#include <set>

#include "passes.hpp"
#include "core.hpp"
#include "fix.hpp"
#include "index.hpp"

namespace gpuvar::analyzer {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string dir_of(const std::string& rel) {
  const auto slash = rel.rfind('/');
  return slash == std::string::npos ? "" : rel.substr(0, slash + 1);
}

/// The text to put between quotes so `file` can include `header`, or
/// "" when the project include conventions can't express it: src/
/// headers are rooted at src/, same-directory siblings use the bare
/// name.
std::string include_text_for(const std::string& file_rel,
                             const std::string& header_rel) {
  if (starts_with(header_rel, "src/")) {
    const std::string text = header_rel.substr(4);
    // A bare src-root name ("gpuvar.hpp") still resolves through the
    // sibling-then-src fallback; directory names resolve via src/.
    return text;
  }
  if (dir_of(header_rel) == dir_of(file_rel)) {
    return header_rel.substr(dir_of(header_rel).size());
  }
  return "";
}

/// All declarations of `name` directly in header `rel`.
std::vector<const Symbol*> decls_in(const SymbolIndex& index,
                                    const std::string& rel,
                                    const std::string& name) {
  std::vector<const Symbol*> out;
  const auto it = index.by_rel.find(rel);
  if (it == index.by_rel.end()) return out;
  for (const auto& s : it->second->declared) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

struct FwdDecl {
  std::string ns;
  char kind;  // 's' or 'c'
  std::string name;
};

/// The blind spot of a token-level fwd-decl advisory: an associated
/// .cpp that dereferences a pointer member (`sku_->tdp`) needs the
/// complete type without ever spelling its name, so no ref betrays the
/// dependency and no missing-direct insert would rescue it. The fwd
/// declaration is only proposed when every associated file provably
/// keeps (or will gain) its own path to the full type: it already
/// includes H directly, or it names a used symbol so the same fix run
/// inserts the direct include.
bool associated_files_safe(const Tree& tree, const FileSummary& a,
                           const std::string& header,
                           const std::set<std::string>& uses) {
  for (const auto& f : tree.files) {
    if (!is_associated_header(f.rel, a.rel) || f.rel == a.rel) continue;
    bool direct = false;
    for (const auto& inc : f.includes) {
      if (inc.resolved == header) direct = true;
    }
    if (direct) continue;
    bool names_one = false;
    for (const auto& name : uses) {
      if (std::binary_search(f.refs.begin(), f.refs.end(), name)) {
        names_one = true;
        break;
      }
    }
    if (!names_one) return false;
  }
  return true;
}

/// Checks whether every symbol A uses from H qualifies for a forward
/// declaration, and collects the declarations to write if so.
bool forward_declarable(const SymbolIndex& index, const FileSummary& a,
                        const std::string& header,
                        const std::set<std::string>& uses,
                        std::vector<FwdDecl>& out) {
  for (const auto& name : uses) {
    if (!std::binary_search(a.ptr_ref_only.begin(), a.ptr_ref_only.end(),
                            name)) {
      return false;
    }
    // The symbol must be declared directly in H (not re-exported from
    // elsewhere: include the real owner instead of guessing).
    const auto decls = decls_in(index, header, name);
    if (decls.empty()) return false;
    const Symbol* definition = nullptr;
    for (const Symbol* s : decls) {
      if (s->kind == 's' || s->kind == 'c') {
        if (definition != nullptr && definition->kind != s->kind) {
          return false;
        }
        definition = s;
      } else if (s->kind != 'd') {
        return false;  // enum/alias/function/template: not fwd-declarable
      }
    }
    if (definition == nullptr) return false;
    out.push_back({definition->ns, definition->kind, name});
  }
  return !out.empty();
}

std::vector<std::string> fwd_lines_for(const std::vector<FwdDecl>& decls,
                                       const std::string& target) {
  // Group by namespace, sorted, one line per namespace.
  std::map<std::string, std::vector<const FwdDecl*>> by_ns;
  for (const auto& d : decls) by_ns[d.ns].push_back(&d);
  std::vector<std::string> lines;
  for (auto& [ns, group] : by_ns) {
    std::sort(group.begin(), group.end(),
              [](const FwdDecl* x, const FwdDecl* y) {
                return x->name < y->name;
              });
    std::string body;
    for (const FwdDecl* d : group) {
      if (!body.empty()) body += " ";
      body += (d->kind == 'c' ? "class " : "struct ") + d->name + ";";
    }
    std::string line;
    if (ns.empty()) {
      line = body;
    } else {
      line = "namespace " + ns + " { " + body + " }";
    }
    line += "  // was: #include \"" + target + "\"";
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string join_names(const std::set<std::string>& names,
                       std::size_t limit) {
  std::string out;
  std::size_t n = 0;
  for (const auto& name : names) {
    if (n == limit) {
      out += ", ... (" + std::to_string(names.size() - limit) + " more)";
      break;
    }
    if (n) out += ", ";
    out += "'" + name + "'";
    ++n;
  }
  return out;
}

}  // namespace

void run_include_pass(const Tree& tree, const SymbolIndex& index,
                      std::vector<Finding>& findings,
                      std::vector<FixEdit>* edits) {
  for (const auto& a : tree.files) {
    if (a.includes.empty()) continue;

    std::set<std::string> direct;
    for (const auto& inc : a.includes) {
      if (!inc.resolved.empty()) direct.insert(inc.resolved);
    }

    // --- unused-include / forward-declarable, per direct include ---
    for (const auto& inc : a.includes) {
      const std::string& h = inc.resolved;
      if (h.empty() || h == a.rel) continue;
      if (inc.keep || inc.exported) continue;
      if (is_associated_header(a.rel, h)) continue;
      const auto oit = index.opaque.find(h);
      if (oit != index.opaque.end() && oit->second) continue;
      const auto pit = index.provides_exported.find(h);
      if (pit == index.provides_exported.end() || pit->second.empty()) {
        continue;  // nothing recognizable: refuse to judge
      }
      std::set<std::string> uses;
      for (const auto& name : pit->second) {
        if (std::binary_search(a.refs.begin(), a.refs.end(), name)) {
          uses.insert(name);
        }
      }
      if (uses.empty()) {
        findings.push_back(
            {a.rel, inc.line, "unused-include",
             "no symbol provided by \"" + inc.target +
                 "\" is referenced here; delete the include (or mark it "
                 "`// IWYU pragma: keep` if it is load-bearing in a way "
                 "the index cannot see)"});
        if (edits != nullptr) {
          edits->push_back({FixEdit::Kind::kDeleteInclude, a.rel, inc.line,
                            "unused-include", "", {}});
        }
        continue;
      }
      if (a.header) {
        std::vector<FwdDecl> decls;
        if (associated_files_safe(tree, a, h, uses) &&
            forward_declarable(index, a, h, uses, decls)) {
          findings.push_back(
              {a.rel, inc.line, "forward-declarable",
               "this header uses " + join_names(uses, 3) + " from \"" +
                   inc.target +
                   "\" only by pointer/reference; a forward declaration "
                   "breaks the include chain for every consumer"});
          if (edits != nullptr) {
            edits->push_back({FixEdit::Kind::kReplaceWithFwd, a.rel,
                              inc.line, "forward-declarable", "",
                              fwd_lines_for(decls, inc.target)});
          }
        }
      }
    }

    // --- missing-direct-include ---
    // satisfied = everything a direct include's export closure
    // provides, plus the file's own namespace-scope declarations.
    std::set<std::string> satisfied;
    for (const auto& d : direct) {
      const auto it = index.provides_exported.find(d);
      if (it != index.provides_exported.end()) {
        satisfied.insert(it->second.begin(), it->second.end());
      }
    }
    for (const auto& s : a.declared) satisfied.insert(s.name);

    // target header -> symbols that need it, and the include line the
    // symbol currently travels through.
    std::map<std::string, std::set<std::string>> needed;
    std::map<std::string, std::pair<int, std::string>> via;
    for (const auto& name : a.refs) {
      if (satisfied.count(name)) continue;
      const auto dit = index.declaring_headers.find(name);
      if (dit == index.declaring_headers.end()) continue;
      for (const auto& h : dit->second) {
        if (h == a.rel || direct.count(h)) continue;
        if (is_associated_header(a.rel, h)) continue;
        // Reachable through which direct include?
        const IncludeDirective* carrier = nullptr;
        for (const auto& inc : a.includes) {
          if (inc.resolved.empty()) continue;
          const auto rit = index.reachable.find(inc.resolved);
          if (rit != index.reachable.end() && rit->second.count(h)) {
            carrier = &inc;
            break;
          }
        }
        if (carrier == nullptr) continue;  // not reachable: not our call
        if (include_text_for(a.rel, h).empty()) continue;
        needed[h].insert(name);
        if (!via.count(h)) via[h] = {carrier->line, carrier->target};
        break;  // lexicographically first declaring header wins
      }
    }
    for (const auto& [h, names] : needed) {
      const std::string text = include_text_for(a.rel, h);
      const auto& [line, through] = via.at(h);
      findings.push_back(
          {a.rel, line, "missing-direct-include",
           "uses " + join_names(names, 3) + " declared in \"" + text +
               "\" but reaches it only transitively (through \"" +
               through +
               "\"); include it directly so the dependency survives "
               "refactors of the middleman"});
      if (edits != nullptr) {
        edits->push_back({FixEdit::Kind::kInsertInclude, a.rel, line,
                          "missing-direct-include", text, {}});
      }
    }
  }
}

}  // namespace gpuvar::analyzer
