#!/usr/bin/env bash
# Findings-ratchet contract, on a one-file tree built from the hotpath
# fixture:
#   no baseline:    findings fail the run (absent file = empty baseline)
#   --baseline-write: records fingerprints, exits 0
#   warm:           same findings are all baselined, exits 0
#   fix a sin:      the disappeared fingerprint auto-shrinks the file
#   add a sin:      a fingerprint not in the baseline fails the run
# Fingerprints are rule+file+symbol, so the added sin must be a new
# function (new symbol), and pure line shifts must NOT trip the ratchet.
# Usage: test_analyzer_baseline.sh <analyzer> <hotpath_fixture> <work_dir>
set -euo pipefail

BIN=$1
FIXTURE=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK/src/core"
cp "$FIXTURE" "$WORK/src/core/hotpath_bad.cpp"
BASE="$WORK/baseline.json"

fail() {
  echo "FAIL: $1"
  exit 1
}

# 1. Absent baseline file = empty baseline: every finding is new.
"$BIN" "$WORK" --baseline "$BASE" > /dev/null && \
  fail "new findings against an empty baseline must exit 1"
[ ! -e "$BASE" ] || fail "a failing ratchet run must not create the baseline"

# 2. Record the current findings.
"$BIN" "$WORK" --baseline "$BASE" --baseline-write > /dev/null || \
  fail "--baseline-write must exit 0"
[ -s "$BASE" ] || fail "--baseline-write must create the baseline file"
grep -q '"io-in-hot-path"' "$BASE" || fail "baseline records io-in-hot-path"

# 3. Same tree, same baseline: nothing new.
"$BIN" "$WORK" --baseline "$BASE" > /dev/null || \
  fail "baselined findings must exit 0"

# 4. Pure line shift: prepend a comment block. Fingerprints are
#    line-independent, so the ratchet must stay green without rewrite.
sed -i '1i // shifted\n// shifted again' "$WORK/src/core/hotpath_bad.cpp"
"$BIN" "$WORK" --baseline "$BASE" > /dev/null || \
  fail "a pure line shift must not trip the ratchet"

# 5. Fix a sin: drop the printf. Its fingerprint disappears and the
#    baseline auto-shrinks so the debt can never silently come back.
sed -i '/printf/d' "$WORK/src/core/hotpath_bad.cpp"
"$BIN" "$WORK" --baseline "$BASE" > /dev/null || \
  fail "fixing a baselined finding must exit 0"
grep -q '"io-in-hot-path"' "$BASE" && \
  fail "fixed fingerprint must be auto-removed from the baseline"

# 6. Reintroducing the fixed sin is now a new finding again.
cat >> "$WORK/src/core/hotpath_bad.cpp" <<'SRC'
namespace gpuvar {
GPUVAR_HOT void hot_log(double v) {
  printf("%f", v);
}
}  // namespace gpuvar
SRC
"$BIN" "$WORK" --baseline "$BASE" > /dev/null && \
  fail "a new fingerprint must exit 1"

echo "baseline ratchet OK"
