#!/usr/bin/env bash
# Determinism contract: findings (JSON) are byte-identical at 1, 4, and
# 8 scan threads, and identical again between a cold and a warm cache
# run. The real repo tree is the input; its findings content does not
# matter, only that every run agrees byte-for-byte.
# Usage: test_analyzer_determinism.sh <analyzer> <repo_root> <work_dir>
set -euo pipefail

BIN=$1
ROOT=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"

run_json() {
  # Exit code may be 0 or 1 (findings); anything else is an error.
  local out=$1
  shift
  local rc=0
  "$BIN" "$ROOT" --json "$out" "$@" >/dev/null 2>&1 || rc=$?
  if [ "$rc" -gt 1 ]; then
    echo "FAIL: analyzer exited $rc"
    exit 1
  fi
}

run_json "$WORK/t1.json" --threads 1
run_json "$WORK/t4.json" --threads 4
run_json "$WORK/t8.json" --threads 8
cmp "$WORK/t1.json" "$WORK/t4.json" || {
  echo "FAIL: findings differ between 1 and 4 threads"
  exit 1
}
cmp "$WORK/t1.json" "$WORK/t8.json" || {
  echo "FAIL: findings differ between 1 and 8 threads"
  exit 1
}

run_json "$WORK/cold.json" --cache "$WORK/cache.txt"
run_json "$WORK/warm.json" --cache "$WORK/cache.txt"
cmp "$WORK/cold.json" "$WORK/warm.json" || {
  echo "FAIL: findings differ between cold and warm cache"
  exit 1
}

echo "determinism OK"
