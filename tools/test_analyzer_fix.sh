#!/usr/bin/env bash
# --fix golden round trip on the include_bad fixture tree:
#   1. the pristine copy has findings (exit 1)
#   2. --fix --dry-run prints a diff and writes nothing
#   3. --fix rewrites the tree; every finding had a mechanical fix
#      (exit 0) and re-analysis is clean
#   4. a second --fix is a byte-level no-op (idempotence)
# Usage: test_analyzer_fix.sh <analyzer> <fixture_dir> <work_dir>
set -euo pipefail

BIN=$1
FIXTURE=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"
cp -r "$FIXTURE"/. "$WORK"/

rc=0
"$BIN" "$WORK" >/dev/null 2>"$WORK/before.txt" || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: expected exit 1 on the pristine fixture, got $rc"
  cat "$WORK/before.txt"
  exit 1
fi

# Dry run: diff on stdout, no writes.
rc=0
"$BIN" "$WORK" --fix --dry-run >"$WORK/dry.diff" 2>/dev/null || rc=$?
if ! grep -q '^--- a/src/stats/consumer.hpp' "$WORK/dry.diff"; then
  echo "FAIL: dry-run diff is missing the consumer.hpp hunk"
  cat "$WORK/dry.diff"
  exit 1
fi
rc=0
"$BIN" "$WORK" >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: --dry-run modified the tree (re-analysis exit $rc, want 1)"
  exit 1
fi

# Fix for real: all three findings are mechanically fixable -> exit 0.
rc=0
"$BIN" "$WORK" --fix >/dev/null 2>"$WORK/fix.txt" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: --fix exited $rc (findings left that should have fixes)"
  cat "$WORK/fix.txt"
  exit 1
fi

rc=0
"$BIN" "$WORK" >"$WORK/after.txt" 2>&1 || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: tree not clean after --fix (exit $rc)"
  cat "$WORK/after.txt"
  exit 1
fi

# Idempotence: a second fix proposes nothing.
"$BIN" "$WORK" --fix --dry-run >"$WORK/dry2.diff" 2>/dev/null
if [ -s "$WORK/dry2.diff" ]; then
  echo "FAIL: second --fix is not a no-op:"
  cat "$WORK/dry2.diff"
  exit 1
fi

# Spot-check the rewritten files.
if ! grep -q '#include "common/base.hpp"' "$WORK/src/stats/consumer.hpp"; then
  echo "FAIL: missing direct include was not inserted into consumer.hpp"
  exit 1
fi
# The directive must be gone (the fixture's comment still narrates it).
if grep -q '^#include "common/extra.hpp"' "$WORK/src/stats/consumer.hpp"; then
  echo "FAIL: unused include of extra.hpp survived --fix"
  exit 1
fi
if ! grep -q 'struct BaseThing;' "$WORK/src/gpu/fwd_user.hpp"; then
  echo "FAIL: forward declaration missing from fwd_user.hpp"
  exit 1
fi
# Only the replacement's `// was: #include` breadcrumb may remain.
if grep -q '^#include' "$WORK/src/gpu/fwd_user.hpp"; then
  echo "FAIL: fwd_user.hpp still has an include"
  exit 1
fi

echo "fix round-trip OK"
