#!/usr/bin/env bash
# Scan-cache invalidation contract, via --stats on a fixture copy:
#   cold:     every file scanned, zero hits
#   warm:     zero scanned, every file a hit
#   touch 1:  exactly that file rescanned (stat key = size + mtime)
#   again:    back to all hits
#   rebuild:  a changed pass-set hash (here: the salt env hook standing
#             in for a rebuilt analyzer binary) cold-scans everything —
#             a stale cache must never serve findings from old passes
# Usage: test_analyzer_cache.sh <analyzer> <fixture_dir> <work_dir>
set -euo pipefail

BIN=$1
FIXTURE=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"
cp -r "$FIXTURE"/. "$WORK"/
CACHE="$WORK/cache.txt"

run_stats() {
  # Findings make the analyzer exit 1; only the stats line matters here.
  # open_edges is fixture-content-dependent — strip it, the cache
  # counters are what this test pins down.
  "$BIN" "$WORK" --cache "$CACHE" --stats 2>/dev/null \
    | grep '^stats:' | sed 's/ open_edges=[0-9]*//' || true
}

expect() {
  local label=$1 got=$2 want=$3
  if [ "$got" != "$want" ]; then
    echo "FAIL ($label): got '$got', want '$want'"
    exit 1
  fi
}

n=$(find "$WORK/src" -name '*.hpp' -o -name '*.cpp' | wc -l | tr -d ' ')

expect cold "$(run_stats)" "stats: files=$n scanned=$n cache_hits=0"
expect warm "$(run_stats)" "stats: files=$n scanned=0 cache_hits=$n"

sleep 0.01  # ensure a distinct mtime even on coarse filesystems
touch "$WORK/src/common/base.hpp"
expect touched "$(run_stats)" "stats: files=$n scanned=1 cache_hits=$((n - 1))"
expect rewarm "$(run_stats)" "stats: files=$n scanned=0 cache_hits=$n"

# A different analyzer build folds a different source hash into the
# cache key; the salt simulates that without recompiling.
expect rebuilt "$(GPUVAR_ANALYZER_CACHE_SALT=other-build run_stats)" \
  "stats: files=$n scanned=$n cache_hits=0"
# And back: the original key no longer matches the salted cache file.
expect rebuilt_back "$(run_stats)" "stats: files=$n scanned=$n cache_hits=0"
expect rewarm2 "$(run_stats)" "stats: files=$n scanned=0 cache_hits=$n"

echo "cache invalidation OK"
