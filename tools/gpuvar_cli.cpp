// The `gpuvar` command-line tool: simulate campaigns, analyze results
// CSVs (simulated or collected on real hardware), flag anomalies, and
// project variability to other cluster sizes. All logic lives in
// core/cli.{hpp,cpp}; this is only the process shell.
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return gpuvar::cli::run_cli(args, std::cout, std::cerr);
}
