#!/usr/bin/env bash
# docs/rules.md is generated from the rule registry; this keeps the
# committed copy in lockstep with the binary so the docs can never
# describe a rule set the analyzer doesn't enforce.
# Usage: test_analyzer_rules_doc.sh <analyzer> <rules_md> <work_dir>
set -euo pipefail

BIN=$1
DOC=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"

"$BIN" --list-rules > "$WORK/rules.txt" || \
  { echo "FAIL: --list-rules must exit 0"; exit 1; }
grep -q 'lock-cycle' "$WORK/rules.txt" || \
  { echo "FAIL: --list-rules lists lock-cycle"; exit 1; }

"$BIN" --list-rules --markdown > "$WORK/rules.md" || \
  { echo "FAIL: --list-rules --markdown must exit 0"; exit 1; }

if ! cmp -s "$WORK/rules.md" "$DOC"; then
  echo "FAIL: $DOC is stale — regenerate with:"
  echo "  gpuvar-analyzer --list-rules --markdown > docs/rules.md"
  diff -u "$DOC" "$WORK/rules.md" | head -20 || true
  exit 1
fi

echo "rules doc OK"
