// Uses BaseThing only by reference/pointer, so the include should be
// a forward declaration (forward-declarable).
#pragma once

#include "common/base.hpp"

namespace gpuvar::incfix {

int touch(const BaseThing& t);
int poke(BaseThing* t);

}  // namespace gpuvar::incfix
