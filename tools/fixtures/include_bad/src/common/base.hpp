// Include-hygiene self-test fixture tree: a miniature src/ with one
// unused include, one transitively-reached symbol, and one include
// that should be a forward declaration. The real tree scan skips
// fixtures/; only --fixture-tree reads this.
#pragma once

namespace gpuvar::incfix {

struct BaseThing {
  int v = 0;
};

inline int base_fn() { return 1; }

}  // namespace gpuvar::incfix
