// Provides ExtraThing, which nothing that includes this header uses.
#pragma once

namespace gpuvar::incfix {

struct ExtraThing {
  int w = 0;
};

}  // namespace gpuvar::incfix
