// The middleman: consumers that call base_fn() through this header
// only reach common/base.hpp transitively.
#pragma once

#include "common/base.hpp"

namespace gpuvar::incfix {

inline int stat_fn() { return base_fn(); }

}  // namespace gpuvar::incfix
