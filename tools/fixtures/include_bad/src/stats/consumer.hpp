// Two violations live here: common/extra.hpp is included but no
// symbol it provides is referenced (unused-include — and saying
// ExtraThing in this comment must not count as a use), and base_fn is
// called even though common/base.hpp is only reached through
// stats/indirect.hpp (missing-direct-include).
#pragma once

#include "stats/indirect.hpp"
#include "common/extra.hpp"

namespace gpuvar::incfix {

inline int consume() { return stat_fn() + base_fn(); }

}  // namespace gpuvar::incfix
