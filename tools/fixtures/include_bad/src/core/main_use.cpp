// Keeps every fixture symbol alive so dead-symbol stays out of this
// selftest's expectations (liveness is token-level, so naming the
// symbols in real code is enough; this file includes nothing, which
// keeps it out of the include-hygiene pass entirely).
int use_all_for_liveness(int BaseThing, int base_fn, int ExtraThing,
                         int stat_fn, int consume, int touch, int poke);
