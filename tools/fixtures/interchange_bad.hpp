// Interchange-pass fixture: row-record-param must fire exactly four
// times (two parameters, a return type, and a suppression-defying
// declaration below), and the decoys in this comment and in the string
// literal must not fire:
//   std::vector<RunRecord> comment_decoy;
//   std::span<const RunRecord> comment_decoy2;
#pragma once

#include <span>
#include <vector>

namespace fixture {

struct RunRecord {
  double perf_ms = 0.0;
};

struct Report {};

// Single-record uses are fine — the rule targets bulk interchange.
double metric_value_ok(const RunRecord& r);

// Firing 1: row-oriented bulk parameter. (Named summarize_rows, not
// analyze_*, so the analysis pass's signature rule stays out of this
// fixture's expectations.)
Report summarize_rows(const std::vector<RunRecord>& records);

// Firing 2: span-of-rows bulk parameter.
Report flag_rows(std::span<const RunRecord> records);

// Firing 3: row-oriented bulk return type.
std::vector<RunRecord> load_rows(const char* path);

inline const char* string_decoy() {
  return "takes std::span<const RunRecord> and std::vector<RunRecord>";
}

// Firing 4: row-record-param is strict — this allow() must NOT silence
// it (the deprecation grace period ended with the adapters' deletion).
Report drift_rows(  // gpuvar-lint: allow(row-record-param)
    const std::vector<RunRecord>& history);

}  // namespace fixture
