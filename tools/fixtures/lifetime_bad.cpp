// Lifetime-pass fixture: four dangling-span firings — a view bound to
// an owning local, to a by-value owner parameter, to a temporary, and
// a view parameter stored into a member via a ctor-init. The decoys
// must stay silent: passing a view through unchanged, viewing an
// owner taken by reference (the caller's storage), and returning a
// long-lived member.
namespace gpuvar {

std::string_view leak_local() {
  std::string s = build_name();
  return s;  // firing 1: local owner dies at return
}

std::string_view leak_param(std::string text) {
  return text;  // firing 2: by-value owner parameter dies at return
}

std::string_view leak_temp() {
  return std::to_string(42);  // firing 3: temporary dies with the statement
}

class Label {
 public:
  explicit Label(std::string_view text) : text_(text) {}  // firing 4: stored view param

  std::string_view text() const { return text_; }  // decoy: member outlives us

 private:
  std::string_view text_;
};

std::string_view pass_through(std::string_view v) {
  return v;  // decoy: a view in, a view out — caller owns the storage
}

std::span<const double> view_of(const std::vector<double>& xs) {
  return xs;  // decoy: by-reference owner — the caller's storage
}

}  // namespace gpuvar
