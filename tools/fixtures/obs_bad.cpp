// Observability-pass fixture: raw-trace-api must fire exactly three
// times (one per trace-layer internal used below), and the decoys in
// this comment and in the string literal must not fire:
//   TraceSpan comment_decoy;
//   if (current_lane()) trace_instant("x", "y");
// The macro / installation surface (GPUVAR_TRACE_SPAN, ScopedTrace,
// LaneScope, TraceSink) is legal everywhere and must stay silent.
namespace fixture {

struct TraceLane {};
struct TraceSink {};
struct ScopedTrace {};
struct LaneScope {};

// Legal: install a sink and adopt a lane via the RAII surface.
inline void host_ok(TraceSink* sink) {
  ScopedTrace guard{};
  LaneScope lane{};
  static_cast<void>(sink);
  static_cast<void>(guard);
  static_cast<void>(lane);
}

inline void instrument_bad() {
  TraceLane* lane = current_lane();  // firing 1: lane internals leak out
  TraceSpan span("cat", "name");     // firing 2: raw RAII type, no macro
  trace_instant("cat", "name");      // firing 3: raw instant emission
  static_cast<void>(lane);
  static_cast<void>(span);
}

inline const char* string_decoy() {
  return "TraceSpan and trace_instant and current_lane in a string";
}

}  // namespace fixture
