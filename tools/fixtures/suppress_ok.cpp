// Suppression self-test fixture (lives under fixtures/, which the tree
// scan skips). Every violation below carries a gpuvar-lint allow()
// comment — same-line and line-above forms, a PR 1 style rule and a
// determinism rule — so none of them may fire. The one expected
// finding is `unknown-rule`: allow() naming a rule the analyzer does
// not have must itself be reported, never silently ignored.
#include <chrono>
#include <iostream>

namespace gpuvar {

inline void progress_bar() {
  // Interactive progress output is allowed to own stdout here.
  std::cout << "...\n";  // gpuvar-lint: allow(cout-in-library)
}

inline double benchmark_once() {
  // gpuvar-lint: allow(wall-clock) — real measurement, line-above form
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

// gpuvar-lint: allow(not-a-real-rule)
inline int typo_target() { return 0; }

inline bool comma_list(long x) {
  // One allow() naming two rules suppresses both findings on the next
  // line: bare-assert and wall-clock fire on the same line here.
  // gpuvar-lint: allow(bare-assert, wall-clock)
  assert(x >= std::chrono::steady_clock::now().time_since_epoch().count());
  // A comma list with a typo'd name still suppresses the real rule and
  // still reports the unknown one — a list must never hide a typo.
  // gpuvar-lint: allow(bare-assert, also-not-a-rule)
  assert(x > 0);
  return x != 0;
}

}  // namespace gpuvar
