// Hotpath-pass fixture: one GPUVAR_HOT function with every hot-path
// sin, plus a helper it calls so the alloc effect must propagate over
// the call graph. cold_reduce() is the decoy: it repeats every pattern
// without the annotation and must stay silent, as must the fn-scope
// (non-loop) allocation in sorted_total and the string below naming
// GPUVAR_HOT.
namespace gpuvar {
namespace {

double sorted_total(std::span<const double> xs) {
  std::vector<double> copy(xs.begin(), xs.end());  // fn scope: no finding
  copy.push_back(0.0);  // decoy: reuse, not an allocation trigger
  return copy.empty() ? 0.0 : copy.front();
}

}  // namespace

GPUVAR_HOT double hot_reduce(std::span<const double> xs) {
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> scratch;  // firing 1: alloc-in-hot-loop (direct)
    total = total + sorted_total(xs);  // firing 2: callee allocates
    scratch.push_back(total);
  }
  MutexLock lock(stats_mu);  // firing 3: lock-in-hot-path
  printf("%f", total);       // firing 4: io-in-hot-path
  for (int i = 0; i < 3; ++i) {
    track(std::to_string(i));  // firing 5: string-format-in-hot-loop
  }
  return total;
}

double cold_reduce(std::span<const double> xs) {
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> scratch;  // decoy: not on a hot path
    total = total + sorted_total(xs);
    scratch.push_back(total);
  }
  MutexLock lock(stats_mu);
  printf("%f", total);
  for (int i = 0; i < 3; ++i) {
    track(std::to_string(i));
  }
  return total + 0.0;  // "GPUVAR_HOT in a string is not an annotation"
}

}  // namespace gpuvar
