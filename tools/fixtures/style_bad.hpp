// Deliberately broken "public header" used by gpuvar_lint's self-test
// (the .in suffix keeps it out of the build and the tree lint). Every
// lint rule must fire on it EXACTLY once; the decoys below — violations
// spelled inside comments and string literals — must fire zero times,
// proving the scanner strips literals before matching.
//
// NOTE: no `#pragma once` here — that omission IS the pragma-once case.
//
// Decoy (comment): double power; std::cout << rand(); assert(true);

#include <string>

namespace gpuvar {

struct BadTelemetry {
  double power = 0.0;  // raw-double-quantity: should be Watts or power_w
  double temp_c = 0.0;  // fine: unit suffix documents the raw double
};

inline int bad_sample() {
  const std::string decoy = "rand() std::cout assert( double energy";
  return rand() % 100;  // raw-rng
}

inline void bad_report() {
  std::cout << "done\n";  // cout-in-library
}

inline void bad_check(int x) {
  assert(x > 0);  // bare-assert
}

}  // namespace gpuvar
