// The dispatch helper registry.cpp calls while holding a lock: it
// reaches ThreadPool::wait_idle, so the lockorder pass must propagate
// the waits effect across this TU boundary. safe_dispatch() is a
// decoy: it takes and releases its own lock before waiting.
namespace gpuvar {

void run_tasks(ThreadPool& pool) {
  pool.wait_idle();
}

void safe_dispatch(ThreadPool& pool, Mutex& m) {
  {
    MutexLock guard(m);
  }
  pool.wait_idle();  // decoy: no lock held here
}

}  // namespace gpuvar
