// Lockorder-pass fixture: one deliberate lock-order inversion and one
// lock held across a pool dispatch (through a helper in pool_util.cpp,
// so the finding needs the cross-TU call graph). Everything else is a
// decoy that must NOT fire:
//   * tally() repeats add()'s acquisition order — consistent, no cycle;
//   * flush_unlocked() releases before dispatching;
//   * the words lock-cycle and MutexLock appear in comments and the
//     string below, where stripping must hide them.
namespace gpuvar {

class Registry {
 public:
  void add(int v);
  void drain();
  void tally();
  void flush();
  void flush_unlocked();

 private:
  int items_ GPUVAR_GUARDED_BY(mu_a_);
  int count_ GPUVAR_GUARDED_BY(mu_b_);
  Mutex mu_a_;
  Mutex mu_b_;
  ThreadPool pool_;
};

void Registry::add(int v) {
  MutexLock a(mu_a_);
  MutexLock b(mu_b_);  // order here: mu_a_ before mu_b_
  items_ = v;
  count_ = v;
}

void Registry::drain() {
  MutexLock b(mu_b_);
  MutexLock a(mu_a_);  // firing 1: opposite order -> lock-cycle
  items_ = count_;
}

void Registry::tally() {
  MutexLock a(mu_a_);
  MutexLock b(mu_b_);  // decoy: same order as add(), no new cycle
  count_ = items_;
}

void Registry::flush() {
  MutexLock a(mu_a_);
  run_tasks(pool_);  // firing 2: helper reaches wait_idle -> held-across-wait
}

void Registry::flush_unlocked() {
  MutexLock a(mu_a_);
  a.unlock();        // decoy: released before the dispatch
  run_tasks(pool_);
}

const char* registry_doc() {
  return "MutexLock a(mu_b_); MutexLock b(mu_a_); // string decoy";
}

}  // namespace gpuvar
