// The one real consumer: calls used_fn and names the enum member kUeA
// (never UsedEnum itself), so both stay alive.
#include "common/api.hpp"

namespace gpuvar::deadfix {

int drive() { return used_fn() + kUeA; }

}  // namespace gpuvar::deadfix
