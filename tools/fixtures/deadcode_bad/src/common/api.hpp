// Dead-code self-test fixture tree: used_fn is called from another
// TU, UsedEnum is kept alive through a member reference alone, and
// the associated api.cpp's definitions of dead_fn must NOT count as
// liveness (the defining TU is excluded). Expect dead-symbol on
// DeadType, dead_fn, dead_alias, and DEAD_MACRO — and not on
// tolerated_dead, whose inline allow() proves the rule is
// suppressible. Mentioning dead_fn in this comment must not revive it.
#pragma once

#define DEAD_MACRO 1

namespace gpuvar::deadfix {

struct DeadType {
  int v = 0;
};

using dead_alias = int;

enum UsedEnum { kUeA, kUeB };

int used_fn();
int dead_fn();

inline int tolerated_dead() { return 9; }  // gpuvar-lint: allow(dead-symbol)

}  // namespace gpuvar::deadfix
