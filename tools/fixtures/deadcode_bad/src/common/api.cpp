// The associated TU: defining dead_fn here keeps it dead — liveness
// only counts references outside the header and its same-stem .cpp.
#include "common/api.hpp"

namespace gpuvar::deadfix {

int used_fn() { return 1; }
int dead_fn() { return 2; }

}  // namespace gpuvar::deadfix
