// Fixture for the analysis pass (analysis-signature). Expected
// findings, in order:
//   1. analyze_* with a positional tunable list, no options struct
//   2. analyze_* whose options struct is not the last parameter
//   3. analyze_* taking its options by value
//   4. a deprecated pre-redesign entry-point spelling
// Decoys that must NOT fire: the unified declarations at the bottom, a
// helper that is not an entry point, and mentions of flag_anomalies in
// comments like this one.
#pragma once

namespace gpuvar {

struct DriftOptions {
  int min_runs = 4;
};
struct DriftReport {};
class Source;

// BAD: positional tunables instead of one trailing options struct.
DriftReport analyze_drift_window(const Source& source, int window,
                                 int min_runs);

// BAD: the options struct must come last.
DriftReport analyze_drift_reordered(const DriftOptions& options,
                                    const Source& source);

// BAD: options are taken by const reference, not by value.
DriftReport analyze_drift_byvalue(const Source& source, DriftOptions options);

// BAD: deprecated spelling; the unified surface is analyze_*.
DriftReport detect_performance_drift(const Source& source);

// GOOD: the unified shape, with and without a default argument.
DriftReport analyze_drift(const Source& source,
                          const DriftOptions& options = {});
DriftReport analyze_drift_strict(const Source& source,
                                 const DriftOptions& options);

// GOOD: helpers are not entry points; the rule does not match them.
int drift_window_runs(const Source& source, int window);

}  // namespace gpuvar
