// Other half of the include cycle: b -> a -> b.
#pragma once

#include "gpu/a.hpp"  // IWYU pragma: keep (the cycle IS the fixture)

namespace gpuvar::fixture {
inline int b() { return 2; }
}  // namespace gpuvar::fixture
