// Half of the include cycle: a -> b -> a.
#pragma once

#include "gpu/b.hpp"  // IWYU pragma: keep (the cycle IS the fixture)

namespace gpuvar::fixture {
inline int a() { return 1; }
}  // namespace gpuvar::fixture
