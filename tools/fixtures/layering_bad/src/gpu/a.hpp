// Half of the include cycle: a -> b -> a.
#pragma once

#include "gpu/b.hpp"

namespace gpuvar::fixture {
inline int a() { return 1; }
}  // namespace gpuvar::fixture
