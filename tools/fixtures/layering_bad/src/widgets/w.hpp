// unknown-module: src/widgets/ is not a registered layer.
#pragma once

namespace gpuvar::fixture {
inline int w() { return 3; }
}  // namespace gpuvar::fixture
