// Layering self-test fixture tree: a miniature src/ with one upward
// include, one include cycle, and one unregistered module. The real
// tree scan skips fixtures/; only --fixture-tree reads this.
#pragma once

namespace gpuvar::fixture {
inline int base() { return 0; }
}  // namespace gpuvar::fixture
