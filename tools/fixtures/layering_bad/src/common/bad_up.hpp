// upward-include: common (rank 0) reaching into stats (rank 1).
#pragma once

#include "stats/robust.hpp"

namespace gpuvar::fixture {
inline int bad_up() { return robust(); }
}  // namespace gpuvar::fixture
