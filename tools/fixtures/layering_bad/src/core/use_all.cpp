// Keeps the fixture's symbols alive so dead-symbol stays out of the
// layering selftest's expectations (liveness is token-level, so naming
// the symbols in real code is enough; no includes keeps this file out
// of the include-hygiene pass).
int use_all_for_liveness(int base, int robust, int bad_up, int a, int b,
                         int w);
