// Legal downward edge: stats (rank 1) -> common (rank 0).
#pragma once

#include "common/base.hpp"

namespace gpuvar::fixture {
inline int robust() { return base(); }
}  // namespace gpuvar::fixture
