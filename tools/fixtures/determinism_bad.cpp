// Deliberately broken source file for the determinism pass self-test
// (lives under fixtures/, which the tree scan skips). Every
// determinism rule fires exactly once; the decoys in comments and
// string literals must not.
//
// Decoy (comment): std::stod( steady_clock for (auto& kv : totals)
#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpuvar {

struct Row {
  double score = 0.0;
  int gpu_index = 0;
};

double bad_total(const std::unordered_map<int, double>& totals) {
  const std::string decoy = "std::stod( steady_clock : totals)";
  double sum = 0.0;
  // unordered-iteration: hash order decides FP summation order.
  for (const auto& kv : totals) sum += kv.second;
  return sum;
}

double bad_parallel_sum(ThreadPool& pool,
                        const std::vector<double>& weights) {
  double total = 0.0;
  // parallel-accum: schedule-dependent FP accumulation into a capture.
  pool.parallel_for(weights.size(),
                    [&](std::size_t i) { total += weights[i]; });
  return total;
}

void bad_rank(std::vector<Row>& rows) {
  // float-sort-key: equal scores leave the order unspecified.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.score < b.score; });
}

double bad_parse(const std::string& text) {
  // locale-format: stod consults LC_NUMERIC.
  return std::stod(text);
}

double bad_now() {
  // wall-clock: results must not depend on when they run.
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace gpuvar
