// Deliberately broken header for the thread-safety pass self-test
// (lives under fixtures/, which the tree scan skips). Expected:
// raw-std-mutex and unguarded-mutex fire exactly once each; the
// annotated gpuvar::Mutex below and the decoys in comments must not.
//
// Decoy (comment): std::mutex commented_mu_;
#pragma once

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gpuvar {

class BadCache {
 public:
  int hits() const;

 private:
  // raw-std-mutex (invisible to clang -Wthread-safety) AND
  // unguarded-mutex (no annotation names it) — one line, two rules.
  std::mutex legacy_mu_;

  // Correct pattern: a capability plus data annotated against it.
  Mutex mu_;
  int hits_ GPUVAR_GUARDED_BY(mu_) = 0;
};

}  // namespace gpuvar
