// Reduction-pass fixture: serial double folds that belong in the
// stats::kernels layer. The integer loop, the non-accumulating double
// loop, and the spelling of std::accumulate in this comment are the
// decoys — only the four marked lines may fire raw-loop-reduction.
namespace gpuvar {

double fold_column(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;  // firing 1: range-for '+=' fold
  double sq = 0.0;
  for (const double& x : xs) {
    sq += x * x;  // firing 2: reference-declared element, same fold
  }
  return total + sq;
}

double fold_algorithms(const std::vector<double>& xs,
                       const std::vector<double>& ys) {
  // firing 3: iterator-order fold outside the kernel layer
  const double s = std::accumulate(xs.begin(), xs.end(), 0.0);
  // firing 4: dot product the kernels' centered_products replaces
  return s + std::inner_product(xs.begin(), xs.end(), ys.begin(), 0.0);
}

std::size_t count_slow(const std::vector<double>& perf, double cutoff) {
  std::size_t slow = 0;
  // decoy: integer accumulation — order cannot change the result
  for (std::size_t i = 0; i < perf.size(); ++i) slow += perf[i] > cutoff;
  std::vector<double> kept;
  for (double p : perf) {
    if (p > cutoff) kept.push_back(p);  // decoy: double loop, no fold
  }
  return slow + kept.size();
}

}  // namespace gpuvar
