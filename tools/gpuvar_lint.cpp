// gpuvar_lint — in-repo static checks, registered as a ctest.
//
// The simulator's correctness story rests on a few conventions that the
// compiler cannot enforce by itself; this tool closes the gap with a
// token-level scan (comments, string and character literals stripped, so
// a banned name inside a doc comment or log message never trips a rule):
//
//   raw-double-quantity  public headers (src/**/*.hpp) must not declare a
//                        raw `double` whose name is a bare physical
//                        quantity (power, temp, freq, duration, energy,
//                        voltage, time...). Use the Quantity<Tag> strong
//                        types from common/units.hpp, or name the unit
//                        explicitly (power_w, temp_c, freq_mhz) when a
//                        plain double is deliberate (stats aggregates).
//   raw-rng              no rand()/srand()/std::random_device outside
//                        src/common/rng.* — every random draw must flow
//                        through the seeded, path-keyed Rng so runs stay
//                        reproducible.
//   cout-in-library      no std::cout in src/** — library code reports
//                        through return values and ostream parameters;
//                        only tools/bench/examples own stdout.
//   bare-assert          no bare assert() in src/** — GPUVAR_REQUIRE /
//                        GPUVAR_ASSERT throw typed exceptions that tests
//                        can observe and that fire in release builds.
//   pragma-once          every header in src/tools/bench/examples/tests
//                        starts with a #pragma once include guard.
//
// Usage:
//   gpuvar_lint <repo_root>         lint the tree; exit 1 on any finding
//   gpuvar_lint --fixture <file>    self-test: treat <file> as a public
//                                   library header; exit 0 iff every rule
//                                   above fires at least once
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One source token that the rules care about: an identifier (or keyword)
/// plus the punctuation character that follows it.
struct Token {
  std::string text;
  int line = 0;
  char next = '\0';  // first non-space character after the token
};

/// Strips // and /* */ comments plus string/char literals, preserving
/// newlines so line numbers survive. Raw strings are handled well enough
/// for this codebase (no raw strings with unbalanced delimiters).
std::string strip_comments_and_literals(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLineComment;
          ++i;
        } else if (c == '/' && n == '*') {
          st = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && n == '/') {
          st = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += '\n';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = State::kCode;
        } else if (c == '\n') {
          out += '\n';  // unterminated; keep line counts sane
          st = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
        } else if (c == '\n') {
          out += '\n';
          st = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (!ident_char(c)) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    Token t;
    t.text = code.substr(i, j - i);
    t.line = line;
    std::size_t k = j;
    while (k < code.size() &&
           std::isspace(static_cast<unsigned char>(code[k])) &&
           code[k] != '\n') {
      ++k;
    }
    t.next = k < code.size() ? code[k] : '\0';
    tokens.push_back(std::move(t));
    i = j;
  }
  return tokens;
}

/// The final '_'-separated word of an identifier, trailing member
/// underscore removed: "before_power_w" -> "w", "duration_" -> "duration".
std::string last_word(const std::string& ident) {
  std::string s = ident;
  while (!s.empty() && s.back() == '_') s.pop_back();
  const auto pos = s.rfind('_');
  return pos == std::string::npos ? s : s.substr(pos + 1);
}

bool is_bare_quantity_name(const std::string& ident) {
  static const std::set<std::string> kBanned = {
      "power",    "watts",     "temp",    "temperature", "celsius",
      "freq",     "frequency", "hertz",   "duration",    "time",
      "seconds",  "energy",    "joules",  "voltage",     "volts"};
  return kBanned.count(last_word(ident)) > 0;
}

struct Rules {
  bool double_quantity = false;  // public library header
  bool rng = false;
  bool cout = false;
  bool assert_ = false;
};

void lint_tokens(const std::string& file, const std::vector<Token>& tokens,
                 const Rules& rules, std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (rules.double_quantity && t.text == "double" &&
        i + 1 < tokens.size()) {
      const Token& name = tokens[i + 1];
      if (is_bare_quantity_name(name.text)) {
        findings.push_back(
            {file, name.line, "raw-double-quantity",
             "'double " + name.text +
                 "' in a public header: use a Quantity<Tag> strong type "
                 "from common/units.hpp (or suffix the unit, e.g. " +
                 name.text + "_w)"});
      }
    }
    if (rules.rng) {
      if ((t.text == "rand" || t.text == "srand") && t.next == '(') {
        findings.push_back({file, t.line, "raw-rng",
                            "'" + t.text +
                                "()' breaks reproducibility: draw through "
                                "common/rng.hpp instead"});
      }
      if (t.text == "random_device") {
        findings.push_back({file, t.line, "raw-rng",
                            "'std::random_device' breaks reproducibility: "
                            "draw through common/rng.hpp instead"});
      }
    }
    if (rules.cout && t.text == "cout" && i > 0 &&
        tokens[i - 1].text == "std") {
      findings.push_back({file, t.line, "cout-in-library",
                          "'std::cout' in library code: return data or "
                          "take an std::ostream& parameter"});
    }
    if (rules.assert_ && t.text == "assert" && t.next == '(') {
      findings.push_back({file, t.line, "bare-assert",
                          "bare 'assert()': use GPUVAR_REQUIRE (argument "
                          "checks) or GPUVAR_ASSERT (invariants)"});
    }
  }
}

bool is_header(const fs::path& p) { return p.extension() == ".hpp"; }

bool is_source_file(const fs::path& p) {
  return p.extension() == ".hpp" || p.extension() == ".cpp";
}

std::vector<Finding> lint_file(const fs::path& path, bool in_src,
                               bool is_rng_impl, bool as_header) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string raw = ss.str();
  const std::string code = strip_comments_and_literals(raw);

  std::vector<Finding> findings;
  if (as_header && code.find("#pragma once") == std::string::npos) {
    findings.push_back({path.string(), 1, "pragma-once",
                        "header is missing '#pragma once'"});
  }
  Rules rules;
  rules.double_quantity =
      in_src && as_header && path.filename() != "units.hpp";
  rules.rng = in_src && !is_rng_impl;
  rules.cout = in_src;
  rules.assert_ = in_src;
  lint_tokens(path.string(), tokenize(code), rules, findings);
  return findings;
}

int lint_tree(const fs::path& root) {
  std::vector<Finding> findings;
  std::size_t files = 0;
  for (const char* dir :
       {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !is_source_file(entry.path())) {
        continue;
      }
      const bool in_src = dir == std::string("src");
      const bool is_rng_impl =
          entry.path().filename().string().rfind("rng.", 0) == 0;
      const auto file_findings = lint_file(entry.path(), in_src,
                                           is_rng_impl,
                                           is_header(entry.path()));
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      ++files;
    }
  }
  // A wrong root (typo'd CI path) must not read as a clean tree.
  if (files == 0) {
    std::cerr << "gpuvar_lint: no source files under '" << root.string()
              << "' — wrong repo root?\n";
    return 2;
  }
  for (const auto& fd : findings) {
    std::cerr << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
              << fd.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << findings.size() << " lint finding(s) in " << files
              << " files\n";
    return 1;
  }
  std::cout << "gpuvar_lint: " << files << " files clean\n";
  return 0;
}

/// Self-test: the fixture is linted as if it were a library header and
/// must trip every rule at least once — proof the scanner actually sees
/// violations (a linter that silently matches nothing always "passes").
int lint_fixture(const fs::path& fixture) {
  auto findings = lint_file(fixture, /*in_src=*/true, /*is_rng_impl=*/false,
                            /*as_header=*/true);
  std::set<std::string> fired;
  for (const auto& fd : findings) {
    fired.insert(fd.rule);
    std::cout << "fixture finding: " << fd.file << ":" << fd.line << " ["
              << fd.rule << "] " << fd.message << "\n";
  }
  const std::vector<std::string> expected = {
      "raw-double-quantity", "raw-rng", "cout-in-library", "bare-assert",
      "pragma-once"};
  int missing = 0;
  for (const auto& rule : expected) {
    if (!fired.count(rule)) {
      std::cerr << "fixture did NOT trip rule: " << rule << "\n";
      ++missing;
    }
  }
  // The fixture also contains decoys (violations inside comments and
  // string literals) that must NOT fire; each real rule firing exactly
  // once proves literal stripping works.
  if (missing == 0 && findings.size() != expected.size()) {
    std::cerr << "expected exactly " << expected.size()
              << " findings, got " << findings.size()
              << " (decoy tripped a rule?)\n";
    return 1;
  }
  return missing == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--fixture") {
    return lint_fixture(argv[2]);
  }
  if (argc != 2) {
    std::cerr << "usage: gpuvar_lint <repo_root> | gpuvar_lint --fixture "
                 "<file>\n";
    return 2;
  }
  return lint_tree(argv[1]);
}
