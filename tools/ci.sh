#!/usr/bin/env bash
# CI entry point: warnings-as-errors build + full test suite + lint,
# the same suite under ASan/UBSan and TSan, the gpuvar-analyzer report,
# and the clang -Wthread-safety check.
#
#   tools/ci.sh                run everything
#   tools/ci.sh build          plain build + ctest (includes lint)
#   tools/ci.sh asan           AddressSanitizer + UBSan job
#   tools/ci.sh tsan           ThreadSanitizer job (ThreadPool-heavy tests)
#   tools/ci.sh analyzer       full gpuvar-analyzer run; archives the JSON
#                              report and layering DOT under build-ci/
#   tools/ci.sh bench-smoke    micro bench smoke run (frame column ops, CSV
#                              export, shard codec, campaign engine, query
#                              plane, stats kernels); archives
#                              BENCH_frame.json, BENCH_engine.json,
#                              BENCH_query.json, BENCH_analyzer.json and
#                              BENCH_stats.json
#   tools/ci.sh bench-guard    rerun the micro benches and compare against
#                              the committed bench/BENCH_*.json reference
#                              at a ~2x tolerance
#   tools/ci.sh obs-smoke      end-to-end observability check: a small
#                              `gpuvar simulate --trace --metrics` campaign,
#                              JSON validation, artifacts archived under
#                              build-ci/
#   tools/ci.sh resume-smoke   kill-and-resume check of the campaign
#                              engine: run a checkpointed campaign, delete
#                              half its shards and the done marker, resume,
#                              and byte-compare every artifact against the
#                              uninterrupted run
#   tools/ci.sh query-smoke    streaming query plane check: run a
#                              checkpointed campaign, then byte-compare
#                              `gpuvar query` streaming output against its
#                              --materialize reference path for every
#                              analysis, filtered and compare forms included
#   tools/ci.sh simd-matrix    SIMD determinism matrix: re-run the stats /
#                              query / determinism ctest subset and a
#                              campaign + query CLI pass under both
#                              GPUVAR_SIMD=scalar and GPUVAR_SIMD=auto,
#                              then byte-compare every exported artifact
#                              between the two backends
#   tools/ci.sh thread-safety  clang -Werror=thread-safety syntax-only
#                              compile of src/** (skipped when clang++ is
#                              not installed — the GPUVAR_* annotations
#                              expand to nothing elsewhere)
#
# Each job configures into its own build directory (build-ci, build-asan,
# build-tsan) so the developer's incremental ./build tree is untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

configure_and_test() {
  local dir="$1"
  shift
  local ctest_args=("$@")
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}")
}

job_build() {
  echo "=== job: build (GPUVAR_WERROR=ON) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  configure_and_test build-ci
}

job_asan() {
  echo "=== job: asan+ubsan ==="
  cmake -B build-asan -S . -DGPUVAR_WERROR=ON \
    "-DGPUVAR_SANITIZE=address;undefined" > /dev/null
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    configure_and_test build-asan
}

job_tsan() {
  echo "=== job: tsan ==="
  cmake -B build-tsan -S . -DGPUVAR_WERROR=ON \
    -DGPUVAR_SANITIZE=thread > /dev/null
  # TSan slows execution ~10x; run the concurrency-relevant subset: the
  # ThreadPool suite plus the runner/experiment/scheduler tests that
  # exercise parallel_for across simulated clusters, and the obs tests
  # that hammer the sharded metrics registry and trace lanes from pool
  # workers.
  TSAN_OPTIONS=halt_on_error=1 \
    configure_and_test build-tsan \
    -R 'ThreadPool|Runner|Experiment|Scheduler|Integration|^Trace\.|^Metrics\.|DeterminismReplay'
}

job_analyzer() {
  echo "=== job: analyzer (gpuvar-analyzer, ratchet + JSON/SARIF/DOT) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target gpuvar_analyzer
  rm -f build-ci/analyzer-cache.txt
  local t0 t1 t2
  t0=$(date +%s%N)
  # The findings ratchet: any fingerprint not in the committed baseline
  # fails the run, so the debt can only shrink.
  ./build-ci/tools/gpuvar-analyzer . \
    --baseline docs/analyzer_baseline.json \
    --json build-ci/gpuvar-analyzer.json \
    --sarif build-ci/gpuvar-analyzer.sarif \
    --dot build-ci/include_graph.dot \
    --cache build-ci/analyzer-cache.txt
  t1=$(date +%s%N)
  # Warm second run through the scan cache: findings must be
  # byte-identical, and the cache should make it visibly faster.
  ./build-ci/tools/gpuvar-analyzer . \
    --baseline docs/analyzer_baseline.json \
    --json build-ci/gpuvar-analyzer.warm.json \
    --sarif build-ci/gpuvar-analyzer.warm.sarif \
    --cache build-ci/analyzer-cache.txt
  t2=$(date +%s%N)
  cmp build-ci/gpuvar-analyzer.json build-ci/gpuvar-analyzer.warm.json
  cmp build-ci/gpuvar-analyzer.sarif build-ci/gpuvar-analyzer.warm.sarif
  # A fixed finding auto-shrinks the baseline file; the shrunk version
  # must be committed, not left dirty on the CI checkout.
  if command -v git > /dev/null 2>&1 && [ -d .git ]; then
    git diff --exit-code -- docs/analyzer_baseline.json || {
      echo "baseline shrank: commit the updated docs/analyzer_baseline.json"
      return 1
    }
  fi
  echo "analyzer cache: cold $(( (t1 - t0) / 1000000 ))ms," \
       "warm $(( (t2 - t1) / 1000000 ))ms, findings byte-identical"
  echo "analyzer report: build-ci/gpuvar-analyzer.json (+ .sarif)"
}

job_bench_smoke() {
  echo "=== job: bench-smoke (micro frame/engine/query/analyzer/stats benches) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target micro_frame_bench \
    --target micro_engine_bench --target micro_query_bench \
    --target micro_analyzer_bench --target micro_stats_bench
  # Smoke cadence, not a tuned perf run: one repetition per benchmark,
  # JSON archived so regressions in the columnar data plane, the shard
  # codec / campaign engine, the streaming query plane, the analyzer's
  # scan driver, and the SIMD stats kernels are diffable.
  ./build-ci/bench/micro_frame_bench \
    --benchmark_out=build-ci/BENCH_frame.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_engine_bench \
    --benchmark_out=build-ci/BENCH_engine.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_query_bench \
    --benchmark_out=build-ci/BENCH_query.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_analyzer_bench \
    --benchmark_out=build-ci/BENCH_analyzer.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_stats_bench \
    --benchmark_out=build-ci/BENCH_stats.json \
    --benchmark_out_format=json
  echo "frame bench report: build-ci/BENCH_frame.json"
  echo "engine bench report: build-ci/BENCH_engine.json"
  echo "query bench report: build-ci/BENCH_query.json"
  echo "analyzer bench report: build-ci/BENCH_analyzer.json"
  echo "stats bench report: build-ci/BENCH_stats.json"
}

job_bench_guard() {
  echo "=== job: bench-guard (fresh micro benches vs committed reference) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target micro_frame_bench \
    --target micro_engine_bench --target micro_query_bench \
    --target micro_analyzer_bench --target micro_stats_bench
  if ! command -v python3 > /dev/null 2>&1; then
    echo "python3 unavailable; skipping bench comparison"
    return 0
  fi
  ./build-ci/bench/micro_frame_bench \
    --benchmark_out=build-ci/BENCH_frame.guard.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_engine_bench \
    --benchmark_out=build-ci/BENCH_engine.guard.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_query_bench \
    --benchmark_out=build-ci/BENCH_query.guard.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_analyzer_bench \
    --benchmark_out=build-ci/BENCH_analyzer.guard.json \
    --benchmark_out_format=json
  ./build-ci/bench/micro_stats_bench \
    --benchmark_out=build-ci/BENCH_stats.guard.json \
    --benchmark_out_format=json
  # Coarse regression tripwire, not a tuned perf gate: a fresh run more
  # than ~2x slower than the committed reference on any benchmark fails.
  # CI hosts vary, so the tolerance is wide; refresh the reference with
  #   tools/ci.sh bench-smoke && cp build-ci/BENCH_*.json bench/
  python3 - \
    bench/BENCH_frame.json build-ci/BENCH_frame.guard.json \
    bench/BENCH_engine.json build-ci/BENCH_engine.guard.json \
    bench/BENCH_query.json build-ci/BENCH_query.guard.json \
    bench/BENCH_analyzer.json build-ci/BENCH_analyzer.guard.json \
    bench/BENCH_stats.json build-ci/BENCH_stats.guard.json <<'EOF'
import json
import sys

TOLERANCE = 2.0
failed = False
for ref_path, fresh_path in zip(sys.argv[1::2], sys.argv[2::2]):
    with open(ref_path) as f:
        ref = {b["name"]: b for b in json.load(f)["benchmarks"]}
    with open(fresh_path) as f:
        fresh = {b["name"]: b for b in json.load(f)["benchmarks"]}
    missing = sorted(set(ref) - set(fresh))
    if missing:
        print(f"FAIL {fresh_path}: benchmarks gone: {', '.join(missing)}")
        failed = True
    common = sorted(set(ref) & set(fresh))
    if not common:
        print(f"FAIL {fresh_path}: no benchmarks in common with {ref_path}")
        failed = True
    for name in common:
        r, g = ref[name]["real_time"], fresh[name]["real_time"]
        ratio = g / r if r > 0 else float("inf")
        if ratio > TOLERANCE:
            print(f"FAIL {name}: {g:.0f}ns vs reference {r:.0f}ns "
                  f"({ratio:.2f}x > {TOLERANCE}x)")
            failed = True
        elif ratio < 1.0 / TOLERANCE:
            print(f"note {name}: {ratio:.2f}x of reference — "
                  f"consider refreshing bench/{ref_path.split('/')[-1]}")
sys.exit(1 if failed else 0)
EOF
  echo "bench-guard: all benchmarks within tolerance of bench/BENCH_*.json"
}

job_obs_smoke() {
  echo "=== job: obs-smoke (CLI --trace/--metrics end to end) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target gpuvar_cli
  ./build-ci/tools/gpuvar simulate --cluster cloudlab --workload sgemm \
    --reps 4 --runs 2 \
    --trace build-ci/OBS_trace.json --metrics build-ci/OBS_metrics.txt
  # The trace must be well-formed Chrome trace-event JSON and the dump
  # must carry the campaign's core series.
  if command -v python3 > /dev/null 2>&1; then
    python3 - build-ci/OBS_trace.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "empty traceEvents"
phases = {e["ph"] for e in events}
assert {"M", "B", "E"} <= phases, f"missing phases: {phases}"
assert all("tid" in e and "pid" in e for e in events)
print(f"trace OK: {len(events)} events")
EOF
  else
    grep -q '"traceEvents"' build-ci/OBS_trace.json
    echo "trace OK (python3 unavailable; structural grep only)"
  fi
  grep -q '^counter experiment\.node_jobs ' build-ci/OBS_metrics.txt
  grep -q '^histogram runner\.perf_us ' build-ci/OBS_metrics.txt
  echo "obs artifacts: build-ci/OBS_trace.json build-ci/OBS_metrics.txt"
}

job_resume_smoke() {
  echo "=== job: resume-smoke (campaign kill + resume, byte-compare) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target gpuvar_cli
  local ck=build-ci/RESUME_ck
  rm -rf "$ck" build-ci/RESUME_*.csv build-ci/RESUME_*.md build-ci/RESUME_*.sum

  # Uninterrupted reference: a checkpointed, spill-everything campaign.
  ./build-ci/tools/gpuvar run --cluster cloudlab --workload sgemm \
    --reps 4 --runs 2 --checkpoint "$ck" --shard-budget 0 \
    --out build-ci/RESUME_ref.csv --report build-ci/RESUME_ref.md \
    --summary build-ci/RESUME_ref.sum

  # Simulate a mid-campaign kill: delete every other shard, strip the
  # manifest's done line, and put the in-progress marker back — the
  # on-disk state a SIGKILL between bucket completions leaves behind.
  local n=0
  for shard in "$ck"/bucket-*.shard; do
    if [ $((n % 2)) -eq 0 ]; then rm "$shard"; fi
    n=$((n + 1))
  done
  grep -v '^done$' "$ck/manifest.txt" > "$ck/manifest.txt.tmp"
  mv "$ck/manifest.txt.tmp" "$ck/manifest.txt"
  echo "campaign in progress" > "$ck/IN_PROGRESS"

  # Resume: only the missing buckets re-run (the CLI reports how many
  # were restored), then every artifact must match the reference byte
  # for byte.
  ./build-ci/tools/gpuvar run --cluster cloudlab --workload sgemm \
    --reps 4 --runs 2 --checkpoint "$ck" --shard-budget 0 \
    --out build-ci/RESUME_got.csv --report build-ci/RESUME_got.md \
    --summary build-ci/RESUME_got.sum | tee build-ci/RESUME_log.txt
  grep -q 'buckets restored' build-ci/RESUME_log.txt
  cmp build-ci/RESUME_ref.csv build-ci/RESUME_got.csv
  cmp build-ci/RESUME_ref.md build-ci/RESUME_got.md
  cmp build-ci/RESUME_ref.sum build-ci/RESUME_got.sum
  [ ! -e "$ck/IN_PROGRESS" ]
  echo "resume-smoke: resumed campaign artifacts byte-identical"
}

job_query_smoke() {
  echo "=== job: query-smoke (streaming query vs --materialize) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target gpuvar_cli
  local ck=build-ci/QUERY_ck
  rm -rf "$ck" build-ci/QUERY_*.txt

  # The store under query: a checkpointed, spill-everything campaign,
  # one shard per node bucket.
  ./build-ci/tools/gpuvar run --cluster cloudlab --workload sgemm \
    --reps 4 --runs 2 --checkpoint "$ck" --shard-budget 0 \
    --out build-ci/QUERY_ref.csv > /dev/null

  # The query plane's core contract: every analysis prints byte-identical
  # output whether it streams shards (here with a custom pool and a
  # cache budget small enough to evict) or runs over the materialized
  # frame.
  local a
  for a in variability correlate flags drift impact; do
    ./build-ci/tools/gpuvar query "$ck" --analysis "$a" \
      --threads 4 --cache-budget 4K > "build-ci/QUERY_${a}_stream.txt"
    ./build-ci/tools/gpuvar query "$ck" --analysis "$a" \
      --materialize > "build-ci/QUERY_${a}_mat.txt"
    cmp "build-ci/QUERY_${a}_stream.txt" "build-ci/QUERY_${a}_mat.txt"
  done

  # Filtered form: a --where predicate that pushdown resolves to a
  # strict shard subset (two of cloudlab's three node buckets) takes
  # the same byte-identity bar.
  ./build-ci/tools/gpuvar query "$ck" --where node=0..1 \
    --analysis variability > build-ci/QUERY_where_stream.txt
  ./build-ci/tools/gpuvar query "$ck" --where node=0..1 \
    --analysis variability --materialize > build-ci/QUERY_where_mat.txt
  cmp build-ci/QUERY_where_stream.txt build-ci/QUERY_where_mat.txt

  # Two-store comparison (a store against itself: no significant deltas).
  ./build-ci/tools/gpuvar query "$ck" --against "$ck" \
    --analysis compare > build-ci/QUERY_compare_stream.txt
  ./build-ci/tools/gpuvar query "$ck" --against "$ck" \
    --analysis compare --materialize > build-ci/QUERY_compare_mat.txt
  cmp build-ci/QUERY_compare_stream.txt build-ci/QUERY_compare_mat.txt
  echo "query-smoke: streaming output byte-identical to --materialize"
}

job_simd_matrix() {
  echo "=== job: simd-matrix (GPUVAR_SIMD=scalar vs =auto, byte-compare) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  cmake --build build-ci -j "$JOBS" --target gpuvar_tests --target gpuvar_cli

  # The determinism contract under test: every kernel consumer must be
  # bit-identical whichever backend dispatch picks, so the stats /
  # query / determinism ctest subset has to pass with the SIMD layer
  # pinned to scalar and again with runtime auto-detection.
  local simd_tests='StatsKernels|Descriptive|Quantile|Boxplot|Correlation'
  simd_tests+='|Bootstrap|Frame|QueryTest|Variability|Drift|Compare'
  simd_tests+='|Scheduler|UserImpact|DeterminismReplay'
  local mode
  for mode in scalar auto; do
    echo "--- ctest subset under GPUVAR_SIMD=$mode ---"
    (cd build-ci && GPUVAR_SIMD="$mode" \
      ctest --output-on-failure -R "$simd_tests")
  done

  # End to end: a checkpointed campaign plus every query analysis, run
  # once per backend setting; each exported artifact must match byte
  # for byte.
  local a
  for mode in scalar auto; do
    local ck="build-ci/SIMD_${mode}_ck"
    rm -rf "$ck"
    GPUVAR_SIMD="$mode" ./build-ci/tools/gpuvar run \
      --cluster cloudlab --workload sgemm \
      --reps 4 --runs 2 --checkpoint "$ck" --shard-budget 0 \
      --out "build-ci/SIMD_${mode}.csv" \
      --report "build-ci/SIMD_${mode}.md" \
      --summary "build-ci/SIMD_${mode}.sum" > /dev/null
    for a in variability correlate flags drift impact; do
      GPUVAR_SIMD="$mode" ./build-ci/tools/gpuvar query "$ck" \
        --analysis "$a" > "build-ci/SIMD_${mode}_${a}.txt"
    done
  done
  cmp build-ci/SIMD_scalar.csv build-ci/SIMD_auto.csv
  cmp build-ci/SIMD_scalar.md build-ci/SIMD_auto.md
  cmp build-ci/SIMD_scalar.sum build-ci/SIMD_auto.sum
  for a in variability correlate flags drift impact; do
    cmp "build-ci/SIMD_scalar_${a}.txt" "build-ci/SIMD_auto_${a}.txt"
  done
  echo "simd-matrix: scalar and auto backends byte-identical end to end"
}

job_thread_safety() {
  echo "=== job: thread-safety (clang -Werror=thread-safety) ==="
  if ! command -v clang++ > /dev/null 2>&1; then
    echo "clang++ not installed; skipping (annotations are no-ops under"
    echo "other compilers — this job needs clang's -Wthread-safety)."
    return 0
  fi
  # Syntax-only compile of every library TU with the analysis promoted
  # to an error: a guarded member touched without its mutex fails CI.
  local failed=0
  while IFS= read -r tu; do
    clang++ -std=c++20 -fsyntax-only -Isrc \
      -Wthread-safety -Werror=thread-safety "$tu" || failed=1
  done < <(find src -name '*.cpp' | sort)
  [ "$failed" -eq 0 ] && echo "thread-safety: src/** clean"
  return "$failed"
}

case "${1:-all}" in
  build) job_build ;;
  asan) job_asan ;;
  tsan) job_tsan ;;
  analyzer) job_analyzer ;;
  bench-smoke) job_bench_smoke ;;
  bench-guard) job_bench_guard ;;
  obs-smoke) job_obs_smoke ;;
  resume-smoke) job_resume_smoke ;;
  query-smoke) job_query_smoke ;;
  simd-matrix) job_simd_matrix ;;
  thread-safety) job_thread_safety ;;
  all)
    job_build
    job_analyzer
    job_bench_smoke
    job_bench_guard
    job_obs_smoke
    job_resume_smoke
    job_query_smoke
    job_simd_matrix
    job_thread_safety
    job_asan
    job_tsan
    echo "=== all CI jobs passed ==="
    ;;
  *)
    echo "usage: tools/ci.sh [build|asan|tsan|analyzer|bench-smoke|bench-guard|obs-smoke|resume-smoke|query-smoke|simd-matrix|thread-safety|all]" >&2
    exit 2
    ;;
esac
