#!/usr/bin/env bash
# CI entry point: warnings-as-errors build + full test suite + lint,
# then the same suite under ASan/UBSan and TSan.
#
#   tools/ci.sh            run everything
#   tools/ci.sh build      plain build + ctest (includes lint)
#   tools/ci.sh asan       AddressSanitizer + UndefinedBehaviorSanitizer job
#   tools/ci.sh tsan       ThreadSanitizer job (ThreadPool-heavy tests)
#
# Each job configures into its own build directory (build-ci, build-asan,
# build-tsan) so the developer's incremental ./build tree is untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

configure_and_test() {
  local dir="$1"
  shift
  local ctest_args=("$@")
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}")
}

job_build() {
  echo "=== job: build (GPUVAR_WERROR=ON) ==="
  cmake -B build-ci -S . -DGPUVAR_WERROR=ON > /dev/null
  configure_and_test build-ci
}

job_asan() {
  echo "=== job: asan+ubsan ==="
  cmake -B build-asan -S . -DGPUVAR_WERROR=ON \
    "-DGPUVAR_SANITIZE=address;undefined" > /dev/null
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    configure_and_test build-asan
}

job_tsan() {
  echo "=== job: tsan ==="
  cmake -B build-tsan -S . -DGPUVAR_WERROR=ON \
    -DGPUVAR_SANITIZE=thread > /dev/null
  # TSan slows execution ~10x; run the concurrency-relevant subset: the
  # ThreadPool suite plus the runner/experiment/scheduler tests that
  # exercise parallel_for across simulated clusters.
  TSAN_OPTIONS=halt_on_error=1 \
    configure_and_test build-tsan \
    -R 'ThreadPool|Runner|Experiment|Scheduler|Integration'
}

case "${1:-all}" in
  build) job_build ;;
  asan) job_asan ;;
  tsan) job_tsan ;;
  all)
    job_build
    job_asan
    job_tsan
    echo "=== all CI jobs passed ==="
    ;;
  *)
    echo "usage: tools/ci.sh [build|asan|tsan|all]" >&2
    exit 2
    ;;
esac
