#include "common/csv_reader.hpp"

#include <algorithm>

#include "common/numfmt.hpp"
#include "common/require.hpp"

namespace gpuvar {

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field.push_back(c);
    }
  }
  GPUVAR_REQUIRE_MSG(!in_quotes, "unterminated quoted CSV field");
  fields.push_back(std::move(field));
  return fields;
}

namespace {

/// Reads one logical record (quoted fields may span physical lines).
bool read_record(std::istream& in, std::string& out) {
  out.clear();
  std::string line;
  bool have_any = false;
  while (std::getline(in, line)) {
    have_any = true;
    if (!out.empty()) out.push_back('\n');
    out += line;
    // Balanced quotes -> the record is complete.
    const auto quotes = std::count(out.begin(), out.end(), '"');
    if (quotes % 2 == 0) return true;
  }
  return have_any;
}

}  // namespace

CsvReader::CsvReader(std::istream& in) {
  std::string record;
  GPUVAR_REQUIRE_MSG(read_record(in, record), "empty CSV input");
  columns_ = parse_csv_line(record);
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i], i);
  }
  while (read_record(in, record)) {
    if (record.empty()) continue;  // tolerate trailing blank lines
    auto fields = parse_csv_line(record);
    GPUVAR_REQUIRE_MSG(fields.size() == columns_.size(),
                       "CSV row width does not match header");
    rows_.push_back(std::move(fields));
  }
}

bool CsvReader::has_column(const std::string& name) const {
  return index_.count(name) > 0;
}

const std::string& CsvReader::field(std::size_t row,
                                    const std::string& column) const {
  GPUVAR_REQUIRE(row < rows_.size());
  const auto it = index_.find(column);
  GPUVAR_REQUIRE_MSG(it != index_.end(), "unknown CSV column: " + column);
  return rows_[row][it->second];
}

double CsvReader::number(std::size_t row, const std::string& column) const {
  const std::string& s = field(row, column);
  double v = 0.0;
  GPUVAR_REQUIRE_MSG(parse_double(s, v),
                     "not a number: '" + s + "' in column " + column);
  return v;
}

long long CsvReader::integer(std::size_t row,
                             const std::string& column) const {
  const std::string& s = field(row, column);
  long long v = 0;
  GPUVAR_REQUIRE_MSG(parse_int(s, v),
                     "not an integer: '" + s + "' in column " + column);
  return v;
}

}  // namespace gpuvar
