// Where a measurement came from: the physical position of one GPU.
//
// Lives in common (not cluster) because it is pure data shared by every
// layer that labels results — telemetry rows, flattened run records and
// exports all carry a location, and none of them may depend on the
// cluster-construction layer above them.
#pragma once

#include <string>

namespace gpuvar {

struct GpuLocation {
  int node = 0;      ///< global node index
  int gpu = 0;       ///< index within the node
  int cabinet = 0;   ///< cabinet index (cabinet-style layouts)
  int row = -1;      ///< row index (row layouts; 0 = 'a')
  int column = -1;   ///< column index within the row
  int node_in_group = 0;  ///< node index within its cabinet / column
  std::string name;  ///< human-readable: "c002-010-gpu2", "rowh-col36-n10-3"
};

}  // namespace gpuvar
