// A small fixed-size thread pool with a blocking parallel_for.
//
// The experiment runner simulates hundreds to thousands of GPUs; each GPU's
// simulation is independent, so we parallelize across GPUs with a static
// block distribution (chunks are contiguous index ranges — good locality,
// no false sharing on the output vectors, deterministic results because the
// work items never share mutable state).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpuvar {

class ThreadPool {
 public:
  /// Creates a pool with `n_threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [0, n), blocking until all complete. Exceptions
  /// thrown by fn are captured; the first one is rethrown on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace gpuvar
