// A small fixed-size thread pool with a blocking parallel_for.
//
// The experiment runner simulates hundreds to thousands of GPUs; each GPU's
// simulation is independent, so we parallelize across GPUs with a static
// block distribution (chunks are contiguous index ranges — good locality,
// no false sharing on the output vectors, deterministic results because the
// work items never share mutable state).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gpuvar {

class ThreadPool {
 public:
  /// Creates a pool with `n_threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If a task submitted
  /// via submit() threw, the first such exception is rethrown here (the
  /// count is decremented regardless, so the pool never wedges). The
  /// error slot is pool-wide: on a shared pool (e.g. global()), an
  /// exception from one client's task can surface in another client's
  /// wait_idle. Clients whose tasks may throw should catch inside the
  /// task or use a private pool; parallel_for is unaffected (it tracks
  /// errors and completion per call).
  void wait_idle();

  /// Run fn(i) for i in [0, n), blocking until all complete. Exceptions
  /// thrown by fn are captured; the first one is rethrown on the caller.
  /// Completion and errors are tracked per call, so concurrent
  /// parallel_for calls from different threads neither block on each
  /// other's chunks nor see each other's exceptions.
  /// Re-entrant: when called from one of this pool's own workers the
  /// loop runs inline instead of blocking the worker (nested fan-out
  /// would otherwise deadlock the pool).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  // Written once in the constructor before any concurrent access; const
  // thereafter (size() reads it without the lock).
  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_ GPUVAR_GUARDED_BY(mu_);
  std::size_t in_flight_ GPUVAR_GUARDED_BY(mu_) = 0;
  bool stop_ GPUVAR_GUARDED_BY(mu_) = false;
  // First exception thrown by a submit()ed task, if any; handed to the
  // next wait_idle caller.
  std::exception_ptr task_error_ GPUVAR_GUARDED_BY(mu_);
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace gpuvar
