// Human-entered byte-size parsing shared by every budget flag.
//
// Several CLI flags (--shard-budget, --cache-budget) and config knobs
// accept "a number of bytes, or 'unlimited'". They must all agree on
// the grammar, the unlimited sentinel, and — critically — on rejecting
// values whose K/M/G scaling wraps 64 bits: a wrapped budget silently
// becomes an arbitrary small (or effectively unlimited) limit instead
// of the error the user needs to see.
#pragma once

#include <cstdint>
#include <string>

namespace gpuvar {

/// The "no limit" sentinel every byte budget uses: larger than any
/// real budget, so `bytes <= budget` comparisons need no special case.
inline constexpr std::uint64_t kUnlimitedBytes = ~std::uint64_t{0};

/// Parses "unlimited", or a byte count with an optional K/M/G (binary)
/// suffix, e.g. "4M". `flag` names the option in error messages (e.g.
/// "--shard-budget"). Fails loudly (common/require.hpp) on bad syntax
/// or a scaled product that overflows a 64-bit byte count.
std::uint64_t parse_byte_size(const std::string& text,
                              const std::string& flag);

}  // namespace gpuvar
