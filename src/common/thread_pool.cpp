#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "common/require.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gpuvar {

namespace {
// The pool (if any) whose worker_loop is running on this thread. Used to
// detect re-entrant parallel_for calls: a worker that blocked in
// wait_idle would deadlock the pool once every worker did so, therefore
// nested parallel work runs inline on the calling worker instead.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    GPUVAR_ASSERT(!stop_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  // Explicit predicate loop: the analysis cannot see into a wait
  // predicate lambda, but it can see these guarded reads are under mu_.
  while (in_flight_ != 0) cv_idle_.wait(lock.native());
  if (task_error_) {
    std::exception_ptr err = std::exchange(task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

bool ThreadPool::on_worker_thread() const { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_task_.wait(lock.native());
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The in_flight_ decrement must happen even when the task throws:
    // a leaked count would leave wait_idle blocked forever. The first
    // exception is stashed and rethrown to the next wait_idle caller.
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      MutexLock lock(mu_);
      if (err && !task_error_) task_error_ = err;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t n_workers = size();
  // Run inline when parallelism cannot help — and, critically, when the
  // caller IS one of this pool's workers: blocking a worker in wait_idle
  // deadlocks the pool as soon as every worker does it (nested
  // parallel_for, e.g. a scheduler canary fanning out per-node runs that
  // themselves fan out per GPU).
  if (n == 1 || n_workers == 1 || on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static block distribution; at most a few chunks per worker to
  // amortize queue overhead. Each chunk is a contiguous range for cache
  // locality.
  const std::size_t n_chunks = std::min(n, n_workers * 4);
  const std::size_t base = n / n_chunks;
  const std::size_t rem = n % n_chunks;

  // Completion is tracked per batch, not via the pool-global wait_idle():
  // that keeps concurrent parallel_for calls from different threads from
  // blocking on each other's chunks, and keeps exceptions stashed by
  // unrelated submit() clients out of this call. Chunks catch their own
  // exceptions, so they never touch task_error_ either.
  struct Batch {
    Mutex mu;
    std::condition_variable cv;
    std::size_t pending GPUVAR_GUARDED_BY(mu);
    std::exception_ptr first_error GPUVAR_GUARDED_BY(mu);
    std::atomic<bool> failed{false};
  };
  Batch batch;
  {
    MutexLock lock(batch.mu);
    batch.pending = n_chunks;
  }

  std::size_t begin = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&batch, &fn, begin, end] {
      std::exception_ptr err;
      for (std::size_t i = begin; i < end; ++i) {
        if (batch.failed.load(std::memory_order_relaxed)) break;
        try {
          fn(i);
        } catch (...) {
          err = std::current_exception();
          batch.failed.store(true, std::memory_order_relaxed);
          break;
        }
      }
      // Notify under the lock: once pending hits 0 the waiter may return
      // and destroy `batch`, so the cv must not be touched after unlock.
      MutexLock lock(batch.mu);
      if (err && !batch.first_error) batch.first_error = err;
      if (--batch.pending == 0) batch.cv.notify_all();
    });
    begin = end;
  }
  MutexLock lock(batch.mu);
  while (batch.pending != 0) batch.cv.wait(lock.native());
  if (batch.first_error) {
    std::exception_ptr err = batch.first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace gpuvar
