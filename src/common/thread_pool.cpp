#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/require.hpp"

namespace gpuvar {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    GPUVAR_ASSERT(!stop_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t n_workers = size();
  if (n == 1 || n_workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static block distribution; at most one chunk per worker to amortize
  // queue overhead. Each chunk is a contiguous range for cache locality.
  const std::size_t n_chunks = std::min(n, n_workers * 4);
  const std::size_t base = n / n_chunks;
  const std::size_t rem = n % n_chunks;

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::size_t begin = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
    begin = end;
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace gpuvar
