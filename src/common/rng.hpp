// Deterministic random number generation.
//
// Every stochastic quantity in the simulator (silicon samples, inlet
// temperatures, fault placement, workload jitter) is drawn from an Rng
// seeded by a *derived* seed: a hash of the experiment master seed plus a
// stable string path such as "longhorn/node:17/gpu:2/silicon". This makes
// every figure bit-reproducible and independent of iteration order or
// thread scheduling — adding a node never perturbs another node's draws.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace gpuvar {

/// SplitMix64: used for seed scrambling (passes BigCrush for this purpose).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a child seed from a master seed and a stable string path.
/// FNV-1a over the path, mixed with the master seed through SplitMix64.
std::uint64_t derive_seed(std::uint64_t master, std::string_view path);

/// xoshiro256** — fast, high-quality generator for the simulation itself.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);
  Rng(std::uint64_t master, std::string_view path)
      : Rng(derive_seed(master, path)) {}

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (cached pair for efficiency).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Normal truncated (by rejection) to [lo, hi]. Requires lo < hi and the
  /// interval to have non-negligible mass; falls back to clamping after
  /// 1000 rejections to stay total.
  double truncated_normal(double mean, double stddev, double lo, double hi);
  /// Log-normal: exp(N(mu, sigma)) where mu/sigma are in log space.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Sample k distinct indices from [0, n) (Floyd's algorithm).
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gpuvar
