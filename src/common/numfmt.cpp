#include "common/numfmt.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace gpuvar {

void append_double(std::string& out, double value, int precision) {
  if (std::isnan(value)) {
    out += "nan";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "inf" : "-inf";
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                 std::chars_format::general, precision);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

void append_int(std::string& out, long long value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, static_cast<std::size_t>(res.ptr - buf));
}

std::string format_double(double value, int precision) {
  std::string out;
  append_double(out, value, precision);
  return out;
}

std::string format_int(long long value) {
  std::string out;
  append_int(out, value);
  return out;
}

namespace {

// from_chars rejects a leading '+' that strtod-based parsers accepted;
// strip it so CLI inputs like "+0.5" keep working.
std::string_view strip_plus(std::string_view s) {
  if (s.size() > 1 && s.front() == '+') s.remove_prefix(1);
  return s;
}

}  // namespace

bool parse_double(std::string_view s, double& out) {
  s = strip_plus(s);
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

bool parse_int(std::string_view s, long long& out) {
  s = strip_plus(s);
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out, 10);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

std::string format_hex(std::uint64_t v) {
  char buf[17];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, 16);
  return std::string(buf, res.ptr);
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), out, 16);
  return res.ec == std::errc{} && res.ptr == s.data() + s.size();
}

}  // namespace gpuvar
