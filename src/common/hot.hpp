// GPUVAR_HOT: marks a function as performance-critical.
//
// Two consumers:
//   - the compiler: under GCC/Clang the macro expands to
//     __attribute__((hot)), which biases inlining, block layout, and
//     section placement toward the annotated function;
//   - gpuvar-analyzer's hotpath pass: every function reachable from a
//     GPUVAR_HOT root through the cross-TU call graph is "hot", and the
//     pass flags per-iteration heap allocation, lock acquisition,
//     stream/stdio IO, and string formatting inside that closure
//     (alloc-in-hot-loop, lock-in-hot-path, io-in-hot-path,
//     string-format-in-hot-loop — see docs/rules.md).
//
// Annotate the *definition* (the analyzer scans function bodies), on
// the kernels the paper's pipeline iterates per GPU × per metric:
// frame append/select/group, the per-GPU aggregations, and the stats
// kernels under them. Don't annotate setup/teardown or IO boundaries —
// a hot root makes its whole callee closure hot, so an over-wide
// annotation buries real regressions in noise.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define GPUVAR_HOT __attribute__((hot))
#else
#define GPUVAR_HOT
#endif
