// Precondition checking helpers used across the library.
//
// Following the C++ Core Guidelines (I.6: prefer Expects() for
// preconditions), we centralize precondition checks in one macro that
// throws std::invalid_argument with a useful message. Internal invariants
// use GPUVAR_ASSERT, which throws std::logic_error — a violated invariant
// is a library bug, not a user error.
#pragma once

#include <stdexcept>
#include <string>

namespace gpuvar {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (": " + msg)));
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file,
                                       int line) {
  throw std::logic_error(std::string("invariant violated: ") + expr + " at " +
                         file + ":" + std::to_string(line));
}

}  // namespace gpuvar

#define GPUVAR_REQUIRE(expr)                                        \
  do {                                                              \
    if (!(expr)) ::gpuvar::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define GPUVAR_REQUIRE_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) ::gpuvar::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define GPUVAR_ASSERT(expr)                                        \
  do {                                                             \
    if (!(expr)) ::gpuvar::assert_failed(#expr, __FILE__, __LINE__); \
  } while (false)
