#include "common/binio.hpp"

#include <bit>
#include <cstddef>
#include <stdexcept>
#include <utility>

namespace gpuvar::binio {

namespace {

/// Appends `n` bytes of `v` least-significant first: little-endian on
/// every host, so shard files are portable across byte orders.
void append_le(std::string& out, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

}  // namespace

void append_u16(std::string& out, std::uint16_t v) { append_le(out, v, 2); }
void append_u32(std::string& out, std::uint32_t v) { append_le(out, v, 4); }
void append_u64(std::string& out, std::uint64_t v) { append_le(out, v, 8); }

void append_i16(std::string& out, std::int16_t v) {
  append_le(out, static_cast<std::uint16_t>(v), 2);
}

void append_i32(std::string& out, std::int32_t v) {
  append_le(out, static_cast<std::uint32_t>(v), 4);
}

void append_i64(std::string& out, std::int64_t v) {
  append_le(out, static_cast<std::uint64_t>(v), 8);
}

void append_f64(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

void append_bytes(std::string& out, std::string_view bytes) {
  append_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

std::uint64_t fnv1a64(std::string_view bytes) {
  Fnv1a64 h;
  h.update(bytes);
  return h.digest();
}

void Fnv1a64::update(std::string_view bytes) {
  std::uint64_t h = state_;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  state_ = h;
}

ByteReader::ByteReader(std::string_view data, std::string label)
    : data_(data), label_(std::move(label)) {}

const unsigned char* ByteReader::take(std::size_t n) {
  if (data_.size() - pos_ < n) {
    throw std::runtime_error(label_ + ": truncated (wanted " +
                             std::to_string(n) + " bytes at offset " +
                             std::to_string(pos_) + ", have " +
                             std::to_string(data_.size() - pos_) + ")");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint16_t ByteReader::read_u16() {
  const auto* p = take(2);
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t ByteReader::read_u32() {
  const auto* p = take(4);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t ByteReader::read_u64() {
  const auto* p = take(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::int16_t ByteReader::read_i16() {
  return static_cast<std::int16_t>(read_u16());
}

std::int32_t ByteReader::read_i32() {
  return static_cast<std::int32_t>(read_u32());
}

std::int64_t ByteReader::read_i64() {
  return static_cast<std::int64_t>(read_u64());
}

double ByteReader::read_f64() { return std::bit_cast<double>(read_u64()); }

void ByteReader::skip(std::size_t n) { take(n); }

std::string_view ByteReader::read_bytes() {
  const std::uint32_t n = read_u32();
  const auto* p = take(n);
  return {reinterpret_cast<const char*>(p), n};
}

}  // namespace gpuvar::binio
