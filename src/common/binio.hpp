// Little-endian binary serialization primitives for spill/checkpoint
// formats.
//
// The shard spill format (telemetry/shard.hpp) must be bit-exact: a
// frame written on one machine and read back anywhere reproduces the
// same column bytes, so the campaign engine's merged output is
// identical whether a bucket stayed resident or round-tripped through
// disk. Text formatting cannot promise that for doubles, so every
// field here is a fixed-width little-endian integer and doubles travel
// as their raw IEEE-754 bit pattern. Writers append into a growing
// byte buffer (one ostream write per shard, no per-field stream
// calls); the reader walks a bounded view and reports overruns as
// errors instead of reading garbage — a truncated file can never
// produce a silently short frame.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gpuvar::binio {

void append_u16(std::string& out, std::uint16_t v);
void append_u32(std::string& out, std::uint32_t v);
void append_u64(std::string& out, std::uint64_t v);
void append_i16(std::string& out, std::int16_t v);
void append_i32(std::string& out, std::int32_t v);
void append_i64(std::string& out, std::int64_t v);
/// Raw IEEE-754 bit pattern, little-endian: bit-exact round trip,
/// including negative zero, infinities and NaN payloads.
void append_f64(std::string& out, double v);
/// u32 length prefix + bytes.
void append_bytes(std::string& out, std::string_view bytes);

/// FNV-1a over a byte range; the integrity hash stored in shard
/// headers and manifests (content fingerprint, not cryptographic).
std::uint64_t fnv1a64(std::string_view bytes);

/// Incremental FNV-1a: feed bytes in any chunking; digest() equals
/// fnv1a64 over the concatenation. Lets callers fingerprint large
/// serializations (a whole merged campaign frame) without ever
/// materializing the serialized bytes.
class Fnv1a64 {
 public:
  void update(std::string_view bytes);
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;
};

/// Cursor over a serialized byte buffer. Every read checks the
/// remaining length and throws std::runtime_error mentioning `label`
/// (e.g. the file name) on overrun, so truncation surfaces as a clear
/// error at the exact field that fell off the end.
class ByteReader {
 public:
  ByteReader(std::string_view data, std::string label);

  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int16_t read_i16();
  std::int32_t read_i32();
  double read_f64();
  std::int64_t read_i64();
  /// Reads a u32 length prefix, then that many bytes (a view into the
  /// underlying buffer — valid while the buffer lives).
  std::string_view read_bytes();
  /// Advances past `n` bytes without decoding them; same overrun
  /// contract as the reads. Lets a column-pruned shard decode step
  /// over fixed-width columns it was not asked for.
  void skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  const unsigned char* take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  std::string label_;
};

}  // namespace gpuvar::binio
