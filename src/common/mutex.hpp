// An annotated mutex + RAII lock for clang -Wthread-safety.
//
// std::mutex in libstdc++ carries no capability attributes, so clang's
// thread-safety analysis cannot check anything guarded by it. These thin
// wrappers add the attributes (zero runtime cost — same layout, inlined
// forwarding) while still exposing the native std::mutex handle for
// std::condition_variable, which only accepts
// std::unique_lock<std::mutex>.
//
// Condition-variable waits should be written as explicit predicate
// loops (`while (!pred()) cv.wait(lock.native());`) rather than the
// predicate-lambda overload: the analysis treats a lambda body as a
// separate function and cannot see that the capability is held inside.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace gpuvar {

class GPUVAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPUVAR_ACQUIRE() { mu_.lock(); }
  void unlock() GPUVAR_RELEASE() { mu_.unlock(); }
  bool try_lock() GPUVAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for std::condition_variable::wait only. Holding
  /// it does not convince the analysis the capability is held — keep all
  /// guarded accesses inside a MutexLock scope.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over gpuvar::Mutex, annotated so clang tracks the held
/// capability through the scope. Backed by std::unique_lock so waits on
/// a condition variable can temporarily release it.
class GPUVAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GPUVAR_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() GPUVAR_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The underlying unique_lock, for condition_variable::wait. The wait
  /// re-acquires before returning, so the capability stays held from the
  /// analysis' point of view across the call.
  std::unique_lock<std::mutex>& native() { return lock_; }

  /// Explicit early release (e.g. dropping the lock before rethrowing an
  /// exception captured under it).
  void unlock() GPUVAR_RELEASE() { lock_.unlock(); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace gpuvar
