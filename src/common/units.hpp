// Unit conventions used throughout gpuvar.
//
// We use plain doubles with suffix-documented aliases rather than strong
// types: the simulator's inner loop is arithmetic-heavy and the aliases keep
// signatures self-documenting without wrapper overhead. Conventions:
//   time        — seconds (s); sampling intervals in seconds as well
//   frequency   — megahertz (MHz), matching nvidia-smi / rocm-smi output
//   power       — watts (W)
//   temperature — degrees Celsius (°C)
//   voltage     — volts (V)
//   energy      — joules (J)
#pragma once

namespace gpuvar {

using Seconds = double;
using MegaHertz = double;
using Watts = double;
using Celsius = double;
using Volts = double;
using Joules = double;

/// Minimum sampling interval supported by the vendor profilers the paper
/// uses (nvprof / rocm-smi): 1 ms. The telemetry sampler enforces this floor.
inline constexpr Seconds kMinSamplingInterval = 1e-3;

/// Milliseconds helper for reporting (the paper reports runtimes in ms).
inline constexpr double to_ms(Seconds s) { return s * 1e3; }
inline constexpr Seconds from_ms(double ms) { return ms * 1e-3; }

}  // namespace gpuvar
