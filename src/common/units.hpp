// Dimensional types used throughout gpuvar.
//
// Every physical quantity the simulator propagates — seconds, megahertz,
// watts, degrees Celsius, volts, joules — is a distinct zero-overhead
// strong type. `Quantity<Tag>` wraps exactly one double, every operation
// is constexpr and inlines to the identical scalar arithmetic, and the
// tag makes unit confusion a *compile error*:
//
//   * construction from a raw double is explicit (`Watts{250.0}`), so a
//     bare number can never silently become a power;
//   * addition/subtraction/comparison only exist between the same unit
//     (`Watts + Celsius` does not compile — the exact bug class that
//     swapped-argument telemetry plumbing introduces);
//   * the physically meaningful cross-unit products are spelled out:
//     Watts × Seconds → Joules, Joules / Seconds → Watts,
//     Joules / Watts → Seconds; a ratio of like units is a plain double.
//
// Literals (`250.0_W`, `1530.0_mhz`, `85.0_degC`, `1.5_ms`) make typed
// constants as cheap to write as raw ones. Implementation files doing
// model math that has no named unit (e.g. MHz·s accumulators, °C/W
// thermal resistances) drop to doubles explicitly via `.value()` — the
// rule enforced by tools/gpuvar_lint is that *public header signatures*
// never traffic in raw doubles for physical quantities.
//
// Unit conventions (matching nvidia-smi / rocm-smi output):
//   time        — seconds (s); sampling intervals in seconds as well
//   frequency   — megahertz (MHz)
//   power       — watts (W)
//   temperature — degrees Celsius (°C)
//   voltage     — volts (V)
//   energy      — joules (J)
#pragma once

namespace gpuvar {

/// A zero-cost strong typedef over double, tagged by unit. Same-unit
/// arithmetic, scalar scaling, and ordering are defined here; physically
/// meaningful cross-unit rules are free operators below.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The raw magnitude in the unit's canonical scale. The only exit to
  /// untyped arithmetic; call sites document the unit by naming the type.
  [[nodiscard]] constexpr double value() const { return v_; }
  constexpr explicit operator double() const { return v_; }

  // --- same-unit arithmetic ---
  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity operator+() const { return *this; }
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  // --- dimensionless scaling ---
  friend constexpr Quantity operator*(Quantity a, double k) {
    return Quantity{a.v_ * k};
  }
  friend constexpr Quantity operator*(double k, Quantity a) {
    return Quantity{k * a.v_};
  }
  friend constexpr Quantity operator/(Quantity a, double k) {
    return Quantity{a.v_ / k};
  }
  constexpr Quantity& operator*=(double k) {
    v_ *= k;
    return *this;
  }
  constexpr Quantity& operator/=(double k) {
    v_ /= k;
    return *this;
  }

  /// Ratio of like units is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }

  // --- ordering (same unit only) ---
  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double v_ = 0.0;
};

struct TimeTag {};
struct FrequencyTag {};
struct PowerTag {};
struct TemperatureTag {};
struct VoltageTag {};
struct EnergyTag {};

using Seconds = Quantity<TimeTag>;
using MegaHertz = Quantity<FrequencyTag>;
using Watts = Quantity<PowerTag>;
using Celsius = Quantity<TemperatureTag>;
using Volts = Quantity<VoltageTag>;
using Joules = Quantity<EnergyTag>;

// --- physically meaningful cross-unit rules ---
constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}

/// Magnitude of a signed quantity (e.g. a temperature delta).
template <class Tag>
constexpr Quantity<Tag> abs(Quantity<Tag> q) {
  return q.value() < 0.0 ? -q : q;
}

// --- literals ---
inline namespace unit_literals {
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_ms(long double v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr Seconds operator""_ms(unsigned long long v) {
  return Seconds{static_cast<double>(v) * 1e-3};
}
constexpr MegaHertz operator""_mhz(long double v) {
  return MegaHertz{static_cast<double>(v)};
}
constexpr MegaHertz operator""_mhz(unsigned long long v) {
  return MegaHertz{static_cast<double>(v)};
}
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr Celsius operator""_degC(long double v) {
  return Celsius{static_cast<double>(v)};
}
constexpr Celsius operator""_degC(unsigned long long v) {
  return Celsius{static_cast<double>(v)};
}
constexpr Volts operator""_V(long double v) {
  return Volts{static_cast<double>(v)};
}
constexpr Volts operator""_V(unsigned long long v) {
  return Volts{static_cast<double>(v)};
}
constexpr Joules operator""_J(long double v) {
  return Joules{static_cast<double>(v)};
}
constexpr Joules operator""_J(unsigned long long v) {
  return Joules{static_cast<double>(v)};
}
}  // namespace unit_literals

/// Absolute zero — the hard floor any simulated temperature must respect;
/// the thermal model asserts against it in debug mode.
inline constexpr Celsius kAbsoluteZero{-273.15};

/// Minimum sampling interval supported by the vendor profilers the paper
/// uses (nvprof / rocm-smi): 1 ms. The telemetry sampler enforces this floor.
inline constexpr Seconds kMinSamplingInterval{1e-3};

/// Milliseconds helpers for reporting (the paper reports runtimes in ms).
inline constexpr double to_ms(Seconds s) { return s.value() * 1e3; }
inline constexpr Seconds from_ms(double ms) { return Seconds{ms * 1e-3}; }

}  // namespace gpuvar
