// Minimal CSV reader (RFC 4180 quoting), the inverse of CsvWriter — lets
// the analysis pipeline consume measurements produced elsewhere (a real
// NVML collector, the paper artifact's outputs, a previous campaign).
#pragma once

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gpuvar {

class CsvReader {
 public:
  /// Parses the whole stream; the first row is the header.
  /// Throws std::invalid_argument on malformed input (unterminated
  /// quotes, rows wider than the header).
  explicit CsvReader(std::istream& in);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t rows() const { return rows_.size(); }

  bool has_column(const std::string& name) const;

  /// Field by row index and column name. Throws on unknown column or
  /// out-of-range row.
  const std::string& field(std::size_t row, const std::string& column) const;

  /// Typed accessors; throw std::invalid_argument on parse failure.
  double number(std::size_t row, const std::string& column) const;
  long long integer(std::size_t row, const std::string& column) const;

 private:
  std::vector<std::string> columns_;
  std::map<std::string, std::size_t> index_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses one CSV line (exposed for testing). Handles quoted fields with
/// embedded commas/quotes; `line` must be a complete logical record.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace gpuvar
