#include "common/csv.hpp"

#include "common/numfmt.hpp"
#include "common/require.hpp"

namespace gpuvar {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  GPUVAR_REQUIRE_MSG(!header_written_, "header already written");
  GPUVAR_REQUIRE_MSG(rows_ == 0, "header must precede rows");
  GPUVAR_REQUIRE(!columns.empty());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) buf_.push_back(',');
    buf_ += csv_escape(columns[i]);
  }
  buf_.push_back('\n');
  header_written_ = true;
  column_count_ = columns.size();
}

void CsvWriter::begin_field() {
  if (fields_in_row_) buf_.push_back(',');
  ++fields_in_row_;
  row_started_ = true;
}

CsvWriter& CsvWriter::add(std::string_view field) {
  begin_field();
  // Escape straight into the buffer (csv_escape would allocate a
  // temporary per field, which the frame export pays per cell).
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    buf_.append(field);
  } else {
    buf_.push_back('"');
    for (char c : field) {
      if (c == '"') buf_.push_back('"');
      buf_.push_back(c);
    }
    buf_.push_back('"');
  }
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  // std::to_chars, not printf: %g consults LC_NUMERIC, so a European
  // locale would turn "3.14" into "3,14" and corrupt the CSV.
  begin_field();
  append_double(buf_, value);
  return *this;
}

CsvWriter& CsvWriter::add(long long value) {
  begin_field();
  append_int(buf_, value);
  return *this;
}

void CsvWriter::end_row() {
  GPUVAR_REQUIRE_MSG(row_started_, "end_row without fields");
  if (column_count_ != 0) {
    GPUVAR_REQUIRE_MSG(fields_in_row_ == column_count_,
                       "row width does not match header");
  }
  buf_.push_back('\n');
  row_started_ = false;
  fields_in_row_ = 0;
  ++rows_;
  if (buf_.size() >= kFlushBytes) flush();
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  GPUVAR_REQUIRE(!fields.empty());
  for (const auto& f : fields) add(f);
  end_row();
}

void CsvWriter::flush() {
  if (buf_.empty()) return;
  out_->write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

}  // namespace gpuvar
