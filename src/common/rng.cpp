#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace gpuvar {

std::uint64_t derive_seed(std::uint64_t master, std::string_view path) {
  // FNV-1a over the path bytes.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : path) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  // Mix with the master seed; two rounds of SplitMix to decorrelate.
  SplitMix64 mixer(master ^ h);
  mixer.next();
  return mixer.next();
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 init(seed);
  for (auto& s : s_) s = init.next();
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GPUVAR_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  GPUVAR_REQUIRE(n > 0);
  // Rejection to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. u1 in (0, 1] to avoid log(0).
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  GPUVAR_REQUIRE(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) {
  GPUVAR_REQUIRE(lo < hi);
  if (stddev == 0.0) return std::clamp(mean, lo, hi);
  for (int i = 0; i < 1000; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  GPUVAR_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  GPUVAR_REQUIRE(k <= n);
  // Floyd's algorithm: O(k) expected, no O(n) shuffle needed.
  std::vector<std::uint64_t> chosen;
  chosen.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_index(j + 1);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  return chosen;
}

}  // namespace gpuvar
