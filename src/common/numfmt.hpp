// Locale-independent number formatting and parsing.
//
// printf-family float conversions (and std::to_string / strtod / stod)
// consult LC_NUMERIC: under a European locale "3.14" becomes "3,14" and
// round-trips break. Every number that crosses an interchange boundary
// (CSV export/import, CLI option parsing) goes through these
// std::to_chars / std::from_chars wrappers instead, so the bytes are
// identical in every environment.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gpuvar {

/// Formats like printf "%.<precision>g" in the C locale. Non-finite
/// values format as "nan", "inf", "-inf".
std::string format_double(double value, int precision = 10);

/// Locale-independent integer formatting.
std::string format_int(long long value);

/// Appends format_double's exact bytes to `out` without a temporary
/// string — the per-cell path of the buffered CSV writer.
void append_double(std::string& out, double value, int precision = 10);

/// Appends format_int's exact bytes to `out` without a temporary.
void append_int(std::string& out, long long value);

/// Parses a complete double ("inf"/"nan" accepted, optional leading '+').
/// Returns false if `s` is empty, trails garbage, or overflows.
bool parse_double(std::string_view s, double& out);

/// Parses a complete base-10 integer. Same contract as parse_double.
bool parse_int(std::string_view s, long long& out);

/// Lowercase hex with no prefix or padding — the rendering of content
/// hashes in manifests and campaign summaries.
std::string format_hex(std::uint64_t v);

/// Parses a complete hex integer (no prefix). Same contract as
/// parse_int.
bool parse_hex(std::string_view s, std::uint64_t& out);

}  // namespace gpuvar
