// Clang thread-safety annotation macros.
//
// Under clang these expand to the -Wthread-safety attributes, turning
// mutex discipline into a compile-time check (tools/ci.sh runs a
// -Werror=thread-safety job when clang is available); under other
// compilers they expand to nothing. gpuvar-analyzer independently
// requires every std::mutex member to carry GPUVAR_GUARDED_BY
// annotations, so the discipline is enforced even on GCC-only hosts.
//
// Annotate with the gpuvar::Mutex wrapper from common/mutex.hpp, not raw
// std::mutex: libstdc++'s std::mutex has no capability attributes, so
// clang's analysis silently verifies nothing against it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define GPUVAR_THREAD_ANNOTATION_OK 1
#else
#define GPUVAR_THREAD_ANNOTATION_OK 0
#endif

#if GPUVAR_THREAD_ANNOTATION_OK
#define GPUVAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPUVAR_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define GPUVAR_CAPABILITY(x) GPUVAR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability for its lifetime.
#define GPUVAR_SCOPED_CAPABILITY GPUVAR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GPUVAR_GUARDED_BY(x) GPUVAR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define GPUVAR_PT_GUARDED_BY(x) GPUVAR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capability held.
#define GPUVAR_REQUIRES(...) \
  GPUVAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the capability NOT held.
#define GPUVAR_EXCLUDES(...) \
  GPUVAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the capability.
#define GPUVAR_ACQUIRE(...) \
  GPUVAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GPUVAR_RELEASE(...) \
  GPUVAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GPUVAR_TRY_ACQUIRE(...) \
  GPUVAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (condition-variable
/// re-acquisition, test harness poking). Use sparingly and justify.
#define GPUVAR_NO_THREAD_SAFETY_ANALYSIS \
  GPUVAR_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Returns a reference to the underlying capability (for asserting
/// lock identity across wrappers).
#define GPUVAR_RETURN_CAPABILITY(x) \
  GPUVAR_THREAD_ANNOTATION(lock_returned(x))
