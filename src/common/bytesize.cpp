#include "common/bytesize.hpp"

#include "common/numfmt.hpp"
#include "common/require.hpp"

namespace gpuvar {

std::uint64_t parse_byte_size(const std::string& text,
                              const std::string& flag) {
  if (text == "unlimited") return kUnlimitedBytes;
  std::string digits = text;
  std::uint64_t scale = 1;
  if (!digits.empty()) {
    const char suffix = digits.back();
    if (suffix == 'K' || suffix == 'k') scale = 1ull << 10;
    if (suffix == 'M' || suffix == 'm') scale = 1ull << 20;
    if (suffix == 'G' || suffix == 'g') scale = 1ull << 30;
    if (scale != 1) digits.pop_back();
  }
  long long value = 0;
  GPUVAR_REQUIRE_MSG(parse_int(digits, value) && value >= 0,
                     "bad " + flag + " '" + text +
                         "' (want BYTES, BYTES with K/M/G, or 'unlimited')");
  // The scaled product must fit in 64 bits: a wrapped value would
  // silently become an arbitrary small (or effectively unlimited)
  // budget instead of the error the user needs to see.
  GPUVAR_REQUIRE_MSG(
      static_cast<std::uint64_t>(value) <= ~std::uint64_t{0} / scale,
      flag + " '" + text + "' overflows a 64-bit byte count");
  return static_cast<std::uint64_t>(value) * scale;
}

}  // namespace gpuvar
