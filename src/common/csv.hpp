// Minimal CSV writer for telemetry and experiment exports.
//
// Quotes fields per RFC 4180 only when needed (comma, quote, newline).
//
// The writer is buffered: fields append into an internal byte buffer
// (numbers through std::to_chars, escaping done in place — no per-field
// or per-row std::string temporaries), and whole chunks of rows go to
// the ostream once the buffer passes the flush threshold. Campaign
// exports are millions of rows; one stream write per ~16 KiB beats one
// operator<< per field by a wide margin. Call flush() — or let the
// destructor do it — before reading the underlying stream.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gpuvar {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}
  /// Flushes any buffered rows.
  ~CsvWriter() { flush(); }

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes the header row. Must be called at most once, before any row.
  void header(const std::vector<std::string>& columns);

  /// Begins a row; append fields with add(), finish with end_row().
  CsvWriter& add(std::string_view field);
  CsvWriter& add(double value);
  CsvWriter& add(long long value);
  CsvWriter& add(int value) { return add(static_cast<long long>(value)); }
  CsvWriter& add(std::size_t value) {
    return add(static_cast<long long>(value));
  }
  void end_row();

  /// Writes a full row in one call.
  void row(const std::vector<std::string>& fields);

  /// Pushes buffered complete rows to the stream (rows only ever reach
  /// the stream whole — end_row flushes automatically past the chunk
  /// threshold, so callers normally never need this before the end).
  void flush();

  std::size_t rows_written() const { return rows_; }

 private:
  /// Buffered bytes before end_row hands a chunk to the stream.
  static constexpr std::size_t kFlushBytes = 16 * 1024;

  void begin_field();

  std::ostream* out_;
  std::string buf_;
  bool row_started_ = false;
  bool header_written_ = false;
  std::size_t column_count_ = 0;   // 0 until the header is known
  std::size_t fields_in_row_ = 0;
  std::size_t rows_ = 0;
};

/// Escape a single CSV field (exposed for testing).
std::string csv_escape(std::string_view field);

}  // namespace gpuvar
