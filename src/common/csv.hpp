// Minimal CSV writer for telemetry and experiment exports.
//
// Quotes fields per RFC 4180 only when needed (comma, quote, newline).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace gpuvar {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row. Must be called at most once, before any row.
  void header(const std::vector<std::string>& columns);

  /// Begins a row; append fields with add(), finish with end_row().
  CsvWriter& add(std::string_view field);
  CsvWriter& add(double value);
  CsvWriter& add(long long value);
  CsvWriter& add(int value) { return add(static_cast<long long>(value)); }
  CsvWriter& add(std::size_t value) {
    return add(static_cast<long long>(value));
  }
  void end_row();

  /// Writes a full row in one call.
  void row(const std::vector<std::string>& fields);

  std::size_t rows_written() const { return rows_; }

 private:
  void put(std::string_view field);

  std::ostream* out_;
  bool row_started_ = false;
  bool header_written_ = false;
  std::size_t column_count_ = 0;   // 0 until the header is known
  std::size_t fields_in_row_ = 0;
  std::size_t rows_ = 0;
};

/// Escape a single CSV field (exposed for testing).
std::string csv_escape(std::string_view field);

}  // namespace gpuvar
