// Dense single-precision matrices for the host SGEMM path.
#pragma once

#include <cstddef>
#include <vector>

namespace gpuvar { class Rng; }  // was: #include "common/rng.hpp"

namespace gpuvar::host {

/// Row-major dense float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<float> data_;
};

/// Uniform random matrix in [-1, 1).
Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng);

/// Max absolute elementwise difference.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace gpuvar::host
