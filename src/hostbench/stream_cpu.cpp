#include "hostbench/stream_cpu.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace gpuvar::host {

namespace {

template <typename Fn>
void over_range(std::size_t n, bool parallel, Fn&& fn) {
  constexpr std::size_t kChunk = 1 << 16;
  if (!parallel || n < 2 * kChunk) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::size_t n_chunks = (n + kChunk - 1) / kChunk;
  gpuvar::parallel_for(n_chunks, [&](std::size_t ci) {
    const std::size_t lo = ci * kChunk;
    fn(lo, std::min(n, lo + kChunk));
  });
}

}  // namespace

void triad(std::span<double> a, std::span<const double> b,
           std::span<const double> c, double scalar, bool parallel) {
  GPUVAR_REQUIRE(a.size() == b.size() && a.size() == c.size());
  over_range(a.size(), parallel, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + scalar * c[i];
  });
}

void stream_copy(std::span<double> a, std::span<const double> b,
                 bool parallel) {
  GPUVAR_REQUIRE(a.size() == b.size());
  over_range(a.size(), parallel, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) a[i] = b[i];
  });
}

double triad_bytes(std::size_t n) {
  return static_cast<double>(n) * 3.0 * sizeof(double);
}

}  // namespace gpuvar::host
