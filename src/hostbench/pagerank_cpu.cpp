#include "hostbench/pagerank_cpu.hpp"

#include <cmath>

#include "common/require.hpp"
#include "hostbench/spmv_cpu.hpp"
#include "hostbench/graph.hpp"

namespace gpuvar::host {

PageRankResult pagerank(const CsrGraph& g, const PageRankOptions& opts) {
  GPUVAR_REQUIRE(g.n > 0);
  GPUVAR_REQUIRE(opts.damping > 0.0 && opts.damping < 1.0);
  GPUVAR_REQUIRE(opts.max_iterations >= 1);

  const double n = static_cast<double>(g.n);
  PageRankResult res;
  res.rank.assign(g.n, 1.0 / n);
  std::vector<double> next(g.n, 0.0);

  // Mass of dangling vertices (out-degree 0) is redistributed uniformly.
  std::vector<std::size_t> dangling;
  for (std::size_t v = 0; v < g.n; ++v) {
    if (g.out_degree[v] == 0) dangling.push_back(v);
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    pagerank_spmv(g, res.rank, next, opts.parallel);
    double dangling_mass = 0.0;
    for (std::size_t v : dangling) dangling_mass += res.rank[v];

    const double base =
        (1.0 - opts.damping) / n + opts.damping * dangling_mass / n;
    double delta = 0.0;
    for (std::size_t v = 0; v < g.n; ++v) {
      const double updated = base + opts.damping * next[v];
      delta += std::abs(updated - res.rank[v]);
      res.rank[v] = updated;
    }
    res.iterations = it + 1;
    res.final_delta = delta;
    if (delta < opts.tolerance) {
      res.converged = true;
      break;
    }
  }
  return res;
}

}  // namespace gpuvar::host
