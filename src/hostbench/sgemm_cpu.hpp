// Cache-blocked, thread-parallel single-precision GEMM: the repo's real
// (non-simulated) compute kernel, used by the host measurement path and
// validated against a naive reference in the tests.
#pragma once

#include <cstddef>

namespace gpuvar::host { class Matrix; }  // was: #include "hostbench/matrix.hpp"

namespace gpuvar::host {

struct SgemmOptions {
  std::size_t block_m = 64;
  std::size_t block_n = 256;
  std::size_t block_k = 256;
  bool parallel = true;  ///< parallelize over row blocks
};

/// C = alpha·A·B + beta·C. Shapes: A is m×k, B is k×n, C is m×n.
void sgemm(float alpha, const Matrix& a, const Matrix& b, float beta,
           Matrix& c, const SgemmOptions& opts = {});

/// Naive triple loop (reference for validation).
void sgemm_naive(float alpha, const Matrix& a, const Matrix& b, float beta,
                 Matrix& c);

/// FLOPs of an m×n×k GEMM.
double sgemm_flops(std::size_t m, std::size_t n, std::size_t k);

}  // namespace gpuvar::host
