// Compressed-sparse-row graphs and synthetic generators for the PageRank
// host path. The "circuit" generator produces rajat30-like structure:
// a strong banded diagonal (circuit locality) plus sparse random fill-in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpuvar { class Rng; }  // was: #include "common/rng.hpp"

namespace gpuvar::host {

/// CSR adjacency: edges are (row -> col). For pull-based PageRank the
/// graph should store *incoming* edges per row.
struct CsrGraph {
  std::size_t n = 0;                   ///< vertices
  std::vector<std::uint32_t> row_ptr;  ///< size n+1
  std::vector<std::uint32_t> col_idx;  ///< size nnz
  std::vector<std::uint32_t> out_degree;  ///< per-vertex out-degree

  std::size_t nnz() const { return col_idx.size(); }
  void validate() const;
};

/// Builds a CSR graph from an edge list (u -> v), deduplicated and sorted.
CsrGraph csr_from_edges(std::size_t n,
                        std::vector<std::pair<std::uint32_t, std::uint32_t>>
                            edges);

/// Uniform random digraph with expected `avg_degree` edges per vertex.
CsrGraph random_graph(std::size_t n, double avg_degree, Rng& rng);

/// rajat30-like circuit graph: banded diagonal of half-width `band` plus
/// `fill_degree` random long-range edges per vertex.
CsrGraph circuit_graph(std::size_t n, std::size_t band, double fill_degree,
                       Rng& rng);

}  // namespace gpuvar::host
