#include "hostbench/graph.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace gpuvar::host {

void CsrGraph::validate() const {
  GPUVAR_REQUIRE(row_ptr.size() == n + 1);
  GPUVAR_REQUIRE(row_ptr.front() == 0);
  GPUVAR_REQUIRE(row_ptr.back() == col_idx.size());
  GPUVAR_REQUIRE(out_degree.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    GPUVAR_REQUIRE(row_ptr[i] <= row_ptr[i + 1]);
  }
  for (auto c : col_idx) GPUVAR_REQUIRE(c < n);
}

CsrGraph csr_from_edges(
    std::size_t n,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  GPUVAR_REQUIRE(n > 0);
  // Pull-based: store edge (u -> v) under row v (incoming edges of v).
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  CsrGraph g;
  g.n = n;
  g.row_ptr.assign(n + 1, 0);
  g.col_idx.reserve(edges.size());
  g.out_degree.assign(n, 0);
  for (const auto& [u, v] : edges) {
    GPUVAR_REQUIRE(u < n && v < n);
    ++g.row_ptr[v + 1];
    ++g.out_degree[u];
    g.col_idx.push_back(u);
  }
  for (std::size_t i = 0; i < n; ++i) g.row_ptr[i + 1] += g.row_ptr[i];
  g.validate();
  return g;
}

CsrGraph random_graph(std::size_t n, double avg_degree, Rng& rng) {
  GPUVAR_REQUIRE(n >= 2);
  GPUVAR_REQUIRE(avg_degree > 0.0);
  const auto target =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(target);
  for (std::size_t e = 0; e < target; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.uniform_index(n));
    auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (u == v) v = (v + 1) % static_cast<std::uint32_t>(n);
    edges.emplace_back(u, v);
  }
  return csr_from_edges(n, std::move(edges));
}

CsrGraph circuit_graph(std::size_t n, std::size_t band, double fill_degree,
                       Rng& rng) {
  GPUVAR_REQUIRE(n >= 2);
  GPUVAR_REQUIRE(band >= 1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n * (band + static_cast<std::size_t>(fill_degree) + 1));
  for (std::size_t i = 0; i < n; ++i) {
    // Banded local connectivity (both directions, like a circuit netlist).
    for (std::size_t d = 1; d <= band; ++d) {
      if (i + d < n) {
        edges.emplace_back(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(i + d));
        edges.emplace_back(static_cast<std::uint32_t>(i + d),
                           static_cast<std::uint32_t>(i));
      }
    }
    // Long-range fill-in (global nets: clock, power rails).
    const auto fills = static_cast<std::size_t>(fill_degree);
    for (std::size_t f = 0; f < fills; ++f) {
      auto v = static_cast<std::uint32_t>(rng.uniform_index(n));
      if (v == i) continue;
      edges.emplace_back(static_cast<std::uint32_t>(i), v);
    }
  }
  return csr_from_edges(n, std::move(edges));
}

}  // namespace gpuvar::host
