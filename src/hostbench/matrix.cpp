#include "hostbench/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace gpuvar::host {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  GPUVAR_REQUIRE(rows > 0 && cols > 0);
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return m;
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  GPUVAR_REQUIRE(a.same_shape(b));
  float worst = 0.0f;
  const std::size_t n = a.rows() * a.cols();
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

}  // namespace gpuvar::host
