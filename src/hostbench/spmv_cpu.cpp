#include "hostbench/spmv_cpu.hpp"

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "hostbench/graph.hpp"

namespace gpuvar::host {

namespace {

template <typename RowFn>
void over_rows(const CsrGraph& g, bool parallel, RowFn&& fn) {
  if (!parallel || g.n < 4096) {
    for (std::size_t v = 0; v < g.n; ++v) fn(v);
    return;
  }
  // Chunked parallel sweep; rows are independent.
  const std::size_t chunk = 4096;
  const std::size_t n_chunks = (g.n + chunk - 1) / chunk;
  gpuvar::parallel_for(n_chunks, [&](std::size_t ci) {
    const std::size_t lo = ci * chunk;
    const std::size_t hi = std::min(g.n, lo + chunk);
    for (std::size_t v = lo; v < hi; ++v) fn(v);
  });
}

}  // namespace

void pagerank_spmv(const CsrGraph& g, std::span<const double> x,
                   std::span<double> y, bool parallel) {
  GPUVAR_REQUIRE(x.size() == g.n && y.size() == g.n);
  over_rows(g, parallel, [&](std::size_t v) {
    double acc = 0.0;
    for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      const std::uint32_t u = g.col_idx[e];
      const double deg = static_cast<double>(g.out_degree[u]);
      if (deg > 0.0) acc += x[u] / deg;
    }
    y[v] = acc;
  });
}

void spmv(const CsrGraph& g, std::span<const double> x, std::span<double> y,
          bool parallel) {
  GPUVAR_REQUIRE(x.size() == g.n && y.size() == g.n);
  over_rows(g, parallel, [&](std::size_t v) {
    double acc = 0.0;
    for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      acc += x[g.col_idx[e]];
    }
    y[v] = acc;
  });
}

}  // namespace gpuvar::host
