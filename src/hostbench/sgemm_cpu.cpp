#include "hostbench/sgemm_cpu.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "hostbench/matrix.hpp"

namespace gpuvar::host {

double sgemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

namespace {

/// One M-block of rows: i-k-j loop order so the innermost loop streams
/// rows of B and C (unit stride, auto-vectorizable).
void sgemm_block_rows(float alpha, const Matrix& a, const Matrix& b,
                      Matrix& c, std::size_t i0, std::size_t i1,
                      const SgemmOptions& opts) {
  const std::size_t n = b.cols();
  const std::size_t k = a.cols();
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (std::size_t kk = 0; kk < k; kk += opts.block_k) {
    const std::size_t k1 = std::min(k, kk + opts.block_k);
    for (std::size_t jj = 0; jj < n; jj += opts.block_n) {
      const std::size_t j1 = std::min(n, jj + opts.block_n);
      for (std::size_t i = i0; i < i1; ++i) {
        float* crow = cd + i * n;
        const float* arow = ad + i * k;
        for (std::size_t kx = kk; kx < k1; ++kx) {
          const float aik = alpha * arow[kx];
          const float* brow = bd + kx * n;
          for (std::size_t j = jj; j < j1; ++j) {
            crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

void sgemm(float alpha, const Matrix& a, const Matrix& b, float beta,
           Matrix& c, const SgemmOptions& opts) {
  GPUVAR_REQUIRE(a.cols() == b.rows());
  GPUVAR_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols());
  GPUVAR_REQUIRE(opts.block_m > 0 && opts.block_n > 0 && opts.block_k > 0);

  const std::size_t m = a.rows();
  // Scale C by beta first (single pass).
  if (beta != 1.0f) {
    float* cd = c.data();
    const std::size_t total = c.rows() * c.cols();
    for (std::size_t i = 0; i < total; ++i) cd[i] *= beta;
  }

  const std::size_t n_blocks = (m + opts.block_m - 1) / opts.block_m;
  auto run_block = [&](std::size_t bi) {
    const std::size_t i0 = bi * opts.block_m;
    const std::size_t i1 = std::min(m, i0 + opts.block_m);
    sgemm_block_rows(alpha, a, b, c, i0, i1, opts);
  };
  if (opts.parallel && n_blocks > 1) {
    parallel_for(n_blocks, run_block);
  } else {
    for (std::size_t bi = 0; bi < n_blocks; ++bi) run_block(bi);
  }
}

void sgemm_naive(float alpha, const Matrix& a, const Matrix& b, float beta,
                 Matrix& c) {
  GPUVAR_REQUIRE(a.cols() == b.rows());
  GPUVAR_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t kx = 0; kx < a.cols(); ++kx) {
        acc += a.at(i, kx) * b.at(kx, j);
      }
      c.at(i, j) = alpha * acc + beta * c.at(i, j);
    }
  }
}

}  // namespace gpuvar::host
