// Pull-based PageRank on CSR (the paper's §V-D workload, real version).
#pragma once

#include <vector>

namespace gpuvar::host { struct CsrGraph; }  // was: #include "hostbench/graph.hpp"

namespace gpuvar::host {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-8;  ///< L1 change per sweep to declare convergence
  int max_iterations = 100;
  bool parallel = true;
};

struct PageRankResult {
  std::vector<double> rank;
  int iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

PageRankResult pagerank(const CsrGraph& g, const PageRankOptions& opts = {});

}  // namespace gpuvar::host
