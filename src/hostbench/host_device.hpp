// The real-hardware measurement path: wall-clock timed kernel runs shaped
// like the simulator's results so the same statistics/variability pipeline
// consumes either source. On a real deployment this is where NVML /
// rocm-smi reads would be plugged in; offline we time host kernels, which
// still exercises the full collect → record → analyze flow end to end.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gpuvar::host {

struct HostKernelResult {
  std::string name;
  Seconds duration{};
  double work_flops = 0.0;
  double work_bytes = 0.0;

  double gflops() const {
    return duration > Seconds{} ? work_flops / duration.value() * 1e-9 : 0.0;
  }
  double gbytes_per_s() const {
    return duration > Seconds{} ? work_bytes / duration.value() * 1e-9 : 0.0;
  }
};

/// Times one invocation of `fn` with a steady clock.
HostKernelResult measure_kernel(const std::string& name, double flops,
                                double bytes,
                                const std::function<void()>& fn);

/// Repeats a kernel `reps` times after `warmup` discarded runs; returns
/// one result per measured repetition (feed the durations into the stats
/// pipeline exactly like simulated kernel durations).
std::vector<HostKernelResult> measure_repeated(
    const std::string& name, double flops, double bytes, int warmup,
    int reps, const std::function<void()>& fn);

}  // namespace gpuvar::host
