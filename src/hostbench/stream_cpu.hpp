// STREAM-style bandwidth kernels (the memory-bound end of the host path).
#pragma once

#include <cstddef>
#include <span>

namespace gpuvar::host {

/// a[i] = b[i] + scalar * c[i] (STREAM triad). Parallel over chunks.
void triad(std::span<double> a, std::span<const double> b,
           std::span<const double> c, double scalar, bool parallel = true);

/// a[i] = b[i] (STREAM copy).
void stream_copy(std::span<double> a, std::span<const double> b,
                 bool parallel = true);

/// Bytes moved by one triad sweep of length n.
double triad_bytes(std::size_t n);

}  // namespace gpuvar::host
