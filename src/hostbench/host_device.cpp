#include "hostbench/host_device.hpp"

#include <chrono>

#include "common/require.hpp"
#include "common/units.hpp"

namespace gpuvar::host {

HostKernelResult measure_kernel(const std::string& name, double flops,
                                double bytes,
                                const std::function<void()>& fn) {
  GPUVAR_REQUIRE(static_cast<bool>(fn));
  HostKernelResult r;
  r.name = name;
  r.work_flops = flops;
  r.work_bytes = bytes;
  // Real benchmark timing is the one legitimate wall-clock read in the
  // library: the measurement itself, never a seed or a result key.
  const auto t0 = std::chrono::steady_clock::now();  // gpuvar-lint: allow(wall-clock)
  fn();
  const auto t1 = std::chrono::steady_clock::now();  // gpuvar-lint: allow(wall-clock)
  r.duration = Seconds{std::chrono::duration<double>(t1 - t0).count()};
  return r;
}

std::vector<HostKernelResult> measure_repeated(
    const std::string& name, double flops, double bytes, int warmup,
    int reps, const std::function<void()>& fn) {
  GPUVAR_REQUIRE(warmup >= 0 && reps >= 1);
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<HostKernelResult> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    out.push_back(measure_kernel(name, flops, bytes, fn));
  }
  return out;
}

}  // namespace gpuvar::host
