// Parallel CSR sparse matrix-vector product (the PageRank inner kernel).
#pragma once

#include <span>
#include <vector>

namespace gpuvar::host { struct CsrGraph; }  // was: #include "hostbench/graph.hpp"

namespace gpuvar::host {

/// y[v] = sum over incoming edges (u -> v) of x[u] / out_degree(u).
/// This is the pull-based PageRank contraction. Parallel over rows.
void pagerank_spmv(const CsrGraph& g, std::span<const double> x,
                   std::span<double> y, bool parallel = true);

/// Plain CSR SpMV with unit weights: y[v] = Σ x[col].
void spmv(const CsrGraph& g, std::span<const double> x, std::span<double> y,
          bool parallel = true);

}  // namespace gpuvar::host
