// Metrics registry: sharded-by-thread counters, gauges, histograms.
//
// Determinism contract: a snapshot taken after the instrumented work
// completes is a pure function of the work, not of the schedule. That
// holds because every metric's merge is a commutative, associative
// *integer* operation — counters sum uint64 increments, gauges keep a
// high-water maximum, histograms count into power-of-two buckets — so
// any interleaving of the same increments produces the same merged
// value. (Floating-point sums are exactly the thing this design
// excludes: FP addition is not associative, so a schedule-dependent
// accumulation order would leak into the dump bytes.)
//
// Concurrency: each metric spreads its hot state across kMetricShards
// cache-line-sized cells indexed by a stable per-thread shard id, so
// parallel_for workers on different shards never contend on a line.
// Metric lookup locks the registry mutex once per (callsite, install)
// thanks to the epoch-checked handle behind GPUVAR_METRIC_COUNT.
//
// Cost model: with no Registry installed, GPUVAR_METRIC_* compile to
// one atomic pointer load and a branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gpuvar::obs {

inline constexpr std::size_t kMetricShards = 16;
inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

/// One cache line per cell so shards never false-share.
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> v{0};
};

/// Stable small shard index for the calling thread (assigned once per
/// thread from a global counter, reduced mod kMetricShards).
std::size_t shard_index();

}  // namespace detail

/// Monotonic event count. Merge = sum (commutative).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::ShardCell, kMetricShards> cells_;
};

/// High-water mark of a non-negative integer observation. Merge = max
/// (commutative); unlike a last-writer-wins gauge, the merged value
/// cannot depend on scheduling order.
class Gauge {
 public:
  void record_max(std::uint64_t v) {
    auto& cell = cells_[detail::shard_index()].v;
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (v > cur &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    any_.fetch_add(1, std::memory_order_relaxed);
  }
  bool has_value() const {
    return any_.load(std::memory_order_relaxed) != 0;
  }
  std::uint64_t value() const {
    std::uint64_t hi = 0;
    for (const auto& c : cells_) {
      const std::uint64_t v = c.v.load(std::memory_order_relaxed);
      if (v > hi) hi = v;
    }
    return hi;
  }

 private:
  std::array<detail::ShardCell, kMetricShards> cells_;
  std::atomic<std::uint64_t> any_{0};
};

/// Log2-bucketed distribution of non-negative integer observations
/// (e.g. durations in integer microseconds). Bucket b holds values v
/// with bit_width(v) == b, i.e. [2^(b-1), 2^b); bucket 0 holds v == 0.
/// All state is integer counts/extrema, so the merged snapshot is
/// schedule-independent.
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t total = 0;  ///< sum of observations
    std::uint64_t lo = 0;     ///< minimum observation (count > 0)
    std::uint64_t hi = 0;     ///< maximum observation (count > 0)
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
  };

  void record(std::uint64_t v);
  Snapshot snapshot() const;

  static std::size_t bucket_of(std::uint64_t v);

 private:
  std::array<detail::ShardCell, kMetricShards> count_;
  std::array<detail::ShardCell, kMetricShards> total_;
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> lo_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> hi_{0};
};

/// Deterministic merged view of a registry, ordered by metric name.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t count = 0;
  };
  struct GaugeRow {
    std::string name;
    bool set = false;
    std::uint64_t high_water = 0;
  };
  struct HistogramRow {
    std::string name;
    Histogram::Snapshot hist;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  std::size_t size() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// Named metrics, created on first use. Lookup locks; the returned
/// references stay valid (and lock-free to update) for the registry's
/// lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Merged snapshot in sorted-name order. Take it only after the
  /// instrumented work completes; then it is schedule-independent.
  MetricsSnapshot snapshot() const;

  std::size_t size() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GPUVAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GPUVAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GPUVAR_GUARDED_BY(mu_);
};

/// The installed registry, or nullptr (the macro fast path). Same
/// install discipline as the trace sink: never concurrently with
/// instrumented code.
Registry* metrics();
/// Bumped on every install; lets per-callsite handles cache a Counter*
/// and revalidate with one integer compare.
std::uint64_t metrics_epoch();
void install_metrics(Registry* registry);

/// Per-callsite counter cache behind GPUVAR_METRIC_COUNT/ADD: resolves
/// the name through the registry once per install epoch, then the hot
/// path is pointer-compare + sharded fetch_add.
class CounterHandle {
 public:
  Counter* resolve(Registry* registry, std::uint64_t epoch,
                   std::string_view name) {
    if (epoch != epoch_) {
      counter_ = &registry->counter(name);
      epoch_ = epoch;
    }
    return counter_;
  }

 private:
  std::uint64_t epoch_ = 0;  ///< 0 = never resolved (epochs start at 1)
  Counter* counter_ = nullptr;
};

/// Installs `registry` for a scope and restores the previous one on
/// exit.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(Registry* registry) : prev_(metrics()) {
    install_metrics(registry);
  }
  ~ScopedMetrics() { install_metrics(prev_); }

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  Registry* prev_;
};

}  // namespace gpuvar::obs

/// Adds `n` to counter `name` (a string literal). One atomic load and
/// a branch when no registry is installed.
#define GPUVAR_METRIC_ADD(name, n)                                          \
  do {                                                                      \
    if (::gpuvar::obs::Registry* gpuvar_obs_reg =                           \
            ::gpuvar::obs::metrics()) {                                     \
      static thread_local ::gpuvar::obs::CounterHandle gpuvar_obs_handle;   \
      gpuvar_obs_handle                                                     \
          .resolve(gpuvar_obs_reg, ::gpuvar::obs::metrics_epoch(), (name))  \
          ->add(static_cast<std::uint64_t>(n));                             \
    }                                                                       \
  } while (0)

/// Increments counter `name` by one.
#define GPUVAR_METRIC_COUNT(name) GPUVAR_METRIC_ADD(name, 1)

/// Raises gauge `name` to at least `v` (high-water mark).
#define GPUVAR_METRIC_MAX(name, v)                                   \
  do {                                                               \
    if (::gpuvar::obs::Registry* gpuvar_obs_reg =                    \
            ::gpuvar::obs::metrics()) {                              \
      gpuvar_obs_reg->gauge(name).record_max(                        \
          static_cast<std::uint64_t>(v));                            \
    }                                                                \
  } while (0)

/// Records `v` into histogram `name`.
#define GPUVAR_METRIC_HIST(name, v)                                  \
  do {                                                               \
    if (::gpuvar::obs::Registry* gpuvar_obs_reg =                    \
            ::gpuvar::obs::metrics()) {                              \
      gpuvar_obs_reg->histogram(name).record(                        \
          static_cast<std::uint64_t>(v));                            \
    }                                                                \
  } while (0)
