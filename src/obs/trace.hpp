// Structured trace layer: spans and instants on *simulation* time.
//
// The campaign runner is worth observing the way the paper observes
// GPUs — but a tracer that timestamps with a wall clock would make the
// trace bytes depend on when and where the run happened, breaking the
// repo-wide "pure function of (spec, seed)" contract (and the
// analyzer's wall-clock rule). Instead every event carries
//
//   * the *simulation-time* clock of its lane (microseconds), advanced
//     monotonically from device clocks via GPUVAR_TRACE_ADVANCE, and
//   * a per-lane emission sequence number,
//
// so the exported trace is byte-identical at any thread-pool size.
//
// A *lane* is a logical timeline — one per independent unit of work
// (the campaign, each node job), NOT one per OS thread. Worker threads
// adopt a lane for the duration of a task with LaneScope; because a
// lane is owned by exactly one task at a time (the FrameBuilder bucket
// discipline), its event stream is the same whatever thread ran it.
//
// Cost model: when no TraceSink is installed, GPUVAR_TRACE_SPAN and
// GPUVAR_TRACE_INSTANT compile to one thread-local pointer load and a
// branch — no allocation, no locking, no stored state. Library code
// must emit through these macros (the analyzer's raw-trace-api rule),
// never by calling the lane API directly, so the disabled fast path is
// preserved everywhere.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"

namespace gpuvar::obs {

/// Chrome trace-event phase of one event.
enum class TracePhase : char {
  kBegin = 'B',
  kEnd = 'E',
  kInstant = 'i',
};

/// One trace event. `cat`, `name`, and `arg_key` must be string
/// literals (or otherwise outlive the sink): events are recorded by
/// pointer so the hot path never copies or allocates.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  TracePhase phase = TracePhase::kInstant;
  /// Lane-local emission sequence (0, 1, 2, ...): the deterministic
  /// total order within a lane, independent of timestamp ties.
  std::uint64_t seq = 0;
  /// Lane-local simulation time, microseconds. Never wall-clock.
  double ts_us = 0.0;
  /// Optional single integer payload (nullptr key = no payload).
  const char* arg_key = nullptr;
  std::int64_t arg_val = 0;
};

/// One logical timeline. Owned by exactly one task at a time; all
/// mutation happens from the owning thread, so members need no lock.
class TraceLane {
 public:
  TraceLane(std::uint32_t id, std::string label)
      : id_(id), label_(std::move(label)) {}

  std::uint32_t id() const { return id_; }
  const std::string& label() const { return label_; }

  /// Advances the lane clock monotonically to simulation time `t`
  /// (no-op if `t` is in the lane's past — ranks within a job settle
  /// at different device clocks).
  void advance_to(Seconds t) {
    const double us = t.value() * 1e6;
    if (us > now_us_) now_us_ = us;
  }

  void emit(const char* cat, const char* name, TracePhase phase,
            const char* arg_key = nullptr, std::int64_t arg_val = 0) {
    events_.push_back(
        TraceEvent{cat, name, phase, next_seq_++, now_us_, arg_key, arg_val});
  }

  std::span<const TraceEvent> events() const { return events_; }

 private:
  std::uint32_t id_;
  std::string label_;
  double now_us_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::vector<TraceEvent> events_;
};

/// Collects lanes. Lane creation locks; event emission does not (each
/// lane has a single owner). Read the lanes back only after the traced
/// work has completed (e.g. after run_experiment returns).
class TraceSink {
 public:
  /// The lane with this id, created (with `label`) on first use. The
  /// returned reference stays valid for the sink's lifetime.
  TraceLane& lane(std::uint32_t id, std::string_view label);

  /// All lanes in ascending id order — the deterministic export order.
  std::vector<const TraceLane*> lanes() const;

  std::size_t lane_count() const;
  std::size_t event_count() const;

 private:
  mutable Mutex mu_;
  std::map<std::uint32_t, std::unique_ptr<TraceLane>> lanes_
      GPUVAR_GUARDED_BY(mu_);
};

/// The installed sink, or nullptr (the macro fast path). Installation
/// must not race with instrumented code: install before the campaign,
/// uninstall (install nullptr) after it completes.
TraceSink* trace();
void install_trace(TraceSink* sink);

/// The lane the calling thread currently owns, or nullptr.
TraceLane* current_lane();

/// RAII adoption of a lane for the current thread (and task). No-op —
/// no allocation, no lock — when no sink is installed. Nests: the
/// previous lane is restored on destruction, so run_experiment can
/// reuse lane 0 under a CLI that already opened it.
class LaneScope {
 public:
  LaneScope(std::uint32_t id, std::string_view label);
  ~LaneScope();

  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  TraceLane* prev_;
};

/// RAII span pair on the current lane; emits nothing when no lane is
/// adopted (single branch). Use through GPUVAR_TRACE_SPAN.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name,
            const char* arg_key = nullptr, std::int64_t arg_val = 0)
      : lane_(current_lane()), cat_(cat), name_(name) {
    if (lane_ != nullptr) {
      lane_->emit(cat_, name_, TracePhase::kBegin, arg_key, arg_val);
    }
  }
  ~TraceSpan() {
    if (lane_ != nullptr) lane_->emit(cat_, name_, TracePhase::kEnd);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceLane* lane_;
  const char* cat_;
  const char* name_;
};

/// Instant-event helper behind GPUVAR_TRACE_INSTANT.
inline void trace_instant(const char* cat, const char* name,
                          const char* arg_key = nullptr,
                          std::int64_t arg_val = 0) {
  if (TraceLane* lane = current_lane()) {
    lane->emit(cat, name, TracePhase::kInstant, arg_key, arg_val);
  }
}

/// Installs `sink` for a scope and restores the previous sink on exit
/// (exception-safe teardown for the CLI and tests).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSink* sink) : prev_(trace()) {
    install_trace(sink);
  }
  ~ScopedTrace() { install_trace(prev_); }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink* prev_;
};

}  // namespace gpuvar::obs

#define GPUVAR_OBS_CONCAT_INNER(a, b) a##b
#define GPUVAR_OBS_CONCAT(a, b) GPUVAR_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span on the current lane:
///   GPUVAR_TRACE_SPAN("runner", "measure");
///   GPUVAR_TRACE_SPAN("experiment", "node_job", "node", node);
/// One branch on a thread-local when tracing is off.
#define GPUVAR_TRACE_SPAN(...)                             \
  const ::gpuvar::obs::TraceSpan GPUVAR_OBS_CONCAT(        \
      gpuvar_trace_span_, __LINE__) {                      \
    __VA_ARGS__                                            \
  }

/// Emits an instant event on the current lane (same payload forms as
/// GPUVAR_TRACE_SPAN).
#define GPUVAR_TRACE_INSTANT(...) ::gpuvar::obs::trace_instant(__VA_ARGS__)

/// Advances the current lane's simulation clock to `t` (a Seconds).
#define GPUVAR_TRACE_ADVANCE(t)                                          \
  do {                                                                   \
    if (::gpuvar::obs::TraceLane* gpuvar_obs_lane =                      \
            ::gpuvar::obs::current_lane()) {                             \
      gpuvar_obs_lane->advance_to(t);                                    \
    }                                                                    \
  } while (0)
