#include "obs/export.hpp"

#include <string>
#include <string_view>

#include "common/numfmt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpuvar::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// categories and names are literals, but lane labels carry generated
/// text like "node 12".
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_event(std::ostream& out, const TraceLane& lane,
                 const TraceEvent& e) {
  out << "{\"ph\":\"" << static_cast<char>(e.phase) << "\",\"pid\":1,\"tid\":"
      << lane.id() << ",\"ts\":" << format_double(e.ts_us, 12);
  if (e.phase != TracePhase::kEnd) {
    out << ",\"cat\":\"" << json_escape(e.cat) << "\",\"name\":\""
        << json_escape(e.name) << "\"";
    if (e.phase == TracePhase::kInstant) out << ",\"s\":\"t\"";
  }
  out << ",\"args\":{\"seq\":" << format_int(static_cast<long long>(e.seq));
  if (e.arg_key != nullptr) {
    out << ",\"" << json_escape(e.arg_key)
        << "\":" << format_int(static_cast<long long>(e.arg_val));
  }
  out << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceSink& sink) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto lanes = sink.lanes();
  for (const TraceLane* lane : lanes) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << lane->id()
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(lane->label()) << "\"}}";
    for (const TraceEvent& e : lane->events()) {
      out << ",\n";
      write_event(out, *lane, e);
    }
  }
  out << "\n]}\n";
}

void write_metrics_text(std::ostream& out, const MetricsSnapshot& snap) {
  out << "# gpuvar metrics v1\n";
  for (const auto& c : snap.counters) {
    out << "counter " << c.name << " "
        << format_int(static_cast<long long>(c.count)) << "\n";
  }
  for (const auto& g : snap.gauges) {
    out << "gauge " << g.name << " ";
    if (g.set) {
      out << format_int(static_cast<long long>(g.high_water));
    } else {
      out << "unset";
    }
    out << "\n";
  }
  for (const auto& h : snap.histograms) {
    const auto& s = h.hist;
    out << "histogram " << h.name << " count "
        << format_int(static_cast<long long>(s.count)) << " sum "
        << format_int(static_cast<long long>(s.total)) << " min "
        << format_int(static_cast<long long>(s.lo)) << " max "
        << format_int(static_cast<long long>(s.hi));
    for (std::size_t b = 0; b < s.buckets.size(); ++b) {
      if (s.buckets[b] == 0) continue;
      out << " b" << b << ":"
          << format_int(static_cast<long long>(s.buckets[b]));
    }
    out << "\n";
  }
}

}  // namespace gpuvar::obs
