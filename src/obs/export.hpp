// Exporters for the observability layer.
//
// Chrome trace-event JSON (load in Perfetto / chrome://tracing) and a
// line-oriented metrics text dump. Both are deterministic byte
// streams: lanes export in ascending lane-id order, events in per-lane
// emission order, metrics in sorted-name order, and every number is
// formatted through common/numfmt (locale-free std::to_chars). The
// determinism_replay test pins both byte-identical at 1/4/8 threads.
#pragma once

#include <ostream>

namespace gpuvar::obs { struct MetricsSnapshot; }  // was: #include "obs/metrics.hpp"
namespace gpuvar::obs { class TraceSink; }  // was: #include "obs/trace.hpp"

namespace gpuvar::obs {

/// Writes the sink as Chrome trace-event JSON ("traceEvents" array of
/// B/E/i events; tid = lane id; lane labels become thread_name
/// metadata). Timestamps are simulation-time microseconds.
void write_chrome_trace(std::ostream& out, const TraceSink& sink);

/// Writes the snapshot as a sorted `kind name value...` text dump.
void write_metrics_text(std::ostream& out, const MetricsSnapshot& snap);

}  // namespace gpuvar::obs
