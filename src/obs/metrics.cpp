#include "obs/metrics.hpp"

#include <bit>

namespace gpuvar::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return mine;
}

}  // namespace detail

std::size_t Histogram::bucket_of(std::uint64_t v) {
  // bit_width(0) == 0, bit_width(1) == 1, ..., bit_width(2^63..) == 64;
  // the top value class folds into the last bucket.
  const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

void Histogram::record(std::uint64_t v) {
  const std::size_t shard = detail::shard_index();
  count_[shard].v.fetch_add(1, std::memory_order_relaxed);
  total_[shard].v.fetch_add(v, std::memory_order_relaxed);
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t lo = lo_.load(std::memory_order_relaxed);
  while (v < lo &&
         !lo_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  std::uint64_t hi = hi_.load(std::memory_order_relaxed);
  while (v > hi &&
         !hi_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (const auto& c : count_) s.count += c.v.load(std::memory_order_relaxed);
  for (const auto& c : total_) s.total += c.v.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  if (s.count > 0) {
    s.lo = lo_.load(std::memory_order_relaxed);
    s.hi = hi_.load(std::memory_order_relaxed);
  }
  return s;
}

namespace {

std::atomic<Registry*> g_metrics{nullptr};
std::atomic<std::uint64_t> g_metrics_epoch{0};

template <class Map, class Metric>
Metric& find_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<Metric>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  return find_or_create<decltype(counters_), Counter>(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  return find_or_create<decltype(gauges_), Gauge>(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  return find_or_create<decltype(histograms_), Histogram>(histograms_, name);
}

MetricsSnapshot Registry::snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->has_value(), g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->snapshot()});
  }
  return snap;
}

std::size_t Registry::size() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

Registry* metrics() { return g_metrics.load(std::memory_order_acquire); }

std::uint64_t metrics_epoch() {
  return g_metrics_epoch.load(std::memory_order_acquire);
}

void install_metrics(Registry* registry) {
  g_metrics_epoch.fetch_add(1, std::memory_order_acq_rel);
  g_metrics.store(registry, std::memory_order_release);
}

}  // namespace gpuvar::obs
