#include "obs/trace.hpp"

#include <atomic>

namespace gpuvar::obs {

namespace {

std::atomic<TraceSink*> g_trace{nullptr};
thread_local TraceLane* t_current_lane = nullptr;

}  // namespace

TraceLane& TraceSink::lane(std::uint32_t id, std::string_view label) {
  MutexLock lock(mu_);
  auto it = lanes_.find(id);
  if (it == lanes_.end()) {
    it = lanes_
             .emplace(id, std::make_unique<TraceLane>(id, std::string(label)))
             .first;
  }
  return *it->second;
}

std::vector<const TraceLane*> TraceSink::lanes() const {
  MutexLock lock(mu_);
  std::vector<const TraceLane*> out;
  out.reserve(lanes_.size());
  for (const auto& [id, lane] : lanes_) out.push_back(lane.get());
  return out;
}

std::size_t TraceSink::lane_count() const {
  MutexLock lock(mu_);
  return lanes_.size();
}

std::size_t TraceSink::event_count() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, lane] : lanes_) n += lane->events().size();
  return n;
}

TraceSink* trace() { return g_trace.load(std::memory_order_acquire); }

void install_trace(TraceSink* sink) {
  g_trace.store(sink, std::memory_order_release);
}

TraceLane* current_lane() { return t_current_lane; }

LaneScope::LaneScope(std::uint32_t id, std::string_view label)
    : prev_(t_current_lane) {
  if (TraceSink* sink = trace()) {
    t_current_lane = &sink->lane(id, label);
  } else {
    t_current_lane = nullptr;
  }
}

LaneScope::~LaneScope() { t_current_lane = prev_; }

}  // namespace gpuvar::obs
