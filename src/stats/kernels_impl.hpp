// Generic kernel bodies over the 4-lane Batch4 abstraction, compiled
// once per backend. Each backend translation unit defines
// GPUVAR_SIMD_NS (and at most one GPUVAR_SIMD_IMPL_* macro) and then
// includes this header, which instantiates every kernel in
// gpuvar::stats::kernels::<backend> and exports the <backend>_table()
// getter kernels.cpp dispatches through.
//
// The determinism discipline, spelled out once here and inherited by
// every backend:
//  - element i accumulates into lane i % 4: the main loop consumes
//    full 4-blocks through Batch4, the ragged tail folds into the
//    extracted lanes with the identical per-lane formula;
//  - lanes combine in one pinned order: (l0 op l1) op (l2 op l3);
//  - no FMA anywhere (mul and add are separate Batch4 ops, and the
//    kernel TUs build with -ffp-contract=off so the compiler cannot
//    re-fuse them).
// The scalar backend's Batch4 performs the same four-wide arithmetic
// in plain doubles, which is what makes scalar-vs-SIMD bit-identity a
// testable property instead of a tolerance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

#include "common/hot.hpp"
#include "stats/kernels.hpp"
#include "stats/kernels_table.hpp"
#include "stats/simd.hpp"

namespace gpuvar::stats::kernels {
namespace GPUVAR_SIMD_NS {

using simd::GPUVAR_SIMD_NS::Batch4;

namespace {

// Per-lane scalar formulas, identical to the Batch4 ops (minpd/maxpd
// semantics) — used for the ragged tail and the pinned lane combine.
inline double lane_min(double a, double b) { return a < b ? a : b; }
inline double lane_max(double a, double b) { return a > b ? a : b; }

constexpr double kPosInf = std::numeric_limits<double>::infinity();

}  // namespace

GPUVAR_HOT Sweep describe_sweep_impl(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  const std::size_t blocks = n / 4;

  Batch4 acc_sum = Batch4::broadcast(0.0);
  Batch4 acc_sq = Batch4::broadcast(0.0);
  Batch4 acc_min = Batch4::broadcast(kPosInf);
  Batch4 acc_max = Batch4::broadcast(-kPosInf);
  for (std::size_t b = 0; b < blocks; ++b) {
    const Batch4 x = Batch4::load(p + 4 * b);
    acc_sum = acc_sum.add(x);
    acc_sq = acc_sq.add(x.mul(x));
    acc_min = acc_min.min(x);
    acc_max = acc_max.max(x);
  }

  double lsum[4], lsq[4], lmin[4], lmax[4];
  acc_sum.store(lsum);
  acc_sq.store(lsq);
  acc_min.store(lmin);
  acc_max.store(lmax);
  for (std::size_t i = 4 * blocks; i < n; ++i) {
    const double x = p[i];
    const std::size_t lane = i % 4;
    lsum[lane] += x;
    lsq[lane] += x * x;
    lmin[lane] = lane_min(lmin[lane], x);
    lmax[lane] = lane_max(lmax[lane], x);
  }

  Sweep s;
  s.sum = (lsum[0] + lsum[1]) + (lsum[2] + lsum[3]);
  s.sumsq = (lsq[0] + lsq[1]) + (lsq[2] + lsq[3]);
  s.min = lane_min(lane_min(lmin[0], lmin[1]), lane_min(lmin[2], lmin[3]));
  s.max = lane_max(lane_max(lmax[0], lmax[1]), lane_max(lmax[2], lmax[3]));
  return s;
}

GPUVAR_HOT double sum_impl(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  const std::size_t blocks = n / 4;

  Batch4 acc = Batch4::broadcast(0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    acc = acc.add(Batch4::load(p + 4 * b));
  }
  double lanes[4];
  acc.store(lanes);
  for (std::size_t i = 4 * blocks; i < n; ++i) lanes[i % 4] += p[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

GPUVAR_HOT double centered_sumsq_impl(std::span<const double> xs, double mean) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  const std::size_t blocks = n / 4;

  const Batch4 m = Batch4::broadcast(mean);
  Batch4 acc = Batch4::broadcast(0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    const Batch4 d = Batch4::load(p + 4 * b).sub(m);
    acc = acc.add(d.mul(d));
  }
  double lanes[4];
  acc.store(lanes);
  for (std::size_t i = 4 * blocks; i < n; ++i) {
    const double d = p[i] - mean;
    lanes[i % 4] += d * d;
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

GPUVAR_HOT CenteredProducts centered_products_impl(std::span<const double> xs,
                                                   std::span<const double> ys,
                                                   double mx, double my) {
  const double* px = xs.data();
  const double* py = ys.data();
  const std::size_t n = xs.size();
  const std::size_t blocks = n / 4;

  const Batch4 bmx = Batch4::broadcast(mx);
  const Batch4 bmy = Batch4::broadcast(my);
  Batch4 acc_xy = Batch4::broadcast(0.0);
  Batch4 acc_xx = Batch4::broadcast(0.0);
  Batch4 acc_yy = Batch4::broadcast(0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    const Batch4 dx = Batch4::load(px + 4 * b).sub(bmx);
    const Batch4 dy = Batch4::load(py + 4 * b).sub(bmy);
    acc_xy = acc_xy.add(dx.mul(dy));
    acc_xx = acc_xx.add(dx.mul(dx));
    acc_yy = acc_yy.add(dy.mul(dy));
  }
  double lxy[4], lxx[4], lyy[4];
  acc_xy.store(lxy);
  acc_xx.store(lxx);
  acc_yy.store(lyy);
  for (std::size_t i = 4 * blocks; i < n; ++i) {
    const double dx = px[i] - mx;
    const double dy = py[i] - my;
    const std::size_t lane = i % 4;
    lxy[lane] += dx * dy;
    lxx[lane] += dx * dx;
    lyy[lane] += dy * dy;
  }
  CenteredProducts cp;
  cp.sxy = (lxy[0] + lxy[1]) + (lxy[2] + lxy[3]);
  cp.sxx = (lxx[0] + lxx[1]) + (lxx[2] + lxx[3]);
  cp.syy = (lyy[0] + lyy[1]) + (lyy[2] + lyy[3]);
  return cp;
}

GPUVAR_HOT MinMax min_max_impl(std::span<const double> xs) {
  const double* p = xs.data();
  const std::size_t n = xs.size();
  const std::size_t blocks = n / 4;

  Batch4 acc_min = Batch4::broadcast(kPosInf);
  Batch4 acc_max = Batch4::broadcast(-kPosInf);
  for (std::size_t b = 0; b < blocks; ++b) {
    const Batch4 x = Batch4::load(p + 4 * b);
    acc_min = acc_min.min(x);
    acc_max = acc_max.max(x);
  }
  double lmin[4], lmax[4];
  acc_min.store(lmin);
  acc_max.store(lmax);
  for (std::size_t i = 4 * blocks; i < n; ++i) {
    const std::size_t lane = i % 4;
    lmin[lane] = lane_min(lmin[lane], p[i]);
    lmax[lane] = lane_max(lmax[lane], p[i]);
  }
  MinMax mm;
  mm.min = lane_min(lane_min(lmin[0], lmin[1]), lane_min(lmin[2], lmin[3]));
  mm.max = lane_max(lane_max(lmax[0], lmax[1]), lane_max(lmax[2], lmax[3]));
  return mm;
}

// Integer predicate masks: exact value operations, so the backends are
// trivially bit-identical; compiling one copy per backend TU lets the
// autovectorizer use that TU's ISA (the loops below are written
// branch-free for exactly that reason).

GPUVAR_HOT void mask_range_i16_impl(std::span<const std::int16_t> xs,
                                    std::int16_t lo, std::int16_t hi,
                                    std::span<std::uint8_t> out) {
  const std::int16_t* p = xs.data();
  std::uint8_t* o = out.data();
  const std::size_t n = xs.size();
  for (std::size_t i = 0; i < n; ++i) {
    o[i] = static_cast<std::uint8_t>(p[i] >= lo && p[i] <= hi);
  }
}

GPUVAR_HOT void mask_gather_u32_impl(std::span<const std::uint32_t> ids,
                                     std::span<const std::uint8_t> table,
                                     std::span<std::uint8_t> out) {
  const std::uint32_t* p = ids.data();
  const std::uint8_t* t = table.data();
  std::uint8_t* o = out.data();
  const std::size_t n = ids.size();
  for (std::size_t i = 0; i < n; ++i) o[i] = t[p[i]];
}

GPUVAR_HOT void mask_and_impl(std::span<const std::uint8_t> a,
                              std::span<const std::uint8_t> b,
                              std::span<std::uint8_t> out) {
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  std::uint8_t* o = out.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) {
    o[i] = static_cast<std::uint8_t>(pa[i] & pb[i]);
  }
}

GPUVAR_HOT std::size_t mask_count_impl(std::span<const std::uint8_t> mask) {
  const std::uint8_t* p = mask.data();
  const std::size_t n = mask.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += p[i];
  return count;
}

// This namespace's dispatch table; the backend TU forwards its
// detail::<backend>_table() getter here after the include.
inline const detail::KernelTable& table_impl() {
  static const detail::KernelTable kTable = {
      &describe_sweep_impl, &sum_impl,         &centered_sumsq_impl,
      &centered_products_impl, &min_max_impl,  &mask_range_i16_impl,
      &mask_gather_u32_impl, &mask_and_impl,   &mask_count_impl,
  };
  return kTable;
}

}  // namespace GPUVAR_SIMD_NS
}  // namespace gpuvar::stats::kernels
