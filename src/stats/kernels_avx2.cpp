// AVX2 backend: one 256-bit register per 4-lane batch. Built with
// -mavx2 (see src/CMakeLists.txt); when that flag is absent — a
// non-GNU compiler, or clang's syntax-only thread-safety sweep — the
// TU degrades to the scalar Batch4 so avx2_table() still links and
// still returns bit-identical results, just without the speedup.
#define GPUVAR_SIMD_NS avx2
#if defined(__AVX2__)
#define GPUVAR_SIMD_IMPL_AVX2 1
#endif
#include "stats/kernels_impl.hpp"  // gpuvar-lint: allow(unused-include)

#include "stats/kernels_table.hpp"

namespace gpuvar::stats::kernels::detail {
const KernelTable& avx2_table() { return kernels::avx2::table_impl(); }
}  // namespace gpuvar::stats::kernels::detail
