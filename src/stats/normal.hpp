// Normal-distribution utilities: CDF, quantile function, moment fitting,
// and the paper's "scaled normal" projection (§IV-D): given the measured
// spread on one cluster, project the expected variability on a cluster
// with a different GPU count via expected extreme order statistics.
#pragma once

#include <cstddef>
#include <span>

namespace gpuvar::stats {

struct NormalFit {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Moment fit of a normal distribution (requires n >= 2).
NormalFit fit_normal(std::span<const double> xs);

/// Standard normal CDF Φ(x).
double normal_cdf(double x);

/// Standard normal quantile Φ⁻¹(p), p in (0, 1). Acklam's rational
/// approximation refined with one Halley step (|error| < 1e-12).
double normal_quantile(double p);

/// Expected value of the maximum of n i.i.d. standard normals
/// (Blom's approximation: Φ⁻¹((n - 0.375) / (n + 0.25))).
double expected_normal_max(std::size_t n);

/// The scaled-normal projection: fit N(μ, σ) to `xs` (one run-summary value
/// per GPU) and return the projected variability fraction
/// E[range of target_size samples] / μ = 2σ·Φ⁻¹((n-0.375)/(n+0.25)) / μ
/// for a cluster with `target_size` GPUs. Requires μ != 0.
double project_variability(std::span<const double> xs, std::size_t target_size);

/// Same projection from an explicit fit.
double project_variability(const NormalFit& fit, std::size_t target_size);

}  // namespace gpuvar::stats
