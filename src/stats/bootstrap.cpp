#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "stats/boxplot.hpp"
#include "stats/kernels.hpp"

namespace gpuvar::stats {

BootstrapCI bootstrap_ci(std::span<const double> xs,
                         const Statistic& statistic, int resamples,
                         double confidence, std::uint64_t seed) {
  GPUVAR_REQUIRE(xs.size() >= 2);
  GPUVAR_REQUIRE(resamples >= 50);
  GPUVAR_REQUIRE(confidence > 0.0 && confidence < 1.0);
  GPUVAR_REQUIRE(static_cast<bool>(statistic));

  BootstrapCI ci;
  ci.confidence = confidence;
  ci.point = statistic(xs);

  Rng rng(seed);
  const std::size_t n = xs.size();
  std::vector<double> resample(n);
  std::vector<double> estimates;
  estimates.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = xs[rng.uniform_index(n)];
    }
    estimates.push_back(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  // estimates is dead after the cuts, so select in place: no copy, no
  // sort, and the second cut reuses the first one's partial ordering.
  ci.lo = kernels::quantile_inplace(estimates, alpha);
  ci.hi = kernels::quantile_inplace(estimates, 1.0 - alpha);
  return ci;
}

double variation_pct_statistic(std::span<const double> xs) {
  const auto box = box_summary(xs);
  if (box.median == 0.0) return 0.0;
  return box.variation() * 100.0;
}

}  // namespace gpuvar::stats
