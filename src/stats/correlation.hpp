// Correlation coefficients used by the paper's scatter-plot analysis.
#pragma once

#include <span>
#include <string>

namespace gpuvar::stats {

/// Pearson product-moment correlation. Requires equal sizes >= 2 and
/// non-zero variance in both samples (returns 0 when either is constant,
/// matching the convention of treating a flat series as uncorrelated).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over fractional ranks; ties get the
/// average rank).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Qualitative label matching the paper's prose: |rho| >= 0.9 "strong",
/// >= 0.6 "moderate", >= 0.3 "weak", else "uncorrelated".
std::string correlation_strength(double rho);

}  // namespace gpuvar::stats
