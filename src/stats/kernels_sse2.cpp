// SSE2 backend: two 128-bit registers per 4-lane batch. __SSE2__ is
// the x86-64 baseline; on other targets (or a syntax-only pass without
// the flag) this TU falls back to the scalar Batch4 — still
// bit-identical, just not vectorized — so sse2_table() always links.
#define GPUVAR_SIMD_NS sse2
#if defined(__SSE2__)
#define GPUVAR_SIMD_IMPL_SSE2 1
#endif
#include "stats/kernels_impl.hpp"  // gpuvar-lint: allow(unused-include)

#include "stats/kernels_table.hpp"

namespace gpuvar::stats::kernels::detail {
const KernelTable& sse2_table() { return kernels::sse2::table_impl(); }
}  // namespace gpuvar::stats::kernels::detail
