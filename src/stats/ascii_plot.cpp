#include "stats/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/boxplot.hpp"

namespace gpuvar::stats {

namespace {

int to_col(double x, double lo, double hi, int width) {
  if (hi <= lo) return 0;
  const double t = (x - lo) / (hi - lo);
  return std::clamp(static_cast<int>(std::lround(t * (width - 1))), 0,
                    width - 1);
}

std::string format_value(double v) {
  char buf[32];
  if (std::abs(v) >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  }
  return buf;
}

}  // namespace

std::string render_box_chart(std::span<const NamedSeries> series,
                             const BoxChartOptions& opts) {
  GPUVAR_REQUIRE(!series.empty());
  GPUVAR_REQUIRE(opts.width >= 20);

  // Shared axis spanning all data (including outliers).
  double lo = series[0].values.empty() ? 0.0 : series[0].values[0];
  double hi = lo;
  std::vector<BoxSummary> boxes;
  boxes.reserve(series.size());
  std::size_t name_w = 4;
  for (const auto& s : series) {
    GPUVAR_REQUIRE_MSG(!s.values.empty(), "empty series: " + s.name);
    boxes.push_back(box_summary(s.values));
    lo = std::min(lo, std::min(boxes.back().min, boxes.back().lo_whisker));
    hi = std::max(hi, std::max(boxes.back().max, boxes.back().hi_whisker));
    name_w = std::max(name_w, s.name.size());
  }
  if (hi <= lo) hi = lo + 1.0;

  std::string out;
  char line[64];
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& b = boxes[i];
    std::string row(static_cast<std::size_t>(opts.width), ' ');
    auto put = [&](double v, char c) {
      row[static_cast<std::size_t>(to_col(v, lo, hi, opts.width))] = c;
    };
    // whisker shaft
    const int wl = to_col(std::max(b.lo_whisker, b.min), lo, hi, opts.width);
    const int wr = to_col(std::min(b.hi_whisker, b.max), lo, hi, opts.width);
    for (int c = wl; c <= wr; ++c) row[static_cast<std::size_t>(c)] = '-';
    // box body
    const int bl = to_col(b.q1, lo, hi, opts.width);
    const int br = to_col(b.q3, lo, hi, opts.width);
    for (int c = bl; c <= br; ++c) row[static_cast<std::size_t>(c)] = ':';
    put(std::max(b.lo_whisker, b.min), '|');
    put(std::min(b.hi_whisker, b.max), '|');
    put(b.q1, '[');
    put(b.q3, ']');
    put(b.median, 'M');
    for (std::size_t oi : b.outlier_indices) {
      put(series[i].values[oi], 'o');
    }

    out += series[i].name;
    out.append(name_w - series[i].name.size() + 1, ' ');
    out += row;
    if (opts.show_variation && b.median != 0.0) {
      std::snprintf(line, sizeof(line), "  var=%5.1f%% n=%zu out=%zu",
                    b.variation() * 100.0, b.count, b.outlier_count());
      out += line;
    }
    out.push_back('\n');
  }
  // Axis line.
  out.append(name_w + 1, ' ');
  std::string axis(static_cast<std::size_t>(opts.width), '-');
  axis.front() = '+';
  axis.back() = '+';
  out += axis;
  out.push_back('\n');
  out.append(name_w + 1, ' ');
  const std::string lo_s = format_value(lo) + (opts.unit.empty() ? "" : " " + opts.unit);
  const std::string hi_s = format_value(hi) + (opts.unit.empty() ? "" : " " + opts.unit);
  out += lo_s;
  const int pad = opts.width - static_cast<int>(lo_s.size()) -
                  static_cast<int>(hi_s.size());
  out.append(static_cast<std::size_t>(std::max(1, pad)), ' ');
  out += hi_s;
  out.push_back('\n');
  return out;
}

std::string render_scatter(std::span<const double> xs,
                           std::span<const double> ys,
                           const ScatterOptions& opts) {
  GPUVAR_REQUIRE(xs.size() == ys.size());
  GPUVAR_REQUIRE(xs.size() >= 2);
  GPUVAR_REQUIRE(opts.width >= 10 && opts.height >= 4);

  const double xlo = min_of(xs), xhi_raw = max_of(xs);
  const double ylo = min_of(ys), yhi_raw = max_of(ys);
  const double xhi = (xhi_raw > xlo) ? xhi_raw : xlo + 1.0;
  const double yhi = (yhi_raw > ylo) ? yhi_raw : ylo + 1.0;

  std::vector<int> grid(static_cast<std::size_t>(opts.width) *
                            static_cast<std::size_t>(opts.height),
                        0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const int cx = to_col(xs[i], xlo, xhi, opts.width);
    const int cy = to_col(ys[i], ylo, yhi, opts.height);
    ++grid[static_cast<std::size_t>(cy) * opts.width + cx];
  }

  const double rho = pearson(xs, ys);
  char head[160];
  std::snprintf(head, sizeof(head), "%s vs %s   (Pearson rho = %+.2f, %s)\n",
                opts.y_label.c_str(), opts.x_label.c_str(), rho,
                correlation_strength(rho).c_str());
  std::string out = head;
  for (int r = opts.height - 1; r >= 0; --r) {
    out += (r == opts.height - 1) ? format_value(yhi)
           : (r == 0)             ? format_value(ylo)
                                  : std::string();
    out.push_back('|');
    // Right-align the prefix: simpler to pad after-the-fact; rebuild row.
    std::string row;
    for (int c = 0; c < opts.width; ++c) {
      const int n = grid[static_cast<std::size_t>(r) * opts.width + c];
      row.push_back(n == 0 ? ' ' : (n == 1 ? '.' : (n < 5 ? ':' : '#')));
    }
    out += row;
    out.push_back('\n');
  }
  out.push_back('+');
  out.append(static_cast<std::size_t>(opts.width), '-');
  out.push_back('\n');
  out += format_value(xlo);
  out += " .. ";
  out += format_value(xhi);
  out += "  (";
  out += opts.x_label;
  out += ")\n";
  return out;
}

std::string render_line_chart(std::span<const double> ts,
                              std::span<const double> ys,
                              const LineChartOptions& opts) {
  GPUVAR_REQUIRE(ts.size() == ys.size());
  GPUVAR_REQUIRE(ts.size() >= 2);
  const double tlo = min_of(ts), thi_raw = max_of(ts);
  const double ylo = min_of(ys), yhi_raw = max_of(ys);
  const double thi = (thi_raw > tlo) ? thi_raw : tlo + 1.0;
  const double yhi = (yhi_raw > ylo) ? yhi_raw : ylo + 1.0;

  std::vector<std::string> rows(
      static_cast<std::size_t>(opts.height),
      std::string(static_cast<std::size_t>(opts.width), ' '));
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const int cx = to_col(ts[i], tlo, thi, opts.width);
    const int cy = to_col(ys[i], ylo, yhi, opts.height);
    rows[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = '*';
  }
  std::string out;
  if (!opts.y_label.empty()) {
    out += opts.y_label;
    out += "  [";
    out += format_value(ylo);
    out += " .. ";
    out += format_value(yhi);
    out += "]\n";
  }
  for (int r = opts.height - 1; r >= 0; --r) {
    out.push_back('|');
    out += rows[static_cast<std::size_t>(r)];
    out.push_back('\n');
  }
  out.push_back('+');
  out.append(static_cast<std::size_t>(opts.width), '-');
  out += "\nt = ";
  out += format_value(tlo);
  out += " .. ";
  out += format_value(thi);
  out += " s\n";
  return out;
}

}  // namespace gpuvar::stats
