// Columnar compute kernels with a deterministic SIMD dispatch layer.
//
// Every analysis in this suite bottoms out in a handful of column
// primitives: fused min/max/sum/sumsq sweeps (describe), centered
// product sums (pearson), order-statistic selection (quantile/median),
// and row-predicate masks (query scans, frame selection). This module
// implements each one against the fixed 4-lane Batch4 abstraction in
// simd.hpp, compiled once per backend (scalar / SSE2 / AVX2 / NEON)
// and dispatched at runtime through a function table.
//
// Determinism is a hard contract, not an aspiration: a reduction over
// n elements accumulates element i into lane i%4 (full blocks in the
// vector unit, the ragged tail folded into the same lanes in scalar
// code) and combines lanes as (l0+l1)+(l2+l3). The scalar backend
// spells out the identical arithmetic, so results are bit-identical
// across backends, thread counts, and GPUVAR_SIMD settings — the
// property tests in tests/test_kernels.cpp and the determinism_replay
// / simd-matrix CI jobs enforce it.
//
// Dispatch: the widest backend the CPU supports wins (cpuid probe on
// x86-64, NEON baseline on aarch64). The GPUVAR_SIMD environment
// variable overrides: auto | scalar | sse2 | avx2 (an unsupported
// request clamps down to the widest available narrower backend).
// set_backend() is the test hook that lets the bit-identity property
// tests iterate every backend reachable on the host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gpuvar::stats::kernels {

enum class Backend { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

const char* backend_name(Backend b);

/// The backend every kernel below currently dispatches to: the widest
/// supported one, unless GPUVAR_SIMD overrode it at first use or a
/// test pinned one via set_backend().
Backend active_backend();

/// Whether this build/CPU can execute the given backend.
bool backend_available(Backend b);

/// Every backend the host can execute, scalar first (for the
/// cross-backend bit-identity property tests).
std::vector<Backend> available_backends();

/// Test hook: pins the active backend and returns the previous one.
/// Requires backend_available(b).
Backend set_backend(Backend b);

// --- fused reductions ---------------------------------------------------

/// min/max/sum/sumsq of a column in one sweep. min/max follow minpd
/// semantics (`(acc < x) ? acc : x` per lane against +/-inf identities),
/// so a NaN's survival depends on its position — deterministically, and
/// identically in every backend. Requires a non-empty span.
struct Sweep {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sumsq = 0.0;
};
Sweep describe_sweep(std::span<const double> xs);

/// Blocked 4-lane sum; 0.0 for an empty span.
double sum(std::span<const double> xs);

/// Sum of (x - mean)^2 — the numerically stable second pass behind
/// sample variance.
double centered_sumsq(std::span<const double> xs, double mean);

/// Fused centered second moments for Pearson: sum dx*dy, dx*dx, dy*dy
/// in one sweep. Requires equal-length spans.
struct CenteredProducts {
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
};
CenteredProducts centered_products(std::span<const double> xs,
                                   std::span<const double> ys, double mx,
                                   double my);

/// min and max in one sweep (minpd semantics, as describe_sweep).
/// Requires a non-empty span.
struct MinMax {
  double min = 0.0;
  double max = 0.0;
};
MinMax min_max(std::span<const double> xs);

// --- selection ----------------------------------------------------------
// Order statistics without the copy-sort: iterative quickselect with
// deterministic median-of-3/ninther pivots (no RNG). The k-th smallest
// value of a multiset is a pure value fact, so select-based quantiles
// are bit-identical to the sorted-copy path they replace — the backend
// dispatch above does not apply (selection is shared exact code).

/// Partitions xs so xs[k] holds the k-th smallest element, everything
/// left of k is <= it and everything right is >= it. Requires k < size.
void nth_inplace(std::span<double> xs, std::size_t k);

/// R type-7 quantile of an unsorted scratch span, permuting it in
/// place. Bit-identical to quantile_sorted(sorted_copy(xs), q) in
/// O(n). Requires a non-empty span and q in [0, 1].
double quantile_inplace(std::span<double> xs, double q);

/// quantile_inplace at q = 0.5.
double median_inplace(std::span<double> xs);

// --- predicate masks ----------------------------------------------------
// Byte masks (1 = row matches) for the query scan's row filter and
// RecordFrame selection. Integer compares vectorize via each backend
// TU's ISA flags and are trivially bit-identical.

/// out[i] = lo <= xs[i] <= hi (bounds in FieldRange's int64 domain;
/// clamped to int16 internally). out must match xs in length.
void mask_range_i16(std::span<const std::int16_t> xs, std::int64_t lo,
                    std::int64_t hi, std::span<std::uint8_t> out);

/// out[i] = table[ids[i]] — per-row lookup of a per-pool-entry verdict.
/// Every id must index into table; out must match ids in length.
void mask_gather_u32(std::span<const std::uint32_t> ids,
                     std::span<const std::uint8_t> table,
                     std::span<std::uint8_t> out);

/// out[i] = a[i] & b[i]; out may alias a or b.
void mask_and(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
              std::span<std::uint8_t> out);

/// Number of set bytes in the mask.
std::size_t mask_count(std::span<const std::uint8_t> mask);

/// Replaces out with the positions of set mask bytes, ascending.
void mask_to_indices(std::span<const std::uint8_t> mask,
                     std::vector<std::uint32_t>& out);

/// mask_to_indices for std::size_t row lists (RecordFrame::select).
void mask_to_rows(std::span<const std::uint8_t> mask,
                  std::vector<std::size_t>& out);

}  // namespace gpuvar::stats::kernels
