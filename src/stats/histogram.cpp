#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"
#include "stats/descriptive.hpp"

namespace gpuvar::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  GPUVAR_REQUIRE(bins > 0);
  GPUVAR_REQUIRE(hi > lo);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) {
  auto idx = static_cast<long long>(std::floor((x - lo_) / width_));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  GPUVAR_REQUIRE(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + width_ / 2.0;
}

double Histogram::fraction(std::size_t bin) const {
  GPUVAR_REQUIRE(bin < counts_.size());
  return total_ == 0
             ? 0.0
             : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(std::size_t max_width) const {
  const std::size_t peak =
      total_ == 0 ? 1 : std::max<std::size_t>(1, counts_[mode_bin()]);
  std::string out;
  char line[128];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar_len = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[b]) /
                     static_cast<double>(peak) * static_cast<double>(max_width)));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8zu ", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += line;
    out.append(bar_len, '#');
    out.push_back('\n');
  }
  return out;
}

Histogram histogram_of(std::span<const double> xs, std::size_t bins) {
  GPUVAR_REQUIRE(!xs.empty());
  double lo = min_of(xs);
  double hi = max_of(xs);
  if (lo == hi) {  // degenerate sample: widen artificially
    lo -= 0.5;
    hi += 0.5;
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

}  // namespace gpuvar::stats
