// Fixed-width histograms for distribution summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gpuvar::stats {

class Histogram {
 public:
  /// Buckets [lo, hi) into `bins` equal-width bins; values outside the
  /// range land in the edge bins (clamped) so no sample is dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Fraction of samples in a bin (0 if empty histogram).
  double fraction(std::size_t bin) const;

  /// Index of the most populated bin.
  std::size_t mode_bin() const;

  /// Simple textual rendering: one line per bin with a bar of '#'.
  std::string render(std::size_t max_width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Builds a histogram spanning the sample's own min..max.
Histogram histogram_of(std::span<const double> xs, std::size_t bins);

}  // namespace gpuvar::stats
