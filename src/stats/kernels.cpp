#include "stats/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

#include "common/hot.hpp"
#include "common/require.hpp"
#include "stats/kernels_table.hpp"

namespace gpuvar::stats::kernels {

namespace {

// Vector width rank used when an env-requested backend is unavailable:
// the override clamps down to the widest available backend that is no
// wider than the request (so GPUVAR_SIMD=avx2 on an SSE2-only host runs
// SSE2, never scalar).
int backend_width(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return 0;
    case Backend::kSse2:
    case Backend::kNeon:
      return 1;
    case Backend::kAvx2:
      return 2;
  }
  return 0;
}

Backend detect() {
#if defined(__aarch64__)
  return Backend::kNeon;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
  return Backend::kSse2;
#else
  return Backend::kScalar;
#endif
}

Backend clamp_to_available(Backend req) {
  if (backend_available(req)) return req;
  constexpr Backend kByWidth[] = {Backend::kAvx2, Backend::kNeon,
                                  Backend::kSse2, Backend::kScalar};
  for (Backend b : kByWidth) {
    if (backend_width(b) <= backend_width(req) && backend_available(b)) {
      return b;
    }
  }
  return Backend::kScalar;
}

// GPUVAR_SIMD is read exactly once, at first kernel use. Unknown values
// mean "auto" (the detected widest backend); known-but-unsupported
// values clamp down, so the variable can never select a backend the
// host cannot execute.
Backend initial_backend() {
  const Backend detected = detect();
  const char* env = std::getenv("GPUVAR_SIMD");
  if (env == nullptr) return detected;
  const std::string_view v(env);
  Backend req = detected;  // "auto" and anything unrecognized
  if (v == "scalar") {
    req = Backend::kScalar;
  } else if (v == "sse2") {
    req = Backend::kSse2;
  } else if (v == "avx2") {
    req = Backend::kAvx2;
  } else if (v == "neon") {
    req = Backend::kNeon;
  }
  return clamp_to_available(req);
}

std::atomic<Backend>& active_slot() {
  static std::atomic<Backend> slot{initial_backend()};
  return slot;
}

const detail::KernelTable& table_for(Backend b) {
  switch (b) {
    case Backend::kSse2:
      return detail::sse2_table();
    case Backend::kAvx2:
      return detail::avx2_table();
    case Backend::kNeon:
      return detail::neon_table();
    case Backend::kScalar:
      break;
  }
  return detail::scalar_table();
}

const detail::KernelTable& active_table() {
  return table_for(active_slot().load(std::memory_order_relaxed));
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "scalar";
}

Backend active_backend() {
  return active_slot().load(std::memory_order_relaxed);
}

bool backend_available(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kSse2, Backend::kAvx2,
                    Backend::kNeon}) {
    if (backend_available(b)) out.push_back(b);
  }
  return out;
}

Backend set_backend(Backend b) {
  GPUVAR_REQUIRE(backend_available(b));
  return active_slot().exchange(b);
}

// --- fused reductions ---------------------------------------------------

GPUVAR_HOT Sweep describe_sweep(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return active_table().describe_sweep(xs);
}

GPUVAR_HOT double sum(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return active_table().sum(xs);
}

GPUVAR_HOT double centered_sumsq(std::span<const double> xs, double mean) {
  if (xs.empty()) return 0.0;
  return active_table().centered_sumsq(xs, mean);
}

GPUVAR_HOT CenteredProducts centered_products(std::span<const double> xs,
                                              std::span<const double> ys,
                                              double mx, double my) {
  GPUVAR_REQUIRE(xs.size() == ys.size());
  if (xs.empty()) return {};
  return active_table().centered_products(xs, ys, mx, my);
}

GPUVAR_HOT MinMax min_max(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return active_table().min_max(xs);
}

// --- selection ----------------------------------------------------------
// Shared exact code: a selected order statistic is a value fact about
// the multiset, so no per-backend variants exist and the dispatch table
// is not involved. Deterministic pivots (median-of-3, ninther above 128
// elements), three-way partitioning so constant columns finish in one
// pass, and bounds-checked scans so a NaN cannot walk a cursor off the
// span — NaNs land in the pivot's "unordered" band, which keeps the
// result deterministic (and identical across backends by construction)
// even though NaN ordering is unspecified.

namespace {

constexpr std::size_t kInsertionThreshold = 16;

void insertion_sort(double* a, std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double x = a[i];
    std::size_t j = i;
    while (j > lo && x < a[j - 1]) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = x;
  }
}

std::size_t med3(const double* a, std::size_t i, std::size_t j,
                 std::size_t k) {
  if (a[i] < a[j]) {
    if (a[j] < a[k]) return j;
    return a[i] < a[k] ? k : i;
  }
  if (a[i] < a[k]) return i;
  return a[j] < a[k] ? k : j;
}

}  // namespace

GPUVAR_HOT void nth_inplace(std::span<double> xs, std::size_t k) {
  GPUVAR_REQUIRE(k < xs.size());
  double* a = xs.data();
  std::size_t lo = 0;
  std::size_t hi = xs.size();
  while (hi - lo > kInsertionThreshold) {
    const std::size_t n = hi - lo;
    const std::size_t mid = lo + n / 2;
    std::size_t pidx;
    if (n > 128) {
      const std::size_t eighth = n / 8;
      const std::size_t p1 = med3(a, lo, lo + eighth, lo + 2 * eighth);
      const std::size_t p2 = med3(a, mid - eighth, mid, mid + eighth);
      const std::size_t p3 =
          med3(a, hi - 1 - 2 * eighth, hi - 1 - eighth, hi - 1);
      pidx = med3(a, p1, p2, p3);
    } else {
      pidx = med3(a, lo, mid, hi - 1);
    }
    const double p = a[pidx];
    // Three-way partition of [lo, hi): [lo, lt) < p, [lt, gt) neither
    // < nor > p (equal values, plus NaNs), [gt, hi) > p. The pivot
    // element itself always lands in the middle band, so both
    // recursion candidates are strictly smaller and the loop
    // terminates even when p is NaN (then the whole range is "equal"
    // and we return immediately).
    std::size_t lt = lo;
    std::size_t gt = hi;
    std::size_t i = lo;
    while (i < gt) {
      if (a[i] < p) {
        std::swap(a[i], a[lt]);
        ++lt;
        ++i;
      } else if (p < a[i]) {
        --gt;
        std::swap(a[i], a[gt]);
      } else {
        ++i;
      }
    }
    if (k < lt) {
      hi = lt;
    } else if (k >= gt) {
      lo = gt;
    } else {
      return;  // a[k] sits in the pivot band
    }
  }
  insertion_sort(a, lo, hi);
}

GPUVAR_HOT double quantile_inplace(std::span<double> xs, double q) {
  GPUVAR_REQUIRE(!xs.empty());
  GPUVAR_REQUIRE(q >= 0.0 && q <= 1.0);
  const std::size_t n = xs.size();
  if (n == 1) return xs[0];
  const double h = static_cast<double>(n - 1) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const double frac = h - std::floor(h);
  nth_inplace(xs, lo);
  const double vlo = xs[lo];
  // The upper interpolation point is the minimum of the right
  // partition — the (lo+1)-th order statistic, without finishing the
  // sort. When lo is the last index the sorted path collapses hi onto
  // lo; mirror that.
  double vhi = vlo;
  if (lo + 1 < n) {
    vhi = xs[lo + 1];
    for (std::size_t i = lo + 2; i < n; ++i) {
      if (xs[i] < vhi) vhi = xs[i];
    }
  }
  // Exactly quantile_sorted's expression, frac == 0 included, so the
  // two paths agree bit-for-bit (e.g. -0.0 + 0.0*0.0 is +0.0 in both).
  return vlo + frac * (vhi - vlo);
}

GPUVAR_HOT double median_inplace(std::span<double> xs) {
  return quantile_inplace(xs, 0.5);
}

// --- predicate masks ----------------------------------------------------

GPUVAR_HOT void mask_range_i16(std::span<const std::int16_t> xs,
                               std::int64_t lo, std::int64_t hi,
                               std::span<std::uint8_t> out) {
  GPUVAR_REQUIRE(out.size() == xs.size());
  constexpr std::int64_t kI16Min = std::numeric_limits<std::int16_t>::min();
  constexpr std::int64_t kI16Max = std::numeric_limits<std::int16_t>::max();
  if (lo > hi || lo > kI16Max || hi < kI16Min) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  const auto clo = static_cast<std::int16_t>(std::max(lo, kI16Min));
  const auto chi = static_cast<std::int16_t>(std::min(hi, kI16Max));
  active_table().mask_range_i16(xs, clo, chi, out);
}

GPUVAR_HOT void mask_gather_u32(std::span<const std::uint32_t> ids,
                                std::span<const std::uint8_t> table,
                                std::span<std::uint8_t> out) {
  GPUVAR_REQUIRE(out.size() == ids.size());
  if (ids.empty()) return;
  active_table().mask_gather_u32(ids, table, out);
}

GPUVAR_HOT void mask_and(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b,
                         std::span<std::uint8_t> out) {
  GPUVAR_REQUIRE(a.size() == b.size());
  GPUVAR_REQUIRE(out.size() == a.size());
  if (a.empty()) return;
  active_table().mask_and(a, b, out);
}

GPUVAR_HOT std::size_t mask_count(std::span<const std::uint8_t> mask) {
  if (mask.empty()) return 0;
  return active_table().mask_count(mask);
}

// The index emitters size the output once (one pad slot keeps the
// branch-free write in bounds on the final iteration) and fill with an
// unconditional store — no per-row branch, no per-row growth.

GPUVAR_HOT void mask_to_indices(std::span<const std::uint8_t> mask,
                                std::vector<std::uint32_t>& out) {
  const std::size_t count = mask_count(mask);
  out.resize(count + 1);
  const std::uint8_t* p = mask.data();
  const std::size_t n = mask.size();
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[w] = static_cast<std::uint32_t>(i);
    w += p[i];
  }
  out.resize(count);
}

GPUVAR_HOT void mask_to_rows(std::span<const std::uint8_t> mask,
                             std::vector<std::size_t>& out) {
  const std::size_t count = mask_count(mask);
  out.resize(count + 1);
  const std::uint8_t* p = mask.data();
  const std::size_t n = mask.size();
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[w] = i;
    w += p[i];
  }
  out.resize(count);
}

}  // namespace gpuvar::stats::kernels
