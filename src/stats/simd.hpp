// Portable 4-lane double batch: the one SIMD abstraction every compute
// kernel is written against.
//
// A Batch4 is always exactly four doubles, whatever the hardware — one
// 256-bit register on AVX2, two 128-bit registers on SSE2/NEON, a plain
// double[4] in the scalar backend. Fixing the lane count (rather than
// using each ISA's natural width) is what makes the determinism
// contract checkable: every reduction in kernels_impl.hpp assigns
// element i to lane i%4 and combines lanes in one pinned order, so the
// scalar backend performs bit-for-bit the same double arithmetic as the
// widest vector unit (see DESIGN.md §11).
//
// min/max are pinned to x86 minpd/maxpd semantics — lane-wise
// `(a < b) ? a : b` / `(a > b) ? a : b` — which every backend
// reproduces exactly (NEON's native vminq propagates NaN differently,
// so the NEON backend emulates with compare+select).
//
// Backend selection is a compile-time property of the including TU:
// exactly one of GPUVAR_SIMD_IMPL_{AVX2,SSE2,NEON} may be defined
// before inclusion; none means the scalar implementation. Each backend
// translation unit (kernels_scalar.cpp, kernels_sse2.cpp, ...) wraps
// its instantiation in a distinct namespace, so the four definitions
// never collide.
#pragma once

#if defined(GPUVAR_SIMD_IMPL_AVX2) || defined(GPUVAR_SIMD_IMPL_SSE2)
#include <immintrin.h>
#elif defined(GPUVAR_SIMD_IMPL_NEON)
#include <arm_neon.h>
#endif

// The including TU names its backend namespace (scalar/sse2/avx2/neon)
// so the four Batch4 definitions are distinct types — no ODR overlap
// between backend translation units.
#ifndef GPUVAR_SIMD_NS
#define GPUVAR_SIMD_NS scalar
#endif

namespace gpuvar::stats::simd {
namespace GPUVAR_SIMD_NS {

#if defined(GPUVAR_SIMD_IMPL_AVX2)

/// AVX2 backend: one 256-bit register holds all four lanes.
struct Batch4 {
  __m256d v;

  static Batch4 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Batch4 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }

  Batch4 add(Batch4 o) const { return {_mm256_add_pd(v, o.v)}; }
  Batch4 sub(Batch4 o) const { return {_mm256_sub_pd(v, o.v)}; }
  Batch4 mul(Batch4 o) const { return {_mm256_mul_pd(v, o.v)}; }
  Batch4 min(Batch4 o) const { return {_mm256_min_pd(v, o.v)}; }
  Batch4 max(Batch4 o) const { return {_mm256_max_pd(v, o.v)}; }
};

#elif defined(GPUVAR_SIMD_IMPL_SSE2)

/// SSE2 backend: lanes 0-1 and 2-3 in two 128-bit registers.
struct Batch4 {
  __m128d lo;
  __m128d hi;

  static Batch4 broadcast(double x) {
    return {_mm_set1_pd(x), _mm_set1_pd(x)};
  }
  static Batch4 load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  void store(double* p) const {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }

  Batch4 add(Batch4 o) const {
    return {_mm_add_pd(lo, o.lo), _mm_add_pd(hi, o.hi)};
  }
  Batch4 sub(Batch4 o) const {
    return {_mm_sub_pd(lo, o.lo), _mm_sub_pd(hi, o.hi)};
  }
  Batch4 mul(Batch4 o) const {
    return {_mm_mul_pd(lo, o.lo), _mm_mul_pd(hi, o.hi)};
  }
  Batch4 min(Batch4 o) const {
    return {_mm_min_pd(lo, o.lo), _mm_min_pd(hi, o.hi)};
  }
  Batch4 max(Batch4 o) const {
    return {_mm_max_pd(lo, o.lo), _mm_max_pd(hi, o.hi)};
  }
};

#elif defined(GPUVAR_SIMD_IMPL_NEON)

/// NEON backend: two float64x2_t registers. vminq/vmaxq propagate NaN
/// from either operand, which does not match minpd; the compare+select
/// forms below reproduce `(a < b) ? a : b` exactly.
struct Batch4 {
  float64x2_t lo;
  float64x2_t hi;

  static Batch4 broadcast(double x) {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  static Batch4 load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  void store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }

  Batch4 add(Batch4 o) const {
    return {vaddq_f64(lo, o.lo), vaddq_f64(hi, o.hi)};
  }
  Batch4 sub(Batch4 o) const {
    return {vsubq_f64(lo, o.lo), vsubq_f64(hi, o.hi)};
  }
  Batch4 mul(Batch4 o) const {
    return {vmulq_f64(lo, o.lo), vmulq_f64(hi, o.hi)};
  }
  Batch4 min(Batch4 o) const {
    return {vbslq_f64(vcltq_f64(lo, o.lo), lo, o.lo),
            vbslq_f64(vcltq_f64(hi, o.hi), hi, o.hi)};
  }
  Batch4 max(Batch4 o) const {
    return {vbslq_f64(vcgtq_f64(lo, o.lo), lo, o.lo),
            vbslq_f64(vcgtq_f64(hi, o.hi), hi, o.hi)};
  }
};

#else

/// Scalar backend: the determinism reference. Every op spells out the
/// exact lane-wise formula the vector backends execute in hardware.
struct Batch4 {
  double v[4];

  static Batch4 broadcast(double x) { return {{x, x, x, x}}; }
  static Batch4 load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  void store(double* p) const {
    p[0] = v[0];
    p[1] = v[1];
    p[2] = v[2];
    p[3] = v[3];
  }

  Batch4 add(Batch4 o) const {
    return {{v[0] + o.v[0], v[1] + o.v[1], v[2] + o.v[2], v[3] + o.v[3]}};
  }
  Batch4 sub(Batch4 o) const {
    return {{v[0] - o.v[0], v[1] - o.v[1], v[2] - o.v[2], v[3] - o.v[3]}};
  }
  Batch4 mul(Batch4 o) const {
    return {{v[0] * o.v[0], v[1] * o.v[1], v[2] * o.v[2], v[3] * o.v[3]}};
  }
  Batch4 min(Batch4 o) const {
    return {{v[0] < o.v[0] ? v[0] : o.v[0], v[1] < o.v[1] ? v[1] : o.v[1],
             v[2] < o.v[2] ? v[2] : o.v[2], v[3] < o.v[3] ? v[3] : o.v[3]}};
  }
  Batch4 max(Batch4 o) const {
    return {{v[0] > o.v[0] ? v[0] : o.v[0], v[1] > o.v[1] ? v[1] : o.v[1],
             v[2] > o.v[2] ? v[2] : o.v[2], v[3] > o.v[3] ? v[3] : o.v[3]}};
  }
};

#endif

}  // namespace GPUVAR_SIMD_NS
}  // namespace gpuvar::stats::simd
