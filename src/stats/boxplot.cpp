#include "stats/boxplot.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "stats/kernels.hpp"

namespace gpuvar::stats {

double BoxSummary::variation() const {
  GPUVAR_REQUIRE_MSG(median != 0.0, "variation undefined for zero median");
  return range / std::abs(median);
}

BoxSummary box_summary(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  // One scratch copy feeds all three quartile selections; min/max come
  // from the fused vectorized sweep over the untouched input. Replaces
  // the previous sorted_copy (O(n log n)) with O(n) work.
  std::vector<double> scratch(xs.begin(), xs.end());

  BoxSummary b;
  b.count = xs.size();
  b.q1 = kernels::quantile_inplace(scratch, 0.25);
  b.median = kernels::quantile_inplace(scratch, 0.5);
  b.q3 = kernels::quantile_inplace(scratch, 0.75);
  b.iqr = b.q3 - b.q1;
  b.lo_whisker = b.q1 - 1.5 * b.iqr;
  b.hi_whisker = b.q3 + 1.5 * b.iqr;
  b.range = b.hi_whisker - b.lo_whisker;
  const kernels::MinMax mm = kernels::min_max(xs);
  b.min = mm.min;
  b.max = mm.max;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (b.is_outlier_value(xs[i])) b.outlier_indices.push_back(i);
  }
  return b;
}

std::vector<double> without_outliers(std::span<const double> xs,
                                     const BoxSummary& box) {
  std::vector<double> out;
  out.reserve(xs.size() - box.outlier_indices.size());
  for (double x : xs) {
    if (!box.is_outlier_value(x)) out.push_back(x);
  }
  return out;
}

}  // namespace gpuvar::stats
