// Terminal renderings of the paper's figures: grouped box-and-whisker
// charts and scatter plots. The bench binaries use these so each figure
// can be eyeballed directly from the harness output.
#pragma once

#include <span>
#include <string>
#include <vector>


namespace gpuvar::stats {

struct NamedSeries {
  std::string name;
  std::vector<double> values;
};

struct BoxChartOptions {
  int width = 72;           ///< characters for the value axis
  std::string unit;         ///< appended to the axis labels
  bool show_variation = true;
};

/// Renders one horizontal box-and-whisker row per series, sharing a common
/// axis. Glyphs: '|' whisker ends, '-' whisker shaft, '[' Q1, ']' Q3,
/// ':' box body, 'M' median, 'o' outliers.
std::string render_box_chart(std::span<const NamedSeries> series,
                             const BoxChartOptions& opts = {});

struct ScatterOptions {
  int width = 72;
  int height = 20;
  std::string x_label;
  std::string y_label;
};

/// Renders an ASCII density scatter of (x, y) pairs; cells show '.'/':'/'#'
/// by point count. Includes the Pearson rho in the title line.
std::string render_scatter(std::span<const double> xs,
                           std::span<const double> ys,
                           const ScatterOptions& opts = {});

/// Renders a time series as a single line chart (used for the DVFS traces
/// of Figure 11 / Figure 25).
struct LineChartOptions {
  int width = 78;
  int height = 16;
  std::string y_label;
};

std::string render_line_chart(std::span<const double> ts,
                              std::span<const double> ys,
                              const LineChartOptions& opts = {});

}  // namespace gpuvar::stats
