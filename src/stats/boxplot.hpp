// Box-and-whisker summaries with the paper's exact conventions (§III):
//
//   * box spans Q1..Q3, center line at the median (Q2)
//   * IQR = Q3 - Q1
//   * upper whisker value = Q3 + 1.5·IQR, lower = Q1 - 1.5·IQR
//   * range     = upper whisker - lower whisker
//   * variation = range / Q2            (reported as a percentage)
//   * outliers  = data points outside the whiskers; they are *excluded*
//     from the variation figure (the paper's variance calculations do the
//     same)
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gpuvar::stats {

struct BoxSummary {
  std::size_t count = 0;
  double q1 = 0.0;
  double median = 0.0;  ///< Q2
  double q3 = 0.0;
  double iqr = 0.0;
  double lo_whisker = 0.0;  ///< Q1 - 1.5·IQR
  double hi_whisker = 0.0;  ///< Q3 + 1.5·IQR
  double range = 0.0;       ///< hi_whisker - lo_whisker
  double min = 0.0;         ///< sample min (may lie below the whisker)
  double max = 0.0;         ///< sample max (may lie above the whisker)
  std::vector<std::size_t> outlier_indices;  ///< indices into the input

  /// The paper's variation metric: range / median. Returns the *fraction*
  /// (multiply by 100 for a percentage). Requires median != 0.
  double variation() const;

  std::size_t outlier_count() const { return outlier_indices.size(); }

  /// True if xs[i] falls strictly outside [lo_whisker, hi_whisker].
  bool is_outlier_value(double x) const {
    return x < lo_whisker || x > hi_whisker;
  }
};

/// Computes the box summary of a sample. Requires a non-empty sample.
BoxSummary box_summary(std::span<const double> xs);

/// Values with the summary's outliers removed (order preserved).
std::vector<double> without_outliers(std::span<const double> xs,
                                     const BoxSummary& box);

}  // namespace gpuvar::stats
