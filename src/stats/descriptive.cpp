#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/hot.hpp"
#include "common/require.hpp"

namespace gpuvar::stats {

GPUVAR_HOT Descriptive describe(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  Descriptive d;
  d.count = xs.size();
  d.min = xs[0];
  d.max = xs[0];
  // Welford's online algorithm for mean and M2.
  double mean_acc = 0.0;
  double m2 = 0.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    ++n;
    sum += x;
    const double delta = x - mean_acc;
    mean_acc += delta / static_cast<double>(n);
    m2 += delta * (x - mean_acc);
    d.min = std::min(d.min, x);
    d.max = std::max(d.max, x);
  }
  d.sum = sum;
  d.mean = mean_acc;
  d.variance = (n > 1) ? m2 / static_cast<double>(n - 1) : 0.0;
  d.stddev = std::sqrt(d.variance);
  return d;
}

GPUVAR_HOT double mean(std::span<const double> xs) { return describe(xs).mean; }
GPUVAR_HOT double sample_variance(std::span<const double> xs) {
  return describe(xs).variance;
}
GPUVAR_HOT double sample_stddev(std::span<const double> xs) {
  return describe(xs).stddev;
}
GPUVAR_HOT double min_of(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}
GPUVAR_HOT double max_of(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace gpuvar::stats
