#include "stats/descriptive.hpp"

#include <cmath>

#include "common/hot.hpp"
#include "common/require.hpp"
#include "stats/kernels.hpp"

namespace gpuvar::stats {

GPUVAR_HOT Descriptive describe(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  Descriptive d;
  d.count = xs.size();
  // Fused min/max/sum/sumsq sweep, then a centered second pass for the
  // variance: raw moments (sumsq - sum^2/n) cancel catastrophically for
  // large-offset data, while sum((x - mean)^2) stays exact to the
  // sample's own scale. Two vectorized passes still beat the scalar
  // Welford recurrence, which serializes on the running mean.
  const kernels::Sweep s = kernels::describe_sweep(xs);
  const std::size_t n = xs.size();
  d.min = s.min;
  d.max = s.max;
  d.sum = s.sum;
  d.mean = s.sum / static_cast<double>(n);
  const double m2 = kernels::centered_sumsq(xs, d.mean);
  d.variance = (n > 1) ? m2 / static_cast<double>(n - 1) : 0.0;
  d.stddev = std::sqrt(d.variance);
  return d;
}

GPUVAR_HOT double mean(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return kernels::sum(xs) / static_cast<double>(xs.size());
}
GPUVAR_HOT double sample_variance(std::span<const double> xs) {
  return describe(xs).variance;
}
GPUVAR_HOT double sample_stddev(std::span<const double> xs) {
  return describe(xs).stddev;
}
GPUVAR_HOT double min_of(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return kernels::min_max(xs).min;
}
GPUVAR_HOT double max_of(std::span<const double> xs) {
  GPUVAR_REQUIRE(!xs.empty());
  return kernels::min_max(xs).max;
}

}  // namespace gpuvar::stats
