// Descriptive statistics over spans of doubles.
#pragma once

#include <cstddef>
#include <span>

namespace gpuvar::stats {

/// Summary of a sample: count, extremes, central moments.
struct Descriptive {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double variance = 0.0;  ///< Sample variance (n-1 denominator); 0 if n < 2.
  double stddev = 0.0;
  double sum = 0.0;

  /// Coefficient of variation (stddev / |mean|); 0 when mean == 0.
  double cv() const { return mean != 0.0 ? stddev / (mean < 0 ? -mean : mean) : 0.0; }
};

/// Computes descriptive statistics via the vectorized kernels in
/// stats/kernels.hpp: one fused min/max/sum/sumsq sweep, then a
/// numerically stable centered pass for the variance. Deterministic
/// across SIMD backends and thread counts (see kernels.hpp). Requires
/// a non-empty sample.
Descriptive describe(std::span<const double> xs);

double mean(std::span<const double> xs);
double sample_variance(std::span<const double> xs);
double sample_stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

}  // namespace gpuvar::stats
