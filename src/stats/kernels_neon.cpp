// NEON backend: two float64x2_t registers per 4-lane batch (aarch64
// baseline, so no extra flags). min/max are emulated with
// compare+select to match minpd semantics exactly — see simd.hpp. On
// non-ARM targets the TU degrades to the scalar Batch4 so
// neon_table() always links (kernels.cpp only dispatches to it on
// aarch64).
#define GPUVAR_SIMD_NS neon
#if defined(__aarch64__) && defined(__ARM_NEON)
#define GPUVAR_SIMD_IMPL_NEON 1
#endif
#include "stats/kernels_impl.hpp"  // gpuvar-lint: allow(unused-include)

#include "stats/kernels_table.hpp"

namespace gpuvar::stats::kernels::detail {
const KernelTable& neon_table() { return kernels::neon::table_impl(); }
}  // namespace gpuvar::stats::kernels::detail
