#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/hot.hpp"
#include "common/require.hpp"
#include "stats/kernels.hpp"

namespace gpuvar::stats {

GPUVAR_HOT double quantile_sorted(std::span<const double> sorted, double q) {
  GPUVAR_REQUIRE(!sorted.empty());
  GPUVAR_REQUIRE(q >= 0.0 && q <= 1.0);
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  // R type 7: h = (n-1)q; interpolate between floor(h) and floor(h)+1.
  const double h = static_cast<double>(n - 1) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

GPUVAR_HOT std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

GPUVAR_HOT double quantile(std::span<const double> xs, double q) {
  // One scratch copy, then O(n) selection instead of an O(n log n)
  // copy-sort; kernels::quantile_inplace reproduces quantile_sorted's
  // interpolation bit-for-bit (the k-th order statistic is a value
  // fact, independent of how the rest of the scratch ends up ordered).
  std::vector<double> scratch(xs.begin(), xs.end());
  return kernels::quantile_inplace(scratch, q);
}

GPUVAR_HOT std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs) {
  // One scratch copy shared across all cuts. Each selection partially
  // orders the scratch, which only makes the next selection cheaper —
  // the results do not depend on cut order.
  std::vector<double> scratch(xs.begin(), xs.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(kernels::quantile_inplace(scratch, q));
  return out;
}

GPUVAR_HOT double median(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace gpuvar::stats
