#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/hot.hpp"
#include "common/require.hpp"

namespace gpuvar::stats {

GPUVAR_HOT double quantile_sorted(std::span<const double> sorted, double q) {
  GPUVAR_REQUIRE(!sorted.empty());
  GPUVAR_REQUIRE(q >= 0.0 && q <= 1.0);
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  // R type 7: h = (n-1)q; interpolate between floor(h) and floor(h)+1.
  const double h = static_cast<double>(n - 1) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - std::floor(h);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

GPUVAR_HOT std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

GPUVAR_HOT double quantile(std::span<const double> xs, double q) {
  const auto v = sorted_copy(xs);
  return quantile_sorted(v, q);
}

GPUVAR_HOT std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs) {
  const auto v = sorted_copy(xs);
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(quantile_sorted(v, q));
  return out;
}

GPUVAR_HOT double median(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace gpuvar::stats
