#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/hot.hpp"
#include "common/require.hpp"
#include "stats/kernels.hpp"

namespace gpuvar::stats {

GPUVAR_HOT double pearson(std::span<const double> xs, std::span<const double> ys) {
  GPUVAR_REQUIRE(xs.size() == ys.size());
  GPUVAR_REQUIRE(xs.size() >= 2);
  const std::size_t n = xs.size();
  const double mx = kernels::sum(xs) / static_cast<double>(n);
  const double my = kernels::sum(ys) / static_cast<double>(n);
  // Fused dot/sum-of-products kernel: sxy, sxx, syy in one sweep.
  const kernels::CenteredProducts cp = kernels::centered_products(xs, ys, mx, my);
  if (cp.sxx == 0.0 || cp.syy == 0.0) return 0.0;
  const double rho = cp.sxy / std::sqrt(cp.sxx * cp.syy);
  // Guard against floating point drift just past ±1.
  return std::clamp(rho, -1.0, 1.0);
}

namespace {

std::vector<double> fractional_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // Index tie-breaker: equal values keep their input order, so ranks
    // are reproducible whatever sort algorithm runs underneath.
    return xs[a] != xs[b] ? xs[a] < xs[b] : a < b;
  });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j] (1-based ranks).
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

GPUVAR_HOT double spearman(std::span<const double> xs, std::span<const double> ys) {
  GPUVAR_REQUIRE(xs.size() == ys.size());
  GPUVAR_REQUIRE(xs.size() >= 2);
  const auto rx = fractional_ranks(xs);
  const auto ry = fractional_ranks(ys);
  return pearson(rx, ry);
}

std::string correlation_strength(double rho) {
  const double a = std::abs(rho);
  if (a >= 0.9) return "strong";
  if (a >= 0.6) return "moderate";
  if (a >= 0.3) return "weak";
  return "uncorrelated";
}

}  // namespace gpuvar::stats
