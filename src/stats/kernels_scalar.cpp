// Scalar backend: the determinism reference every vector backend must
// match bit-for-bit. Batch4 here is a plain double[4]; the kernel
// bodies in kernels_impl.hpp are shared with every other backend, so
// the arithmetic order is identical by construction.
#define GPUVAR_SIMD_NS scalar
#include "stats/kernels_impl.hpp"  // gpuvar-lint: allow(unused-include)

#include "stats/kernels_table.hpp"

namespace gpuvar::stats::kernels::detail {
const KernelTable& scalar_table() { return kernels::scalar::table_impl(); }
}  // namespace gpuvar::stats::kernels::detail
