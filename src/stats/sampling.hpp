// Statistical-significance methodology from Scogland et al., "A
// Power-Measurement Methodology for Large-Scale, High-Performance
// Computing" (ICPE '14), which the paper follows (§III): compute the
// number of GPUs that must be sampled so the estimated mean power is
// within a relative accuracy λ of the true mean at a given confidence.
#pragma once

#include <cstddef>

namespace gpuvar::stats {

struct SampleSizePlan {
  std::size_t population = 0;        ///< GPUs in the cluster
  std::size_t recommended = 0;       ///< minimum GPUs to sample
  double relative_accuracy = 0.0;    ///< λ (e.g. 0.005 for 0.5%)
  double confidence = 0.0;           ///< e.g. 0.95
  double coefficient_of_variation = 0.0;
};

/// Recommended sample size for estimating a mean with relative accuracy
/// `lambda` at `confidence`, given the population's coefficient of
/// variation (σ/μ). Applies the finite-population correction:
///   n0 = (z·CV/λ)²,  n = n0 / (1 + (n0 - 1)/N), rounded up.
SampleSizePlan recommend_sample_size(std::size_t population, double cv,
                                     double lambda, double confidence);

/// Ratio of an actual sample size to the recommendation (the paper reports
/// sampling 2.9× more GPUs than the worst-case recommendation).
double oversampling_factor(const SampleSizePlan& plan, std::size_t actual);

/// Two-sided z value for a confidence level (e.g. 0.95 -> 1.9600).
double z_for_confidence(double confidence);

}  // namespace gpuvar::stats
