// Quantile estimation (R type-7 linear interpolation, the default in R,
// NumPy and pandas — and thus in the paper's analysis pipeline).
#pragma once

#include <span>
#include <vector>

namespace gpuvar::stats {

/// Quantile of an *already sorted* sample; q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Quantile of an unsorted sample: one scratch copy, then O(n)
/// selection (kernels::quantile_inplace) — bit-identical to sorting
/// the copy and calling quantile_sorted, without the O(n log n) sort.
double quantile(std::span<const double> xs, double q);

/// Several quantiles of one sample sharing a single scratch copy;
/// results are independent of cut order.
std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> qs);

double median(std::span<const double> xs);

/// Returns a sorted copy.
std::vector<double> sorted_copy(std::span<const double> xs);

}  // namespace gpuvar::stats
