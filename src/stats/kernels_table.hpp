// Internal dispatch table between stats/kernels.cpp and the per-backend
// translation units (kernels_scalar.cpp, kernels_sse2.cpp,
// kernels_avx2.cpp, kernels_neon.cpp). Each backend TU instantiates
// kernels_impl.hpp in its own namespace and exports exactly one of the
// *_table() getters below; kernels.cpp picks one at startup (cpuid +
// GPUVAR_SIMD) and forwards every public kernel through it.
//
// Selection (nth_inplace & friends) and the index-emitting mask helpers
// are not in the table: they are exact value operations implemented
// once in kernels.cpp, identical for every backend by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "stats/kernels.hpp"

namespace gpuvar::stats::kernels::detail {

struct KernelTable {
  Sweep (*describe_sweep)(std::span<const double>) = nullptr;
  double (*sum)(std::span<const double>) = nullptr;
  double (*centered_sumsq)(std::span<const double>, double) = nullptr;
  CenteredProducts (*centered_products)(std::span<const double>,
                                        std::span<const double>, double,
                                        double) = nullptr;
  MinMax (*min_max)(std::span<const double>) = nullptr;
  void (*mask_range_i16)(std::span<const std::int16_t>, std::int16_t,
                         std::int16_t, std::span<std::uint8_t>) = nullptr;
  void (*mask_gather_u32)(std::span<const std::uint32_t>,
                          std::span<const std::uint8_t>,
                          std::span<std::uint8_t>) = nullptr;
  void (*mask_and)(std::span<const std::uint8_t>,
                   std::span<const std::uint8_t>,
                   std::span<std::uint8_t>) = nullptr;
  std::size_t (*mask_count)(std::span<const std::uint8_t>) = nullptr;
};

const KernelTable& scalar_table();
const KernelTable& sse2_table();
const KernelTable& avx2_table();
const KernelTable& neon_table();

}  // namespace gpuvar::stats::kernels::detail
