// Bootstrap confidence intervals. The paper reports point estimates of
// variation; a reproduction should also say how certain they are —
// especially when comparing clusters whose estimates differ by a point or
// two. Percentile bootstrap over GPU-level resamples.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace gpuvar::stats {

using Statistic = std::function<double(std::span<const double>)>;

struct BootstrapCI {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
  double confidence = 0.0;

  bool contains(double x) const { return x >= lo && x <= hi; }
  double width() const { return hi - lo; }
};

/// Percentile bootstrap of `statistic` over `xs`. Deterministic for a
/// given seed. Requires |xs| >= 2 and resamples >= 50.
BootstrapCI bootstrap_ci(std::span<const double> xs,
                         const Statistic& statistic, int resamples = 1000,
                         double confidence = 0.95,
                         std::uint64_t seed = 0xB0075);

/// The paper's variation statistic (whisker range / median, %), ready to
/// pass to bootstrap_ci.
double variation_pct_statistic(std::span<const double> xs);

}  // namespace gpuvar::stats
