#include "stats/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "stats/normal.hpp"

namespace gpuvar::stats {

double z_for_confidence(double confidence) {
  GPUVAR_REQUIRE(confidence > 0.0 && confidence < 1.0);
  return normal_quantile(0.5 + confidence / 2.0);
}

SampleSizePlan recommend_sample_size(std::size_t population, double cv,
                                     double lambda, double confidence) {
  GPUVAR_REQUIRE(population >= 1);
  GPUVAR_REQUIRE(cv >= 0.0);
  GPUVAR_REQUIRE(lambda > 0.0);

  SampleSizePlan plan;
  plan.population = population;
  plan.relative_accuracy = lambda;
  plan.confidence = confidence;
  plan.coefficient_of_variation = cv;

  const double z = z_for_confidence(confidence);
  const double n0 = std::pow(z * cv / lambda, 2.0);
  // Finite-population correction.
  const double n = n0 / (1.0 + (n0 - 1.0) / static_cast<double>(population));
  plan.recommended = std::min<std::size_t>(
      population, static_cast<std::size_t>(std::ceil(std::max(1.0, n))));
  return plan;
}

double oversampling_factor(const SampleSizePlan& plan, std::size_t actual) {
  GPUVAR_REQUIRE(plan.recommended >= 1);
  return static_cast<double>(actual) / static_cast<double>(plan.recommended);
}

}  // namespace gpuvar::stats
