// GPU stock-keeping-unit (SKU) descriptions.
//
// A SKU carries everything that is identical across chips of a model:
// architecture constants, the DVFS frequency ladder, the V/f curve, the
// TDP and temperature limits, and the *process spread* — the distributions
// from which each individual chip's silicon parameters are drawn. The
// values below are calibrated against public datasheets (V100-SXM2,
// Quadro RTX 5000, Radeon Instinct MI60) and the behaviour reported in the
// paper (settled frequency bands, temperature limits, power at TDP).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace gpuvar {

enum class Vendor { kNvidia, kAmd };

std::string to_string(Vendor v);

/// Chip-to-chip manufacturing spread for a SKU's process node.
struct ProcessSpread {
  Volts vf_offset_sigma{0.010};     ///< σ of the V/f curve voltage shift
  double efficiency_sigma = 0.02;    ///< σ of the switching-capacitance factor
  double leakage_log_sigma = 0.15;   ///< σ of log(leakage factor)
  double mem_bw_sigma = 0.01;        ///< σ of the memory-bandwidth factor
};

struct GpuSku {
  std::string name;
  Vendor vendor = Vendor::kNvidia;

  // --- Architecture ---
  int sm_count = 0;                   ///< SMs (NVIDIA) or CUs (AMD)
  double flops_per_sm_per_cycle = 0;  ///< single-precision FLOPs/cycle/SM
  double mem_bw_gbps = 0;             ///< peak DRAM bandwidth, GB/s
  double mem_size_gb = 0;

  // --- DVFS ---
  MegaHertz min_mhz{};
  MegaHertz max_mhz{};
  MegaHertz ladder_step_mhz{};      ///< spacing of allowed frequency states
  Seconds dvfs_control_period{0.01}; ///< how often the PM controller acts
  Watts dvfs_up_margin{8.0};         ///< step up only if P < cap - margin

  // --- Electrical ---
  Watts tdp{};
  Volts v_min{};                    ///< voltage at min_mhz (typical chip)
  Volts v_max{};                    ///< voltage at max_mhz (typical chip)
  double c_eff = 0;                   ///< W / (V^2 * MHz) at activity 1
  Watts idle_power{};               ///< board power at idle
  Watts leakage_at_ref{};           ///< static power at leak_ref_temp
  Celsius leak_ref_temp{60.0};
  double leak_temp_coeff = 0.015;     ///< per-°C exponential coefficient

  // --- Thermal limits (per the paper's Methodology section) ---
  Celsius slowdown_temp{};
  Celsius shutdown_temp{};
  Celsius max_operating_temp{};

  // --- Process ---
  ProcessSpread spread;

  // --- Derived helpers ---
  /// All allowed frequency states, ascending.
  std::vector<MegaHertz> frequency_ladder() const;
  /// Peak single-precision FLOP/s at frequency f (MHz).
  double peak_flops(MegaHertz f) const;
  /// Typical-chip voltage at frequency f (linear V/f interpolation,
  /// clamped to the ladder's range).
  Volts voltage_at(MegaHertz f) const;
};

/// NVIDIA Tesla V100-SXM2 16GB (Longhorn, Summit, Vortex, CloudLab).
GpuSku make_v100_sxm2();
/// NVIDIA Quadro RTX 5000 (Frontera).
GpuSku make_rtx5000();
/// AMD Radeon Instinct MI60 (Corona).
GpuSku make_mi60();

}  // namespace gpuvar
