#include "gpu/timeseries.hpp"
#include "common/units.hpp"

namespace gpuvar {

std::vector<double> TimeSeries::times() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const auto& s : samples_) v.push_back(s.t.value());
  return v;
}

std::vector<double> TimeSeries::freqs() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const auto& s : samples_) v.push_back(s.freq.value());
  return v;
}

std::vector<double> TimeSeries::powers() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const auto& s : samples_) v.push_back(s.power.value());
  return v;
}

std::vector<double> TimeSeries::temps() const {
  std::vector<double> v;
  v.reserve(samples_.size());
  for (const auto& s : samples_) v.push_back(s.temp.value());
  return v;
}

TimeSeries TimeSeries::slice(Seconds t0, Seconds t1) const {
  TimeSeries out;
  for (const auto& s : samples_) {
    if (s.t >= t0 && s.t < t1) out.push(s);
  }
  return out;
}

}  // namespace gpuvar
