// The per-GPU power-management controller (the paper's §II-B).
//
// Modern GPUs run a *local-only* control loop: every control period the
// controller compares measured board power against the power limit and
// walks the frequency ladder one state at a time — down when over the
// limit (or when the junction temperature reaches the slowdown threshold),
// up when comfortably below it. Vendors differ in ladder granularity and
// hysteresis margin, which is exactly what produces the paper's
// NVIDIA-vs-AMD differences (fine 7.5 MHz states and ρ≈-0.97 on V100s
// versus coarse states and weaker correlation on MI60s).
#pragma once

#include <vector>

#include "common/units.hpp"
namespace gpuvar { struct GpuSku; }  // was: #include "gpu/sku.hpp"

namespace gpuvar {

class DvfsController {
 public:
  /// power_limit defaults to the SKU's TDP when <= 0.
  DvfsController(const GpuSku& sku, Watts power_limit = Watts{});

  MegaHertz frequency() const { return ladder_[index_]; }
  Watts power_limit() const { return power_limit_; }
  const std::vector<MegaHertz>& ladder() const { return ladder_; }

  /// Reconfigure the power limit (requires admin rights on real systems —
  /// the CloudLab power-sweep experiment of §VI-B uses this).
  void set_power_limit(Watts limit);

  /// Reset to the boost state (a fresh kernel launch starts from the top
  /// state on NVIDIA parts; the controller then walks down under load).
  void reset();

  /// Feed one observation. Returns true if the frequency changed. `now`
  /// must be monotonically non-decreasing; the controller acts at most
  /// once per control period.
  bool observe(Seconds now, Watts power, Celsius temperature);

  /// True if the last action was a thermally forced down-step.
  bool thermally_throttled() const { return thermal_throttle_; }

  /// Cumulative state transitions since construction/reset.
  long down_steps() const { return down_steps_; }
  long up_steps() const { return up_steps_; }

 private:
  void step_down();
  void step_up();

  const GpuSku* sku_;
  std::vector<MegaHertz> ladder_;
  std::size_t index_ = 0;
  Watts power_limit_{};
  Seconds next_action_{};
  bool thermal_throttle_ = false;
  long down_steps_ = 0;
  long up_steps_ = 0;
  // After stepping down for over-power, hold before trying to step up
  // again; prevents limit-cycling around the cap on coarse ladders.
  Seconds up_hold_until_{};
  // Timestamp of the previous observe() call; observations must be
  // monotonically non-decreasing (asserted).
  Seconds last_observe_{};
};

}  // namespace gpuvar
