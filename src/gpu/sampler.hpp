// Streaming telemetry collection.
//
// Real runs of the paper collected 18,800+ hours of 1 ms profiler samples;
// holding full series for every GPU is infeasible, so the paper (and this
// sampler) works from per-run summaries (medians). The sampler therefore
// supports two modes:
//
//   summary — streaming, O(1) memory: exact min/max/time-weighted mean per
//             metric plus fixed-resolution weighted medians (0.5 MHz /
//             0.1 W / 0.05 °C bins — far finer than the profiler's own
//             quantization).
//   series  — additionally stores decimated Sample rows for time-series
//             figures (Fig. 11, Fig. 25).
//
// The device reports *spans* (intervals of constant state), which keeps
// the accounting exact even when the simulator fast-forwards through a
// steady state.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "gpu/timeseries.hpp"

namespace gpuvar {

/// Weighted streaming quantile estimator over a fixed grid.
class StreamingQuantile {
 public:
  StreamingQuantile(double lo, double hi, double resolution);

  void add(double value, double weight);
  double total_weight() const { return total_weight_; }
  bool empty() const { return total_weight_ <= 0.0; }

  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const;  ///< weight-averaged mean (exact)
  /// Weighted quantile at the grid resolution; q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  double lo_, resolution_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  double weighted_sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

struct MetricSummary {
  double median = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct TelemetrySummary {
  MetricSummary freq;
  MetricSummary power;
  MetricSummary temp;
  Seconds duration{};
  Joules energy{};
};

struct SamplerOptions {
  /// Sampling interval for the stored series; clamped up to the profiler
  /// floor (1 ms), mirroring the nvprof/rocm-smi limitation in §III.
  Seconds series_interval{0.05};
  bool keep_series = false;
  /// Hard cap on stored samples (oldest kept; excess dropped) so an
  /// accidental full-length collection cannot exhaust memory.
  std::size_t max_series_samples = 2'000'000;
};

class Sampler {
 public:
  explicit Sampler(const SamplerOptions& opts = {});

  /// Account an interval [t, t+dt) of constant state.
  void record_span(Seconds t, Seconds dt, MegaHertz f, Watts p, Celsius temp);

  TelemetrySummary summary() const;
  const TimeSeries& series() const { return series_; }
  const SamplerOptions& options() const { return opts_; }

  void reset();

 private:
  SamplerOptions opts_;
  StreamingQuantile freq_;
  StreamingQuantile power_;
  StreamingQuantile temp_;
  Seconds duration_{};
  Joules energy_{};
  std::size_t series_emitted_ = 0;
  TimeSeries series_;
};

}  // namespace gpuvar
