// Kernel execution model.
//
// A kernel is characterized by its total work (FLOPs and DRAM bytes), its
// achievable efficiency against the roofline, and its power activity
// factor. Its instantaneous progress rate at SM frequency f is
//
//   rate(f) = 1 / max(t_compute(f), t_memory)            (roofline)
//
// where t_compute scales inversely with frequency and t_memory does not —
// this is precisely why compute-bound kernels inherit the DVFS frequency
// spread while memory-bound kernels don't (Takeaways 5, 7, 8).
#pragma once

#include <string>

#include "common/units.hpp"
namespace gpuvar { struct SiliconSample; }  // was: #include "gpu/silicon.hpp"
namespace gpuvar { struct GpuSku; }  // was: #include "gpu/sku.hpp"

namespace gpuvar {

struct KernelSpec {
  std::string name;
  double flops = 0.0;          ///< total single-precision FLOPs
  double bytes = 0.0;          ///< total DRAM traffic, bytes
  double compute_efficiency = 0.9;  ///< fraction of peak FLOP/s achieved
  double bw_efficiency = 0.8;       ///< fraction of peak bandwidth achieved
  double activity = 1.0;       ///< dynamic-power activity factor in [0, 1]
  /// Residual activity fraction while memory-bound. A streaming,
  /// bandwidth-bound kernel keeps DRAM/L2 busy (high floor); an irregular
  /// latency-bound kernel leaves the chip mostly idle (low floor).
  double stall_activity_floor = 0.30;

  // --- Profiler-counter footprint (nvprof-style, used for workload
  // classification; §III "Measurement"). ---
  double fu_util = 0.0;        ///< functional-unit utilization, 0-10 scale
  double dram_util = 0.0;      ///< DRAM utilization, 0-10 scale
  double mem_stall_frac = 0.0; ///< fraction of stalls on memory dependencies
  double exec_stall_frac = 0.0;///< fraction of stalls on execution deps

  /// Validates invariants; throws std::invalid_argument on nonsense.
  void validate() const;
};

/// Time the kernel's compute side needs at frequency f on a given chip.
Seconds compute_time(const KernelSpec& k, const GpuSku& sku, MegaHertz f);

/// Time the kernel's memory side needs on a given chip (f-independent).
Seconds memory_time(const KernelSpec& k, const GpuSku& sku,
                    const SiliconSample& chip);

/// Roofline duration at a *fixed* frequency (no DVFS transient).
Seconds kernel_time_at(const KernelSpec& k, const GpuSku& sku,
                       const SiliconSample& chip, MegaHertz f);

/// Fraction of the kernel's duration bound by memory at frequency f
/// (0 = pure compute, 1 = pure memory); reported alongside counters.
double memory_boundedness(const KernelSpec& k, const GpuSku& sku,
                          const SiliconSample& chip, MegaHertz f);

/// The *effective* power activity at frequency f: when the kernel is
/// memory-bound the datapath idles while waiting, so the switching
/// activity drops proportionally.
double effective_activity(const KernelSpec& k, const GpuSku& sku,
                          const SiliconSample& chip, MegaHertz f);

/// Builds the SGEMM kernel for an n×n×n single-precision matrix multiply.
KernelSpec make_sgemm_kernel(std::size_t n);

}  // namespace gpuvar
