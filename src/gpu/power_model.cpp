#include "gpu/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"

namespace gpuvar {

Volts PowerModel::voltage(MegaHertz f) const {
  return sku_->voltage_at(f) + chip_->vf_offset;
}

Watts PowerModel::dynamic_power(MegaHertz f, double activity) const {
  GPUVAR_REQUIRE(activity >= 0.0 && activity <= 1.0);
  const double v = voltage(f).value();
  return Watts{sku_->c_eff * chip_->efficiency_factor * v * v * f.value() *
               activity};
}

Watts PowerModel::leakage_power(Celsius t) const {
  return sku_->leakage_at_ref * chip_->leakage_factor *
         std::exp(sku_->leak_temp_coeff * (t - sku_->leak_ref_temp).value());
}

Watts PowerModel::total_power(MegaHertz f, double activity, Celsius t) const {
  return dynamic_power(f, activity) + leakage_power(t) + sku_->idle_power;
}

Watts PowerModel::idle_power(Celsius t) const {
  return leakage_power(t) + sku_->idle_power;
}

}  // namespace gpuvar
