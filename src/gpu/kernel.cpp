#include "gpu/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"

namespace gpuvar {

void KernelSpec::validate() const {
  GPUVAR_REQUIRE_MSG(flops >= 0.0 && bytes >= 0.0, name);
  GPUVAR_REQUIRE_MSG(flops > 0.0 || bytes > 0.0, name + ": no work");
  GPUVAR_REQUIRE_MSG(compute_efficiency > 0.0 && compute_efficiency <= 1.0,
                     name);
  GPUVAR_REQUIRE_MSG(bw_efficiency > 0.0 && bw_efficiency <= 1.0, name);
  GPUVAR_REQUIRE_MSG(activity >= 0.0 && activity <= 1.0, name);
  GPUVAR_REQUIRE_MSG(stall_activity_floor >= 0.0 && stall_activity_floor <= 1.0,
                     name);
  GPUVAR_REQUIRE_MSG(fu_util >= 0.0 && fu_util <= 10.0, name);
  GPUVAR_REQUIRE_MSG(dram_util >= 0.0 && dram_util <= 10.0, name);
  GPUVAR_REQUIRE_MSG(mem_stall_frac >= 0.0 && mem_stall_frac <= 1.0, name);
  GPUVAR_REQUIRE_MSG(exec_stall_frac >= 0.0 && exec_stall_frac <= 1.0, name);
}

Seconds compute_time(const KernelSpec& k, const GpuSku& sku, MegaHertz f) {
  if (k.flops <= 0.0) return Seconds{};
  return Seconds{k.flops / (sku.peak_flops(f) * k.compute_efficiency)};
}

Seconds memory_time(const KernelSpec& k, const GpuSku& sku,
                    const SiliconSample& chip) {
  if (k.bytes <= 0.0) return Seconds{};
  const double bw =
      sku.mem_bw_gbps * 1e9 * k.bw_efficiency * chip.mem_bw_factor;
  return Seconds{k.bytes / bw};
}

Seconds kernel_time_at(const KernelSpec& k, const GpuSku& sku,
                       const SiliconSample& chip, MegaHertz f) {
  return std::max(compute_time(k, sku, f), memory_time(k, sku, chip));
}

double memory_boundedness(const KernelSpec& k, const GpuSku& sku,
                          const SiliconSample& chip, MegaHertz f) {
  const Seconds tc = compute_time(k, sku, f);
  const Seconds tm = memory_time(k, sku, chip);
  const Seconds t = std::max(tc, tm);
  if (t <= Seconds{}) return 0.0;
  // 0 when compute fully covers memory, 1 when memory dwarfs compute.
  return std::clamp((tm - tc) / t, 0.0, 1.0);
}

double effective_activity(const KernelSpec& k, const GpuSku& sku,
                          const SiliconSample& chip, MegaHertz f) {
  const double mb = memory_boundedness(k, sku, chip, f);
  // While memory-bound the datapath's switching activity collapses to the
  // kernel's stall floor (DRAM/L2 traffic, address generation).
  return k.activity * (1.0 - mb * (1.0 - k.stall_activity_floor));
}

KernelSpec make_sgemm_kernel(std::size_t n) {
  GPUVAR_REQUIRE(n >= 64);
  KernelSpec k;
  k.name = "sgemm_" + std::to_string(n);
  const double dn = static_cast<double>(n);
  k.flops = 2.0 * dn * dn * dn;
  // cuBLAS-style blocked GEMM: each operand is streamed ~n/block times;
  // with ~128-wide tiles effective traffic is ~(3 + n/128)·n²·4 bytes.
  k.bytes = (3.0 + dn / 128.0) * dn * dn * 4.0;
  k.compute_efficiency = 0.93;
  k.bw_efficiency = 0.85;
  k.activity = 1.0;
  k.fu_util = 10.0;
  k.dram_util = 2.0;
  k.mem_stall_frac = 0.03;
  k.exec_stall_frac = 0.36;
  k.validate();
  return k;
}

}  // namespace gpuvar
