#include "gpu/dvfs.hpp"

#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "common/units.hpp"
#include "gpu/sku.hpp"

namespace gpuvar {

DvfsController::DvfsController(const GpuSku& sku, Watts power_limit)
    : sku_(&sku), ladder_(sku.frequency_ladder()) {
  GPUVAR_REQUIRE(!ladder_.empty());
  set_power_limit(power_limit);
  reset();
}

void DvfsController::set_power_limit(Watts limit) {
  power_limit_ = (limit > Watts{}) ? limit : sku_->tdp;
  GPUVAR_REQUIRE(power_limit_ > Watts{});
}

void DvfsController::reset() {
  index_ = ladder_.size() - 1;  // boost state
  next_action_ = Seconds{0.0};
  up_hold_until_ = Seconds{0.0};
  last_observe_ = Seconds{0.0};
  thermal_throttle_ = false;
  down_steps_ = 0;
  up_steps_ = 0;
}

void DvfsController::step_down() {
  if (index_ > 0) {
    --index_;
    ++down_steps_;
  }
}

void DvfsController::step_up() {
  if (index_ + 1 < ladder_.size()) {
    ++index_;
    ++up_steps_;
  }
}

bool DvfsController::observe(Seconds now, Watts power, Celsius temperature) {
  GPUVAR_ASSERT(now >= last_observe_);
  GPUVAR_ASSERT(index_ < ladder_.size());
  last_observe_ = now;
  if (now < next_action_) return false;
  next_action_ = now + sku_->dvfs_control_period;
  GPUVAR_METRIC_COUNT("dvfs.decisions");
  // Stamp any instants below with the device clock, not the stale
  // end-of-last-iteration lane time.
  GPUVAR_TRACE_ADVANCE(now);

  const std::size_t before = index_;
  thermal_throttle_ = false;

  // Thermal protection dominates: at the slowdown threshold the firmware
  // forces lower states regardless of power headroom.
  if (temperature >= sku_->slowdown_temp) {
    step_down();
    thermal_throttle_ = true;
    up_hold_until_ = now + 10.0 * sku_->dvfs_control_period;
    GPUVAR_METRIC_COUNT("dvfs.thermal_throttles");
    GPUVAR_TRACE_INSTANT("dvfs", "thermal_throttle", "state",
                         static_cast<std::int64_t>(index_));
    return index_ != before;
  }

  if (power > power_limit_) {
    step_down();
    // Brief hold so a single over-power event doesn't immediately bounce
    // back up (hysteresis).
    up_hold_until_ = now + 4.0 * sku_->dvfs_control_period;
    if (index_ != before) {
      GPUVAR_METRIC_COUNT("dvfs.step_downs");
      GPUVAR_TRACE_INSTANT("dvfs", "step_down", "state",
                           static_cast<std::int64_t>(index_));
    }
  } else if (power < power_limit_ - sku_->dvfs_up_margin &&
             now >= up_hold_until_ &&
             temperature < sku_->slowdown_temp - Celsius{2.0}) {
    step_up();
    if (index_ != before) GPUVAR_METRIC_COUNT("dvfs.step_ups");
  }
  return index_ != before;
}

}  // namespace gpuvar
