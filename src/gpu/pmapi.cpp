#include "gpu/pmapi.hpp"

namespace gpuvar {

std::string to_string(ThrottleReason r) {
  switch (r) {
    case ThrottleReason::kNone:
      return "none";
    case ThrottleReason::kPowerCap:
      return "power-cap";
    case ThrottleReason::kThermal:
      return "thermal";
  }
  return "unknown";
}

}  // namespace gpuvar
