// A vendor-neutral power-management introspection interface.
//
// The paper's closing argument (§VII "New Hardware and System Design"):
// "we will need to design a standard for accelerators to expose PM
// information from the hardware to the software and runtime." This header
// is that standard, sized for the study's needs: a point-in-time snapshot
// (what state is the controller in, and *why*) plus cumulative residency
// accounting (how long has the chip been throttled, and by what). The
// simulated device implements it; a real deployment would back it with
// NVML / rocm-smi plus the extra fields vendors do not expose today.
#pragma once

#include <string>

#include "common/units.hpp"

namespace gpuvar {

enum class ThrottleReason {
  kNone,      ///< at the requested/boost clock
  kPowerCap,  ///< held below boost by the power limit
  kThermal,   ///< held down by the slowdown-temperature protection
};

std::string to_string(ThrottleReason r);

/// Point-in-time controller state.
struct PmSnapshot {
  MegaHertz sm_freq{};
  MegaHertz max_freq{};
  Watts power{};
  Watts power_limit{};
  Celsius temperature{};
  Celsius slowdown_temp{};
  ThrottleReason reason = ThrottleReason::kNone;

  /// Headroom to the cap (negative while over it).
  Watts power_headroom() const { return power_limit - power; }
  /// Fraction of the boost clock currently delivered.
  double clock_residency() const {
    return max_freq > MegaHertz{} ? sm_freq / max_freq : 0.0;
  }
};

/// Cumulative residency accounting since construction/reset.
struct ThrottleAccounting {
  Seconds total{};           ///< busy time accounted
  Seconds at_max_clock{};    ///< time at the boost state
  Seconds power_limited{};   ///< time below boost due to the cap
  Seconds thermal_limited{}; ///< time in thermal slowdown
  long down_steps = 0;           ///< controller down-transitions
  long up_steps = 0;             ///< controller up-transitions

  double max_clock_residency() const {
    return total > Seconds{} ? at_max_clock / total : 0.0;
  }
  double power_limited_residency() const {
    return total > Seconds{} ? power_limited / total : 0.0;
  }
  double thermal_limited_residency() const {
    return total > Seconds{} ? thermal_limited / total : 0.0;
  }
};

/// The introspection interface itself. Anything that exposes these two
/// calls can feed the suite's analyses — simulated or physical.
class PmIntrospection {
 public:
  virtual ~PmIntrospection() = default;
  virtual PmSnapshot pm_snapshot() const = 0;
  virtual ThrottleAccounting pm_accounting() const = 0;
};

}  // namespace gpuvar
