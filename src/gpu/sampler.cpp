#include "gpu/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"
#include "gpu/timeseries.hpp"

namespace gpuvar {

StreamingQuantile::StreamingQuantile(double lo, double hi, double resolution)
    : lo_(lo), resolution_(resolution) {
  GPUVAR_REQUIRE(hi > lo);
  GPUVAR_REQUIRE(resolution > 0.0);
  const auto bins = static_cast<std::size_t>(
      std::ceil((hi - lo) / resolution));
  weights_.assign(bins + 1, 0.0);
}

void StreamingQuantile::add(double value, double weight) {
  GPUVAR_REQUIRE(weight >= 0.0);
  if (weight == 0.0) return;
  if (total_weight_ == 0.0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  auto idx = static_cast<long long>(std::floor((value - lo_) / resolution_));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(weights_.size()) - 1);
  weights_[static_cast<std::size_t>(idx)] += weight;
  total_weight_ += weight;
  weighted_sum_ += value * weight;
}

double StreamingQuantile::mean() const {
  GPUVAR_REQUIRE(!empty());
  return weighted_sum_ / total_weight_;
}

double StreamingQuantile::quantile(double q) const {
  GPUVAR_REQUIRE(!empty());
  GPUVAR_REQUIRE(q >= 0.0 && q <= 1.0);
  const double target = q * total_weight_;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    if (acc >= target) {
      const double center =
          lo_ + (static_cast<double>(i) + 0.5) * resolution_;
      return std::clamp(center, min_, max_);
    }
  }
  return max_;
}

Sampler::Sampler(const SamplerOptions& opts)
    : opts_(opts),
      freq_(0.0, 3000.0, 0.5),
      power_(0.0, 800.0, 0.1),
      temp_(0.0, 130.0, 0.05) {
  opts_.series_interval = std::max(opts_.series_interval, kMinSamplingInterval);
}

void Sampler::record_span(Seconds t, Seconds dt, MegaHertz f, Watts p,
                          Celsius temp) {
  GPUVAR_REQUIRE(dt >= Seconds{});
  if (dt == Seconds{}) return;
  freq_.add(f.value(), dt.value());
  power_.add(p.value(), dt.value());
  temp_.add(temp.value(), dt.value());
  duration_ += dt;
  energy_ += p * dt;

  if (!opts_.keep_series) return;
  // Emit decimated samples at the configured interval across the span.
  // Sample times derive from an integer index so accumulated float error
  // can never add or drop a sample.
  const double interval = opts_.series_interval.value();
  const Seconds end = t + dt;
  while (series_.size() < opts_.max_series_samples) {
    const Seconds st{static_cast<double>(series_emitted_) * interval};
    if (st >= end - Seconds{1e-15}) break;
    if (st >= t) series_.push(Sample{st, f, p, temp});
    ++series_emitted_;
  }
}

namespace {
MetricSummary summarize(const StreamingQuantile& q) {
  MetricSummary m;
  if (q.empty()) return m;
  m.median = q.median();
  m.mean = q.mean();
  m.min = q.min();
  m.max = q.max();
  return m;
}
}  // namespace

TelemetrySummary Sampler::summary() const {
  TelemetrySummary s;
  s.freq = summarize(freq_);
  s.power = summarize(power_);
  s.temp = summarize(temp_);
  s.duration = duration_;
  s.energy = energy_;
  return s;
}

void Sampler::reset() {
  freq_ = StreamingQuantile(0.0, 3000.0, 0.5);
  power_ = StreamingQuantile(0.0, 800.0, 0.1);
  temp_ = StreamingQuantile(0.0, 130.0, 0.05);
  duration_ = Seconds{0.0};
  energy_ = Joules{0.0};
  series_emitted_ = 0;
  series_.clear();
}

}  // namespace gpuvar
