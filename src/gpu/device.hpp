// The simulated GPU: couples the power model, DVFS controller and thermal
// model into a tick-level simulation that executes kernel descriptions
// and emits profiler telemetry.
//
// The simulation loop advances in profiler-resolution ticks (1 ms). Once
// the control loop and thermals reach a provably stable state, the device
// can *fast-forward*: finish the remaining work analytically at the
// settled operating point. This is exact for the runtime/energy accounting
// because the operating point no longer changes, and it makes cluster-
// scale experiments tractable (the paper's 18,800 hours of data in
// seconds of CPU time). Fast-forward is validated against full-tick
// simulation in the test suite and the `abl_fastforward` bench.
#pragma once

#include <string>

#include "common/units.hpp"
#include "gpu/dvfs.hpp"
namespace gpuvar { struct KernelSpec; }  // was: #include "gpu/kernel.hpp"
#include "gpu/power_model.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "gpu/pmapi.hpp"
namespace gpuvar { class Sampler; }  // was: #include "gpu/sampler.hpp"
#include "thermal/thermal.hpp"

namespace gpuvar {

struct SimOptions {
  Seconds tick{1e-3};          ///< simulation step (profiler resolution)
  bool fast_forward = true;     ///< enable steady-state fast-forwarding
  Seconds steady_window{0.3};  ///< controller must be quiet this long
  Celsius steady_temp_eps{1.0};///< and temperature within this of equilib.
};

struct KernelResult {
  std::string kernel;
  Seconds start{};
  Seconds duration{};
  Joules energy{};
  MegaHertz mean_freq{};    ///< time-weighted over the kernel
  Watts mean_power{};
  Celsius mean_temp{};
  bool fast_forwarded = false;  ///< true if any part was fast-forwarded
};

class SimulatedGpu : public PmIntrospection {
 public:
  SimulatedGpu(const GpuSku& sku, const SiliconSample& chip,
               const ThermalParams& thermal, const SimOptions& opts = {});

  const GpuSku& sku() const { return sku_; }
  const SiliconSample& chip() const { return chip_; }
  const SimOptions& options() const { return opts_; }

  /// Current simulated wall-clock (seconds since construction/reset).
  Seconds clock() const { return clock_; }
  MegaHertz frequency() const { return dvfs_.frequency(); }
  Celsius temperature() const { return thermal_.temperature(); }
  Watts power_limit() const { return dvfs_.power_limit(); }

  /// Set the enforced power limit (TDP by default). Models both the
  /// nvidia-smi admin knob (§VI-B) and degraded power delivery faults.
  void set_power_limit(Watts limit) { dvfs_.set_power_limit(limit); }

  /// Execute one kernel. `sampler` may be null.
  ///
  /// `work_scale` stretches the kernel's duration at unchanged activity
  /// (more work: run-to-run noise). `stall_scale` stretches duration while
  /// scaling activity down by the same factor (same work, more waiting:
  /// the per-GPU host/framework/memory-path factor) — a GPU slowed this
  /// way also draws less power, matching the paper's ResNet observations.
  /// `activity_scale` multiplies the kernel's power activity (clamped to
  /// [0, 1]) without touching runtime: per-GPU algorithm-selection power
  /// spread (e.g. different cuDNN convolution algorithms).
  KernelResult run_kernel(const KernelSpec& kernel, Sampler* sampler,
                          double work_scale = 1.0, double stall_scale = 1.0,
                          double activity_scale = 1.0);

  /// Advance the device idling for dt (kernel-launch gaps, barrier waits).
  void idle_for(Seconds dt, Sampler* sampler);

  /// Reset clock and thermal state to idle equilibrium, DVFS to boost
  /// (i.e. a fresh allocation of a previously idle GPU).
  void reset();

  /// Temporal effects (SVII future work): start from the thermal state a
  /// preceding job sustaining `sustained_power` would have left behind,
  /// instead of the idle equilibrium.
  void preheat(Watts sustained_power);

  // --- PmIntrospection (the proposed vendor-neutral standard) ---
  PmSnapshot pm_snapshot() const override;
  ThrottleAccounting pm_accounting() const override;
  /// Why the clock is (or is not) below boost right now.
  ThrottleReason throttle_reason() const;

  /// Spatial coupling hook: shift the chip's local inlet temperature
  /// (heat picked up from co-located neighbours). `delta` is relative to
  /// the GPU's own baseline inlet.
  void set_inlet_delta(Celsius delta);
  Celsius baseline_inlet() const { return baseline_inlet_; }

 private:
  /// Solve the thermal/leakage fixed point at a fixed operating point.
  Celsius equilibrium_temperature(MegaHertz f, double activity) const;
  bool stable_at(MegaHertz f, Watts power, Celsius temp) const;

  GpuSku sku_;
  SiliconSample chip_;
  PowerModel power_;
  DvfsController dvfs_;
  ThermalModel thermal_;
  SimOptions opts_;
  Seconds clock_{};
  Seconds last_freq_change_{};
  Watts last_power_{};
  Celsius baseline_inlet_{};
  ThrottleAccounting accounting_;
  long dvfs_baseline_down_ = 0;
  long dvfs_baseline_up_ = 0;

  void account(Seconds dt);
};

}  // namespace gpuvar
