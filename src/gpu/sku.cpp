#include "gpu/sku.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"

namespace gpuvar {

std::string to_string(Vendor v) {
  return v == Vendor::kNvidia ? "NVIDIA" : "AMD";
}

std::vector<MegaHertz> GpuSku::frequency_ladder() const {
  GPUVAR_REQUIRE(min_mhz > MegaHertz{} && max_mhz > min_mhz &&
                 ladder_step_mhz > MegaHertz{});
  std::vector<MegaHertz> ladder;
  for (MegaHertz f = min_mhz; f < max_mhz + MegaHertz{1e-9};
       f += ladder_step_mhz) {
    ladder.push_back(f);
  }
  if (abs(ladder.back() - max_mhz) > MegaHertz{1e-9}) {
    ladder.push_back(max_mhz);
  }
  return ladder;
}

double GpuSku::peak_flops(MegaHertz f) const {
  return static_cast<double>(sm_count) * flops_per_sm_per_cycle *
         f.value() * 1e6;
}

Volts GpuSku::voltage_at(MegaHertz f) const {
  const MegaHertz fc = std::clamp(f, min_mhz, max_mhz);
  const double t = (fc - min_mhz) / (max_mhz - min_mhz);
  return v_min + (v_max - v_min) * t;
}

GpuSku make_v100_sxm2() {
  GpuSku sku;
  sku.name = "Tesla V100-SXM2-16GB";
  sku.vendor = Vendor::kNvidia;
  sku.sm_count = 80;
  sku.flops_per_sm_per_cycle = 128.0;  // 64 FP32 cores x FMA
  sku.mem_bw_gbps = 900.0;
  sku.mem_size_gb = 16.0;
  // NVIDIA graphics clocks reach far below the base clock; the deep
  // states matter for the power-limit sweep of SVI-B (100-300 W caps).
  sku.min_mhz = MegaHertz{540.0};
  sku.max_mhz = MegaHertz{1530.0};
  sku.ladder_step_mhz = MegaHertz{7.5};  // fine-grained NVIDIA clock states
  sku.dvfs_control_period = Seconds{0.010};
  sku.dvfs_up_margin = Watts{8.0};
  sku.tdp = Watts{300.0};
  sku.v_min = Volts{0.5786};  // keeps V(1005 MHz) = 0.80 V on the same line
  sku.v_max = Volts{1.05};
  // Calibrated so the TDP-constrained DVFS equilibrium of a typical chip
  // running a full-activity GEMM lands near 1370 MHz (the paper observes
  // Longhorn V100s settling in the 1300-1440 MHz band).
  sku.c_eff = 0.198;
  sku.idle_power = Watts{18.0};
  sku.leakage_at_ref = Watts{25.0};
  sku.leak_ref_temp = Celsius{60.0};
  sku.leak_temp_coeff = 0.015;
  sku.slowdown_temp = Celsius{87.0};
  sku.shutdown_temp = Celsius{90.0};
  sku.max_operating_temp = Celsius{83.0};
  sku.spread = ProcessSpread{Volts{0.012}, 0.022, 0.18, 0.002};
  return sku;
}

GpuSku make_rtx5000() {
  GpuSku sku;
  sku.name = "Quadro RTX 5000";
  sku.vendor = Vendor::kNvidia;
  sku.sm_count = 48;
  sku.flops_per_sm_per_cycle = 128.0;
  sku.mem_bw_gbps = 448.0;
  sku.mem_size_gb = 16.0;
  sku.min_mhz = MegaHertz{1350.0};
  sku.max_mhz = MegaHertz{1905.0};  // Turing boost clocks run higher than Volta
  sku.ladder_step_mhz = MegaHertz{15.0};
  sku.dvfs_control_period = Seconds{0.010};
  sku.dvfs_up_margin = Watts{9.0};
  sku.tdp = Watts{230.0};
  sku.v_min = Volts{0.75};
  sku.v_max = Volts{1.05};
  sku.c_eff = 0.124;
  sku.idle_power = Watts{12.0};
  sku.leakage_at_ref = Watts{15.0};
  sku.leak_ref_temp = Celsius{60.0};
  sku.leak_temp_coeff = 0.015;
  sku.slowdown_temp = Celsius{93.0};
  sku.shutdown_temp = Celsius{96.0};
  sku.max_operating_temp = Celsius{89.0};
  // Frontera shows a tighter spread (5% performance variation).
  sku.spread = ProcessSpread{Volts{0.009}, 0.018, 0.15, 0.002};
  return sku;
}

GpuSku make_mi60() {
  GpuSku sku;
  sku.name = "Radeon Instinct MI60";
  sku.vendor = Vendor::kAmd;
  sku.sm_count = 64;  // compute units
  sku.flops_per_sm_per_cycle = 128.0;
  sku.mem_bw_gbps = 1024.0;
  sku.mem_size_gb = 32.0;
  sku.min_mhz = MegaHertz{1000.0};
  sku.max_mhz = MegaHertz{1800.0};
  // The paper notes MI60s expose much coarser frequency levels than V100s;
  // the DPM table has ~a dozen states.
  sku.ladder_step_mhz = MegaHertz{67.0};
  sku.dvfs_control_period = Seconds{0.015};
  // A coarse ladder needs a wide up-margin or the controller oscillates
  // over the cap: one 67 MHz step is worth ~26 W near the equilibrium.
  sku.dvfs_up_margin = Watts{28.0};
  sku.tdp = Watts{300.0};
  sku.v_min = Volts{0.75};
  sku.v_max = Volts{1.08};
  sku.c_eff = 0.182;
  sku.idle_power = Watts{20.0};
  sku.leakage_at_ref = Watts{24.0};
  sku.leak_ref_temp = Celsius{60.0};
  sku.leak_temp_coeff = 0.012;
  sku.slowdown_temp = Celsius{100.0};
  sku.shutdown_temp = Celsius{105.0};
  sku.max_operating_temp = Celsius{99.0};
  sku.spread = ProcessSpread{Volts{0.013}, 0.024, 0.18, 0.002};
  return sku;
}

}  // namespace gpuvar
