// Telemetry sample containers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace gpuvar {

/// One profiler sample, matching the paper's four collected metrics
/// (§III Measurement): time, SM/CU frequency, board power, junction temp.
struct Sample {
  Seconds t{};
  MegaHertz freq{};
  Watts power{};
  Celsius temp{};
};

class TimeSeries {
 public:
  void push(const Sample& s) { samples_.push_back(s); }
  void clear() { samples_.clear(); }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Column extractors (for plotting / correlation).
  std::vector<double> times() const;
  std::vector<double> freqs() const;
  std::vector<double> powers() const;
  std::vector<double> temps() const;

  /// Samples within [t0, t1).
  TimeSeries slice(Seconds t0, Seconds t1) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace gpuvar
