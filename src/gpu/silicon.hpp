// Per-chip silicon samples: the manufacturing variability at the heart of
// the paper's observations. Two chips with the same SKU differ in the
// voltage their V/f curve requires, their switching efficiency, their
// leakage, and (slightly) their memory subsystem — so under the same TDP
// their DVFS controllers settle at different frequencies.
#pragma once

#include <cstdint>
#include <string>

namespace gpuvar { class Rng; }  // was: #include "common/rng.hpp"
#include "common/units.hpp"
namespace gpuvar { struct GpuSku; }  // was: #include "gpu/sku.hpp"

namespace gpuvar {

struct SiliconSample {
  /// Additive shift of the chip's V/f curve (V). Positive = needs more
  /// voltage at a given frequency = more dynamic power = worse bin.
  Volts vf_offset{};
  /// Multiplier on effective switching capacitance (~1.0).
  double efficiency_factor = 1.0;
  /// Multiplier on static leakage power (lognormal around 1.0).
  double leakage_factor = 1.0;
  /// Multiplier on achievable memory bandwidth (~1.0).
  double mem_bw_factor = 1.0;

  /// A single [0, 1]-ish quality score (1 = best bin); used only for
  /// reporting, never by the simulation itself.
  double quality_score(const GpuSku& sku) const;
};

/// Draws a chip from the SKU's process distribution. Deterministic given
/// the Rng state; callers seed the Rng from (cluster seed, gpu path).
SiliconSample sample_silicon(const GpuSku& sku, Rng& rng);

/// Convenience: sample with a derived seed in one call.
SiliconSample sample_silicon(const GpuSku& sku, std::uint64_t master_seed,
                             const std::string& path);

}  // namespace gpuvar
