#include "gpu/device.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"
#include "gpu/pmapi.hpp"
#include "gpu/sampler.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "thermal/thermal.hpp"

namespace gpuvar {

SimulatedGpu::SimulatedGpu(const GpuSku& sku, const SiliconSample& chip,
                           const ThermalParams& thermal,
                           const SimOptions& opts)
    : sku_(sku),
      chip_(chip),
      power_(sku_, chip_),
      dvfs_(sku_),
      thermal_(thermal),
      opts_(opts) {
  GPUVAR_REQUIRE(opts.tick > Seconds{});
  baseline_inlet_ = thermal.coolant;
  reset();
}

void SimulatedGpu::set_inlet_delta(Celsius delta) {
  thermal_.set_coolant(baseline_inlet_ + delta);
}

void SimulatedGpu::reset() {
  clock_ = Seconds{0.0};
  last_freq_change_ = Seconds{0.0};
  accounting_ = ThrottleAccounting{};
  dvfs_baseline_down_ = 0;
  dvfs_baseline_up_ = 0;
  dvfs_.reset();
  // Idle equilibrium: solve the leakage/temperature fixed point.
  Celsius t = thermal_.params().coolant;
  for (int i = 0; i < 20; ++i) {
    t = thermal_.equilibrium(power_.idle_power(t));
  }
  thermal_.settle(power_.idle_power(t));
}

void SimulatedGpu::preheat(Watts sustained_power) {
  GPUVAR_REQUIRE(sustained_power >= Watts{});
  thermal_.settle(sustained_power);
}

ThrottleReason SimulatedGpu::throttle_reason() const {
  if (dvfs_.frequency() >= dvfs_.ladder().back() - MegaHertz{1e-9}) {
    return ThrottleReason::kNone;
  }
  if (dvfs_.thermally_throttled() ||
      thermal_.temperature() >= sku_.slowdown_temp - Celsius{2.0}) {
    return ThrottleReason::kThermal;
  }
  return ThrottleReason::kPowerCap;
}

PmSnapshot SimulatedGpu::pm_snapshot() const {
  PmSnapshot s;
  s.sm_freq = dvfs_.frequency();
  s.max_freq = dvfs_.ladder().back();
  s.power = last_power_;
  s.power_limit = dvfs_.power_limit();
  s.temperature = thermal_.temperature();
  s.slowdown_temp = sku_.slowdown_temp;
  s.reason = throttle_reason();
  return s;
}

ThrottleAccounting SimulatedGpu::pm_accounting() const {
  ThrottleAccounting a = accounting_;
  a.down_steps = dvfs_.down_steps() - dvfs_baseline_down_;
  a.up_steps = dvfs_.up_steps() - dvfs_baseline_up_;
  return a;
}

void SimulatedGpu::account(Seconds dt) {
  accounting_.total += dt;
  switch (throttle_reason()) {
    case ThrottleReason::kNone:
      accounting_.at_max_clock += dt;
      break;
    case ThrottleReason::kPowerCap:
      accounting_.power_limited += dt;
      break;
    case ThrottleReason::kThermal:
      accounting_.thermal_limited += dt;
      break;
  }
}

Celsius SimulatedGpu::equilibrium_temperature(MegaHertz f,
                                              double activity) const {
  Celsius t = thermal_.temperature();
  for (int i = 0; i < 30; ++i) {
    const Watts p = power_.total_power(f, activity, t);
    const Celsius next = thermal_.equilibrium(p);
    if (abs(next - t) < Celsius{1e-6}) return next;
    t = next;
  }
  return t;
}

bool SimulatedGpu::stable_at(MegaHertz f, Watts power, Celsius temp) const {
  // The controller will not act iff: not over the cap, not thermally
  // throttling, and either already at the boost state or inside the
  // hysteresis band below the cap.
  if (temp >= sku_.slowdown_temp - Celsius{2.0}) return false;
  if (power > dvfs_.power_limit()) return false;
  const bool at_top = f >= dvfs_.ladder().back() - MegaHertz{1e-9};
  if (!at_top && power < dvfs_.power_limit() - sku_.dvfs_up_margin) {
    return false;
  }
  return true;
}

KernelResult SimulatedGpu::run_kernel(const KernelSpec& kernel,
                                      Sampler* sampler, double work_scale,
                                      double stall_scale,
                                      double activity_scale) {
  kernel.validate();
  GPUVAR_REQUIRE(work_scale > 0.0);
  GPUVAR_REQUIRE(stall_scale > 0.0);
  GPUVAR_REQUIRE(activity_scale > 0.0);

  KernelResult result;
  result.kernel = kernel.name;
  result.start = clock_;

  double remaining = 1.0;  // normalized work fraction
  double freq_time = 0.0, power_time = 0.0, temp_time = 0.0;

  while (remaining > 0.0) {
    const MegaHertz f = dvfs_.frequency();
    const double activity =
        std::min(1.0, effective_activity(kernel, sku_, chip_, f) *
                          activity_scale / stall_scale);
    const Seconds full_time =
        kernel_time_at(kernel, sku_, chip_, f) * work_scale * stall_scale;
    GPUVAR_ASSERT(full_time > Seconds{});
    const double rate = 1.0 / full_time.value();  // work fraction per second
    const Celsius temp = thermal_.temperature();
    const Watts p = power_.total_power(f, activity, temp);

    // Fast-forward: if the operating point is provably stable (controller
    // quiet for the window, temperature at its fixed point, and the
    // control law would not act at the equilibrium), finish analytically.
    if (opts_.fast_forward &&
        clock_ - last_freq_change_ >= opts_.steady_window &&
        // Cheap precheck: skip the fixed-point solve unless the current
        // power's equilibrium is already close (leakage feedback only
        // moves it slightly further).
        abs(thermal_.equilibrium(p) - temp) <=
            2.0 * opts_.steady_temp_eps) {
      const Celsius teq = equilibrium_temperature(f, activity);
      const Watts peq = power_.total_power(f, activity, teq);
      if (abs(teq - temp) <= opts_.steady_temp_eps &&
          stable_at(f, p, temp) && stable_at(f, peq, teq)) {
        const Seconds dt{remaining / rate};
        thermal_.settle(peq);
        last_power_ = peq;
        account(dt);
        if (sampler != nullptr) sampler->record_span(clock_, dt, f, peq, teq);
        result.energy += peq * dt;
        freq_time += f.value() * dt.value();
        power_time += peq.value() * dt.value();
        temp_time += teq.value() * dt.value();
        clock_ += dt;
        remaining = 0.0;
        result.fast_forwarded = true;
        break;
      }
    }

    const Seconds dt = std::min(opts_.tick, Seconds{remaining / rate});
    thermal_.step(dt, p);
    last_power_ = p;
    account(dt);
    if (sampler != nullptr) sampler->record_span(clock_, dt, f, p, temp);
    result.energy += p * dt;
    freq_time += f.value() * dt.value();
    power_time += p.value() * dt.value();
    temp_time += temp.value() * dt.value();
    clock_ += dt;
    remaining -= rate * dt.value();
    if (remaining < 1e-12) remaining = 0.0;

    if (dvfs_.observe(clock_, p, thermal_.temperature())) {
      last_freq_change_ = clock_;
    }
  }

  result.duration = clock_ - result.start;
  GPUVAR_ASSERT(result.duration > Seconds{});
  result.mean_freq = MegaHertz{freq_time / result.duration.value()};
  result.mean_power = Watts{power_time / result.duration.value()};
  result.mean_temp = Celsius{temp_time / result.duration.value()};
  return result;
}

void SimulatedGpu::idle_for(Seconds dt, Sampler* sampler) {
  GPUVAR_REQUIRE(dt >= Seconds{});
  Seconds remaining = dt;
  // Idle power varies only through slow leakage/temperature coupling;
  // 50 ms steps resolve it comfortably (τ is hundreds of ms).
  const Seconds step{0.05};
  while (remaining > Seconds{}) {
    const Seconds d = std::min(step, remaining);
    const Celsius temp = thermal_.temperature();
    const Watts p = power_.idle_power(temp);
    thermal_.step(d, p);
    last_power_ = p;
    if (sampler != nullptr) sampler->record_span(clock_, d, dvfs_.frequency(), p, temp);
    clock_ += d;
    remaining -= d;
    // Idle headroom lets the controller climb back to boost.
    if (dvfs_.observe(clock_, p, thermal_.temperature())) {
      last_freq_change_ = clock_;
    }
  }
}

}  // namespace gpuvar
