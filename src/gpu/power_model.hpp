// Board power model: P = C_eff·V(f)²·f·activity + P_leak(T) + P_idle.
//
// V(f) is the SKU's typical V/f curve shifted by the chip's vf_offset;
// leakage grows exponentially with junction temperature (the classic
// thermal-runaway coupling); activity ∈ [0, 1] captures how hard the
// running kernel exercises the datapath (a full-tilt GEMM ≈ 1.0, a
// latency-bound SpMV ≈ 0.25).
#pragma once

#include "common/units.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"

namespace gpuvar {

class PowerModel {
 public:
  PowerModel(const GpuSku& sku, const SiliconSample& chip)
      : sku_(&sku), chip_(&chip) {}

  /// The chip's actual operating voltage at frequency f.
  Volts voltage(MegaHertz f) const;

  /// Dynamic (switching) power at frequency f and activity level.
  Watts dynamic_power(MegaHertz f, double activity) const;

  /// Static leakage power at junction temperature t.
  Watts leakage_power(Celsius t) const;

  /// Total board power.
  Watts total_power(MegaHertz f, double activity, Celsius t) const;

  /// Idle board power (activity 0) at temperature t.
  Watts idle_power(Celsius t) const;

  const GpuSku& sku() const { return *sku_; }
  const SiliconSample& chip() const { return *chip_; }

 private:
  const GpuSku* sku_;
  const SiliconSample* chip_;
};

}  // namespace gpuvar
