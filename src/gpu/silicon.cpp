#include "gpu/silicon.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "gpu/sku.hpp"

#include <algorithm>
#include <cmath>

namespace gpuvar {

double SiliconSample::quality_score(const GpuSku& sku) const {
  // Normalize each deviation by its process sigma and map the combined
  // z-score to (0, 1): 0.5 = typical chip, -> 1 best, -> 0 worst.
  const auto& s = sku.spread;
  const double z_v =
      s.vf_offset_sigma > Volts{} ? vf_offset / s.vf_offset_sigma : 0;
  const double z_e = s.efficiency_sigma > 0
                         ? (efficiency_factor - 1.0) / s.efficiency_sigma
                         : 0;
  const double z_l = s.leakage_log_sigma > 0
                         ? std::log(leakage_factor) / s.leakage_log_sigma
                         : 0;
  const double z = (z_v + z_e + 0.5 * z_l) / 2.5;
  return std::clamp(0.5 - z / 6.0, 0.0, 1.0);
}

SiliconSample sample_silicon(const GpuSku& sku, Rng& rng) {
  // Truncate at ±3σ: chips beyond that fail binning and are never shipped.
  // A zero σ (used by ablations) pins the parameter at its nominal value;
  // the draw is still consumed to keep the stream layout stable.
  auto draw = [&rng](double mean, double sigma) {
    const double z = rng.truncated_normal(0.0, 1.0, -3.0, 3.0);
    return mean + sigma * z;
  };
  const auto& s = sku.spread;
  SiliconSample chip;
  chip.vf_offset = Volts{draw(0.0, s.vf_offset_sigma.value())};
  chip.efficiency_factor = draw(1.0, s.efficiency_sigma);
  chip.leakage_factor = std::exp(draw(0.0, s.leakage_log_sigma));
  chip.mem_bw_factor = draw(1.0, s.mem_bw_sigma);
  return chip;
}

SiliconSample sample_silicon(const GpuSku& sku, std::uint64_t master_seed,
                             const std::string& path) {
  Rng rng(master_seed, path);
  return sample_silicon(sku, rng);
}

}  // namespace gpuvar
