#include "telemetry/frame.hpp"

#include <algorithm>
#include <tuple>

#include "common/hot.hpp"
#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/kernels.hpp"
#include "common/location.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

std::span<const double> RecordFrame::metric(Metric m) const {
  switch (m) {
    case Metric::kPerf:
      return perf_;
    case Metric::kFreq:
      return freq_;
    case Metric::kPower:
      return power_;
    case Metric::kTemp:
      return temp_;
  }
  return {};
}

ProfilerCounters RecordFrame::counters(std::size_t row) const {
  ProfilerCounters c;
  c.fu_util = fu_[row];
  c.dram_util = dram_[row];
  c.mem_stall_frac = mem_stall_[row];
  c.exec_stall_frac = exec_stall_[row];
  return c;
}

RunRecord RecordFrame::row(std::size_t row) const {
  RunRecord r;
  const GpuRef& g = gpus_[gpu_id_[row]];
  r.gpu_index = g.gpu_index;
  r.loc = g.loc;
  r.run_index = run_[row];
  r.day_of_week = day_[row];
  r.perf_ms = perf_[row];
  r.freq_mhz = freq_[row];
  r.power_w = power_[row];
  r.temp_c = temp_[row];
  r.counters = counters(row);
  return r;
}

void RecordFrame::reserve(std::size_t rows) {
  perf_.reserve(rows);
  freq_.reserve(rows);
  power_.reserve(rows);
  temp_.reserve(rows);
  fu_.reserve(rows);
  dram_.reserve(rows);
  mem_stall_.reserve(rows);
  exec_stall_.reserve(rows);
  gpu_id_.reserve(rows);
  run_.reserve(rows);
  day_.reserve(rows);
}

GPUVAR_HOT std::uint32_t RecordFrame::intern(std::size_t gpu_index,
                                  const GpuLocation& loc) {
  const auto it = id_by_gpu_index_.find(gpu_index);
  if (it != id_by_gpu_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(gpus_.size());
  gpus_.push_back(GpuRef{gpu_index, loc});
  id_by_gpu_index_.emplace(gpu_index, id);
  return id;
}

GPUVAR_HOT void RecordFrame::append_row(const RunRecord& r) {
  gpu_id_.push_back(intern(r.gpu_index, r.loc));
  run_.push_back(r.run_index);
  day_.push_back(static_cast<std::int16_t>(r.day_of_week));
  perf_.push_back(r.perf_ms);
  freq_.push_back(r.freq_mhz);
  power_.push_back(r.power_w);
  temp_.push_back(r.temp_c);
  fu_.push_back(r.counters.fu_util);
  dram_.push_back(r.counters.dram_util);
  mem_stall_.push_back(r.counters.mem_stall_frac);
  exec_stall_.push_back(r.counters.exec_stall_frac);
}

GPUVAR_HOT void RecordFrame::append(const RecordFrame& chunk) {
  GPUVAR_REQUIRE_MSG(&chunk != this, "cannot append a frame to itself");
  reserve(size() + chunk.size());
  // Remap the chunk's pool ids through this frame's interning; ids are
  // resolved lazily so only GPUs the chunk actually references intern.
  std::vector<std::uint32_t> remap(chunk.gpus_.size(),
                                   std::uint32_t(0xffffffffu));
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    const std::uint32_t cid = chunk.gpu_id_[i];
    if (remap[cid] == 0xffffffffu) {
      const GpuRef& g = chunk.gpus_[cid];
      remap[cid] = intern(g.gpu_index, g.loc);
    }
    gpu_id_.push_back(remap[cid]);
  }
  run_.insert(run_.end(), chunk.run_.begin(), chunk.run_.end());
  day_.insert(day_.end(), chunk.day_.begin(), chunk.day_.end());
  perf_.insert(perf_.end(), chunk.perf_.begin(), chunk.perf_.end());
  freq_.insert(freq_.end(), chunk.freq_.begin(), chunk.freq_.end());
  power_.insert(power_.end(), chunk.power_.begin(), chunk.power_.end());
  temp_.insert(temp_.end(), chunk.temp_.begin(), chunk.temp_.end());
  fu_.insert(fu_.end(), chunk.fu_.begin(), chunk.fu_.end());
  dram_.insert(dram_.end(), chunk.dram_.begin(), chunk.dram_.end());
  mem_stall_.insert(mem_stall_.end(), chunk.mem_stall_.begin(),
                    chunk.mem_stall_.end());
  exec_stall_.insert(exec_stall_.end(), chunk.exec_stall_.begin(),
                     chunk.exec_stall_.end());
}

GPUVAR_HOT RecordFrame RecordFrame::select(std::span<const std::size_t> rows) const {
  RecordFrame out;
  out.reserve(rows.size());
  std::vector<std::uint32_t> remap(gpus_.size(), std::uint32_t(0xffffffffu));
  for (std::size_t row : rows) {
    const std::uint32_t cid = gpu_id_[row];
    if (remap[cid] == 0xffffffffu) {
      const GpuRef& g = gpus_[cid];
      remap[cid] = out.intern(g.gpu_index, g.loc);
    }
    out.gpu_id_.push_back(remap[cid]);
    out.run_.push_back(run_[row]);
    out.day_.push_back(day_[row]);
    out.perf_.push_back(perf_[row]);
    out.freq_.push_back(freq_[row]);
    out.power_.push_back(power_[row]);
    out.temp_.push_back(temp_[row]);
    out.fu_.push_back(fu_[row]);
    out.dram_.push_back(dram_[row]);
    out.mem_stall_.push_back(mem_stall_[row]);
    out.exec_stall_.push_back(exec_stall_[row]);
  }
  return out;
}

GPUVAR_HOT RecordFrame RecordFrame::select(
    std::span<const std::uint8_t> mask) const {
  GPUVAR_REQUIRE(mask.size() == size());
  std::vector<std::size_t> rows;
  stats::kernels::mask_to_rows(mask, rows);
  return select(std::span<const std::size_t>(rows));
}

std::size_t RecordFrame::memory_bytes() const {
  std::size_t bytes = sizeof(RecordFrame);
  bytes += 8 * perf_.capacity() * sizeof(double);
  bytes += gpu_id_.capacity() * sizeof(std::uint32_t);
  bytes += run_.capacity() * sizeof(std::int32_t);
  bytes += day_.capacity() * sizeof(std::int16_t);
  for (const auto& g : gpus_) {
    bytes += sizeof(GpuRef) + g.loc.name.capacity();
  }
  // One map node per GPU: key + id + ~3 pointers of tree overhead.
  bytes += id_by_gpu_index_.size() *
           (sizeof(std::size_t) + sizeof(std::uint32_t) + 3 * sizeof(void*));
  return bytes;
}

FrameBuilder::FrameBuilder(std::size_t bucket_count)
    : buckets_(bucket_count) {}

RecordFrame FrameBuilder::finish() {
  RecordFrame out;
  std::size_t total = 0;
  for (const auto& b : buckets_) total += b.size();
  GPUVAR_TRACE_SPAN("frame", "merge_buckets", "rows",
                    static_cast<std::int64_t>(total));
  GPUVAR_METRIC_ADD("frame.rows_merged", total);
  GPUVAR_METRIC_MAX("frame.buckets", buckets_.size());
  out.reserve(total);
  for (auto& b : buckets_) {
    out.append(b);
    b = RecordFrame();  // release bucket storage as we fold it in
  }
  return out;
}

GPUVAR_HOT GpuRowGroups group_rows_by_gpu(const RecordFrame& frame) {
  return group_rows_by_ids(frame.gpu_ids(), frame.gpus());
}

GPUVAR_HOT GpuRowGroups group_rows_by_ids(std::span<const std::uint32_t> ids,
                                          std::span<const GpuRef> gpus) {
  const std::size_t n = ids.size();
  const std::size_t k = gpus.size();

  GpuRowGroups g;
  g.offsets.assign(k + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++g.offsets[ids[i] + 1];
  for (std::size_t id = 0; id < k; ++id) g.offsets[id + 1] += g.offsets[id];

  g.rows.resize(n);
  std::vector<std::size_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) g.rows[cursor[ids[i]]++] = i;

  g.order.resize(k);
  for (std::size_t id = 0; id < k; ++id) {
    g.order[id] = static_cast<std::uint32_t>(id);
  }
  std::sort(g.order.begin(), g.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              // gpu_index is unique per pool entry; the id tie-break can
              // never fire but keeps the comparator visibly total.
              return std::tie(gpus[a].gpu_index, a) <
                     std::tie(gpus[b].gpu_index, b);
            });
  return g;
}

GPUVAR_HOT std::vector<GpuAggregate> per_gpu_medians(const RecordFrame& frame) {
  const auto groups = group_rows_by_gpu(frame);
  return per_gpu_medians_grouped(groups, frame.gpus(), frame.perf_ms(),
                                 frame.freq_mhz(), frame.power_w(),
                                 frame.temp_c());
}

GPUVAR_HOT std::vector<GpuAggregate> per_gpu_medians_grouped(
    const GpuRowGroups& groups, std::span<const GpuRef> gpus,
    std::span<const double> perf_ms, std::span<const double> freq_mhz,
    std::span<const double> power_w, std::span<const double> temp_c) {
  GPUVAR_REQUIRE(!perf_ms.empty());

  std::vector<GpuAggregate> out;
  out.reserve(gpus.size());
  std::vector<double> scratch;
  const auto median_of = [&](std::span<const double> column,
                             std::span<const std::size_t> rows) {
    scratch.clear();
    scratch.reserve(rows.size());
    for (std::size_t row : rows) scratch.push_back(column[row]);
    // Select in place over the shared scratch: no per-call copy (the
    // hotpath pass's alloc-in-hot-loop once caught exactly that here)
    // and O(group) selection instead of an O(group log group) sort.
    return stats::kernels::median_inplace(scratch);
  };
  for (std::uint32_t id : groups.order) {
    const std::span<const std::size_t> rows{
        groups.rows.data() + groups.offsets[id],
        groups.offsets[id + 1] - groups.offsets[id]};
    const GpuRef& g = gpus[id];
    GpuAggregate agg;
    agg.gpu_index = g.gpu_index;
    agg.loc = g.loc;
    agg.runs = static_cast<int>(rows.size());
    agg.perf_ms = median_of(perf_ms, rows);
    agg.freq_mhz = median_of(freq_mhz, rows);
    agg.power_w = median_of(power_w, rows);
    agg.temp_c = median_of(temp_c, rows);
    out.push_back(std::move(agg));
  }
  return out;
}

GPUVAR_HOT std::span<const double> metric_column(const RecordFrame& frame, Metric m) {
  return frame.metric(m);
}

}  // namespace gpuvar
