#include "telemetry/shard.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/binio.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

namespace {

/// "GVSH" little-endian: the first four bytes of every shard file.
constexpr std::uint32_t kShardMagic = 0x48535647u;

void append_header(std::string& out, const FrameShardHeader& h) {
  binio::append_u32(out, kShardMagic);
  binio::append_u16(out, kFrameShardVersion);
  binio::append_u64(out, h.info.bucket_index);
  binio::append_u64(out, h.info.rows);
  binio::append_u64(out, h.pool);
  binio::append_u64(out, h.info.payload_bytes);
  binio::append_u64(out, h.info.payload_hash);
  binio::append_i64(out, h.stats.node_min);
  binio::append_i64(out, h.stats.node_max);
  binio::append_i64(out, h.stats.gpu_index_min);
  binio::append_i64(out, h.stats.gpu_index_max);
  binio::append_i64(out, h.stats.day_min);
  binio::append_i64(out, h.stats.day_max);
}

FrameShardHeader read_header(binio::ByteReader& r, const std::string& label) {
  const std::uint32_t magic = r.read_u32();
  if (magic != kShardMagic) {
    throw std::runtime_error(label + ": not a gpuvar frame shard (bad magic)");
  }
  const std::uint16_t version = r.read_u16();
  if (version != kFrameShardVersion) {
    throw std::runtime_error(label + ": unsupported shard version " +
                             std::to_string(version) + " (this build reads " +
                             std::to_string(kFrameShardVersion) + ")");
  }
  FrameShardHeader h;
  h.info.bucket_index = r.read_u64();
  h.info.rows = r.read_u64();
  h.pool = r.read_u64();
  h.info.payload_bytes = r.read_u64();
  h.info.payload_hash = r.read_u64();
  h.stats.node_min = r.read_i64();
  h.stats.node_max = r.read_i64();
  h.stats.gpu_index_min = r.read_i64();
  h.stats.gpu_index_max = r.read_i64();
  h.stats.day_min = r.read_i64();
  h.stats.day_max = r.read_i64();
  return h;
}

/// Streams the payload bytes to `sink(std::string_view)` in bounded
/// chunks. Both the serializer and the streaming hasher consume this
/// one emitter, so the bytes they see can never drift apart.
template <typename Sink>
void emit_payload(const RecordFrame& frame, Sink&& sink) {
  constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
  std::string buf;
  buf.reserve(kChunkBytes + 512);
  const auto flush_if_full = [&] {
    if (buf.size() >= kChunkBytes) {
      sink(std::string_view(buf));
      buf.clear();
    }
  };
  const auto emit_column = [&](std::span<const double> col) {
    for (double v : col) {
      binio::append_f64(buf, v);
      flush_if_full();
    }
  };
  for (const GpuRef& g : frame.gpus()) {
    binio::append_u64(buf, static_cast<std::uint64_t>(g.gpu_index));
    binio::append_i32(buf, g.loc.node);
    binio::append_i32(buf, g.loc.gpu);
    binio::append_i32(buf, g.loc.cabinet);
    binio::append_i32(buf, g.loc.row);
    binio::append_i32(buf, g.loc.column);
    binio::append_i32(buf, g.loc.node_in_group);
    binio::append_bytes(buf, g.loc.name);
    flush_if_full();
  }
  for (std::uint32_t id : frame.gpu_ids()) {
    binio::append_u32(buf, id);
    flush_if_full();
  }
  for (std::int32_t run : frame.run_indices()) {
    binio::append_i32(buf, run);
    flush_if_full();
  }
  for (std::int16_t day : frame.days_of_week()) {
    binio::append_i16(buf, day);
    flush_if_full();
  }
  emit_column(frame.perf_ms());
  emit_column(frame.freq_mhz());
  emit_column(frame.power_w());
  emit_column(frame.temp_c());
  emit_column(frame.fu_util());
  emit_column(frame.dram_util());
  emit_column(frame.mem_stall_frac());
  emit_column(frame.exec_stall_frac());
  if (!buf.empty()) sink(std::string_view(buf));
}

std::string serialize_with_info(const RecordFrame& frame,
                                std::uint64_t bucket_index,
                                FrameShardInfo& info) {
  // Payload first: the header stores its size and hash.
  std::string payload;
  // Rough pre-size: pool entries plus eleven columns.
  payload.reserve(frame.gpus().size() * 64 + frame.size() * 74);
  emit_payload(frame, [&](std::string_view chunk) { payload.append(chunk); });

  FrameShardHeader h;
  h.info.bucket_index = bucket_index;
  h.info.rows = frame.size();
  h.pool = frame.gpus().size();
  h.info.payload_bytes = payload.size();
  h.info.payload_hash = binio::fnv1a64(payload);
  h.stats = frame_shard_stats(frame);

  info = h.info;

  std::string out;
  out.reserve(payload.size() + kFrameShardHeaderBytes);
  append_header(out, h);
  out.append(payload);
  return out;
}

}  // namespace

FrameShardStats frame_shard_stats(const RecordFrame& frame) {
  FrameShardStats s;
  // Every pool entry is referenced by at least one row (interning
  // happens on append), so pool mins/maxes are row mins/maxes.
  for (const GpuRef& g : frame.gpus()) {
    const auto node = static_cast<std::int64_t>(g.loc.node);
    const auto gpu = static_cast<std::int64_t>(g.gpu_index);
    if (s.node_min > s.node_max) {
      s.node_min = s.node_max = node;
      s.gpu_index_min = s.gpu_index_max = gpu;
      continue;
    }
    s.node_min = std::min(s.node_min, node);
    s.node_max = std::max(s.node_max, node);
    s.gpu_index_min = std::min(s.gpu_index_min, gpu);
    s.gpu_index_max = std::max(s.gpu_index_max, gpu);
  }
  for (std::int16_t day : frame.days_of_week()) {
    const auto d = static_cast<std::int64_t>(day);
    if (s.day_min > s.day_max) {
      s.day_min = s.day_max = d;
      continue;
    }
    s.day_min = std::min(s.day_min, d);
    s.day_max = std::max(s.day_max, d);
  }
  return s;
}

FrameShardHeader parse_frame_shard_header(std::string_view bytes,
                                          const std::string& label) {
  binio::ByteReader r(bytes.substr(0, kFrameShardHeaderBytes), label);
  return read_header(r, label);
}

std::string serialize_frame_shard(const RecordFrame& frame,
                                  std::uint64_t bucket_index) {
  FrameShardInfo info;
  return serialize_with_info(frame, bucket_index, info);
}

std::uint64_t hash_frame_shard(const RecordFrame& frame,
                               std::uint64_t bucket_index) {
  // Pass 1: payload size and hash, which the header embeds.
  binio::Fnv1a64 payload_hash;
  std::uint64_t payload_bytes = 0;
  emit_payload(frame, [&](std::string_view chunk) {
    payload_hash.update(chunk);
    payload_bytes += chunk.size();
  });

  FrameShardHeader h;
  h.info.bucket_index = bucket_index;
  h.info.rows = frame.size();
  h.pool = frame.gpus().size();
  h.info.payload_bytes = payload_bytes;
  h.info.payload_hash = payload_hash.digest();
  h.stats = frame_shard_stats(frame);
  std::string header;
  header.reserve(kFrameShardHeaderBytes);
  append_header(header, h);

  // Pass 2: the whole-shard hash is header bytes then payload bytes.
  binio::Fnv1a64 hash;
  hash.update(header);
  emit_payload(frame, [&](std::string_view chunk) { hash.update(chunk); });
  return hash.digest();
}

DecodedShardColumns decode_frame_shard_columns(std::string_view bytes,
                                               std::string label,
                                               unsigned columns) {
  binio::ByteReader r(bytes, label);
  const FrameShardHeader h = read_header(r, label);
  if (r.remaining() != h.info.payload_bytes) {
    throw std::runtime_error(
        label + ": truncated or oversized shard (header promises " +
        std::to_string(h.info.payload_bytes) + " payload bytes, file holds " +
        std::to_string(r.remaining()) + ")");
  }
  const std::string_view payload = bytes.substr(bytes.size() - r.remaining());
  const std::uint64_t hash = binio::fnv1a64(payload);
  if (hash != h.info.payload_hash) {
    throw std::runtime_error(label +
                             ": payload corrupt (content hash mismatch)");
  }

  DecodedShardColumns out;
  out.header = h;
  out.columns = columns & kShardColsAll;

  // Pool snapshot, in the frame's first-appearance id order.
  out.pool.reserve(h.pool);
  for (std::uint64_t i = 0; i < h.pool; ++i) {
    GpuRef g;
    g.gpu_index = static_cast<std::size_t>(r.read_u64());
    g.loc.node = r.read_i32();
    g.loc.gpu = r.read_i32();
    g.loc.cabinet = r.read_i32();
    g.loc.row = r.read_i32();
    g.loc.column = r.read_i32();
    g.loc.node_in_group = r.read_i32();
    g.loc.name = std::string(r.read_bytes());
    out.pool.push_back(std::move(g));
  }

  const auto rows = static_cast<std::size_t>(h.info.rows);
  out.gpu_ids.resize(rows);
  for (auto& id : out.gpu_ids) {
    id = r.read_u32();
    if (id >= out.pool.size()) {
      throw std::runtime_error(label + ": row references pool id " +
                               std::to_string(id) + " outside the " +
                               std::to_string(out.pool.size()) +
                               "-entry pool");
    }
  }
  out.runs.resize(rows);
  for (auto& run : out.runs) run = r.read_i32();
  out.days.resize(rows);
  for (auto& day : out.days) day = r.read_i16();
  for (std::size_t k = 0; k < kShardMetricColumns; ++k) {
    if ((out.columns & (1u << k)) == 0) {
      // Column pruning: the metric columns are fixed-width, so an
      // unrequested one is a seek, not a decode.
      r.skip(rows * 8);
      continue;
    }
    auto& col = out.metric_cols[k];
    col.resize(rows);
    for (auto& v : col) v = r.read_f64();
  }
  // Payload size and hash cover only the payload bytes, so a header
  // whose rows/pool counts understate the content passes both checks
  // and leaves unread bytes here. That is file corruption, not a
  // library bug: it must surface as std::runtime_error so the engine's
  // resume scan demotes the bucket to re-run instead of aborting.
  if (!r.at_end()) {
    throw std::runtime_error(
        label + ": " + std::to_string(r.remaining()) +
        " trailing payload bytes (header row/pool counts disagree with "
        "the payload)");
  }
  return out;
}

std::size_t DecodedShardColumns::memory_bytes() const {
  std::size_t total = sizeof(*this);
  for (const GpuRef& g : pool) total += sizeof(GpuRef) + g.loc.name.size();
  total += gpu_ids.capacity() * sizeof(std::uint32_t);
  total += runs.capacity() * sizeof(std::int32_t);
  total += days.capacity() * sizeof(std::int16_t);
  for (const auto& col : metric_cols) total += col.capacity() * sizeof(double);
  return total;
}

FrameShard parse_frame_shard(std::string_view bytes, std::string label) {
  DecodedShardColumns d =
      decode_frame_shard_columns(bytes, std::move(label), kShardColsAll);

  // Rebuild through the streaming append API: rows re-intern in the
  // same first-appearance order they were written, so pool ids (and
  // every column byte) match the frame that was serialized.
  FrameShard out;
  out.info = d.header.info;
  const auto rows = static_cast<std::size_t>(d.header.info.rows);
  out.frame.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const GpuRef& g = d.pool[d.gpu_ids[i]];
    RunRecord rec;
    rec.gpu_index = g.gpu_index;
    rec.loc = g.loc;
    rec.run_index = d.runs[i];
    rec.day_of_week = d.days[i];
    rec.perf_ms = d.metric_cols[0][i];
    rec.freq_mhz = d.metric_cols[1][i];
    rec.power_w = d.metric_cols[2][i];
    rec.temp_c = d.metric_cols[3][i];
    rec.counters.fu_util = d.metric_cols[4][i];
    rec.counters.dram_util = d.metric_cols[5][i];
    rec.counters.mem_stall_frac = d.metric_cols[6][i];
    rec.counters.exec_stall_frac = d.metric_cols[7][i];
    out.frame.append_row(rec);
  }
  return out;
}

FrameShardInfo write_frame_shard(std::ostream& out, const RecordFrame& frame,
                                 std::uint64_t bucket_index) {
  FrameShardInfo info;
  const std::string bytes = serialize_with_info(frame, bucket_index, info);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return info;
}

FrameShard read_frame_shard(std::istream& in, std::string label) {
  std::string bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    bytes.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  return parse_frame_shard(bytes, std::move(label));
}

}  // namespace gpuvar
