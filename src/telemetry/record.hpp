// Flattened per-run records: the unit of all downstream analysis.
//
// A RunRecord is pure measured data — location, medians, counters — with
// no reference to the cluster that produced it, so the telemetry layer
// can define the interchange schema without depending on cluster
// construction or the experiment runner above it. Conversion from live
// runner results lives in core/record.hpp.
//
// RunRecord remains the *row* schema; the canonical bulk interchange is
// the columnar RecordFrame (telemetry/frame.hpp). Row-oriented bulk
// APIs here are deprecation-cycle adapters.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/location.hpp"
#include "telemetry/counters.hpp"

namespace gpuvar {

/// Which of the four collected metrics an analysis refers to.
enum class Metric { kPerf, kFreq, kPower, kTemp };

std::string metric_name(Metric m);
std::string metric_unit(Metric m);

struct RunRecord {
  std::size_t gpu_index = 0;
  GpuLocation loc;
  int run_index = 0;
  int day_of_week = -1;  ///< 0 = Monday .. 6 = Sunday; -1 = untagged
  double perf_ms = 0.0;
  double freq_mhz = 0.0;  ///< run median
  double power_w = 0.0;   ///< run median
  double temp_c = 0.0;    ///< run median
  ProfilerCounters counters;
};

double metric_value(const RunRecord& r, Metric m);

/// Column extraction over row-oriented records. Allocates and copies on
/// every call — deprecation-cycle adapter only; the zero-copy path is
/// metric_column(const RecordFrame&, Metric) in telemetry/frame.hpp.
std::vector<double> metric_column(std::span<const RunRecord> records,  // gpuvar-lint: allow(row-record-param)
                                  Metric m);

/// Per-GPU aggregate: the median of each metric across a GPU's runs.
struct GpuAggregate {
  std::size_t gpu_index = 0;
  GpuLocation loc;
  int runs = 0;
  double perf_ms = 0.0;
  double freq_mhz = 0.0;
  double power_w = 0.0;
  double temp_c = 0.0;
};

double metric_value(const GpuAggregate& g, Metric m);

/// Collapses records to one aggregate per GPU (ordered by gpu_index).
/// Row-oriented deprecation-cycle adapter; the columnar path is
/// per_gpu_medians(const RecordFrame&) in telemetry/frame.hpp, which is
/// bit-identical (the frame property tests pin this).
std::vector<GpuAggregate> per_gpu_medians(std::span<const RunRecord> records);  // gpuvar-lint: allow(row-record-param)

}  // namespace gpuvar
