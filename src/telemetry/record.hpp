// Flattened per-run records: the unit of all downstream analysis.
//
// A RunRecord is pure measured data — location, medians, counters — with
// no reference to the cluster that produced it, so the telemetry layer
// can define the interchange schema without depending on cluster
// construction or the experiment runner above it. Conversion from live
// runner results lives in core/record.hpp.
//
// RunRecord remains the *row* schema; the canonical bulk interchange is
// the columnar RecordFrame (telemetry/frame.hpp), and the bulk
// row-oriented APIs are gone — analyses consume frames only.
#pragma once

#include <string>
#include <vector>

#include "common/location.hpp"
#include "telemetry/counters.hpp"

namespace gpuvar {

/// Which of the four collected metrics an analysis refers to.
enum class Metric { kPerf, kFreq, kPower, kTemp };

std::string metric_name(Metric m);
std::string metric_unit(Metric m);

struct RunRecord {
  std::size_t gpu_index = 0;
  GpuLocation loc;
  int run_index = 0;
  int day_of_week = -1;  ///< 0 = Monday .. 6 = Sunday; -1 = untagged
  double perf_ms = 0.0;
  double freq_mhz = 0.0;  ///< run median
  double power_w = 0.0;   ///< run median
  double temp_c = 0.0;    ///< run median
  ProfilerCounters counters;
};

double metric_value(const RunRecord& r, Metric m);

/// Per-GPU aggregate: the median of each metric across a GPU's runs.
struct GpuAggregate {
  std::size_t gpu_index = 0;
  GpuLocation loc;
  int runs = 0;
  double perf_ms = 0.0;
  double freq_mhz = 0.0;
  double power_w = 0.0;
  double temp_c = 0.0;
};

double metric_value(const GpuAggregate& g, Metric m);

}  // namespace gpuvar
