// The per-(GPU, run) measurement bundle produced by executing a workload:
// the performance metric, iteration durations, telemetry summary,
// profiler counters and (optionally) the sampled time series.
//
// Defined in telemetry — not in the runner that fills it — so exports and
// analyses can consume results without depending on the execution layers
// above.
#pragma once

#include <cstddef>
#include <vector>

#include "gpu/sampler.hpp"
#include "gpu/timeseries.hpp"
#include "telemetry/counters.hpp"

namespace gpuvar {

struct GpuRunResult {
  std::size_t gpu_index = 0;
  int run_index = 0;
  /// The workload's performance metric, milliseconds.
  double perf_ms = 0.0;
  /// Per-iteration durations (ms); for multi-GPU jobs these are the
  /// barrier-to-barrier iteration times shared by all ranks.
  std::vector<double> iteration_ms;
  TelemetrySummary telemetry;
  ProfilerCounters counters;
  TimeSeries series;  ///< populated when collect_series is set
};

}  // namespace gpuvar
