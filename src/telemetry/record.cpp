#include "telemetry/record.hpp"

#include <map>


namespace gpuvar {

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::kPerf:
      return "performance";
    case Metric::kFreq:
      return "frequency";
    case Metric::kPower:
      return "power";
    case Metric::kTemp:
      return "temperature";
  }
  return "unknown";
}

std::string metric_unit(Metric m) {
  switch (m) {
    case Metric::kPerf:
      return "ms";
    case Metric::kFreq:
      return "MHz";
    case Metric::kPower:
      return "W";
    case Metric::kTemp:
      return "C";
  }
  return "";
}

double metric_value(const RunRecord& r, Metric m) {
  switch (m) {
    case Metric::kPerf:
      return r.perf_ms;
    case Metric::kFreq:
      return r.freq_mhz;
    case Metric::kPower:
      return r.power_w;
    case Metric::kTemp:
      return r.temp_c;
  }
  return 0.0;
}

double metric_value(const GpuAggregate& g, Metric m) {
  switch (m) {
    case Metric::kPerf:
      return g.perf_ms;
    case Metric::kFreq:
      return g.freq_mhz;
    case Metric::kPower:
      return g.power_w;
    case Metric::kTemp:
      return g.temp_c;
  }
  return 0.0;
}

}  // namespace gpuvar
