#include "telemetry/record.hpp"

#include <map>

#include "common/require.hpp"
#include "stats/quantile.hpp"

namespace gpuvar {

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::kPerf:
      return "performance";
    case Metric::kFreq:
      return "frequency";
    case Metric::kPower:
      return "power";
    case Metric::kTemp:
      return "temperature";
  }
  return "unknown";
}

std::string metric_unit(Metric m) {
  switch (m) {
    case Metric::kPerf:
      return "ms";
    case Metric::kFreq:
      return "MHz";
    case Metric::kPower:
      return "W";
    case Metric::kTemp:
      return "C";
  }
  return "";
}

double metric_value(const RunRecord& r, Metric m) {
  switch (m) {
    case Metric::kPerf:
      return r.perf_ms;
    case Metric::kFreq:
      return r.freq_mhz;
    case Metric::kPower:
      return r.power_w;
    case Metric::kTemp:
      return r.temp_c;
  }
  return 0.0;
}

double metric_value(const GpuAggregate& g, Metric m) {
  switch (m) {
    case Metric::kPerf:
      return g.perf_ms;
    case Metric::kFreq:
      return g.freq_mhz;
    case Metric::kPower:
      return g.power_w;
    case Metric::kTemp:
      return g.temp_c;
  }
  return 0.0;
}

std::vector<double> metric_column(std::span<const RunRecord> records,
                                  Metric m) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(metric_value(r, m));
  return out;
}

std::vector<GpuAggregate> per_gpu_medians(std::span<const RunRecord> records) {
  GPUVAR_REQUIRE(!records.empty());
  std::map<std::size_t, std::vector<const RunRecord*>> by_gpu;
  for (const auto& r : records) by_gpu[r.gpu_index].push_back(&r);

  std::vector<GpuAggregate> out;
  out.reserve(by_gpu.size());
  for (const auto& [gpu, rs] : by_gpu) {
    GpuAggregate agg;
    agg.gpu_index = gpu;
    agg.loc = rs.front()->loc;
    agg.runs = static_cast<int>(rs.size());
    std::vector<double> perf, freq, power, temp;
    perf.reserve(rs.size());
    for (const RunRecord* r : rs) {
      perf.push_back(r->perf_ms);
      freq.push_back(r->freq_mhz);
      power.push_back(r->power_w);
      temp.push_back(r->temp_c);
    }
    agg.perf_ms = stats::median(perf);
    agg.freq_mhz = stats::median(freq);
    agg.power_w = stats::median(power);
    agg.temp_c = stats::median(temp);
    out.push_back(std::move(agg));
  }
  return out;
}

}  // namespace gpuvar
