// Profiler counters used to classify applications (§III, §VII): functional
// unit utilization (nvprof's 0-10 scale), DRAM utilization, and stall
// breakdowns. Aggregated across a run by time-weighting each kernel's
// static footprint.
#pragma once

#include <span>

#include "common/units.hpp"
namespace gpuvar { struct KernelSpec; }  // was: #include "gpu/kernel.hpp"

namespace gpuvar {

struct ProfilerCounters {
  double fu_util = 0.0;         ///< 0-10
  double dram_util = 0.0;       ///< 0-10
  double mem_stall_frac = 0.0;  ///< [0, 1]
  double exec_stall_frac = 0.0; ///< [0, 1]
};

/// Accumulates time-weighted counters across kernels.
class CounterAccumulator {
 public:
  void add(const KernelSpec& kernel, Seconds duration);
  ProfilerCounters aggregate() const;
  Seconds total_time() const { return total_time_; }

 private:
  double fu_ = 0.0, dram_ = 0.0, mem_stall_ = 0.0, exec_stall_ = 0.0;
  Seconds total_time_{};
};

}  // namespace gpuvar
