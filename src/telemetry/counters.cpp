#include "telemetry/counters.hpp"

#include "common/require.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

void CounterAccumulator::add(const KernelSpec& kernel, Seconds duration) {
  GPUVAR_REQUIRE(duration >= Seconds{});
  fu_ += kernel.fu_util * duration.value();
  dram_ += kernel.dram_util * duration.value();
  mem_stall_ += kernel.mem_stall_frac * duration.value();
  exec_stall_ += kernel.exec_stall_frac * duration.value();
  total_time_ += duration;
}

ProfilerCounters CounterAccumulator::aggregate() const {
  ProfilerCounters c;
  if (total_time_ <= Seconds{}) return c;
  c.fu_util = fu_ / total_time_.value();
  c.dram_util = dram_ / total_time_.value();
  c.mem_stall_frac = mem_stall_ / total_time_.value();
  c.exec_stall_frac = exec_stall_ / total_time_.value();
  return c;
}

}  // namespace gpuvar
