#include "telemetry/counters.hpp"

#include "common/require.hpp"

namespace gpuvar {

void CounterAccumulator::add(const KernelSpec& kernel, Seconds duration) {
  GPUVAR_REQUIRE(duration >= 0.0);
  fu_ += kernel.fu_util * duration;
  dram_ += kernel.dram_util * duration;
  mem_stall_ += kernel.mem_stall_frac * duration;
  exec_stall_ += kernel.exec_stall_frac * duration;
  total_time_ += duration;
}

ProfilerCounters CounterAccumulator::aggregate() const {
  ProfilerCounters c;
  if (total_time_ <= 0.0) return c;
  c.fu_util = fu_ / total_time_;
  c.dram_util = dram_ / total_time_;
  c.mem_stall_frac = mem_stall_ / total_time_;
  c.exec_stall_frac = exec_stall_ / total_time_;
  return c;
}

}  // namespace gpuvar
