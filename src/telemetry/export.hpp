// CSV export of run results and time series — the interchange format for
// feeding the suite's measurements into external analysis pipelines
// (pandas/R), mirroring the paper artifact's per-application CSV outputs.
#pragma once

#include <ostream>
#include <span>

#include <istream>

#include "cluster/cluster.hpp"
#include "core/record.hpp"
#include "workloads/runner.hpp"

namespace gpuvar {

/// One row per run result: location, performance metric, and the median /
/// mean / min / max of frequency, power and temperature.
void export_results_csv(std::ostream& out, const Cluster& cluster,
                        std::span<const GpuRunResult> results);

/// One row per telemetry sample of one run's series.
void export_series_csv(std::ostream& out, const TimeSeries& series);

/// Parses run records back from a results CSV (the inverse of
/// export_results_csv, and the entry point for measurements collected on
/// real hardware). Only the columns the analyses use are required:
/// gpu, node, cabinet, run, perf_ms, freq/power/temp medians.
std::vector<RunRecord> import_results_csv(std::istream& in);

}  // namespace gpuvar
