// CSV export of run results and time series — the interchange format for
// feeding the suite's measurements into external analysis pipelines
// (pandas/R), mirroring the paper artifact's per-application CSV outputs.
//
// Deliberately decoupled from the layers above: callers pass the cluster
// name and the per-GPU location table instead of a Cluster (see
// Cluster::locations()), so the telemetry layer never includes cluster or
// workload headers.
#pragma once

#include <istream>
#include <ostream>
#include <span>
#include <string_view>

#include "common/location.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/run_result.hpp"
namespace gpuvar { class TimeSeries; }  // was: #include "gpu/timeseries.hpp"

namespace gpuvar {

/// One row per run result: location, performance metric, and the median /
/// mean / min / max of frequency, power and temperature. `locations` is
/// indexed by GpuRunResult::gpu_index (Cluster::locations() provides it).
void export_results_csv(std::ostream& out, std::string_view cluster_name,
                        std::span<const GpuLocation> locations,
                        std::span<const GpuRunResult> results);

/// One row per telemetry sample of one run's series.
void export_series_csv(std::ostream& out, const TimeSeries& series);

/// One row per frame row. Uses the legacy results schema (so any results
/// CSV consumer can read it; the frame stores only medians, so min/max
/// repeat the median and energy is 0) plus trailing columns that preserve
/// the full location and day tag, making import_results_frame a lossless
/// inverse: frame -> CSV -> frame re-exports byte-identically.
void export_frame_csv(std::ostream& out, std::string_view cluster_name,
                      const RecordFrame& frame);

/// Columnar import: the sole CSV ingestion path (the inverse of
/// export_results_csv / export_frame_csv, and the entry point for
/// measurements collected on real hardware). Accepts both the legacy
/// results schema and the extended export_frame_csv schema
/// (day_of_week / full-location columns are honoured when present).
RecordFrame import_results_frame(std::istream& in);

}  // namespace gpuvar
