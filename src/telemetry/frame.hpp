// Columnar record plane: the canonical interchange from runner to reports.
//
// Every analysis in this suite — IQR/box spreads, Pearson correlations,
// per-GPU repeatability, day-of-week splits — is column math over four
// metrics, yet a row-oriented std::vector<RunRecord> re-extracts those
// columns (and drags a per-row GpuLocation string) on every pass. A
// RecordFrame stores the same data structure-of-arrays: one contiguous
// array per metric and counter, small integer columns for run/day, and a
// per-row id into an interned GPU pool that holds each GpuLocation
// exactly once. Column reads are zero-copy std::span views; per-GPU
// grouping is a dense counting sort over the id column instead of a
// node-per-row std::map.
//
// Determinism contract (shared with FrameBuilder below): a frame's row
// order and pool-id assignment are pure functions of the row stream that
// built it. append_row interns in first-appearance order; append()
// concatenates chunk rows in order and remaps chunk ids through the same
// first-appearance interning. FrameBuilder::finish() merges its buckets
// in bucket-index order, so parallel producers that each own one bucket
// yield a byte-identical frame whatever the pool size or schedule —
// exactly the guarantee determinism_replay pins for run_experiment.
//
// Migration note: the deprecation cycle is over. The bulk row adapters
// and every row-span analysis overload are gone; analysis entry points
// take `const RecordFrame&` only (the analyzer's row-record-param rule
// now bans row-record signatures outright in core/telemetry public
// headers). Single-row append_row / row(i) remain: they are the
// streaming construction API and the materialization escape hatch, not
// a bulk interchange.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/location.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

/// Interned identity of one GPU: its stable index and physical location,
/// stored once per GPU in the frame's pool rather than once per row.
struct GpuRef {
  std::size_t gpu_index = 0;
  GpuLocation loc;  ///< first-seen location for this gpu_index
};

class RecordFrame {
 public:
  RecordFrame() = default;

  std::size_t size() const { return perf_.size(); }
  bool empty() const { return perf_.empty(); }
  /// Distinct GPUs (distinct gpu_index values) across all rows.
  std::size_t gpu_count() const { return gpus_.size(); }

  // --- zero-copy column views -------------------------------------------
  std::span<const double> perf_ms() const { return perf_; }
  std::span<const double> freq_mhz() const { return freq_; }
  std::span<const double> power_w() const { return power_; }
  std::span<const double> temp_c() const { return temp_; }
  std::span<const double> fu_util() const { return fu_; }
  std::span<const double> dram_util() const { return dram_; }
  std::span<const double> mem_stall_frac() const { return mem_stall_; }
  std::span<const double> exec_stall_frac() const { return exec_stall_; }
  /// The column for one of the four analysis metrics, without copying.
  std::span<const double> metric(Metric m) const;

  /// Per-row pool id (index into gpus()).
  std::span<const std::uint32_t> gpu_ids() const { return gpu_id_; }
  std::span<const std::int32_t> run_indices() const { return run_; }
  std::span<const std::int16_t> days_of_week() const { return day_; }

  /// The interned GPU pool, in first-appearance order of the row stream.
  std::span<const GpuRef> gpus() const { return gpus_; }
  const GpuRef& gpu(std::uint32_t id) const { return gpus_[id]; }

  // --- per-row accessors ------------------------------------------------
  std::size_t gpu_index(std::size_t row) const {
    return gpus_[gpu_id_[row]].gpu_index;
  }
  const GpuLocation& loc(std::size_t row) const {
    return gpus_[gpu_id_[row]].loc;
  }
  int run_index(std::size_t row) const { return run_[row]; }
  int day_of_week(std::size_t row) const { return day_[row]; }
  ProfilerCounters counters(std::size_t row) const;

  /// Materializes one row (escape hatch for row-shaped consumers, e.g.
  /// building a mutated copy of a campaign in a test or benchmark).
  RunRecord row(std::size_t row) const;

  // --- construction -----------------------------------------------------
  void reserve(std::size_t rows);
  /// Appends one row, interning its location on first sight of its
  /// gpu_index. Id assignment follows first-appearance order.
  void append_row(const RunRecord& r);
  /// Chunked append: concatenates another frame's rows in order, remapping
  /// its pool ids through this frame's interning. Memory-bounded campaign
  /// loops build one chunk at a time and fold it in here.
  void append(const RecordFrame& chunk);
  /// New frame holding exactly the given rows (in the given order).
  RecordFrame select(std::span<const std::size_t> rows) const;
  /// Mask overload: keeps the rows whose mask byte is set (1 = keep),
  /// in frame order. The mask convention matches the vectorized
  /// predicate kernels in stats/kernels.hpp, so a filter can go from
  /// predicate to sub-frame without materializing a row-index list at
  /// the call site. Requires mask.size() == size().
  RecordFrame select(std::span<const std::uint8_t> mask) const;

  /// Approximate heap + inline footprint in bytes (for the memory story
  /// in micro_frame_bench; counts columns plus the interned pool).
  std::size_t memory_bytes() const;

 private:
  std::uint32_t intern(std::size_t gpu_index, const GpuLocation& loc);

  std::vector<double> perf_, freq_, power_, temp_;
  std::vector<double> fu_, dram_, mem_stall_, exec_stall_;
  std::vector<std::uint32_t> gpu_id_;
  std::vector<std::int32_t> run_;
  std::vector<std::int16_t> day_;
  std::vector<GpuRef> gpus_;
  /// gpu_index -> pool id. Ordered map: lookup-only (never iterated into
  /// results), but keeping it ordered costs nothing and stays lint-clean.
  std::map<std::size_t, std::uint32_t> id_by_gpu_index_;
};

/// Deterministic sink for parallel producers: one bucket per independent
/// job (node, GPU, shard), each owned by exactly one worker; finish()
/// concatenates the buckets in index order. Because ids re-intern during
/// the ordered merge, the finished frame is identical whatever schedule
/// filled the buckets — the columnar replacement for the
/// vector-of-vectors bucket-concatenate-then-copy pattern.
class FrameBuilder {
 public:
  explicit FrameBuilder(std::size_t bucket_count);

  std::size_t bucket_count() const { return buckets_.size(); }
  /// The bucket a single producer streams into. Distinct indices may be
  /// filled concurrently; one bucket must never be shared.
  RecordFrame& bucket(std::size_t i) { return buckets_[i]; }

  /// Merges all buckets (in index order) into the finished frame and
  /// releases their storage.
  RecordFrame finish();

 private:
  std::vector<RecordFrame> buckets_;
};

/// Row indices grouped by interned GPU: rows laid out id-by-id (frame
/// order within each group), plus the id iteration order that visits
/// GPUs by ascending gpu_index — the order the row-oriented
/// per_gpu_medians always produced.
struct GpuRowGroups {
  std::vector<std::uint32_t> order;  ///< pool ids sorted by gpu_index
  std::vector<std::size_t> offsets;  ///< per id: group = rows[offsets[id]..offsets[id+1])
  std::vector<std::size_t> rows;     ///< row indices, grouped by id
};

GpuRowGroups group_rows_by_gpu(const RecordFrame& frame);

/// Shared core of group_rows_by_gpu over raw columns: groups any id
/// column against any interned pool. The streaming query plane feeds
/// its assembled columns through this same code, which is what makes
/// "Dataset analysis == frame analysis" a structural fact rather than
/// a numerical coincidence.
GpuRowGroups group_rows_by_ids(std::span<const std::uint32_t> ids,
                               std::span<const GpuRef> gpus);

/// Collapses the frame to one aggregate per GPU (ordered by gpu_index),
/// bit-identical to per_gpu_medians over the equivalent record rows but
/// via a dense counting sort instead of a per-row map.
std::vector<GpuAggregate> per_gpu_medians(const RecordFrame& frame);

/// Shared core of per_gpu_medians over raw columns + precomputed
/// groups. Requires a non-empty row set.
std::vector<GpuAggregate> per_gpu_medians_grouped(
    const GpuRowGroups& groups, std::span<const GpuRef> gpus,
    std::span<const double> perf_ms, std::span<const double> freq_mhz,
    std::span<const double> power_w, std::span<const double> temp_c);

/// Zero-copy counterpart of the allocating metric_column overload.
std::span<const double> metric_column(const RecordFrame& frame, Metric m);

}  // namespace gpuvar
