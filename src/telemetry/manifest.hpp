// Campaign checkpoint manifest: the durable index of a checkpoint
// directory.
//
// A checkpointed campaign directory holds one shard file per bucket
// (telemetry/shard.hpp) plus "manifest.txt" recording, per bucket, the
// facts needed to decide whether the shard on disk is current: row
// count, payload size, payload hash. The write path (core/engine.hpp)
// appends a line per completed bucket and atomically rewrites the file
// at campaign start/end; the read path (query/dataset.hpp) treats the
// same directory as an immutable dataset. Both sides share this one
// parser/renderer so the format cannot drift.
//
// Format, line-oriented plain text:
//   gpuvar-campaign-manifest v1
//   config <hex>
//   bucket N rows N payload N hash <hex>   (one per completed bucket)
//   done                                   (present once all buckets ran)
// Entry lines are parsed only when they match this shape exactly;
// anything else — e.g. the torn tail of an append that died mid-write —
// is skipped, so the durable prefix is what counts.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>

#include "telemetry/shard.hpp"

namespace gpuvar {

inline constexpr const char* kCampaignManifestName = "manifest.txt";
/// Present while a campaign is writing the directory; a query refusing
/// to open a directory bearing this marker would be wrong (resumable
/// campaigns leave it behind on crash), so readers surface it as a
/// "complete" bit instead.
inline constexpr const char* kCampaignMarkerName = "IN_PROGRESS";
inline constexpr const char* kCampaignManifestMagic =
    "gpuvar-campaign-manifest v1";

struct CampaignManifestEntry {
  FrameShardInfo info;
};

struct CampaignManifest {
  bool exists = false;
  std::uint64_t config_hash = 0;
  bool done = false;
  /// bucket index -> recorded shard facts (last entry wins, so an
  /// append-crash duplicate resolves to the freshest record).
  std::map<std::uint64_t, CampaignManifestEntry> entries;
};

/// "bucket-000042.shard": fixed width so a directory listing sorts in
/// bucket order.
std::string campaign_shard_file_name(std::size_t bucket_index);

/// Reads and parses the manifest. A missing file is a fresh campaign; a
/// present file whose first line is not the manifest magic is refused
/// (the directory holds something that is not ours) with
/// std::runtime_error. Unparseable entry lines are skipped.
CampaignManifest read_campaign_manifest(const std::filesystem::path& path);

/// The exact line the manifest records for one completed bucket.
std::string campaign_manifest_entry_line(const FrameShardInfo& info);

/// Atomically replaces the manifest (write a sibling, then rename) with
/// the given entries in bucket order.
void rewrite_campaign_manifest(
    const std::filesystem::path& dir, std::uint64_t config_hash,
    const std::map<std::uint64_t, CampaignManifestEntry>& entries, bool done);

}  // namespace gpuvar
