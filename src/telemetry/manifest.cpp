#include "telemetry/manifest.hpp"

#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/numfmt.hpp"
#include "telemetry/shard.hpp"

namespace gpuvar {

namespace {

namespace fs = std::filesystem;

/// Splits on single spaces (manifest fields never contain spaces).
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t sp = line.find(' ', start);
    if (sp == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, sp - start));
    start = sp + 1;
  }
  return out;
}

}  // namespace

std::string campaign_shard_file_name(std::size_t bucket_index) {
  std::string digits = format_int(static_cast<long long>(bucket_index));
  while (digits.size() < 6) digits.insert(digits.begin(), '0');
  return "bucket-" + digits + ".shard";
}

CampaignManifest read_campaign_manifest(const fs::path& path) {
  CampaignManifest m;
  std::ifstream in(path);
  if (!in.good()) return m;
  m.exists = true;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      if (line != kCampaignManifestMagic) {
        throw std::runtime_error(path.string() +
                                 ": not a gpuvar campaign manifest");
      }
      first = false;
      continue;
    }
    const auto f = split_fields(line);
    if (f.size() == 2 && f[0] == "config") {
      parse_hex(f[1], m.config_hash);
    } else if (f.size() == 1 && f[0] == "done") {
      m.done = true;
    } else if (f.size() == 8 && f[0] == "bucket" && f[2] == "rows" &&
               f[4] == "payload" && f[6] == "hash") {
      long long idx = 0;
      long long rows = 0;
      long long payload = 0;
      std::uint64_t hash = 0;
      if (parse_int(f[1], idx) && parse_int(f[3], rows) &&
          parse_int(f[5], payload) && parse_hex(f[7], hash) && idx >= 0 &&
          rows >= 0 && payload >= 0) {
        CampaignManifestEntry e;
        e.info.bucket_index = static_cast<std::uint64_t>(idx);
        e.info.rows = static_cast<std::uint64_t>(rows);
        e.info.payload_bytes = static_cast<std::uint64_t>(payload);
        e.info.payload_hash = hash;
        m.entries[e.info.bucket_index] = e;
      }
    }
    // Anything else: a torn line. Skip it.
  }
  if (first) m.exists = false;  // empty file == fresh campaign
  return m;
}

std::string campaign_manifest_entry_line(const FrameShardInfo& info) {
  return "bucket " + format_int(static_cast<long long>(info.bucket_index)) +
         " rows " + format_int(static_cast<long long>(info.rows)) +
         " payload " + format_int(static_cast<long long>(info.payload_bytes)) +
         " hash " + format_hex(info.payload_hash);
}

void rewrite_campaign_manifest(
    const fs::path& dir, std::uint64_t config_hash,
    const std::map<std::uint64_t, CampaignManifestEntry>& entries, bool done) {
  const fs::path tmp = dir / (std::string(kCampaignManifestName) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      throw std::runtime_error("cannot write " + tmp.string());
    }
    out << kCampaignManifestMagic << "\nconfig " << format_hex(config_hash)
        << "\n";
    for (const auto& [idx, e] : entries) {
      out << campaign_manifest_entry_line(e.info) << "\n";
    }
    if (done) out << "done\n";
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("write failed: " + tmp.string());
    }
  }
  fs::rename(tmp, dir / kCampaignManifestName);
}

}  // namespace gpuvar
