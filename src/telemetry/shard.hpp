// FrameShard: the self-describing binary spill format for one campaign
// bucket.
//
// The campaign engine (core/engine.hpp) streams each node bucket into a
// RecordFrame and — when resident bytes exceed the shard budget, or a
// checkpoint directory is recording the campaign — serializes the
// bucket to one shard file. A shard is a complete, standalone frame:
// header (magic, version, bucket index, row/pool counts, payload size
// and hash) followed by a payload holding the interned GPU pool
// snapshot and the raw columns. Doubles travel as IEEE-754 bit
// patterns (common/binio.hpp), so write -> read -> merge produces a
// frame byte-identical to one that never left memory — the property
// the engine's "any spill threshold, same output" contract rests on.
//
// Robustness contract: a reader never trusts the file. Bad magic, an
// unsupported version, a header that promises more payload than the
// file holds, or a payload whose hash disagrees with the header all
// throw std::runtime_error naming the shard and the defect — the
// engine treats any of these as "bucket missing" and re-runs it from
// its seed path rather than merging garbage.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/frame.hpp"

namespace gpuvar {

/// Format version written by this build; readers reject anything else.
/// v2 appended the field-range stats block to the header so query
/// predicate pushdown can skip a shard from header bytes alone.
inline constexpr std::uint16_t kFrameShardVersion = 2;

/// Serialized header size: u32 magic + u16 version + five u64 fields
/// (bucket index, rows, pool, payload bytes, payload hash) + six i64
/// stats fields (node/gpu-index/day min-max). A shard file is exactly
/// this many bytes plus its payload.
inline constexpr std::size_t kFrameShardHeaderBytes = 4 + 2 + 5 * 8 + 6 * 8;

/// Inclusive per-shard value ranges for the fields query predicates
/// can push down. A default-constructed block (min > max) means "no
/// rows", so every range test reads as empty. These live in the header
/// — before the payload — precisely so a reader can rule a shard out
/// without touching, let alone decoding, its payload.
struct FrameShardStats {
  std::int64_t node_min = 0;
  std::int64_t node_max = -1;
  std::int64_t gpu_index_min = 0;
  std::int64_t gpu_index_max = -1;
  std::int64_t day_min = 0;
  std::int64_t day_max = -1;
};

/// Computes the stats block serialize_frame_shard embeds for `frame`.
FrameShardStats frame_shard_stats(const RecordFrame& frame);

/// What a completed shard write looks like from the outside — the facts
/// the campaign manifest records per bucket.
struct FrameShardInfo {
  std::uint64_t bucket_index = 0;
  std::uint64_t rows = 0;
  std::uint64_t payload_bytes = 0;
  /// FNV-1a of the payload: the manifest's staleness check. A manifest
  /// entry whose hash disagrees with the shard on disk forces that
  /// bucket to re-run.
  std::uint64_t payload_hash = 0;
};

/// Everything the fixed-size header records, including the fields the
/// manifest does not mirror (pool size, stats block).
struct FrameShardHeader {
  FrameShardInfo info;
  std::uint64_t pool = 0;
  FrameShardStats stats;
};

/// Parses just the header from `bytes` (a whole shard file or any
/// prefix holding at least kFrameShardHeaderBytes). Validates magic
/// and version only — the payload need not be present, which is what
/// lets a query planner scan a checkpoint directory by reading
/// kFrameShardHeaderBytes per shard.
FrameShardHeader parse_frame_shard_header(std::string_view bytes,
                                          const std::string& label);

/// One bucket read back from a shard.
struct FrameShard {
  FrameShardInfo info;
  RecordFrame frame;
};

/// Serializes `frame` as bucket `bucket_index` into a byte buffer
/// (header + payload, ready to be written as one file).
std::string serialize_frame_shard(const RecordFrame& frame,
                                  std::uint64_t bucket_index);

/// FNV-1a of serialize_frame_shard(frame, bucket_index), computed by
/// streaming the serialization through the hash in bounded chunks —
/// the content fingerprint of a merged campaign frame (which can be
/// orders of magnitude larger than any shard budget) without ever
/// materializing a second copy of it.
std::uint64_t hash_frame_shard(const RecordFrame& frame,
                               std::uint64_t bucket_index);

/// Parses a serialized shard. `label` names the source (e.g. the file
/// path) in error messages. Throws std::runtime_error on truncation,
/// bad magic, version mismatch, or payload hash mismatch.
FrameShard parse_frame_shard(std::string_view bytes, std::string label);

/// Writes `frame` as one shard to `out`; returns the facts the
/// manifest records. The stream receives a single write.
FrameShardInfo write_frame_shard(std::ostream& out, const RecordFrame& frame,
                                 std::uint64_t bucket_index);

/// Reads one shard from `in` (consumes the whole stream). Same error
/// contract as parse_frame_shard.
FrameShard read_frame_shard(std::istream& in, std::string label);

/// Bit flags naming the eight metric columns of the payload, in their
/// serialized order. The pool snapshot and the id/run/day columns are
/// always decoded (they are small and every query needs them); the
/// mask selects which 8-byte metric columns get decoded vs skipped.
enum : unsigned {
  kShardColPerf = 1u << 0,
  kShardColFreq = 1u << 1,
  kShardColPower = 1u << 2,
  kShardColTemp = 1u << 3,
  kShardColFuUtil = 1u << 4,
  kShardColDramUtil = 1u << 5,
  kShardColMemStall = 1u << 6,
  kShardColExecStall = 1u << 7,
  kShardColsAll = 0xffu,
};
inline constexpr std::size_t kShardMetricColumns = 8;

/// A shard decoded column-by-column instead of rebuilt into a
/// RecordFrame. metric_cols[k] is empty unless bit k of the request
/// mask was set; pool/ids/runs/days are always populated. Values are
/// bit-identical to the frame that was serialized.
struct DecodedShardColumns {
  FrameShardHeader header;
  std::vector<GpuRef> pool;
  std::vector<std::uint32_t> gpu_ids;
  std::vector<std::int32_t> runs;
  std::vector<std::int16_t> days;
  std::array<std::vector<double>, kShardMetricColumns> metric_cols;
  /// Which metric columns are decoded (the request mask).
  unsigned columns = 0;
  /// Resident bytes of the decoded vectors — what a decoded-shard
  /// cache charges against its byte budget.
  std::size_t memory_bytes() const;
};

/// Streaming per-column decode: verifies the whole payload hash (a
/// reader never trusts the file), then decodes the pool and the
/// id/run/day columns plus only the metric columns in `columns`,
/// stepping over the rest without materializing them. Same error
/// contract as parse_frame_shard.
DecodedShardColumns decode_frame_shard_columns(std::string_view bytes,
                                               std::string label,
                                               unsigned columns);

}  // namespace gpuvar
