// FrameShard: the self-describing binary spill format for one campaign
// bucket.
//
// The campaign engine (core/engine.hpp) streams each node bucket into a
// RecordFrame and — when resident bytes exceed the shard budget, or a
// checkpoint directory is recording the campaign — serializes the
// bucket to one shard file. A shard is a complete, standalone frame:
// header (magic, version, bucket index, row/pool counts, payload size
// and hash) followed by a payload holding the interned GPU pool
// snapshot and the raw columns. Doubles travel as IEEE-754 bit
// patterns (common/binio.hpp), so write -> read -> merge produces a
// frame byte-identical to one that never left memory — the property
// the engine's "any spill threshold, same output" contract rests on.
//
// Robustness contract: a reader never trusts the file. Bad magic, an
// unsupported version, a header that promises more payload than the
// file holds, or a payload whose hash disagrees with the header all
// throw std::runtime_error naming the shard and the defect — the
// engine treats any of these as "bucket missing" and re-runs it from
// its seed path rather than merging garbage.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/frame.hpp"

namespace gpuvar {

/// Format version written by this build; readers reject anything else.
inline constexpr std::uint16_t kFrameShardVersion = 1;

/// Serialized header size: u32 magic + u16 version + five u64 fields
/// (bucket index, rows, pool, payload bytes, payload hash). A shard
/// file is exactly this many bytes plus its payload.
inline constexpr std::size_t kFrameShardHeaderBytes = 4 + 2 + 5 * 8;

/// What a completed shard write looks like from the outside — the facts
/// the campaign manifest records per bucket.
struct FrameShardInfo {
  std::uint64_t bucket_index = 0;
  std::uint64_t rows = 0;
  std::uint64_t payload_bytes = 0;
  /// FNV-1a of the payload: the manifest's staleness check. A manifest
  /// entry whose hash disagrees with the shard on disk forces that
  /// bucket to re-run.
  std::uint64_t payload_hash = 0;
};

/// One bucket read back from a shard.
struct FrameShard {
  FrameShardInfo info;
  RecordFrame frame;
};

/// Serializes `frame` as bucket `bucket_index` into a byte buffer
/// (header + payload, ready to be written as one file).
std::string serialize_frame_shard(const RecordFrame& frame,
                                  std::uint64_t bucket_index);

/// FNV-1a of serialize_frame_shard(frame, bucket_index), computed by
/// streaming the serialization through the hash in bounded chunks —
/// the content fingerprint of a merged campaign frame (which can be
/// orders of magnitude larger than any shard budget) without ever
/// materializing a second copy of it.
std::uint64_t hash_frame_shard(const RecordFrame& frame,
                               std::uint64_t bucket_index);

/// Parses a serialized shard. `label` names the source (e.g. the file
/// path) in error messages. Throws std::runtime_error on truncation,
/// bad magic, version mismatch, or payload hash mismatch.
FrameShard parse_frame_shard(std::string_view bytes, std::string label);

/// Writes `frame` as one shard to `out`; returns the facts the
/// manifest records. The stream receives a single write.
FrameShardInfo write_frame_shard(std::ostream& out, const RecordFrame& frame,
                                 std::uint64_t bucket_index);

/// Reads one shard from `in` (consumes the whole stream). Same error
/// contract as parse_frame_shard.
FrameShard read_frame_shard(std::istream& in, std::string label);

}  // namespace gpuvar
