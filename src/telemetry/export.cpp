#include "telemetry/export.hpp"

#include "common/csv.hpp"
#include "common/csv_reader.hpp"
#include "common/rng.hpp"
#include "common/require.hpp"

namespace gpuvar {

void export_results_csv(std::ostream& out, std::string_view cluster_name,
                        std::span<const GpuLocation> locations,
                        std::span<const GpuRunResult> results) {
  CsvWriter csv(out);
  csv.header({"cluster", "gpu", "node", "cabinet", "run", "perf_ms",
              "freq_mhz_median", "freq_mhz_min", "freq_mhz_max",
              "power_w_median", "power_w_min", "power_w_max",
              "temp_c_median", "temp_c_min", "temp_c_max", "energy_j",
              "fu_util", "dram_util", "mem_stall_frac", "exec_stall_frac"});
  for (const auto& r : results) {
    GPUVAR_REQUIRE_MSG(r.gpu_index < locations.size(),
                       "result gpu_index outside the location table");
    const GpuLocation& loc = locations[r.gpu_index];
    csv.add(cluster_name)
        .add(loc.name)
        .add(static_cast<long long>(loc.node))
        .add(static_cast<long long>(loc.cabinet))
        .add(static_cast<long long>(r.run_index))
        .add(r.perf_ms)
        .add(r.telemetry.freq.median)
        .add(r.telemetry.freq.min)
        .add(r.telemetry.freq.max)
        .add(r.telemetry.power.median)
        .add(r.telemetry.power.min)
        .add(r.telemetry.power.max)
        .add(r.telemetry.temp.median)
        .add(r.telemetry.temp.min)
        .add(r.telemetry.temp.max)
        .add(r.telemetry.energy.value())
        .add(r.counters.fu_util)
        .add(r.counters.dram_util)
        .add(r.counters.mem_stall_frac)
        .add(r.counters.exec_stall_frac);
    csv.end_row();
  }
}

void export_series_csv(std::ostream& out, const TimeSeries& series) {
  CsvWriter csv(out);
  csv.header({"t_s", "freq_mhz", "power_w", "temp_c"});
  for (const auto& s : series.samples()) {
    csv.add(s.t.value()).add(s.freq.value()).add(s.power.value()).add(s.temp.value());
    csv.end_row();
  }
}

std::vector<RunRecord> import_results_csv(std::istream& in) {
  CsvReader csv(in);
  for (const char* col :
       {"gpu", "node", "cabinet", "run", "perf_ms", "freq_mhz_median",
        "power_w_median", "temp_c_median"}) {
    GPUVAR_REQUIRE_MSG(csv.has_column(col),
                       std::string("results CSV missing column: ") + col);
  }
  std::vector<RunRecord> records;
  records.reserve(csv.rows());
  for (std::size_t row = 0; row < csv.rows(); ++row) {
    RunRecord r;
    r.loc.name = csv.field(row, "gpu");
    r.loc.node = static_cast<int>(csv.integer(row, "node"));
    r.loc.cabinet = static_cast<int>(csv.integer(row, "cabinet"));
    // Synthesize a stable per-name GPU index: (node, name hash) suffices
    // for grouping since names are unique per GPU.
    r.gpu_index = static_cast<std::size_t>(
        derive_seed(0x6B5, r.loc.name) % (1ull << 48));
    r.run_index = static_cast<int>(csv.integer(row, "run"));
    r.perf_ms = csv.number(row, "perf_ms");
    r.freq_mhz = csv.number(row, "freq_mhz_median");
    r.power_w = csv.number(row, "power_w_median");
    r.temp_c = csv.number(row, "temp_c_median");
    if (csv.has_column("fu_util")) {
      r.counters.fu_util = csv.number(row, "fu_util");
      r.counters.dram_util = csv.number(row, "dram_util");
      r.counters.mem_stall_frac = csv.number(row, "mem_stall_frac");
      r.counters.exec_stall_frac = csv.number(row, "exec_stall_frac");
    }
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace gpuvar
