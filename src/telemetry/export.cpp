#include "telemetry/export.hpp"

#include "common/csv.hpp"
#include "common/csv_reader.hpp"
#include "common/rng.hpp"
#include "common/require.hpp"
#include "common/location.hpp"
#include "gpu/timeseries.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"
#include "telemetry/run_result.hpp"

namespace gpuvar {

void export_results_csv(std::ostream& out, std::string_view cluster_name,
                        std::span<const GpuLocation> locations,
                        std::span<const GpuRunResult> results) {
  CsvWriter csv(out);
  csv.header({"cluster", "gpu", "node", "cabinet", "run", "perf_ms",
              "freq_mhz_median", "freq_mhz_min", "freq_mhz_max",
              "power_w_median", "power_w_min", "power_w_max",
              "temp_c_median", "temp_c_min", "temp_c_max", "energy_j",
              "fu_util", "dram_util", "mem_stall_frac", "exec_stall_frac"});
  for (const auto& r : results) {
    GPUVAR_REQUIRE_MSG(r.gpu_index < locations.size(),
                       "result gpu_index outside the location table");
    const GpuLocation& loc = locations[r.gpu_index];
    csv.add(cluster_name)
        .add(loc.name)
        .add(static_cast<long long>(loc.node))
        .add(static_cast<long long>(loc.cabinet))
        .add(static_cast<long long>(r.run_index))
        .add(r.perf_ms)
        .add(r.telemetry.freq.median)
        .add(r.telemetry.freq.min)
        .add(r.telemetry.freq.max)
        .add(r.telemetry.power.median)
        .add(r.telemetry.power.min)
        .add(r.telemetry.power.max)
        .add(r.telemetry.temp.median)
        .add(r.telemetry.temp.min)
        .add(r.telemetry.temp.max)
        .add(r.telemetry.energy.value())
        .add(r.counters.fu_util)
        .add(r.counters.dram_util)
        .add(r.counters.mem_stall_frac)
        .add(r.counters.exec_stall_frac);
    csv.end_row();
  }
}

void export_frame_csv(std::ostream& out, std::string_view cluster_name,
                      const RecordFrame& frame) {
  CsvWriter csv(out);
  csv.header({"cluster", "gpu", "node", "cabinet", "run", "perf_ms",
              "freq_mhz_median", "freq_mhz_min", "freq_mhz_max",
              "power_w_median", "power_w_min", "power_w_max",
              "temp_c_median", "temp_c_min", "temp_c_max", "energy_j",
              "fu_util", "dram_util", "mem_stall_frac", "exec_stall_frac",
              "day_of_week", "gpu_in_node", "row_idx", "column_idx",
              "node_in_group"});
  const auto perf = frame.perf_ms();
  const auto freq = frame.freq_mhz();
  const auto power = frame.power_w();
  const auto temp = frame.temp_c();
  const auto fu = frame.fu_util();
  const auto dram = frame.dram_util();
  const auto mem_stall = frame.mem_stall_frac();
  const auto exec_stall = frame.exec_stall_frac();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const GpuLocation& loc = frame.loc(i);
    csv.add(cluster_name)
        .add(loc.name)
        .add(static_cast<long long>(loc.node))
        .add(static_cast<long long>(loc.cabinet))
        .add(static_cast<long long>(frame.run_index(i)))
        .add(perf[i])
        .add(freq[i])
        .add(freq[i])
        .add(freq[i])
        .add(power[i])
        .add(power[i])
        .add(power[i])
        .add(temp[i])
        .add(temp[i])
        .add(temp[i])
        .add(0.0)
        .add(fu[i])
        .add(dram[i])
        .add(mem_stall[i])
        .add(exec_stall[i])
        .add(static_cast<long long>(frame.day_of_week(i)))
        .add(static_cast<long long>(loc.gpu))
        .add(static_cast<long long>(loc.row))
        .add(static_cast<long long>(loc.column))
        .add(static_cast<long long>(loc.node_in_group));
    csv.end_row();
  }
}

void export_series_csv(std::ostream& out, const TimeSeries& series) {
  CsvWriter csv(out);
  csv.header({"t_s", "freq_mhz", "power_w", "temp_c"});
  for (const auto& s : series.samples()) {
    csv.add(s.t.value()).add(s.freq.value()).add(s.power.value()).add(s.temp.value());
    csv.end_row();
  }
}

RecordFrame import_results_frame(std::istream& in) {
  CsvReader csv(in);
  for (const char* col :
       {"gpu", "node", "cabinet", "run", "perf_ms", "freq_mhz_median",
        "power_w_median", "temp_c_median"}) {
    GPUVAR_REQUIRE_MSG(csv.has_column(col),
                       std::string("results CSV missing column: ") + col);
  }
  const bool has_counters = csv.has_column("fu_util");
  const bool has_day = csv.has_column("day_of_week");
  const bool has_full_loc = csv.has_column("gpu_in_node") &&
                            csv.has_column("row_idx") &&
                            csv.has_column("column_idx") &&
                            csv.has_column("node_in_group");
  RecordFrame frame;
  frame.reserve(csv.rows());
  for (std::size_t row = 0; row < csv.rows(); ++row) {
    RunRecord r;
    r.loc.name = csv.field(row, "gpu");
    r.loc.node = static_cast<int>(csv.integer(row, "node"));
    r.loc.cabinet = static_cast<int>(csv.integer(row, "cabinet"));
    if (has_full_loc) {
      r.loc.gpu = static_cast<int>(csv.integer(row, "gpu_in_node"));
      r.loc.row = static_cast<int>(csv.integer(row, "row_idx"));
      r.loc.column = static_cast<int>(csv.integer(row, "column_idx"));
      r.loc.node_in_group =
          static_cast<int>(csv.integer(row, "node_in_group"));
    }
    // Synthesize a stable per-name GPU index: (node, name hash) suffices
    // for grouping since names are unique per GPU.
    r.gpu_index = static_cast<std::size_t>(
        derive_seed(0x6B5, r.loc.name) % (1ull << 48));
    r.run_index = static_cast<int>(csv.integer(row, "run"));
    if (has_day) r.day_of_week = static_cast<int>(csv.integer(row, "day_of_week"));
    r.perf_ms = csv.number(row, "perf_ms");
    r.freq_mhz = csv.number(row, "freq_mhz_median");
    r.power_w = csv.number(row, "power_w_median");
    r.temp_c = csv.number(row, "temp_c_median");
    if (has_counters) {
      r.counters.fu_util = csv.number(row, "fu_util");
      r.counters.dram_util = csv.number(row, "dram_util");
      r.counters.mem_stall_frac = csv.number(row, "mem_stall_frac");
      r.counters.exec_stall_frac = csv.number(row, "exec_stall_frac");
    }
    frame.append_row(r);
  }
  return frame;
}

}  // namespace gpuvar
