#include "core/cli.hpp"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/numfmt.hpp"
#include "common/require.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/flagging.hpp"
#include "core/compare.hpp"
#include "core/drift.hpp"
#include "core/markdown_report.hpp"
#include "core/projection.hpp"
#include "core/report.hpp"
#include "core/variability.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/export.hpp"
#include "workloads/runner.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/correlate.hpp"
#include "gpu/sku.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"
#include "telemetry/run_result.hpp"
#include "workloads/workload.hpp"

namespace gpuvar::cli {

namespace {

constexpr ClusterEntry kClusters[] = {
    {"cloudlab", "NSF CloudLab, 8x V100 SXM2 (the paper's testbed)", false,
     +[] { return cloudlab_spec(); }},
    {"longhorn", "TACC Longhorn, 416x V100, air-cooled", false,
     +[] { return longhorn_spec(); }},
    {"frontera", "TACC Frontera RTX partition", false,
     +[] { return frontera_spec(); }},
    {"vortex", "LLNL Vortex, V100, water-cooled", false,
     +[] { return vortex_spec(); }},
    {"summit", "ORNL Summit sample (2 nodes/column)", false,
     +[] { return summit_spec(0x5077, 8, 29, 2, 6); }},
    {"summit-full", "ORNL Summit at full scale (18 nodes/column)", true,
     +[] { return summit_spec(0x5077, 8, 29, 18, 6); }},
    {"corona", "LLNL Corona, AMD MI60", false, +[] { return corona_spec(); }},
};

constexpr WorkloadEntry kWorkloads[] = {
    {"sgemm", "dense matrix multiply, compute-bound", false, 100,
     +[](int it) { return sgemm_workload(25536, it); }},
    {"sgemm-amd", "SGEMM sized for MI60 memory", true, 100,
     +[](int it) { return sgemm_workload(24576, it); }},
    {"resnet-multi", "ResNet-50 training, all GPUs per node", false, 500,
     +[](int it) { return resnet50_multi_workload(it); }},
    {"resnet-single", "ResNet-50 training, one GPU", false, 500,
     +[](int it) { return resnet50_single_workload(it); }},
    {"bert", "BERT fine-tuning", false, 250,
     +[](int it) { return bert_workload(it); }},
    {"lammps", "LAMMPS molecular dynamics", false, 10,
     +[](int it) { return lammps_workload(it); }},
    {"pagerank", "PageRank, memory-bound", false, 50,
     +[](int it) { return pagerank_workload(it); }},
};

/// "try one of a, b, c" suffix for unknown-name errors, from the
/// visible rows of either registry.
template <typename Entry>
std::string try_one_of(std::span<const Entry> entries) {
  std::string out = ", try one of ";
  bool first = true;
  for (const auto& e : entries) {
    if (e.hidden) continue;
    if (!first) out += ", ";
    out += e.name;
    first = false;
  }
  return out;
}

}  // namespace

std::span<const ClusterEntry> cluster_registry() { return kClusters; }
std::span<const WorkloadEntry> workload_registry() { return kWorkloads; }

ClusterSpec cluster_by_name(const std::string& name) {
  for (const auto& e : kClusters) {
    if (name == e.name) return e.make();
  }
  throw std::invalid_argument("unknown cluster: " + name +
                              try_one_of(cluster_registry()));
}

WorkloadSpec workload_by_name(const std::string& name, int iterations) {
  for (const auto& e : kWorkloads) {
    if (name == e.name) {
      return e.make(iterations > 0 ? iterations : e.default_iterations);
    }
  }
  throw std::invalid_argument("unknown workload: " + name +
                              try_one_of(workload_registry()));
}

namespace {

struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    double v = 0.0;
    GPUVAR_REQUIRE_MSG(parse_double(it->second, v),
                       "not a number: '" + it->second + "' for --" + key);
    return v;
  }
};

ParsedArgs parse(const std::vector<std::string>& args, std::size_t from) {
  ParsedArgs out;
  for (std::size_t i = from; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      GPUVAR_REQUIRE_MSG(i + 1 < args.size(), "missing value for " + a);
      out.options[a.substr(2)] = args[++i];
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

void usage(std::ostream& err) {
  err << "usage:\n"
         "  gpuvar clusters | workloads\n"
         "  gpuvar simulate --cluster NAME --workload NAME [--runs N]\n"
         "                  [--reps N] [--coverage F] [--power-limit W]\n"
         "                  [--out FILE] [--trace FILE] [--metrics FILE]\n"
         "  gpuvar run --cluster NAME --workload NAME [--runs N] [--reps N]\n"
         "             [--coverage F] [--checkpoint DIR]\n"
         "             [--shard-budget BYTES[K|M|G]|unlimited]\n"
         "             [--sweep day|power] [--power-caps W1,W2,...]\n"
         "             [--out FILE.csv] [--report FILE.md] [--summary FILE]\n"
         "  gpuvar analyze FILE.csv [--group cabinet|node|row]\n"
         "  gpuvar flag FILE.csv [--slowdown-temp T]\n"
         "  gpuvar project FILE.csv --target N\n"
         "  gpuvar report FILE.csv [--title T] [--slowdown-temp T]\n"
         "  gpuvar compare BEFORE.csv AFTER.csv\n"
         "  gpuvar drift FILE.csv\n";
}

RecordFrame load_frame(const std::string& path) {
  std::ifstream in(path);
  GPUVAR_REQUIRE_MSG(in.good(), "cannot open " + path);
  return import_results_frame(in);
}

int cmd_simulate(const ParsedArgs& args, std::ostream& out) {
  // Observability sinks go in before the cluster is built so fault
  // injections during construction land in the trace too.
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  obs::TraceSink sink;
  obs::Registry registry;
  std::optional<obs::ScopedTrace> trace_guard;
  std::optional<obs::ScopedMetrics> metrics_guard;
  if (!trace_path.empty()) trace_guard.emplace(&sink);
  if (!metrics_path.empty()) metrics_guard.emplace(&registry);
  obs::LaneScope campaign_lane(0, "campaign");

  const std::string cluster_name = args.get("cluster", "cloudlab");
  std::string workload_name = args.get("workload", "sgemm");
  Cluster cluster(cluster_by_name(cluster_name));
  if (workload_name == "sgemm" && cluster.sku().vendor == Vendor::kAmd) {
    workload_name = "sgemm-amd";
  }
  const int reps = static_cast<int>(args.get_num("reps", 0));
  auto workload = workload_by_name(workload_name, reps);

  ExperimentConfig cfg = default_config(
      cluster, workload, static_cast<int>(args.get_num("runs", 2)));
  cfg.node_coverage = args.get_num("coverage", 1.0);
  cfg.run_options.power_limit_override = Watts{args.get_num("power-limit", 0.0)};

  out << "simulating " << workload.name << " on " << cluster.name() << " ("
      << cluster.size() << " GPUs)...\n";
  const auto result = run_experiment(cluster, cfg);
  print_section(out, "variability");
  print_variability_table(out, analyze_variability(result.frame));

  if (!trace_path.empty()) {
    std::ofstream file(trace_path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + trace_path);
    obs::write_chrome_trace(file, sink);
    out << "trace: " << sink.event_count() << " events across "
        << sink.lane_count() << " lanes -> " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    const auto snap = registry.snapshot();
    std::ofstream file(metrics_path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + metrics_path);
    obs::write_metrics_text(file, snap);
    out << "metrics: " << snap.size() << " series -> " << metrics_path
        << "\n";
  }

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    // Re-run per node to produce full result rows (all runs) for the CSV.
    std::vector<GpuRunResult> rows;
    for (int node = 0; node < cluster.node_count(); ++node) {
      for (int run = 0; run < cfg.runs_per_gpu; ++run) {
        for (auto& r :
             run_on_node(cluster, node, workload, run, cfg.run_options)) {
          rows.push_back(std::move(r));
        }
      }
    }
    std::ofstream file(out_path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + out_path);
    export_results_csv(file, cluster.name(), cluster.locations(), rows);
    out << "wrote " << rows.size() << " rows to " << out_path << "\n";
  }
  return 0;
}

/// Parses a --shard-budget value: "unlimited", or a byte count with an
/// optional K/M/G (binary) suffix, e.g. "4M".
std::uint64_t parse_shard_budget(const std::string& text) {
  if (text == "unlimited") return kUnlimitedShardBudget;
  std::string digits = text;
  std::uint64_t scale = 1;
  if (!digits.empty()) {
    const char suffix = digits.back();
    if (suffix == 'K' || suffix == 'k') scale = 1ull << 10;
    if (suffix == 'M' || suffix == 'm') scale = 1ull << 20;
    if (suffix == 'G' || suffix == 'g') scale = 1ull << 30;
    if (scale != 1) digits.pop_back();
  }
  long long value = 0;
  GPUVAR_REQUIRE_MSG(parse_int(digits, value) && value >= 0,
                     "bad --shard-budget '" + text +
                         "' (want BYTES, BYTES with K/M/G, or 'unlimited')");
  // The scaled product must fit in 64 bits: a wrapped value would
  // silently become an arbitrary small (or effectively unlimited)
  // budget instead of the error the user needs to see.
  GPUVAR_REQUIRE_MSG(static_cast<std::uint64_t>(value) <=
                         ~std::uint64_t{0} / scale,
                     "--shard-budget '" + text +
                         "' overflows a 64-bit byte count");
  return static_cast<std::uint64_t>(value) * scale;
}

/// "out.csv" + job "day-3" -> "out-day-3.csv" (sweep artifact naming).
std::string job_artifact_path(const std::string& path,
                              const std::string& job) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "-" + job;
  }
  return path.substr(0, dot) + "-" + job + path.substr(dot);
}

void write_campaign_artifacts(const ParsedArgs& args, std::ostream& out,
                              const std::string& cluster_name,
                              const CampaignResult& result,
                              const std::string& job) {
  const auto open_artifact = [&](const std::string& key,
                                 std::ofstream& file) {
    std::string path = args.get(key, "");
    if (path.empty()) return path;
    if (!job.empty()) path = job_artifact_path(path, job);
    file.open(path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + path);
    return path;
  };
  std::ofstream csv_file;
  const std::string csv_path = open_artifact("out", csv_file);
  if (!csv_path.empty()) {
    export_frame_csv(csv_file, cluster_name, result.frame);
    out << "wrote " << result.frame.size() << " rows to " << csv_path
        << "\n";
  }
  std::ofstream report_file;
  const std::string report_path = open_artifact("report", report_file);
  if (!report_path.empty()) {
    MarkdownReportOptions opts;
    opts.title = args.get("title", "Variability campaign report");
    write_markdown_report(report_file, result.frame, opts);
    out << "report -> " << report_path << "\n";
  }
  std::ofstream summary_file;
  const std::string summary_path = open_artifact("summary", summary_file);
  if (!summary_path.empty()) {
    write_campaign_summary(summary_file, result);
    out << "summary -> " << summary_path << "\n";
  }
}

int cmd_run(const ParsedArgs& args, std::ostream& out) {
  const std::string cluster_name = args.get("cluster", "cloudlab");
  std::string workload_name = args.get("workload", "sgemm");
  Cluster cluster(cluster_by_name(cluster_name));
  if (workload_name == "sgemm" && cluster.sku().vendor == Vendor::kAmd) {
    workload_name = "sgemm-amd";
  }
  const int reps = static_cast<int>(args.get_num("reps", 0));
  auto workload = workload_by_name(workload_name, reps);

  ExperimentConfig cfg = default_config(
      cluster, workload, static_cast<int>(args.get_num("runs", 2)));
  cfg.node_coverage = args.get_num("coverage", 1.0);

  CampaignOptions options;
  options.checkpoint_dir = args.get("checkpoint", "");
  options.shard_budget_bytes =
      parse_shard_budget(args.get("shard-budget", "unlimited"));

  const std::string sweep = args.get("sweep", "");
  if (!sweep.empty()) {
    std::vector<CampaignJob> jobs;
    if (sweep == "day") {
      jobs = day_of_week_sweep(cfg);
    } else if (sweep == "power") {
      std::vector<double> caps;
      const std::string caps_text = args.get("power-caps", "");
      GPUVAR_REQUIRE_MSG(!caps_text.empty(),
                         "--sweep power needs --power-caps W1,W2,...");
      std::size_t start = 0;
      while (start <= caps_text.size()) {
        const std::size_t comma = caps_text.find(',', start);
        const std::string item =
            caps_text.substr(start, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - start);
        double w = 0.0;
        GPUVAR_REQUIRE_MSG(parse_double(item, w),
                           "bad power cap '" + item + "' in --power-caps");
        caps.push_back(w);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      jobs = power_cap_sweep(cfg, caps);
    } else {
      throw std::invalid_argument("unknown --sweep '" + sweep +
                                  "', try day or power");
    }
    out << "sweep: " << jobs.size() << " campaigns of " << workload.name
        << " on " << cluster.name() << "\n";
    const auto results = run_campaign_sweep(cluster, jobs, options);
    for (const auto& r : results) {
      out << "  " << r.name << ": " << r.result.frame.size() << " rows, "
          << r.result.gpus_measured << " GPUs";
      if (r.result.stats.buckets_restored > 0) {
        out << " (" << r.result.stats.buckets_restored
            << " buckets restored from checkpoint)";
      }
      out << "\n";
      write_campaign_artifacts(args, out, cluster.name(), r.result, r.name);
    }
    return 0;
  }

  out << "campaign: " << workload.name << " on " << cluster.name() << " ("
      << cluster.size() << " GPUs)\n";
  const auto result = run_campaign(cluster, cfg, options);
  out << "rows " << result.frame.size() << ", gpus "
      << result.gpus_measured << ", nodes " << result.nodes_measured
      << "\n";
  if (result.stats.buckets_restored > 0) {
    out << "resumed: " << result.stats.buckets_restored << " of "
        << result.stats.buckets_total << " buckets restored, "
        << result.stats.buckets_run << " run";
    if (result.stats.buckets_rerun_stale > 0) {
      out << " (" << result.stats.buckets_rerun_stale
          << " stale shards re-run)";
    }
    out << "\n";
  }
  write_campaign_artifacts(args, out, cluster.name(), result, "");
  return 0;
}

int cmd_analyze(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "analyze needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  GPUVAR_REQUIRE_MSG(!frame.empty(), "no records in CSV");
  out << "loaded " << frame.size() << " records\n";
  print_section(out, "variability");
  print_variability_table(out, analyze_variability(frame));
  print_section(out, "correlations");
  print_correlation_table(out, correlate_metrics(frame));

  const std::string group = args.get("group", "cabinet");
  const GroupBy g = group == "node"  ? GroupBy::kNode
                    : group == "row" ? GroupBy::kRow
                                     : GroupBy::kCabinet;
  print_section(out, "performance by " + group);
  print_group_boxes(out, frame, Metric::kPerf, g);
  return 0;
}

int cmd_flag(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "flag needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  FlagOptions opts;
  opts.slowdown_temp = Celsius{args.get_num("slowdown-temp", 1e9)};
  print_section(out, "operator early-warning report");
  print_flags(out, flag_anomalies(frame, opts));
  return 0;
}

int cmd_project(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "project needs a CSV path");
  const auto target = static_cast<std::size_t>(args.get_num("target", 0));
  GPUVAR_REQUIRE_MSG(target >= 2, "project needs --target N");
  const auto frame = load_frame(args.positional.front());
  const auto proj = project_to_cluster_size(frame, target);
  out << "measured variation at " << proj.source_gpus
      << " GPUs: " << proj.source_variation_pct << "%\n"
      << "projected variation at " << proj.target_gpus
      << " GPUs: " << proj.projected_variation_pct << "%\n";
  return 0;
}

int cmd_report(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "report needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  MarkdownReportOptions opts;
  opts.title = args.get("title", "Variability campaign report");
  opts.slowdown_temp = Celsius{args.get_num("slowdown-temp", 1e9)};
  write_markdown_report(out, frame, opts);
  return 0;
}

int cmd_compare(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(args.positional.size() >= 2,
                     "compare needs BEFORE.csv AFTER.csv");
  const auto before = load_frame(args.positional[0]);
  const auto after = load_frame(args.positional[1]);
  const auto cmp = compare_campaigns(before, after);
  out << "matched " << cmp.matched_gpus << " GPUs (" << cmp.only_before
      << " only-before, " << cmp.only_after << " only-after)\n"
      << "population shift: " << cmp.median_delta_pct << "% (noise floor "
      << cmp.noise_floor_pct << "%)\n";
  if (cmp.significant.empty()) {
    out << "no significant per-GPU changes\n";
  }
  for (const auto& d : cmp.significant) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %+7.2f%%  (%.0f -> %.0f ms, %.0f -> %.0f W, "
                  "%.0f -> %.0f C)\n",
                  d.name.c_str(), d.delta_pct, d.before_ms, d.after_ms,
                  d.before_power_w, d.after_power_w, d.before_temp_c,
                  d.after_temp_c);
    out << buf;
  }
  return 0;
}

int cmd_drift(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "drift needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  // Drift needs a history: at least one GPU with multiple runs.
  bool has_history = false;
  const auto groups = group_rows_by_gpu(frame);
  for (std::uint32_t id : groups.order) {
    if (groups.offsets[id + 1] - groups.offsets[id] >= 2) has_history = true;
  }
  GPUVAR_REQUIRE_MSG(has_history,
                     "drift needs repeated runs per GPU (a history)");
  out << "run noise sigma: " << estimate_run_noise_ms(frame) << " ms\n";
  const auto flags = detect_performance_drift(frame);
  if (flags.empty()) {
    out << "no drift detected\n";
  }
  for (const auto& f : flags) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  DRIFT %-20s %+6.2f%% over %d runs (%.1f sigmas)\n",
                  f.name.c_str(), f.drift_pct, f.runs, f.noise_sigmas);
    out << buf;
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    if (args.empty()) {
      usage(err);
      return 2;
    }
    const std::string& cmd = args.front();
    const auto parsed = parse(args, 1);
    if (cmd == "clusters") {
      for (const auto& e : cluster_registry()) {
        if (!e.hidden) out << e.name << "\t" << e.description << "\n";
      }
      return 0;
    }
    if (cmd == "workloads") {
      for (const auto& e : workload_registry()) {
        if (!e.hidden) out << e.name << "\t" << e.description << "\n";
      }
      return 0;
    }
    if (cmd == "simulate") return cmd_simulate(parsed, out);
    if (cmd == "run") return cmd_run(parsed, out);
    if (cmd == "analyze") return cmd_analyze(parsed, out);
    if (cmd == "flag") return cmd_flag(parsed, out);
    if (cmd == "project") return cmd_project(parsed, out);
    if (cmd == "report") return cmd_report(parsed, out);
    if (cmd == "compare") return cmd_compare(parsed, out);
    if (cmd == "drift") return cmd_drift(parsed, out);
    err << "unknown command: " << cmd << "\n";
    usage(err);
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace gpuvar::cli
