#include "core/cli.hpp"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/bytesize.hpp"
#include "common/numfmt.hpp"
#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/flagging.hpp"
#include "core/compare.hpp"
#include "core/drift.hpp"
#include "core/markdown_report.hpp"
#include "core/projection.hpp"
#include "core/report.hpp"
#include "core/variability.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/export.hpp"
#include "workloads/runner.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/correlate.hpp"
#include "core/user_impact.hpp"
#include "gpu/sku.hpp"
#include "query/dataset.hpp"
#include "query/source.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"
#include "telemetry/run_result.hpp"
#include "workloads/workload.hpp"

namespace gpuvar::cli {

namespace {

constexpr ClusterEntry kClusters[] = {
    {"cloudlab", "NSF CloudLab, 8x V100 SXM2 (the paper's testbed)", false,
     +[] { return cloudlab_spec(); }},
    {"longhorn", "TACC Longhorn, 416x V100, air-cooled", false,
     +[] { return longhorn_spec(); }},
    {"frontera", "TACC Frontera RTX partition", false,
     +[] { return frontera_spec(); }},
    {"vortex", "LLNL Vortex, V100, water-cooled", false,
     +[] { return vortex_spec(); }},
    {"summit", "ORNL Summit sample (2 nodes/column)", false,
     +[] { return summit_spec(0x5077, 8, 29, 2, 6); }},
    {"summit-full", "ORNL Summit at full scale (18 nodes/column)", true,
     +[] { return summit_spec(0x5077, 8, 29, 18, 6); }},
    {"corona", "LLNL Corona, AMD MI60", false, +[] { return corona_spec(); }},
};

constexpr WorkloadEntry kWorkloads[] = {
    {"sgemm", "dense matrix multiply, compute-bound", false, 100,
     +[](int it) { return sgemm_workload(25536, it); }},
    {"sgemm-amd", "SGEMM sized for MI60 memory", true, 100,
     +[](int it) { return sgemm_workload(24576, it); }},
    {"resnet-multi", "ResNet-50 training, all GPUs per node", false, 500,
     +[](int it) { return resnet50_multi_workload(it); }},
    {"resnet-single", "ResNet-50 training, one GPU", false, 500,
     +[](int it) { return resnet50_single_workload(it); }},
    {"bert", "BERT fine-tuning", false, 250,
     +[](int it) { return bert_workload(it); }},
    {"lammps", "LAMMPS molecular dynamics", false, 10,
     +[](int it) { return lammps_workload(it); }},
    {"pagerank", "PageRank, memory-bound", false, 50,
     +[](int it) { return pagerank_workload(it); }},
};

/// "try one of a, b, c" suffix for unknown-name errors, from the
/// visible rows of either registry.
template <typename Entry>
std::string try_one_of(std::span<const Entry> entries) {
  std::string out = ", try one of ";
  bool first = true;
  for (const auto& e : entries) {
    if (e.hidden) continue;
    if (!first) out += ", ";
    out += e.name;
    first = false;
  }
  return out;
}

}  // namespace

std::span<const ClusterEntry> cluster_registry() { return kClusters; }
std::span<const WorkloadEntry> workload_registry() { return kWorkloads; }

ClusterSpec cluster_by_name(const std::string& name) {
  for (const auto& e : kClusters) {
    if (name == e.name) return e.make();
  }
  throw std::invalid_argument("unknown cluster: " + name +
                              try_one_of(cluster_registry()));
}

WorkloadSpec workload_by_name(const std::string& name, int iterations) {
  for (const auto& e : kWorkloads) {
    if (name == e.name) {
      return e.make(iterations > 0 ? iterations : e.default_iterations);
    }
  }
  throw std::invalid_argument("unknown workload: " + name +
                              try_one_of(workload_registry()));
}

namespace {

// ---------------------------------------------------------------------------
// Per-command flag tables. Every flag a command accepts appears here
// exactly once; parse() rejects anything else with a suggestion list
// and usage() renders these same rows, so the tables cannot drift from
// the behavior.

constexpr FlagSpec kSimulateFlags[] = {
    {"cluster", "NAME", "cluster model (default cloudlab)"},
    {"workload", "NAME", "workload model (default sgemm)"},
    {"runs", "N", "runs per GPU"},
    {"reps", "N", "iteration/repetition override"},
    {"coverage", "F", "fraction of nodes measured"},
    {"power-limit", "W", "power cap override"},
    {"out", "FILE", "write a results CSV"},
    {"trace", "FILE", "write a Chrome trace"},
    {"metrics", "FILE", "write a metrics dump"},
};

constexpr FlagSpec kRunFlags[] = {
    {"cluster", "NAME", "cluster model (default cloudlab)"},
    {"workload", "NAME", "workload model (default sgemm)"},
    {"runs", "N", "runs per GPU"},
    {"reps", "N", "iteration/repetition override"},
    {"coverage", "F", "fraction of nodes measured"},
    {"checkpoint", "DIR", "checkpoint/resume campaign state here"},
    {"shard-budget", "BYTES[K|M|G]|unlimited",
     "in-memory frame budget before spilling"},
    {"sweep", "day|power", "run a campaign sweep"},
    {"power-caps", "W1,W2,...", "cap list for --sweep power"},
    {"out", "FILE.csv", "write a results CSV"},
    {"report", "FILE.md", "write a markdown report"},
    {"summary", "FILE", "write a campaign summary"},
    {"title", "T", "report title"},
};

constexpr FlagSpec kAnalyzeFlags[] = {
    {"group", "cabinet|node|row", "breakdown grouping (default cabinet)"},
};

constexpr FlagSpec kFlagFlags[] = {
    {"slowdown-temp", "T", "SKU thermal-slowdown threshold, Celsius"},
};

constexpr FlagSpec kProjectFlags[] = {
    {"target", "N", "projected cluster size (required)"},
};

constexpr FlagSpec kReportFlags[] = {
    {"title", "T", "report title"},
    {"slowdown-temp", "T", "SKU thermal-slowdown threshold, Celsius"},
};

constexpr FlagSpec kQueryFlags[] = {
    {"analysis", "NAME",
     "variability|correlate|flags|drift|impact|compare (default variability)"},
    {"where", "F=LO..HI,...",
     "row filter on node/gpu/day/cabinet/row/col ranges"},
    {"cache-budget", "BYTES[K|M|G]|unlimited",
     "decoded-shard cache budget (default unlimited)"},
    {"threads", "N", "scan threads (default: shared pool)"},
    {"no-pushdown", nullptr, "scan every shard (disable header pushdown)"},
    {"materialize", nullptr,
     "merge the full frame first (reference path for byte-comparison)"},
    {"against", "DIR", "second checkpoint for --analysis compare"},
};

struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const {
    return options.find(key) != options.end();
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    double v = 0.0;
    GPUVAR_REQUIRE_MSG(parse_double(it->second, v),
                       "not a number: '" + it->second + "' for --" + key);
    return v;
  }
};

/// ", try one of --a, --b" over a command's flag table; a takes-no-flags
/// note when the table is empty.
std::string try_one_of_flags(const CommandSpec& cmd) {
  if (cmd.flags.empty()) {
    return std::string("; '") + cmd.name + "' takes no flags";
  }
  std::string out = ", try one of ";
  bool first = true;
  for (const auto& f : cmd.flags) {
    if (!first) out += ", ";
    out += "--";
    out += f.name;
    first = false;
  }
  return out;
}

/// Splits argv after the command name into positionals and flags,
/// validated against the command's flag table.
ParsedArgs parse(const std::vector<std::string>& args, std::size_t from,
                 const CommandSpec& cmd) {
  ParsedArgs out;
  for (std::size_t i = from; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      out.positional.push_back(a);
      continue;
    }
    const std::string key = a.substr(2);
    const FlagSpec* spec = nullptr;
    for (const auto& f : cmd.flags) {
      if (key == f.name) spec = &f;
    }
    if (spec == nullptr) {
      throw std::invalid_argument("unknown flag: " + a + " for '" +
                                  cmd.name + "'" + try_one_of_flags(cmd));
    }
    if (spec->value_hint == nullptr) {
      out.options[key] = "";
      continue;
    }
    GPUVAR_REQUIRE_MSG(i + 1 < args.size(), "missing value for " + a);
    out.options[key] = args[++i];
  }
  return out;
}

/// Renders the usage text from the command table: one wrapped line per
/// command, flags in table order.
void usage(std::ostream& err) {
  err << "usage:\n";
  for (const auto& cmd : command_registry()) {
    std::string line = std::string("  gpuvar ") + cmd.name;
    if (cmd.args_hint[0] != '\0') {
      line += ' ';
      line += cmd.args_hint;
    }
    const std::string indent(line.size() > 24 ? 14 : line.size() + 1, ' ');
    for (const auto& f : cmd.flags) {
      std::string item = std::string(" [--") + f.name;
      if (f.value_hint != nullptr) {
        item += ' ';
        item += f.value_hint;
      }
      item += ']';
      if (line.size() + item.size() > 78) {
        err << line << "\n";
        line = indent;
      }
      line += item;
    }
    err << line << "\n";
  }
}

RecordFrame load_frame(const std::string& path) {
  std::ifstream in(path);
  GPUVAR_REQUIRE_MSG(in.good(), "cannot open " + path);
  return import_results_frame(in);
}

int cmd_clusters(const ParsedArgs&, std::ostream& out) {
  for (const auto& e : cluster_registry()) {
    if (!e.hidden) out << e.name << "\t" << e.description << "\n";
  }
  return 0;
}

int cmd_workloads(const ParsedArgs&, std::ostream& out) {
  for (const auto& e : workload_registry()) {
    if (!e.hidden) out << e.name << "\t" << e.description << "\n";
  }
  return 0;
}

int cmd_simulate(const ParsedArgs& args, std::ostream& out) {
  // Observability sinks go in before the cluster is built so fault
  // injections during construction land in the trace too.
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  obs::TraceSink sink;
  obs::Registry registry;
  std::optional<obs::ScopedTrace> trace_guard;
  std::optional<obs::ScopedMetrics> metrics_guard;
  if (!trace_path.empty()) trace_guard.emplace(&sink);
  if (!metrics_path.empty()) metrics_guard.emplace(&registry);
  obs::LaneScope campaign_lane(0, "campaign");

  const std::string cluster_name = args.get("cluster", "cloudlab");
  std::string workload_name = args.get("workload", "sgemm");
  Cluster cluster(cluster_by_name(cluster_name));
  if (workload_name == "sgemm" && cluster.sku().vendor == Vendor::kAmd) {
    workload_name = "sgemm-amd";
  }
  const int reps = static_cast<int>(args.get_num("reps", 0));
  auto workload = workload_by_name(workload_name, reps);

  ExperimentConfig cfg = default_config(
      cluster, workload, static_cast<int>(args.get_num("runs", 2)));
  cfg.node_coverage = args.get_num("coverage", 1.0);
  cfg.run_options.power_limit_override = Watts{args.get_num("power-limit", 0.0)};

  out << "simulating " << workload.name << " on " << cluster.name() << " ("
      << cluster.size() << " GPUs)...\n";
  const auto result = run_experiment(cluster, cfg);
  print_section(out, "variability");
  print_variability_table(out, analyze_variability(result.frame));

  if (!trace_path.empty()) {
    std::ofstream file(trace_path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + trace_path);
    obs::write_chrome_trace(file, sink);
    out << "trace: " << sink.event_count() << " events across "
        << sink.lane_count() << " lanes -> " << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    const auto snap = registry.snapshot();
    std::ofstream file(metrics_path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + metrics_path);
    obs::write_metrics_text(file, snap);
    out << "metrics: " << snap.size() << " series -> " << metrics_path
        << "\n";
  }

  const std::string out_path = args.get("out", "");
  if (!out_path.empty()) {
    // Re-run per node to produce full result rows (all runs) for the CSV.
    std::vector<GpuRunResult> rows;
    for (int node = 0; node < cluster.node_count(); ++node) {
      for (int run = 0; run < cfg.runs_per_gpu; ++run) {
        for (auto& r :
             run_on_node(cluster, node, workload, run, cfg.run_options)) {
          rows.push_back(std::move(r));
        }
      }
    }
    std::ofstream file(out_path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + out_path);
    export_results_csv(file, cluster.name(), cluster.locations(), rows);
    out << "wrote " << rows.size() << " rows to " << out_path << "\n";
  }
  return 0;
}

/// "out.csv" + job "day-3" -> "out-day-3.csv" (sweep artifact naming).
std::string job_artifact_path(const std::string& path,
                              const std::string& job) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "-" + job;
  }
  return path.substr(0, dot) + "-" + job + path.substr(dot);
}

void write_campaign_artifacts(const ParsedArgs& args, std::ostream& out,
                              const std::string& cluster_name,
                              const CampaignResult& result,
                              const std::string& job) {
  const auto open_artifact = [&](const std::string& key,
                                 std::ofstream& file) {
    std::string path = args.get(key, "");
    if (path.empty()) return path;
    if (!job.empty()) path = job_artifact_path(path, job);
    file.open(path);
    GPUVAR_REQUIRE_MSG(file.good(), "cannot write " + path);
    return path;
  };
  std::ofstream csv_file;
  const std::string csv_path = open_artifact("out", csv_file);
  if (!csv_path.empty()) {
    export_frame_csv(csv_file, cluster_name, result.frame);
    out << "wrote " << result.frame.size() << " rows to " << csv_path
        << "\n";
  }
  std::ofstream report_file;
  const std::string report_path = open_artifact("report", report_file);
  if (!report_path.empty()) {
    MarkdownReportOptions opts;
    opts.title = args.get("title", "Variability campaign report");
    write_markdown_report(report_file, result.frame, opts);
    out << "report -> " << report_path << "\n";
  }
  std::ofstream summary_file;
  const std::string summary_path = open_artifact("summary", summary_file);
  if (!summary_path.empty()) {
    write_campaign_summary(summary_file, result);
    out << "summary -> " << summary_path << "\n";
  }
}

int cmd_run(const ParsedArgs& args, std::ostream& out) {
  const std::string cluster_name = args.get("cluster", "cloudlab");
  std::string workload_name = args.get("workload", "sgemm");
  Cluster cluster(cluster_by_name(cluster_name));
  if (workload_name == "sgemm" && cluster.sku().vendor == Vendor::kAmd) {
    workload_name = "sgemm-amd";
  }
  const int reps = static_cast<int>(args.get_num("reps", 0));
  auto workload = workload_by_name(workload_name, reps);

  ExperimentConfig cfg = default_config(
      cluster, workload, static_cast<int>(args.get_num("runs", 2)));
  cfg.node_coverage = args.get_num("coverage", 1.0);

  CampaignOptions options;
  options.checkpoint_dir = args.get("checkpoint", "");
  options.shard_budget_bytes =
      parse_byte_size(args.get("shard-budget", "unlimited"), "--shard-budget");

  const std::string sweep = args.get("sweep", "");
  if (!sweep.empty()) {
    std::vector<CampaignJob> jobs;
    if (sweep == "day") {
      jobs = day_of_week_sweep(cfg);
    } else if (sweep == "power") {
      std::vector<double> caps;
      const std::string caps_text = args.get("power-caps", "");
      GPUVAR_REQUIRE_MSG(!caps_text.empty(),
                         "--sweep power needs --power-caps W1,W2,...");
      std::size_t start = 0;
      while (start <= caps_text.size()) {
        const std::size_t comma = caps_text.find(',', start);
        const std::string item =
            caps_text.substr(start, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - start);
        double w = 0.0;
        GPUVAR_REQUIRE_MSG(parse_double(item, w),
                           "bad power cap '" + item + "' in --power-caps");
        caps.push_back(w);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      jobs = power_cap_sweep(cfg, caps);
    } else {
      throw std::invalid_argument("unknown --sweep '" + sweep +
                                  "', try day or power");
    }
    out << "sweep: " << jobs.size() << " campaigns of " << workload.name
        << " on " << cluster.name() << "\n";
    const auto results = run_campaign_sweep(cluster, jobs, options);
    for (const auto& r : results) {
      out << "  " << r.name << ": " << r.result.frame.size() << " rows, "
          << r.result.gpus_measured << " GPUs";
      if (r.result.stats.buckets_restored > 0) {
        out << " (" << r.result.stats.buckets_restored
            << " buckets restored from checkpoint)";
      }
      out << "\n";
      write_campaign_artifacts(args, out, cluster.name(), r.result, r.name);
    }
    return 0;
  }

  out << "campaign: " << workload.name << " on " << cluster.name() << " ("
      << cluster.size() << " GPUs)\n";
  const auto result = run_campaign(cluster, cfg, options);
  out << "rows " << result.frame.size() << ", gpus "
      << result.gpus_measured << ", nodes " << result.nodes_measured
      << "\n";
  if (result.stats.buckets_restored > 0) {
    out << "resumed: " << result.stats.buckets_restored << " of "
        << result.stats.buckets_total << " buckets restored, "
        << result.stats.buckets_run << " run";
    if (result.stats.buckets_rerun_stale > 0) {
      out << " (" << result.stats.buckets_rerun_stale
          << " stale shards re-run)";
    }
    out << "\n";
  }
  write_campaign_artifacts(args, out, cluster.name(), result, "");
  return 0;
}

int cmd_analyze(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "analyze needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  GPUVAR_REQUIRE_MSG(!frame.empty(), "no records in CSV");
  out << "loaded " << frame.size() << " records\n";
  print_section(out, "variability");
  print_variability_table(out, analyze_variability(frame));
  print_section(out, "correlations");
  print_correlation_table(out, correlate_metrics(frame));

  const std::string group = args.get("group", "cabinet");
  const GroupBy g = group == "node"  ? GroupBy::kNode
                    : group == "row" ? GroupBy::kRow
                                     : GroupBy::kCabinet;
  print_section(out, "performance by " + group);
  print_group_boxes(out, frame, Metric::kPerf, g);
  return 0;
}

int cmd_flag(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "flag needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  FlagOptions opts;
  opts.slowdown_temp = Celsius{args.get_num("slowdown-temp", 1e9)};
  print_section(out, "operator early-warning report");
  print_flags(out, flag_anomalies(frame, opts));
  return 0;
}

int cmd_project(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "project needs a CSV path");
  const auto target = static_cast<std::size_t>(args.get_num("target", 0));
  GPUVAR_REQUIRE_MSG(target >= 2, "project needs --target N");
  const auto frame = load_frame(args.positional.front());
  const auto proj = project_to_cluster_size(frame, target);
  out << "measured variation at " << proj.source_gpus
      << " GPUs: " << proj.source_variation_pct << "%\n"
      << "projected variation at " << proj.target_gpus
      << " GPUs: " << proj.projected_variation_pct << "%\n";
  return 0;
}

int cmd_report(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "report needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  MarkdownReportOptions opts;
  opts.title = args.get("title", "Variability campaign report");
  opts.slowdown_temp = Celsius{args.get_num("slowdown-temp", 1e9)};
  write_markdown_report(out, frame, opts);
  return 0;
}

void print_comparison(std::ostream& out, const CampaignComparison& cmp) {
  out << "matched " << cmp.matched_gpus << " GPUs (" << cmp.only_before
      << " only-before, " << cmp.only_after << " only-after)\n"
      << "population shift: " << cmp.median_delta_pct << "% (noise floor "
      << cmp.noise_floor_pct << "%)\n";
  if (cmp.significant.empty()) {
    out << "no significant per-GPU changes\n";
  }
  for (const auto& d : cmp.significant) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %+7.2f%%  (%.0f -> %.0f ms, %.0f -> %.0f W, "
                  "%.0f -> %.0f C)\n",
                  d.name.c_str(), d.delta_pct, d.before_ms, d.after_ms,
                  d.before_power_w, d.after_power_w, d.before_temp_c,
                  d.after_temp_c);
    out << buf;
  }
}

void print_drift(std::ostream& out, const query::Source& source) {
  // Drift needs a history: at least one GPU with multiple runs.
  bool has_history = false;
  const auto groups = query::group_rows_by_gpu(source);
  for (std::uint32_t id : groups.order) {
    if (groups.offsets[id + 1] - groups.offsets[id] >= 2) has_history = true;
  }
  GPUVAR_REQUIRE_MSG(has_history,
                     "drift needs repeated runs per GPU (a history)");
  out << "run noise sigma: " << estimate_run_noise_ms(source) << " ms\n";
  const auto flags = analyze_drift(source);
  if (flags.empty()) {
    out << "no drift detected\n";
  }
  for (const auto& f : flags) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  DRIFT %-20s %+6.2f%% over %d runs (%.1f sigmas)\n",
                  f.name.c_str(), f.drift_pct, f.runs, f.noise_sigmas);
    out << buf;
  }
}

int cmd_compare(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(args.positional.size() >= 2,
                     "compare needs BEFORE.csv AFTER.csv");
  const auto before = load_frame(args.positional[0]);
  const auto after = load_frame(args.positional[1]);
  print_comparison(out, compare_campaigns(before, after));
  return 0;
}

int cmd_drift(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(), "drift needs a CSV path");
  const auto frame = load_frame(args.positional.front());
  print_drift(out, query::Source(frame));
  return 0;
}

/// Parses a --where value: comma-separated FIELD=RANGE terms, RANGE
/// being "N", "LO..HI", "LO.." or "..HI" (inclusive bounds).
query::Predicate parse_predicate(const std::string& text) {
  query::Predicate where;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string term =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    const std::size_t eq = term.find('=');
    GPUVAR_REQUIRE_MSG(eq != std::string::npos,
                       "bad --where term '" + term + "' (want FIELD=LO..HI)");
    const std::string field = term.substr(0, eq);
    const std::string range = term.substr(eq + 1);
    query::FieldRange* r = nullptr;
    if (field == "node") r = &where.node;
    if (field == "gpu") r = &where.gpu_index;
    if (field == "day") r = &where.day;
    if (field == "cabinet") r = &where.cabinet;
    if (field == "row") r = &where.row;
    if (field == "col") r = &where.column;
    GPUVAR_REQUIRE_MSG(r != nullptr,
                       "unknown --where field '" + field +
                           "', try one of node, gpu, day, cabinet, row, col");
    const auto bound = [&](const std::string& s) {
      long long v = 0;
      GPUVAR_REQUIRE_MSG(parse_int(s, v),
                         "bad --where range '" + range + "' for " + field);
      return static_cast<std::int64_t>(v);
    };
    const std::size_t dots = range.find("..");
    if (dots == std::string::npos) {
      r->lo = r->hi = bound(range);
    } else {
      const std::string lo = range.substr(0, dots);
      const std::string hi = range.substr(dots + 2);
      if (!lo.empty()) r->lo = bound(lo);
      if (!hi.empty()) r->hi = bound(hi);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return where;
}

/// The --materialize reference path: merge the whole store into one
/// frame, then apply the predicate row-by-row with frame.select. The
/// streaming path must be byte-identical to this (ci.sh query-smoke
/// compares the two outputs verbatim).
RecordFrame materialize_where(const query::Dataset& dataset,
                              const query::Predicate& where) {
  RecordFrame frame = dataset.materialize();
  if (where.is_all()) return frame;
  const auto ids = frame.gpu_ids();
  const auto days = frame.days_of_week();
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    if (where.matches(frame.gpu(ids[i]), days[i])) rows.push_back(i);
  }
  return frame.select(rows);
}

void run_query_analysis(const ParsedArgs& args, std::ostream& out,
                        const query::Source& source,
                        const query::Source* against) {
  const std::string analysis = args.get("analysis", "variability");
  GPUVAR_REQUIRE_MSG(!source.empty(), "no rows match the --where filter");
  out << "rows matched: " << source.size() << "\n";
  if (analysis == "variability") {
    print_section(out, "variability");
    print_variability_table(out, analyze_variability(source));
    return;
  }
  if (analysis == "correlate") {
    print_section(out, "correlations");
    print_correlation_table(out, analyze_correlation(source));
    return;
  }
  if (analysis == "flags") {
    print_section(out, "operator early-warning report");
    print_flags(out, analyze_flags(source));
    return;
  }
  if (analysis == "drift") {
    print_drift(out, source);
    return;
  }
  if (analysis == "impact") {
    print_section(out, "user impact");
    for (const auto& ji : analyze_user_impact(source)) {
      char buf[120];
      std::snprintf(buf, sizeof(buf),
                    "  %2d-GPU jobs: expected %.3fx, p95 %.3fx, "
                    "P(any slow) %.2f\n",
                    ji.gpus_per_job, ji.expected_slowdown, ji.p95_slowdown,
                    ji.p_any_slow);
      out << buf;
    }
    return;
  }
  if (analysis == "compare") {
    GPUVAR_REQUIRE_MSG(against != nullptr,
                       "--analysis compare needs --against DIR");
    GPUVAR_REQUIRE_MSG(!against->empty(),
                       "no rows match the --where filter in --against");
    print_comparison(out, analyze_compare(source, *against));
    return;
  }
  throw std::invalid_argument("unknown --analysis '" + analysis +
                              "', try one of variability, correlate, flags, "
                              "drift, impact, compare");
}

int cmd_query(const ParsedArgs& args, std::ostream& out) {
  GPUVAR_REQUIRE_MSG(!args.positional.empty(),
                     "query needs a checkpoint directory");
  query::DatasetOptions dopts;
  dopts.cache_budget_bytes =
      parse_byte_size(args.get("cache-budget", "unlimited"), "--cache-budget");
  dopts.pushdown = !args.has("no-pushdown");
  std::optional<ThreadPool> pool;
  const int threads = static_cast<int>(args.get_num("threads", 0));
  if (threads > 0) {
    pool.emplace(static_cast<std::size_t>(threads));
    dopts.pool = &*pool;
  }
  const query::Predicate where = parse_predicate(args.get("where", ""));

  const auto dataset = query::Dataset::open(args.positional.front(), dopts);
  out << "dataset: " << dataset.shards().size() << " shards, "
      << dataset.total_rows() << " rows"
      << (dataset.complete() ? "" : " (incomplete campaign)") << "\n";

  std::optional<query::Dataset> against_ds;
  const std::string against_dir = args.get("against", "");
  if (!against_dir.empty()) {
    against_ds.emplace(query::Dataset::open(against_dir, dopts));
  }

  // The streaming path and the --materialize reference path must print
  // byte-identical analysis output; only the source construction
  // differs.
  if (args.has("materialize")) {
    const RecordFrame frame = materialize_where(dataset, where);
    std::optional<RecordFrame> against_frame;
    std::optional<query::Source> against_src;
    if (against_ds) {
      against_frame.emplace(materialize_where(*against_ds, where));
      against_src.emplace(*against_frame);
    }
    run_query_analysis(args, out, query::Source(frame),
                       against_src ? &*against_src : nullptr);
    return 0;
  }
  std::optional<query::Source> against_src;
  if (against_ds) against_src.emplace(*against_ds, where);
  run_query_analysis(args, out, query::Source(dataset, where),
                     against_src ? &*against_src : nullptr);
  return 0;
}

/// The command registry: one row per subcommand, handlers bound to the
/// same specs the usage text and flag validation render from.
struct CommandEntry {
  CommandSpec spec;
  int (*run)(const ParsedArgs&, std::ostream&);
};

constexpr CommandEntry kCommands[] = {
    {{"clusters", "", "list the built-in cluster models", {}}, cmd_clusters},
    {{"workloads", "", "list the built-in workload models", {}},
     cmd_workloads},
    {{"simulate", "", "run one experiment and summarize it", kSimulateFlags},
     cmd_simulate},
    {{"run", "", "run a checkpointable campaign (sweeps, artifacts)",
      kRunFlags},
     cmd_run},
    {{"analyze", "FILE.csv", "variability + correlation report",
      kAnalyzeFlags},
     cmd_analyze},
    {{"flag", "FILE.csv", "operator early-warning report", kFlagFlags},
     cmd_flag},
    {{"project", "FILE.csv", "scaled-normal cluster-size projection",
      kProjectFlags},
     cmd_project},
    {{"report", "FILE.csv", "markdown campaign report", kReportFlags},
     cmd_report},
    {{"compare", "BEFORE.csv AFTER.csv", "before/after-maintenance deltas",
      {}},
     cmd_compare},
    {{"drift", "FILE.csv", "per-GPU temporal drift detection", {}},
     cmd_drift},
    {{"query", "DIR", "stream an analysis off a checkpointed campaign store",
      kQueryFlags},
     cmd_query},
};

/// Spec-only view of kCommands, materialized once at startup so
/// command_registry can hand out a span over stable storage.
const std::vector<CommandSpec> kCommandSpecs = [] {
  std::vector<CommandSpec> out;
  out.reserve(std::size(kCommands));
  for (const auto& c : kCommands) out.push_back(c.spec);
  return out;
}();

}  // namespace

std::span<const CommandSpec> command_registry() { return kCommandSpecs; }

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  try {
    if (args.empty()) {
      usage(err);
      return 2;
    }
    const std::string& cmd = args.front();
    for (const auto& c : kCommands) {
      if (cmd == c.spec.name) return c.run(parse(args, 1, c.spec), out);
    }
    err << "unknown command: " << cmd << "\n";
    usage(err);
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace gpuvar::cli
