// Variability analysis (§III "IQR & Variability"): box summaries per
// metric, per-group breakdowns (cabinet / row / column / day), and the
// per-GPU run-to-run repeatability of Figure 8.
//
// The main entry point follows the unified analysis signature:
// analyze_variability(source, options) over a query::Source, so the
// same analysis runs on an in-memory RecordFrame or streamed from a
// checkpointed campaign store. The RecordFrame overload is a
// forwarding shim kept for one deprecation cycle.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stats/ascii_plot.hpp"
#include "stats/boxplot.hpp"
#include "telemetry/record.hpp"
namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"
namespace gpuvar::query { class Source; }  // was: #include "query/source.hpp"

namespace gpuvar {

struct MetricVariability {
  stats::BoxSummary box;
  /// The paper's variation: whisker range / median, as a percentage.
  double variation_pct = 0.0;
};

struct VariabilityReport {
  MetricVariability perf;
  MetricVariability freq;
  MetricVariability power;
  MetricVariability temp;
  std::size_t records = 0;
  std::size_t gpus = 0;
};

/// Tunables for analyze_variability. No knobs yet; the struct exists
/// so every analysis shares the analyze_*(source, options) signature
/// and can grow options without breaking call sites.
struct VariabilityOptions {};

/// Full-population variability across all rows of the source.
VariabilityReport analyze_variability(const query::Source& source,
                                      const VariabilityOptions& options = {});

/// Forwarding shim (one deprecation cycle): prefer the Source overload.
// gpuvar-lint: allow(analysis-signature)
VariabilityReport analyze_variability(const RecordFrame& frame);

/// Grouping keys for breakdowns.
enum class GroupBy { kCabinet, kRow, kColumn, kNode, kDayOfWeek };

std::string group_label(GroupBy g, int key);

/// Extracts the group key of a record / of one frame row.
int group_key(const RunRecord& r, GroupBy g);
int group_key(const RecordFrame& frame, std::size_t row, GroupBy g);

/// Metric values split by group (ordered by key), ready for box charts.
std::vector<stats::NamedSeries> series_by_group(const RecordFrame& frame,
                                                Metric metric, GroupBy group);

/// Per-group variability reports.
std::map<int, VariabilityReport> variability_by_group(const RecordFrame& frame,
                                                      GroupBy group);

/// Figure 8: per-GPU run-to-run performance variation, (max-min)/median
/// per GPU, as a percentage. Requires >= 2 runs per GPU (GPUs with fewer
/// are skipped).
struct GpuRepeatability {
  std::size_t gpu_index = 0;
  std::string name;
  int runs = 0;
  double median_perf_ms = 0.0;
  double variation_pct = 0.0;
};

std::vector<GpuRepeatability> per_gpu_repeatability(const RecordFrame& frame);

/// Inter-experiment user impact (§VII): the probability that a job
/// requesting `gpus_per_job` GPUs receives at least one GPU slower than
/// `slowdown_threshold` (fraction above the median, e.g. 0.06 for "6%
/// slower than median").
double slow_assignment_probability(const RecordFrame& frame, int gpus_per_job,
                                   double slowdown_threshold);

}  // namespace gpuvar
