#include "core/user_impact.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "query/source.hpp"
#include "stats/quantile.hpp"
#include "telemetry/frame.hpp"

namespace gpuvar {

namespace {

/// P(all k draws without replacement land among the first i of n sorted
/// values) = C(i,k)/C(n,k), computed for all i in one backward sweep:
/// P_n = 1, P_{i-1} = P_i * (i-k)/i.
std::vector<double> prefix_containment(std::size_t n, std::size_t k) {
  GPUVAR_ASSERT(k >= 1 && k <= n);
  std::vector<double> p(n + 1, 0.0);
  p[n] = 1.0;
  for (std::size_t i = n; i > k; --i) {
    p[i - 1] = p[i] * static_cast<double>(i - k) / static_cast<double>(i);
  }
  // p[i] = 0 for i < k already.
  return p;
}

}  // namespace

JobImpact job_impact(const query::Source& source, int gpus_per_job,
                     double slow_threshold) {
  GPUVAR_REQUIRE(gpus_per_job >= 1);
  GPUVAR_REQUIRE(slow_threshold > 0.0);
  const auto gpus = per_gpu_medians(source);
  const auto n = gpus.size();
  GPUVAR_REQUIRE_MSG(static_cast<std::size_t>(gpus_per_job) <= n,
                     "job wider than the measured population");

  std::vector<double> perf;
  perf.reserve(n);
  for (const auto& g : gpus) perf.push_back(g.perf_ms);
  std::sort(perf.begin(), perf.end());
  // perf was just sorted for the prefix analysis below; cut directly.
  const double med = stats::quantile_sorted(perf, 0.5);
  GPUVAR_REQUIRE(med > 0.0);

  const auto k = static_cast<std::size_t>(gpus_per_job);
  const auto p = prefix_containment(n, k);

  JobImpact impact;
  impact.gpus_per_job = gpus_per_job;

  // E[max] = Σ x_(i) * (P_i - P_{i-1}); P95 = first x_(i) with P_i >= .95.
  double expectation = 0.0;
  double p95 = perf.back();
  bool p95_found = false;
  for (std::size_t i = k; i <= n; ++i) {
    const double mass = p[i] - p[i - 1];
    expectation += perf[i - 1] * mass;
    if (!p95_found && p[i] >= 0.95) {
      p95 = perf[i - 1];
      p95_found = true;
    }
  }
  impact.expected_slowdown = expectation / med;
  impact.p95_slowdown = p95 / med;

  // P(at least one GPU slower than (1 + threshold) * median): count the
  // fast subset m; P(none slow) = C(m,k)/C(n,k) = p_fast[m].
  const double cutoff = med * (1.0 + slow_threshold);
  const auto m = static_cast<std::size_t>(
      std::count_if(perf.begin(), perf.end(),
                    [&](double x) { return x <= cutoff; }));
  impact.p_any_slow = (m >= k) ? 1.0 - p[m] : 1.0;
  return impact;
}

JobImpact job_impact(const RecordFrame& frame, int gpus_per_job,
                     double slow_threshold) {
  return job_impact(query::Source(frame), gpus_per_job, slow_threshold);
}

std::vector<JobImpact> analyze_user_impact(const query::Source& source,
                                           const UserImpactOptions& options) {
  GPUVAR_REQUIRE(options.max_width >= 1);
  std::vector<JobImpact> table;
  for (int k = 1; k <= options.max_width; k *= 2) {
    table.push_back(job_impact(source, k, options.slow_threshold));
  }
  return table;
}

std::vector<JobImpact> impact_table(const RecordFrame& frame, int max_width,
                                    double slow_threshold) {
  UserImpactOptions options;
  options.max_width = max_width;
  options.slow_threshold = slow_threshold;
  return analyze_user_impact(query::Source(frame), options);
}

}  // namespace gpuvar
