// Application classification from profiler counters (§VII
// "Application-aware Frameworks", after Guerreiro et al.): operators can
// classify a workload from its FU/DRAM utilization and stall mix, then
// place it — compute-intensive jobs on low-variation nodes, memory-bound
// jobs on high-variation nodes where they lose almost nothing.
#pragma once

#include <string>

namespace gpuvar { struct ProfilerCounters; }  // was: #include "telemetry/counters.hpp"

namespace gpuvar {

enum class AppClass {
  kComputeBound,
  kMemoryBandwidthBound,
  kMemoryLatencyBound,
  kBalanced,
};

std::string to_string(AppClass c);

AppClass classify_application(const ProfilerCounters& counters);

struct PlacementAdvice {
  AppClass app_class = AppClass::kBalanced;
  /// True if the app can run on high-variation nodes without significant
  /// performance loss (its runtime does not track the SM clock).
  bool tolerates_variable_nodes = false;
  /// Expected sensitivity of runtime to a 1% SM-frequency deficit, in %.
  double frequency_sensitivity_pct = 0.0;
  std::string note;
};

PlacementAdvice advise_placement(const ProfilerCounters& counters);

}  // namespace gpuvar
