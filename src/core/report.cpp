#include "core/report.hpp"

#include <cstdio>

#include "stats/ascii_plot.hpp"
#include "cluster/faults.hpp"
#include "core/correlate.hpp"
#include "core/flagging.hpp"
#include "core/variability.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

void print_section(std::ostream& out, const std::string& title) {
  out << "\n==== " << title << " ====\n";
}

namespace {

void print_metric_row(std::ostream& out, const char* label,
                      const MetricVariability& mv, const char* unit) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-12s median %9.2f %-3s  Q1 %9.2f  Q3 %9.2f  "
                "whiskers [%9.2f, %9.2f]  variation %6.2f%%  outliers %zu\n",
                label, mv.box.median, unit, mv.box.q1, mv.box.q3,
                mv.box.lo_whisker, mv.box.hi_whisker, mv.variation_pct,
                mv.box.outlier_count());
  out << buf;
}

}  // namespace

void print_variability_table(std::ostream& out, const VariabilityReport& r) {
  char head[128];
  std::snprintf(head, sizeof(head), "  records: %zu across %zu GPUs\n",
                r.records, r.gpus);
  out << head;
  print_metric_row(out, "perf", r.perf, "ms");
  print_metric_row(out, "frequency", r.freq, "MHz");
  print_metric_row(out, "power", r.power, "W");
  print_metric_row(out, "temperature", r.temp, "C");
}

void print_correlation_table(std::ostream& out, const CorrelationReport& r) {
  char buf[160];
  for (const auto* c : r.all()) {
    std::snprintf(buf, sizeof(buf),
                  "  rho(%-11s, %-11s) = %+5.2f  (spearman %+5.2f, %s)\n",
                  metric_name(c->y).c_str(), metric_name(c->x).c_str(),
                  c->rho, c->spearman, c->strength.c_str());
    out << buf;
  }
}

void print_group_boxes(std::ostream& out, const RecordFrame& frame,
                       Metric metric, GroupBy group) {
  const auto series = series_by_group(frame, metric, group);
  stats::BoxChartOptions opts;
  opts.unit = metric_unit(metric);
  out << metric_name(metric) << " by group:\n"
      << stats::render_box_chart(series, opts);
}

void print_scatter(std::ostream& out, const RecordFrame& frame, Metric x,
                   Metric y) {
  stats::ScatterOptions opts;
  opts.x_label = metric_name(x) + " (" + metric_unit(x) + ")";
  opts.y_label = metric_name(y) + " (" + metric_unit(y) + ")";
  out << stats::render_scatter(metric_column(frame, x),
                               metric_column(frame, y), opts);
}

void print_flags(std::ostream& out, const FlagReport& report,
                 std::size_t max_gpus) {
  if (report.gpus.empty() && report.cabinets.empty()) {
    out << "  no anomalies flagged\n";
    return;
  }
  std::size_t shown = 0;
  for (const auto& f : report.gpus) {
    if (shown++ >= max_gpus) {
      out << "  ... and " << (report.gpus.size() - max_gpus)
          << " more flagged GPUs\n";
      break;
    }
    out << "  [severity " << f.severity << "] " << f.name << ":";
    for (const auto& r : f.reasons) out << " " << to_string(r) << ";";
    out << "\n";
  }
  for (const auto& c : report.cabinets) {
    out << "  [cabinet " << c.cabinet << "] " << c.note << "\n";
  }
}

}  // namespace gpuvar
