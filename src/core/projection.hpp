// Cluster-size projection (§IV-D): fit a normal distribution to one
// cluster's per-GPU performance and project the variability a cluster of
// a different size would exhibit (the paper projects Longhorn's SGEMM
// spread to 9.4% at Summit scale).
#pragma once

#include <cstddef>

namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"

namespace gpuvar {

struct SizeProjection {
  std::size_t source_gpus = 0;
  std::size_t target_gpus = 0;
  double source_variation_pct = 0.0;     ///< measured (box) variation
  double projected_variation_pct = 0.0;  ///< scaled-normal projection
};

/// Fits per-GPU median performance (box outliers excluded, matching the
/// paper's variance convention) and projects to `target_gpus`.
SizeProjection project_to_cluster_size(const RecordFrame& frame,
                                       std::size_t target_gpus);

}  // namespace gpuvar
