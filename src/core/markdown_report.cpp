#include "core/markdown_report.hpp"

#include <cstdio>

#include "common/require.hpp"
#include "core/correlate.hpp"
#include "stats/bootstrap.hpp"
#include "cluster/faults.hpp"
#include "core/flagging.hpp"
#include "core/variability.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

std::string markdown_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '|') {
      out += "\\|";
    } else if (c == '\n') {
      out += "<br>";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string metric_row(const std::string& label, const MetricVariability& mv,
                       const std::string& unit) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "| %s | %.2f %s | %.2f | %.2f | [%.2f, %.2f] | %.2f%% | %zu |\n",
                label.c_str(), mv.box.median, unit.c_str(), mv.box.q1,
                mv.box.q3, mv.box.lo_whisker, mv.box.hi_whisker,
                mv.variation_pct, mv.box.outlier_count());
  return buf;
}

}  // namespace

std::string markdown_variability_table(const VariabilityReport& report) {
  std::string out =
      "| metric | median | Q1 | Q3 | whiskers | variation | outliers |\n"
      "|---|---|---|---|---|---|---|\n";
  out += metric_row("performance", report.perf, "ms");
  out += metric_row("frequency", report.freq, "MHz");
  out += metric_row("power", report.power, "W");
  out += metric_row("temperature", report.temp, "°C");
  return out;
}

void write_markdown_report(std::ostream& out, const RecordFrame& frame,
                           const MarkdownReportOptions& options) {
  GPUVAR_REQUIRE(!frame.empty());
  const auto report = analyze_variability(frame);

  out << "# " << markdown_escape(options.title) << "\n\n"
      << report.records << " runs across " << report.gpus << " GPUs.\n\n";

  out << "## Variability\n\n" << markdown_variability_table(report) << "\n";

  if (options.bootstrap_resamples > 0 && report.gpus >= 3) {
    const auto gpus = per_gpu_medians(frame);
    std::vector<double> perf;
    for (const auto& g : gpus) perf.push_back(g.perf_ms);
    const auto ci = stats::bootstrap_ci(perf, stats::variation_pct_statistic,
                                        options.bootstrap_resamples, 0.95);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "Headline performance variation: **%.2f%%** "
                  "(95%% bootstrap CI [%.2f%%, %.2f%%]).\n\n",
                  ci.point, ci.lo, ci.hi);
    out << buf;
  }

  out << "## Correlations\n\n"
      << "| pair | Pearson | Spearman | strength |\n|---|---|---|---|\n";
  const auto corr = correlate_metrics(frame);
  for (const auto* c : corr.all()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "| %s vs %s | %+.2f | %+.2f | %s |\n",
                  metric_name(c->y).c_str(), metric_name(c->x).c_str(),
                  c->rho, c->spearman, c->strength.c_str());
    out << buf;
  }
  out << "\n";

  out << "## Per-group breakdown\n\n"
      << "| group | GPUs | perf median (ms) | perf variation | power "
         "outliers |\n|---|---|---|---|---|\n";
  for (const auto& [key, rep] : variability_by_group(frame, options.group)) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "| %s | %zu | %.1f | %.2f%% | %zu |\n",
                  group_label(options.group, key).c_str(), rep.gpus,
                  rep.perf.box.median, rep.perf.variation_pct,
                  rep.power.box.outlier_count());
    out << buf;
  }
  out << "\n";

  if (options.include_flags) {
    out << "## Operator flags\n\n";
    FlagOptions fopts;
    fopts.slowdown_temp = options.slowdown_temp;
    const auto flags = flag_anomalies(frame, fopts);
    if (flags.gpus.empty() && flags.cabinets.empty()) {
      out << "No anomalies flagged.\n";
    } else {
      out << "| GPU | severity | reasons |\n|---|---|---|\n";
      for (const auto& f : flags.gpus) {
        out << "| " << markdown_escape(f.name) << " | ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", f.severity);
        out << buf << " | ";
        for (std::size_t i = 0; i < f.reasons.size(); ++i) {
          if (i) out << "; ";
          out << to_string(f.reasons[i]);
        }
        out << " |\n";
      }
      for (const auto& c : flags.cabinets) {
        out << "\n**Cabinet " << c.cabinet
            << "**: " << markdown_escape(c.note) << "\n";
      }
    }
  }
}

}  // namespace gpuvar
