// Conversion from live runner results to flattened records.
//
// The record types themselves (RunRecord, GpuAggregate, Metric) live in
// telemetry/record.hpp — the telemetry layer owns the interchange schema.
// Only this conversion needs the Cluster (to look up GPU locations), so
// only this header sits in core.
#pragma once

namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
#include "telemetry/record.hpp"
namespace gpuvar { struct GpuRunResult; }  // was: #include "telemetry/run_result.hpp"

namespace gpuvar {

/// Converts a runner result into a record (medians extracted).
RunRecord to_record(const Cluster& cluster, const GpuRunResult& result,
                    int day_of_week = -1);

}  // namespace gpuvar
