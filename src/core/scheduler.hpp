// Variability-aware batch scheduling (§VII "Application-aware
// Frameworks"): profile node quality with a canary, classify applications
// from their counters, and place clock-sensitive jobs on stable nodes
// while memory-bound jobs absorb the variable ones. This module simulates
// whole schedules under three policies so the placement win can be
// quantified as makespan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
#include "core/classify.hpp"
#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/sku.hpp"

namespace gpuvar {

struct SchedulerJob {
  std::string name;
  WorkloadSpec workload;
  int copies = 1;
};

enum class PlacementPolicy {
  kRandom,        ///< variability-oblivious (today's schedulers)
  kFastestFirst,  ///< all jobs prefer the fastest nodes
  kClassAware,    ///< compute-bound -> fast nodes, memory-bound -> slow
};

std::string to_string(PlacementPolicy p);

/// Node quality from a quick SGEMM canary: median settled frequency (the
/// paper's strongest performance predictor). Runs in parallel.
struct NodeQuality {
  int node = 0;
  MegaHertz median_freq{};
  double median_perf_ms = 0.0;
};

std::vector<NodeQuality> profile_node_quality(const Cluster& cluster,
                                              int canary_reps = 4);

struct PlacedJob {
  std::string job;
  int node = 0;
  AppClass app_class = AppClass::kBalanced;
  double wall_ms = 0.0;  ///< simulated wall-clock of the job on that node
};

struct ScheduleOutcome {
  PlacementPolicy policy = PlacementPolicy::kRandom;
  double makespan_ms = 0.0;      ///< max over nodes of their serial queues
  double total_gpu_ms = 0.0;     ///< sum of all job wall-clocks
  std::vector<PlacedJob> placements;
};

/// Classifies a workload from its static kernel mix (time-weighted at the
/// reference clock).
AppClass classify_workload(const GpuSku& sku, const WorkloadSpec& workload);

/// Places every job copy on a node per the policy and simulates each
/// node's queue serially (exclusive allocation, as in the paper).
ScheduleOutcome simulate_schedule(const Cluster& cluster,
                                  const std::vector<SchedulerJob>& jobs,
                                  PlacementPolicy policy,
                                  const std::vector<NodeQuality>& quality,
                                  std::uint64_t seed = 1);

}  // namespace gpuvar
