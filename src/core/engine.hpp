// The campaign engine: a staged, checkpointable pipeline over node jobs.
//
// run_experiment (core/experiment.hpp) collects one cycle in memory; a
// real characterization campaign is days of cycles over tens of
// thousands of GPUs, and it gets killed — by scheduler preemption, by a
// node reboot, by the operator. The engine runs the same node jobs
// through four stages:
//
//   plan         validate the config, sample node allocations, derive
//                the campaign's config hash (the checkpoint identity)
//   resume scan  read the checkpoint manifest, re-validate every shard
//                it lists (missing / truncated / hash-stale shards are
//                demoted to "must re-run"), rewrite the manifest to the
//                surviving entries
//   execute      run the not-yet-done buckets in parallel; each
//                completed bucket is serialized to a FrameShard
//                (telemetry/shard.hpp), logged in the manifest, and —
//                when resident bucket bytes exceed the shard budget —
//                evicted from memory (largest bucket first)
//   merge        concatenate all buckets in bucket-index order, reading
//                evicted or restored buckets back from their shards
//
// Determinism contract: the merged frame (and so every downstream CSV
// / report byte) is identical at any pool size and ANY spill threshold,
// because shards round-trip frames bit-exactly and the merge order is
// bucket index, never completion order. Replaying a killed campaign is
// exact for the same reason every run is: all random draws are keyed by
// (cluster seed, GPU path, run index, salt), never by schedule or by
// which buckets happen to re-run.
//
// Memory contract: with a bounded shard_budget_bytes, resident
// *completed-bucket* bytes never exceed budget + one bucket (the bucket
// that just completed is counted before eviction runs). The engine
// reports the observed peak through the metrics registry
// ("engine.resident_bytes_peak") and in CampaignStats.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "telemetry/frame.hpp"

namespace gpuvar {

class Cluster;

/// shard_budget_bytes value meaning "never evict for memory reasons".
inline constexpr std::uint64_t kUnlimitedShardBudget = ~std::uint64_t{0};

struct CampaignOptions {
  /// Checkpoint directory: shards and the manifest live here. Empty =
  /// purely in-memory campaign (no durability, no spilling).
  std::string checkpoint_dir;
  /// Resident-byte budget for completed buckets. Any bounded value
  /// (including 0: spill everything) requires a checkpoint_dir to spill
  /// into; kUnlimitedShardBudget keeps every bucket resident.
  std::uint64_t shard_budget_bytes = kUnlimitedShardBudget;
};

/// What one engine invocation did (counters for tests, CI and logs).
struct CampaignStats {
  std::size_t buckets_total = 0;     ///< node jobs in the campaign
  std::size_t buckets_run = 0;       ///< executed by this invocation
  std::size_t buckets_restored = 0;  ///< merged from prior-run shards
  /// Manifest entries whose shard was missing, truncated, or failed the
  /// hash check — demoted to re-run during the resume scan.
  std::size_t buckets_rerun_stale = 0;
  std::size_t buckets_spilled = 0;   ///< evictions (schedule-dependent)
  std::uint64_t shard_bytes_written = 0;  ///< by this invocation
  /// Peak resident completed-bucket bytes (<= budget + one bucket).
  std::uint64_t resident_bytes_peak = 0;
  std::uint64_t bucket_bytes_max = 0;
};

struct CampaignResult {
  RecordFrame frame;
  std::size_t gpus_measured = 0;
  std::size_t nodes_measured = 0;
  /// Identity of (cluster, config): the checkpoint compatibility key.
  std::uint64_t config_hash = 0;
  CampaignStats stats;
};

/// Runs (or resumes) one campaign. Degenerate campaigns — zero node
/// coverage or an empty cluster — return an empty frame and never
/// invoke config.progress. Throws std::invalid_argument on a bounded
/// budget without a checkpoint_dir, std::runtime_error on checkpoint
/// I/O failures or a checkpoint_dir recorded by a different campaign.
CampaignResult run_campaign(const Cluster& cluster,
                            const ExperimentConfig& config,
                            const CampaignOptions& options = {});

/// FNV-1a identity of (cluster, config): every field that changes what
/// the campaign would measure. Two configs with equal hashes may share
/// a checkpoint directory; the manifest stores it and refuses to resume
/// under a different one.
std::uint64_t campaign_config_hash(const Cluster& cluster,
                                   const ExperimentConfig& config);

/// Writes the deterministic campaign summary: sorted `key value` lines
/// derived only from the merged result (row count, content hash, ...),
/// never from execution history — an interrupted-then-resumed campaign
/// produces byte-identical summary output to an uninterrupted one.
void write_campaign_summary(std::ostream& out, const CampaignResult& result);

/// One entry of a multi-campaign sweep: a named config variation.
struct CampaignJob {
  std::string name;  ///< checkpoint subdirectory; [a-z0-9-] only
  ExperimentConfig config;
};

/// Jobs "day-0".."day-6": the paper's day-of-week split, one campaign
/// per day tag (each folds its day into the run seeds).
std::vector<CampaignJob> day_of_week_sweep(const ExperimentConfig& base);

/// Jobs "cap-<watts>w", one campaign per power-cap override (the
/// paper's §VI power-cap sensitivity study).
std::vector<CampaignJob> power_cap_sweep(const ExperimentConfig& base,
                                         const std::vector<double>& caps_w);

struct SweepJobResult {
  std::string name;
  CampaignResult result;
};

/// Runs the jobs in order through the engine. With a checkpoint_dir,
/// each job checkpoints into `<dir>/<job name>`; resuming a killed
/// sweep skips completed jobs entirely (their manifests are final) and
/// resumes the interrupted one bucket-by-bucket.
std::vector<SweepJobResult> run_campaign_sweep(
    const Cluster& cluster, const std::vector<CampaignJob>& jobs,
    const CampaignOptions& options = {});

}  // namespace gpuvar
