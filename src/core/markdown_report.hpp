// Markdown campaign reports: one self-contained document per campaign —
// the artifact an operator attaches to a maintenance ticket or a user
// attaches to a reproducibility report. Tables are GitHub-flavoured
// markdown; the content mirrors the paper's per-figure structure
// (variability table, per-group breakdown, correlations, flags).
#pragma once

#include <ostream>
#include <string>

#include "core/variability.hpp"
#include "common/units.hpp"
namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"

namespace gpuvar {

struct MarkdownReportOptions {
  std::string title = "Variability campaign report";
  GroupBy group = GroupBy::kCabinet;
  /// Include the operator flag section (needs the SKU's slowdown temp for
  /// thermal attribution; <= 0 disables that refinement).
  bool include_flags = true;
  Celsius slowdown_temp{1e9};
  /// Bootstrap confidence interval on the headline variation (0 = skip).
  int bootstrap_resamples = 500;
};

/// Writes the full markdown report for one campaign's frame.
void write_markdown_report(std::ostream& out, const RecordFrame& frame,
                           const MarkdownReportOptions& options = {});

/// One markdown table row per metric (exposed for composition/testing).
std::string markdown_variability_table(const VariabilityReport& report);

/// Escapes a string for use inside a markdown table cell.
std::string markdown_escape(const std::string& text);

}  // namespace gpuvar
