#include "core/scheduler.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "stats/kernels.hpp"
#include "telemetry/counters.hpp"
#include "workloads/runner.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/classify.hpp"
#include "gpu/kernel.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

std::string to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kFastestFirst:
      return "fastest-first";
    case PlacementPolicy::kClassAware:
      return "class-aware";
  }
  return "unknown";
}

std::vector<NodeQuality> profile_node_quality(const Cluster& cluster,
                                              int canary_reps) {
  GPUVAR_REQUIRE(canary_reps >= 1);
  const auto canary = sgemm_workload(
      cluster.sku().vendor == Vendor::kAmd ? 24576 : 25536, canary_reps);
  const auto opts = RunOptions::for_sku(cluster.sku());

  std::vector<NodeQuality> quality(
      static_cast<std::size_t>(cluster.node_count()));
  parallel_for(quality.size(), [&](std::size_t ni) {
    const int node = static_cast<int>(ni);
    const auto results = run_on_node(cluster, node, canary, 0, opts);
    std::vector<double> freq, perf;
    for (const auto& r : results) {
      freq.push_back(r.telemetry.freq.median);
      perf.push_back(r.perf_ms);
    }
    quality[ni] = NodeQuality{node,
                              MegaHertz{stats::kernels::median_inplace(freq)},
                              stats::kernels::median_inplace(perf)};
  });
  return quality;
}

AppClass classify_workload(const GpuSku& sku, const WorkloadSpec& workload) {
  const SiliconSample typical;
  CounterAccumulator acc;
  for (const auto& step : workload.iteration) {
    acc.add(step.kernel,
            kernel_time_at(step.kernel, sku, typical, sku.max_mhz) *
                step.count);
  }
  return classify_application(acc.aggregate());
}

namespace {

struct Placement {
  std::size_t job_index = 0;  ///< into the flattened copy list
  int node = 0;
};

/// Flattened copy list with class annotations.
struct FlatJob {
  const SchedulerJob* job = nullptr;
  AppClass cls = AppClass::kBalanced;
  bool clock_sensitive = false;
};

std::vector<int> nodes_best_to_worst(const std::vector<NodeQuality>& q) {
  std::vector<const NodeQuality*> sorted;
  sorted.reserve(q.size());
  for (const auto& n : q) sorted.push_back(&n);
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeQuality* a, const NodeQuality* b) {
              // Frequency descending. Ladder quantization makes exact
              // float ties common, so break them by node id or the
              // ranking would depend on the sort implementation.
              return a->median_freq != b->median_freq
                         ? a->median_freq > b->median_freq
                         : a->node < b->node;
            });
  std::vector<int> out;
  out.reserve(sorted.size());
  for (const auto* n : sorted) out.push_back(n->node);
  return out;
}

}  // namespace

ScheduleOutcome simulate_schedule(const Cluster& cluster,
                                  const std::vector<SchedulerJob>& jobs,
                                  PlacementPolicy policy,
                                  const std::vector<NodeQuality>& quality,
                                  std::uint64_t seed) {
  GPUVAR_REQUIRE(!jobs.empty());
  GPUVAR_REQUIRE(quality.size() ==
                 static_cast<std::size_t>(cluster.node_count()));

  std::vector<FlatJob> flat;
  for (const auto& job : jobs) {
    GPUVAR_REQUIRE(job.copies >= 1);
    job.workload.validate();
    GPUVAR_REQUIRE_MSG(
        job.workload.gpus_per_job <= cluster.gpus_per_node(),
        job.name + ": wider than a node");
    FlatJob fj;
    fj.job = &job;
    fj.cls = classify_workload(cluster.sku(), job.workload);
    fj.clock_sensitive = fj.cls == AppClass::kComputeBound ||
                         fj.cls == AppClass::kBalanced;
    for (int c = 0; c < job.copies; ++c) flat.push_back(fj);
  }

  const auto ranked = nodes_best_to_worst(quality);
  std::vector<Placement> placements(flat.size());

  switch (policy) {
    case PlacementPolicy::kRandom: {
      // Variability-oblivious: spread jobs over nodes in a seeded random
      // order (what a quality-unaware scheduler effectively does).
      Rng rng(seed, "scheduler/random");
      std::vector<int> order(ranked);
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.uniform_index(i)]);
      }
      for (std::size_t j = 0; j < flat.size(); ++j) {
        placements[j] = Placement{j, order[j % order.size()]};
      }
      break;
    }
    case PlacementPolicy::kFastestFirst: {
      for (std::size_t j = 0; j < flat.size(); ++j) {
        placements[j] = Placement{j, ranked[j % ranked.size()]};
      }
      break;
    }
    case PlacementPolicy::kClassAware: {
      // Clock-sensitive jobs take nodes from the fast end; clock-
      // insensitive jobs from the slow end (they lose ~nothing there).
      std::size_t fast_cursor = 0;
      std::size_t slow_cursor = 0;
      for (std::size_t j = 0; j < flat.size(); ++j) {
        if (flat[j].clock_sensitive) {
          placements[j] =
              Placement{j, ranked[fast_cursor++ % ranked.size()]};
        } else {
          placements[j] = Placement{
              j, ranked[ranked.size() - 1 - (slow_cursor++ % ranked.size())]};
        }
      }
      break;
    }
  }

  // Each node executes its queue serially (exclusive allocation).
  std::map<int, std::vector<std::size_t>> queues;
  for (const auto& p : placements) queues[p.node].push_back(p.job_index);

  std::vector<std::pair<int, std::vector<std::size_t>>> queue_list(
      queues.begin(), queues.end());
  std::vector<std::vector<PlacedJob>> results(queue_list.size());
  const auto opts = RunOptions::for_sku(cluster.sku());

  parallel_for(queue_list.size(), [&](std::size_t qi) {
    const auto& [node, queue] = queue_list[qi];
    for (std::size_t pos = 0; pos < queue.size(); ++pos) {
      const FlatJob& fj = flat[queue[pos]];
      const auto run = run_on_node(cluster, node, fj.job->workload,
                                   static_cast<int>(pos), opts);
      // Wall-clock of the job = sum of its iteration durations.
      const double wall = stats::kernels::sum(run.front().iteration_ms);
      results[qi].push_back(
          PlacedJob{fj.job->name, node, fj.cls, wall});
    }
  });

  ScheduleOutcome outcome;
  outcome.policy = policy;
  for (auto& node_jobs : results) {
    double node_total = 0.0;
    for (auto& pj : node_jobs) {
      node_total += pj.wall_ms;
      outcome.total_gpu_ms += pj.wall_ms;
      outcome.placements.push_back(std::move(pj));
    }
    outcome.makespan_ms = std::max(outcome.makespan_ms, node_total);
  }
  return outcome;
}

}  // namespace gpuvar
