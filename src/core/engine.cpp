#include "core/engine.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/allocator.hpp"
#include "cluster/cluster.hpp"
#include "common/binio.hpp"
#include "common/mutex.hpp"
#include "common/numfmt.hpp"
#include "common/require.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "core/experiment.hpp"
#include "core/record.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/shard.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

namespace {

namespace fs = std::filesystem;

// Manifest parsing/rendering lives in telemetry/manifest.hpp, shared
// with the read-only query plane; these aliases keep the engine's
// write-path code in its established vocabulary.
using Manifest = CampaignManifest;
using ManifestEntry = CampaignManifestEntry;
constexpr const char* kManifestName = kCampaignManifestName;
constexpr const char* kMarkerName = kCampaignMarkerName;

/// Serializes one bucket and writes it to its shard file via a
/// temporary sibling + rename, so a crash mid-write can never leave a
/// plausible-looking half shard under the final name.
FrameShardInfo persist_shard(const fs::path& dir, std::size_t bucket_index,
                             const RecordFrame& bucket,
                             std::uint64_t& bytes_written) {
  const fs::path path = dir / campaign_shard_file_name(bucket_index);
  const fs::path tmp = path.string() + ".tmp";
  FrameShardInfo info;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw std::runtime_error("cannot write " + tmp.string());
    }
    info = write_frame_shard(out, bucket,
                             static_cast<std::uint64_t>(bucket_index));
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("write failed: " + tmp.string());
    }
  }
  fs::rename(tmp, path);
  bytes_written = info.payload_bytes + kFrameShardHeaderBytes;
  return info;
}

/// Loads and fully validates one shard; any defect (missing file,
/// truncation, bad magic/version, hash mismatch) surfaces as
/// std::runtime_error naming the file.
FrameShard load_shard(const fs::path& dir, std::size_t bucket_index) {
  const fs::path path = dir / campaign_shard_file_name(bucket_index);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("cannot open " + path.string());
  }
  return read_frame_shard(in, path.string());
}

/// Shared mutable state of the execute stage. Buckets themselves are
/// NOT guarded: a running bucket is owned by exactly one worker (the
/// FrameBuilder discipline), and a completed bucket is only touched —
/// for eviction or merge — under mu or after the pool has joined.
struct EngineState {
  Mutex mu;
  std::ofstream manifest GPUVAR_GUARDED_BY(mu);
  std::map<std::uint64_t, ManifestEntry> entries GPUVAR_GUARDED_BY(mu);
  std::vector<std::uint64_t> bucket_bytes GPUVAR_GUARDED_BY(mu);
  std::vector<char> resident GPUVAR_GUARDED_BY(mu);
  std::uint64_t resident_bytes GPUVAR_GUARDED_BY(mu) = 0;
  std::uint64_t resident_peak GPUVAR_GUARDED_BY(mu) = 0;
  std::uint64_t bucket_max GPUVAR_GUARDED_BY(mu) = 0;
  std::uint64_t shard_bytes GPUVAR_GUARDED_BY(mu) = 0;
  std::size_t spilled GPUVAR_GUARDED_BY(mu) = 0;
  std::size_t done GPUVAR_GUARDED_BY(mu) = 0;
};

}  // namespace

namespace {

/// Appends a canonical rendering of every WorkloadSpec field that
/// changes what a run measures. The name alone is not an identity:
/// `gpuvar run --reps N` rebuilds the spec with different iteration
/// counts under the same name, and a checkpoint recorded under one
/// reps value must refuse to merge shards measured under another.
void append_workload_identity(std::string& key, const WorkloadSpec& w) {
  key += ";workload=" + w.name;
  key += ";metric=" + to_string(w.metric);
  key += ";gpus_per_job=" + format_int(w.gpus_per_job);
  key += ";iterations=" + format_int(w.iterations);
  key += ";warmup=" + format_int(w.warmup_iterations);
  key += ";gap=" + format_double(w.inter_kernel_gap.value(), 17);
  key += ";allreduce=" + format_double(w.allreduce_seconds.value(), 17);
  key += ";gpu_sigma=" + format_double(w.gpu_sensitivity_sigma, 17);
  key += ";power_sigma=" + format_double(w.power_jitter_sigma, 17);
  for (const KernelStep& s : w.iteration) {
    key += ";step=" + s.kernel.name;
    key += ",count=" + format_int(s.count);
    key += ",long=";
    key += s.long_kernel ? '1' : '0';
    key += ",flops=" + format_double(s.kernel.flops, 17);
    key += ",bytes=" + format_double(s.kernel.bytes, 17);
    key += ",ce=" + format_double(s.kernel.compute_efficiency, 17);
    key += ",be=" + format_double(s.kernel.bw_efficiency, 17);
    key += ",act=" + format_double(s.kernel.activity, 17);
    key += ",floor=" + format_double(s.kernel.stall_activity_floor, 17);
    key += ",fu=" + format_double(s.kernel.fu_util, 17);
    key += ",dram=" + format_double(s.kernel.dram_util, 17);
    key += ",mstall=" + format_double(s.kernel.mem_stall_frac, 17);
    key += ",estall=" + format_double(s.kernel.exec_stall_frac, 17);
  }
}

}  // namespace

std::uint64_t campaign_config_hash(const Cluster& cluster,
                                   const ExperimentConfig& config) {
  // Canonical key=value string over every field that changes what the
  // campaign measures. Formatting goes through numfmt, so the hash is
  // locale- and platform-stable.
  std::string key;
  key += "cluster=" + cluster.name();
  key += ";seed=" + format_int(static_cast<long long>(cluster.spec().seed));
  key += ";nodes=" + format_int(cluster.node_count());
  key += ";gpus_per_node=" + format_int(cluster.gpus_per_node());
  append_workload_identity(key, config.workload);
  key += ";runs=" + format_int(config.runs_per_gpu);
  key += ";coverage=" + format_double(config.node_coverage, 17);
  key += ";day=" + format_int(config.day_of_week);
  key += ";salt=" + format_int(static_cast<long long>(config.salt));
  key += ";power=" +
         format_double(config.run_options.power_limit_override.value(), 17);
  return binio::fnv1a64(key);
}

CampaignResult run_campaign(const Cluster& cluster,
                            const ExperimentConfig& config,
                            const CampaignOptions& options) {
  config.workload.validate();
  GPUVAR_REQUIRE(config.runs_per_gpu >= 1);
  const bool durable = !options.checkpoint_dir.empty();
  const bool bounded = options.shard_budget_bytes != kUnlimitedShardBudget;
  GPUVAR_REQUIRE_MSG(durable || !bounded,
                     "a bounded shard budget needs a checkpoint directory "
                     "to spill into (set CampaignOptions::checkpoint_dir)");

  obs::LaneScope campaign_lane(0, "campaign");

  // --- plan -------------------------------------------------------------
  ExclusiveAllocator allocator(cluster);
  const auto allocations = allocator.sample_coverage(config.node_coverage);

  CampaignResult out;
  out.config_hash = campaign_config_hash(cluster, config);
  out.stats.buckets_total = allocations.size();
  out.nodes_measured = allocations.size();
  // Degenerate campaign (zero coverage / empty cluster): empty frame,
  // no checkpoint machinery, and config.progress is never invoked.
  if (allocations.empty()) return out;

  GPUVAR_TRACE_SPAN("engine", "run_campaign", "buckets",
                    static_cast<std::int64_t>(allocations.size()));
  GPUVAR_METRIC_MAX("experiment.nodes", allocations.size());
  GPUVAR_METRIC_MAX("experiment.runs_per_gpu", config.runs_per_gpu);

  RunOptions opts = config.run_options;
  // Fold the day tag into seeds so Monday's transients differ from
  // Tuesday's while the hardware population stays identical.
  opts.run_salt = config.salt * 101 +
                  (config.day_of_week >= 0
                       ? static_cast<std::uint64_t>(config.day_of_week) + 1
                       : 0);

  // --- resume scan ------------------------------------------------------
  const fs::path dir(options.checkpoint_dir);
  std::vector<char> done_before(allocations.size(), 0);
  EngineState st;
  {
    MutexLock lock(st.mu);
    st.bucket_bytes.assign(allocations.size(), 0);
    st.resident.assign(allocations.size(), 0);
  }
  if (durable) {
    GPUVAR_TRACE_SPAN("engine", "resume_scan");
    fs::create_directories(dir);
    Manifest m = read_campaign_manifest(dir / kManifestName);
    if (m.exists && m.config_hash != out.config_hash) {
      throw std::runtime_error(
          options.checkpoint_dir +
          ": checkpoint belongs to a different campaign (config hash " +
          format_hex(m.config_hash) + ", this campaign is " +
          format_hex(out.config_hash) + ")");
    }
    std::map<std::uint64_t, ManifestEntry> valid;
    for (const auto& [idx, e] : m.entries) {
      if (idx >= allocations.size()) {
        ++out.stats.buckets_rerun_stale;
        continue;
      }
      // Trust nothing: the shard must parse end to end and agree with
      // the manifest's row count and payload hash. Anything less and
      // the bucket re-runs from its seed path.
      bool ok = false;
      try {
        const FrameShard s = load_shard(dir, static_cast<std::size_t>(idx));
        ok = s.info.bucket_index == idx && s.info.rows == e.info.rows &&
             s.info.payload_hash == e.info.payload_hash;
      } catch (const std::runtime_error&) {
        ok = false;
      }
      if (ok) {
        valid[idx] = e;
        done_before[static_cast<std::size_t>(idx)] = 1;
      } else {
        ++out.stats.buckets_rerun_stale;
      }
    }
    // Rewrite the manifest down to the entries that survived, then mark
    // the campaign in progress and reopen the manifest for appending.
    rewrite_campaign_manifest(dir, out.config_hash, valid, /*done=*/false);
    {
      std::ofstream marker(dir / kMarkerName, std::ios::trunc);
      marker << "campaign in progress\n";
    }
    MutexLock lock(st.mu);
    st.entries = std::move(valid);
    st.manifest.open(dir / kManifestName, std::ios::app);
    if (!st.manifest.good()) {
      throw std::runtime_error("cannot append to " +
                               (dir / kManifestName).string());
    }
  }
  if (durable) {
    GPUVAR_METRIC_ADD("engine.buckets_rerun_stale",
                      out.stats.buckets_rerun_stale);
  }

  // --- execute ----------------------------------------------------------
  // Restored buckets count toward progress first (in index order), so
  // the callback still sees a monotone 1..total sequence on resume.
  std::vector<RecordFrame> buckets(allocations.size());
  const std::size_t total = allocations.size();
  for (std::size_t ai = 0; ai < total; ++ai) {
    if (!done_before[ai]) continue;
    ++out.stats.buckets_restored;
    if (config.progress != nullptr) {
      MutexLock lock(st.mu);
      ++st.done;
      config.progress(st.done, total);
    }
  }
  if (durable) {
    GPUVAR_METRIC_ADD("engine.buckets_restored", out.stats.buckets_restored);
  }

  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
  {
    GPUVAR_TRACE_SPAN("engine", "execute", "buckets",
                      static_cast<std::int64_t>(total -
                                                out.stats.buckets_restored));
    // Workers take st.mu per completion; nothing holds it across the
    // dispatch below (the lockorder pass's lock-held-across-wait rule).
    pool.parallel_for(total, [&](std::size_t ai) {
      if (done_before[ai]) return;
      const auto& alloc = allocations[ai];
      obs::LaneScope job_lane(static_cast<std::uint32_t>(ai) + 1,
                              "node " + std::to_string(alloc.node));
      GPUVAR_TRACE_SPAN("engine", "node_job", "node", alloc.node);
      GPUVAR_METRIC_COUNT("experiment.node_jobs");
      RecordFrame& bucket = buckets[ai];
      for (int run = 0; run < config.runs_per_gpu; ++run) {
        const auto results =
            run_on_node(cluster, alloc.node, config.workload, run, opts);
        for (const auto& res : results) {
          bucket.append_row(to_record(cluster, res, config.day_of_week));
        }
      }

      // Durability first: once the shard and its manifest line are on
      // disk, a crash anywhere later never re-runs this bucket.
      FrameShardInfo info;
      std::uint64_t file_bytes = 0;
      if (durable) {
        info = persist_shard(dir, ai, bucket, file_bytes);
        GPUVAR_METRIC_COUNT("engine.shards_written");
        GPUVAR_METRIC_ADD("engine.shard_bytes_written", file_bytes);
      }

      const std::uint64_t bytes = bucket.memory_bytes();
      MutexLock lock(st.mu);
      if (durable) {
        st.manifest << campaign_manifest_entry_line(info) << "\n";
        st.manifest.flush();
        if (!st.manifest.good()) {
          throw std::runtime_error("manifest append failed in " +
                                   dir.string());
        }
        st.entries[info.bucket_index] = ManifestEntry{info};
        st.shard_bytes += file_bytes;
      }
      // Residency accounting: the fresh bucket is counted before any
      // eviction, which is exactly why the peak is bounded by
      // budget + one bucket rather than by the budget alone.
      st.bucket_bytes[ai] = bytes;
      st.resident[ai] = 1;
      st.resident_bytes += bytes;
      if (bytes > st.bucket_max) st.bucket_max = bytes;
      if (st.resident_bytes > st.resident_peak) {
        st.resident_peak = st.resident_bytes;
      }
      GPUVAR_METRIC_MAX("engine.resident_bytes_peak", st.resident_bytes);
      GPUVAR_METRIC_MAX("engine.bucket_bytes_max", bytes);
      while (bounded && st.resident_bytes > options.shard_budget_bytes) {
        // Largest resident bucket first; ties go to the higher index so
        // the choice is deterministic for a fixed completion state.
        std::size_t victim = total;
        std::uint64_t victim_bytes = 0;
        for (std::size_t j = 0; j < total; ++j) {
          if (st.resident[j] == 0) continue;
          if (victim == total || st.bucket_bytes[j] >= victim_bytes) {
            victim = j;
            victim_bytes = st.bucket_bytes[j];
          }
        }
        if (victim == total) break;  // nothing left to evict
        buckets[victim] = RecordFrame();
        st.resident[victim] = 0;
        st.resident_bytes -= victim_bytes;
        ++st.spilled;
        GPUVAR_METRIC_COUNT("engine.buckets_spilled");
      }
      ++st.done;
      if (config.progress != nullptr) config.progress(st.done, total);
    });
  }

  // The pool has joined: st is ours alone again.
  {
    MutexLock lock(st.mu);
    out.stats.buckets_run = total - out.stats.buckets_restored;
    out.stats.buckets_spilled = st.spilled;
    out.stats.shard_bytes_written = st.shard_bytes;
    out.stats.resident_bytes_peak = st.resident_peak;
    out.stats.bucket_bytes_max = st.bucket_max;
    if (durable) st.manifest.close();
  }

  // --- merge ------------------------------------------------------------
  {
    GPUVAR_TRACE_SPAN("engine", "merge", "buckets",
                      static_cast<std::int64_t>(total));
    MutexLock lock(st.mu);
    for (std::size_t ai = 0; ai < total; ++ai) {
      if (st.resident[ai] != 0) {
        out.frame.append(buckets[ai]);
        buckets[ai] = RecordFrame();
      } else {
        // Restored or evicted: read it back. load_shard re-validates
        // the whole file, so a shard corrupted since the scan fails
        // loudly here instead of merging garbage.
        const FrameShard s = load_shard(dir, ai);
        out.frame.append(s.frame);
      }
    }
  }

  if (durable) {
    MutexLock lock(st.mu);
    rewrite_campaign_manifest(dir, out.config_hash, st.entries, /*done=*/true);
    fs::remove(dir / kMarkerName);
  }

  out.gpus_measured = out.frame.gpu_count();
  GPUVAR_METRIC_ADD("experiment.records", out.frame.size());
  return out;
}

void write_campaign_summary(std::ostream& out, const CampaignResult& result) {
  // Only facts that are pure functions of (cluster, config) appear
  // here — never whether buckets were restored, spilled, or re-run —
  // so the bytes match between an uninterrupted campaign and any
  // interrupted-then-resumed replay of it. The content hash streams
  // over the merged frame (hash_frame_shard) rather than serializing
  // it: the frame can be far larger than any shard budget, and a full
  // serialized copy would double peak memory exactly where the
  // bounded-budget engine promises not to.
  out << "gpuvar-campaign-summary v1\n";
  out << "buckets " << format_int(static_cast<long long>(
                           result.stats.buckets_total)) << "\n";
  out << "config " << format_hex(result.config_hash) << "\n";
  out << "frame_hash " << format_hex(hash_frame_shard(result.frame, 0))
      << "\n";
  out << "gpus " << format_int(static_cast<long long>(result.gpus_measured))
      << "\n";
  out << "nodes " << format_int(static_cast<long long>(result.nodes_measured))
      << "\n";
  out << "rows " << format_int(static_cast<long long>(result.frame.size()))
      << "\n";
}

std::vector<CampaignJob> day_of_week_sweep(const ExperimentConfig& base) {
  std::vector<CampaignJob> jobs;
  jobs.reserve(7);
  for (int day = 0; day < 7; ++day) {
    CampaignJob job;
    job.name = "day-" + format_int(day);
    job.config = base;
    job.config.day_of_week = day;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> power_cap_sweep(const ExperimentConfig& base,
                                         const std::vector<double>& caps_w) {
  GPUVAR_REQUIRE_MSG(!caps_w.empty(), "power-cap sweep needs at least one cap");
  std::vector<CampaignJob> jobs;
  jobs.reserve(caps_w.size());
  for (double cap : caps_w) {
    GPUVAR_REQUIRE_MSG(cap >= 0.0, "power cap must be >= 0 W");
    CampaignJob job;
    job.name = "cap-" + format_int(static_cast<long long>(cap)) + "w";
    job.config = base;
    job.config.run_options.power_limit_override = Watts{cap};
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<SweepJobResult> run_campaign_sweep(
    const Cluster& cluster, const std::vector<CampaignJob>& jobs,
    const CampaignOptions& options) {
  std::vector<SweepJobResult> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    GPUVAR_REQUIRE_MSG(!job.name.empty(), "sweep job needs a name");
    for (char c : job.name) {
      GPUVAR_REQUIRE_MSG(
          (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-',
          "sweep job name must be [a-z0-9-]: " + job.name);
    }
    CampaignOptions job_options = options;
    if (!options.checkpoint_dir.empty()) {
      job_options.checkpoint_dir =
          (fs::path(options.checkpoint_dir) / job.name).string();
    }
    SweepJobResult r;
    r.name = job.name;
    r.result = run_campaign(cluster, job.config, job_options);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace gpuvar
