// Metric-pair correlation analysis (the paper's scatter plots).
#pragma once

#include <string>
#include <vector>

#include "telemetry/record.hpp"
namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"

namespace gpuvar {

struct MetricCorrelation {
  Metric x = Metric::kPerf;
  Metric y = Metric::kPerf;
  double rho = 0.0;       ///< Pearson
  double spearman = 0.0;  ///< rank correlation (robust to outliers)
  std::string strength;   ///< qualitative label
};

/// The four pairings the paper reports: perf↔temp, perf↔power, perf↔freq,
/// power↔temp.
struct CorrelationReport {
  MetricCorrelation perf_temp;
  MetricCorrelation perf_power;
  MetricCorrelation perf_freq;
  MetricCorrelation power_temp;

  std::vector<const MetricCorrelation*> all() const {
    return {&perf_temp, &perf_power, &perf_freq, &power_temp};
  }
};

/// Correlates two metric columns of the frame (zero-copy span views).
MetricCorrelation correlate_pair(const RecordFrame& frame, Metric x, Metric y);

CorrelationReport correlate_metrics(const RecordFrame& frame);

}  // namespace gpuvar
