// Metric-pair correlation analysis (the paper's scatter plots).
#pragma once

#include <string>
#include <vector>

#include "telemetry/record.hpp"
namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"
namespace gpuvar::query { class Source; }  // was: #include "query/source.hpp"

namespace gpuvar {

struct MetricCorrelation {
  Metric x = Metric::kPerf;
  Metric y = Metric::kPerf;
  double rho = 0.0;       ///< Pearson
  double spearman = 0.0;  ///< rank correlation (robust to outliers)
  std::string strength;   ///< qualitative label
};

/// The four pairings the paper reports: perf↔temp, perf↔power, perf↔freq,
/// power↔temp.
struct CorrelationReport {
  MetricCorrelation perf_temp;
  MetricCorrelation perf_power;
  MetricCorrelation perf_freq;
  MetricCorrelation power_temp;

  std::vector<const MetricCorrelation*> all() const {
    return {&perf_temp, &perf_power, &perf_freq, &power_temp};
  }
};

/// Tunables for analyze_correlation. No knobs yet; exists for the
/// unified analyze_*(source, options) signature shape.
struct CorrelateOptions {};

/// Correlates two metric columns (zero-copy for a frame-backed source).
MetricCorrelation correlate_pair(const query::Source& source, Metric x,
                                 Metric y);
MetricCorrelation correlate_pair(const RecordFrame& frame, Metric x, Metric y);

CorrelationReport analyze_correlation(const query::Source& source,
                                      const CorrelateOptions& options = {});

/// Forwarding shim (one deprecation cycle): prefer analyze_correlation.
// gpuvar-lint: allow(analysis-signature)
CorrelationReport correlate_metrics(const RecordFrame& frame);

}  // namespace gpuvar
