// Operator flagging: the paper's "early warning for system
// administrators" (§I, §VII). The study's concrete wins — TACC
// identifying a bad Longhorn node and a degraded Frontera oil pump, the
// Corona c115 replacement candidate — come from exactly these rules:
//
//   * slow outlier            — per-GPU median performance above the
//                               population's upper whisker
//   * unexplained power drop  — power below the lower whisker without a
//                               matching temperature outlier (Summit's
//                               row-H signature)
//   * thermal outlier         — temperature above the upper whisker
//   * repeat offender         — flagged in two or more independent
//                               experiments/workloads (the paper: 8 of
//                               the 10 worst SGEMM GPUs were also ResNet
//                               outliers)
//   * suspect cabinet         — a cabinet whose GPUs are simultaneously
//                               slow, cool and low-power (pump signature)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"
namespace gpuvar::query { class Source; }  // was: #include "query/source.hpp"

namespace gpuvar {

enum class FlagReason {
  kSlowOutlier,
  kUnexplainedPowerDrop,
  kThermalOutlier,
  kRepeatOffender,
};

std::string to_string(FlagReason r);

struct GpuFlag {
  std::size_t gpu_index = 0;
  std::string name;
  std::vector<FlagReason> reasons;
  /// How far (in whisker-range units) the worst metric sits outside.
  double severity = 0.0;

  bool has(FlagReason r) const;
};

struct CabinetFlag {
  int cabinet = 0;
  std::string note;
};

struct FlagReport {
  std::vector<GpuFlag> gpus;       ///< sorted by descending severity
  std::vector<CabinetFlag> cabinets;
};

struct FlagOptions {
  /// The SKU's thermal-slowdown threshold. A GPU running within 5 °C of
  /// it is considered thermally throttled: its low power is *explained*
  /// (DVFS protecting the chip), so it gets a thermal flag rather than an
  /// unexplained-power-drop flag. Default: no threshold known.
  Celsius slowdown_temp{1e9};
};

/// Flags anomalies within one experiment's data (frame- or
/// dataset-backed source).
FlagReport analyze_flags(const query::Source& source,
                         const FlagOptions& options = {});

/// Forwarding shim (one deprecation cycle): prefer analyze_flags.
// gpuvar-lint: allow(analysis-signature)
FlagReport flag_anomalies(const RecordFrame& frame,
                          const FlagOptions& options = {});

/// Cross-experiment flagging: GPUs flagged in >= `min_experiments` of the
/// reports become repeat offenders (returned sorted by severity).
std::vector<GpuFlag> repeat_offenders(std::span<const FlagReport> reports,
                                      int min_experiments = 2);

/// Scores a report against the cluster's injected ground truth.
struct FlagScore {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
};

FlagScore score_against_ground_truth(const Cluster& cluster,
                                     const FlagReport& report);

}  // namespace gpuvar
