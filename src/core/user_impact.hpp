// User-impact quantification (§VII "Impact on Users"): what a submitted
// job actually experiences on a variable cluster. Beyond the paper's
// headline probabilities ("18% chance of a slower GPU", "40-50% for
// 4-GPU jobs"), a user planning a bulk-synchronous job wants the expected
// *slowdown* — for a k-GPU job that is the expected maximum of k random
// per-GPU runtimes, which this module computes exactly from the measured
// per-GPU medians.
#pragma once

#include <vector>

namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"
namespace gpuvar::query { class Source; }  // was: #include "query/source.hpp"

namespace gpuvar {

struct JobImpact {
  int gpus_per_job = 1;
  /// Expected runtime of a random k-GPU bulk-synchronous assignment,
  /// relative to a job placed entirely on median GPUs.
  double expected_slowdown = 1.0;
  /// 95th percentile of the same distribution (the unlucky assignment).
  double p95_slowdown = 1.0;
  /// The paper's headline: probability of receiving at least one GPU more
  /// than `threshold` slower than the median.
  double p_any_slow = 0.0;
};

struct UserImpactOptions {
  /// Largest job width in the table (widths double: 1, 2, 4 ...).
  int max_width = 8;
  /// "Slow" means more than this fraction above the median GPU.
  double slow_threshold = 0.06;
};

/// Impact table for several job widths (1, 2, 4, 8 ... up to
/// options.max_width), over a frame- or dataset-backed source.
std::vector<JobImpact> analyze_user_impact(
    const query::Source& source, const UserImpactOptions& options = {});

/// Exact expected/quantile slowdown for a k-GPU job assigned uniformly at
/// random without replacement, computed from per-GPU median runtimes via
/// order statistics on the empirical distribution.
JobImpact job_impact(const query::Source& source, int gpus_per_job,
                     double slow_threshold = 0.06);
JobImpact job_impact(const RecordFrame& frame, int gpus_per_job,
                     double slow_threshold = 0.06);

/// Forwarding shim (one deprecation cycle): prefer analyze_user_impact.
// gpuvar-lint: allow(analysis-signature)
std::vector<JobImpact> impact_table(const RecordFrame& frame,
                                    int max_width = 8,
                                    double slow_threshold = 0.06);

}  // namespace gpuvar
