// Text rendering of analysis results — the bench binaries print the
// paper's tables and figures through these helpers.
#pragma once

#include <ostream>
#include <string>

namespace gpuvar { struct CorrelationReport; }  // was: #include "core/correlate.hpp"
namespace gpuvar { struct FlagReport; }  // was: #include "core/flagging.hpp"
#include "core/variability.hpp"
#include "telemetry/record.hpp"
namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"

namespace gpuvar {

/// "==== title ====" section banner.
void print_section(std::ostream& out, const std::string& title);

/// Four-row table: perf/freq/power/temp box statistics + variation %.
void print_variability_table(std::ostream& out, const VariabilityReport& r);

/// The paper's correlation summary (ρ per metric pair + strength label).
void print_correlation_table(std::ostream& out, const CorrelationReport& r);

/// Grouped box chart for one metric (one row per cabinet/row/day).
void print_group_boxes(std::ostream& out, const RecordFrame& frame,
                       Metric metric, GroupBy group);

/// ASCII scatter of two metrics.
void print_scatter(std::ostream& out, const RecordFrame& frame, Metric x,
                   Metric y);

/// Flag report, most severe first.
void print_flags(std::ostream& out, const FlagReport& report,
                 std::size_t max_gpus = 12);

}  // namespace gpuvar
