// A global power-management prototype (§VII "New Hardware and System
// Design"): today each GPU enforces its TDP locally, so under a
// cluster-wide power envelope every chip gets the same cap and the silicon
// lottery decides who runs fast. With PM information exposed (see
// gpu/pmapi.hpp), a coordinator can instead assign *per-GPU* limits
// so that every chip settles at the same frequency — trading a little
// peak speed on golden chips for a cluster that behaves uniformly (which
// is what bulk-synchronous workloads actually pay for).
#pragma once

#include <vector>

namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
#include "core/experiment.hpp"
#include "common/units.hpp"
namespace gpuvar { struct WorkloadSpec; }  // was: #include "workloads/workload.hpp"
namespace gpuvar { struct KernelSpec; }  // was: #include "gpu/kernel.hpp"

namespace gpuvar {

struct PowerAssignment {
  std::vector<Watts> limits;  ///< one per GPU (cluster order)
  MegaHertz target_freq{};  ///< equal-frequency policies only
  Watts total() const;
};

/// Everyone gets envelope / N — the status quo of local-only PM.
PowerAssignment uniform_assignment(const Cluster& cluster, Watts envelope);

/// Predicted steady-state power of GPU `i` running `kernel` pinned at
/// frequency `f` (solves the thermal/leakage fixed point).
Watts predicted_steady_power(const Cluster& cluster, std::size_t i,
                             const KernelSpec& kernel, MegaHertz f);

/// Equal-frequency coordination: find the highest ladder frequency whose
/// total predicted power fits the envelope, then cap each GPU just above
/// its own predicted draw at that frequency. Requires PM introspection in
/// deployment; here the predictions come from the same models the chips
/// obey.
PowerAssignment equal_frequency_assignment(const Cluster& cluster,
                                           Watts envelope,
                                           const KernelSpec& kernel);

/// Runs an experiment with per-GPU limits from the assignment.
ExperimentResult run_under_assignment(const Cluster& cluster,
                                      const WorkloadSpec& workload,
                                      const PowerAssignment& assignment,
                                      int runs_per_gpu = 1);

}  // namespace gpuvar
