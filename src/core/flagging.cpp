#include "core/flagging.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/require.hpp"
#include "query/source.hpp"
#include "stats/boxplot.hpp"
#include "cluster/cluster.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

std::string to_string(FlagReason r) {
  switch (r) {
    case FlagReason::kSlowOutlier:
      return "slow outlier";
    case FlagReason::kUnexplainedPowerDrop:
      return "unexplained power drop";
    case FlagReason::kThermalOutlier:
      return "thermal outlier";
    case FlagReason::kRepeatOffender:
      return "repeat offender";
  }
  return "unknown";
}

bool GpuFlag::has(FlagReason r) const {
  return std::find(reasons.begin(), reasons.end(), r) != reasons.end();
}

namespace {

double outside_distance(const stats::BoxSummary& box, double x) {
  if (box.range <= 0.0) return 0.0;
  if (x > box.hi_whisker) return (x - box.hi_whisker) / box.range;
  if (x < box.lo_whisker) return (box.lo_whisker - x) / box.range;
  return 0.0;
}

}  // namespace

FlagReport analyze_flags(const query::Source& source,
                         const FlagOptions& options) {
  GPUVAR_REQUIRE(!source.empty());
  const auto gpus = per_gpu_medians(source);

  std::vector<double> perf, power, temp;
  perf.reserve(gpus.size());
  for (const auto& g : gpus) {
    perf.push_back(g.perf_ms);
    power.push_back(g.power_w);
    temp.push_back(g.temp_c);
  }
  const auto perf_box = stats::box_summary(perf);
  const auto power_box = stats::box_summary(power);
  const auto temp_box = stats::box_summary(temp);

  // Magnitude guards: for very tight populations (e.g. power pinned
  // within a watt of TDP) the 1.5-IQR fences degenerate and would flag
  // trivial deviations, so an outlier must also clear a material margin.
  const double perf_guard = perf_box.median * 1.02;
  const double power_guard =
      power_box.median - std::max(5.0, 0.02 * power_box.median);
  const double temp_guard = temp_box.median + 5.0;

  FlagReport report;
  for (const auto& g : gpus) {
    GpuFlag flag;
    flag.gpu_index = g.gpu_index;
    flag.name = g.loc.name;

    if (g.perf_ms > perf_box.hi_whisker && g.perf_ms > perf_guard) {
      flag.reasons.push_back(FlagReason::kSlowOutlier);
      flag.severity =
          std::max(flag.severity, outside_distance(perf_box, g.perf_ms));
    }
    const bool near_slowdown = g.temp_c >= options.slowdown_temp.value() - 5.0;
    const bool hot =
        (g.temp_c > temp_box.hi_whisker && g.temp_c > temp_guard) ||
        near_slowdown;
    if (g.power_w < power_box.lo_whisker && g.power_w < power_guard && !hot) {
      flag.reasons.push_back(FlagReason::kUnexplainedPowerDrop);
      flag.severity =
          std::max(flag.severity, outside_distance(power_box, g.power_w));
    }
    if (hot) {
      flag.reasons.push_back(FlagReason::kThermalOutlier);
      flag.severity =
          std::max(flag.severity, outside_distance(temp_box, g.temp_c));
    }
    if (!flag.reasons.empty()) report.gpus.push_back(std::move(flag));
  }
  std::sort(report.gpus.begin(), report.gpus.end(),
            [](const GpuFlag& a, const GpuFlag& b) {
              // Severity descending; gpu_index breaks float ties so the
              // report order never depends on the input permutation.
              return std::tie(b.severity, a.gpu_index) <
                     std::tie(a.severity, b.gpu_index);
            });

  // Cabinet-level pump signature: simultaneously slower, cooler and
  // lower-power than the population quartiles.
  std::map<int, std::vector<const GpuAggregate*>> by_cabinet;
  for (const auto& g : gpus) by_cabinet[g.loc.cabinet].push_back(&g);
  for (const auto& [cab, members] : by_cabinet) {
    if (members.size() < 2) continue;
    int suspicious = 0;
    for (const auto* g : members) {
      if (g->perf_ms > perf_box.q3 && g->temp_c < temp_box.q1 &&
          g->power_w < power_box.q1) {
        ++suspicious;
      }
    }
    if (suspicious >= 2 ||
        suspicious == static_cast<int>(members.size())) {
      CabinetFlag cf;
      cf.cabinet = cab;
      cf.note = std::to_string(suspicious) +
                " GPU(s) slow+cool+low-power: check cooling loop/pump and "
                "power delivery";
      report.cabinets.push_back(std::move(cf));
    }
  }
  return report;
}

FlagReport flag_anomalies(const RecordFrame& frame,
                          const FlagOptions& options) {
  return analyze_flags(query::Source(frame), options);
}

std::vector<GpuFlag> repeat_offenders(std::span<const FlagReport> reports,
                                      int min_experiments) {
  GPUVAR_REQUIRE(min_experiments >= 1);
  std::map<std::size_t, std::pair<int, GpuFlag>> counts;
  for (const auto& report : reports) {
    for (const auto& flag : report.gpus) {
      auto it = counts.find(flag.gpu_index);
      if (it == counts.end()) {
        counts.emplace(flag.gpu_index, std::make_pair(1, flag));
      } else {
        it->second.first += 1;
        it->second.second.severity =
            std::max(it->second.second.severity, flag.severity);
      }
    }
  }
  std::vector<GpuFlag> out;
  for (auto& [gpu, entry] : counts) {
    if (entry.first >= min_experiments) {
      GpuFlag f = entry.second;
      f.reasons = {FlagReason::kRepeatOffender};
      out.push_back(std::move(f));
    }
  }
  std::sort(out.begin(), out.end(), [](const GpuFlag& a, const GpuFlag& b) {
    return std::tie(b.severity, a.gpu_index) <
           std::tie(a.severity, b.gpu_index);
  });
  return out;
}

FlagScore score_against_ground_truth(const Cluster& cluster,
                                     const FlagReport& report) {
  const auto truth = cluster.faulty_gpus();
  FlagScore score;
  std::vector<std::size_t> flagged;
  flagged.reserve(report.gpus.size());
  for (const auto& f : report.gpus) flagged.push_back(f.gpu_index);
  std::sort(flagged.begin(), flagged.end());

  for (std::size_t f : flagged) {
    if (std::binary_search(truth.begin(), truth.end(), f)) {
      ++score.true_positives;
    } else {
      ++score.false_positives;
    }
  }
  for (std::size_t t : truth) {
    if (!std::binary_search(flagged.begin(), flagged.end(), t)) {
      ++score.false_negatives;
    }
  }
  const int flagged_n = score.true_positives + score.false_positives;
  const int truth_n = score.true_positives + score.false_negatives;
  score.precision =
      flagged_n > 0 ? static_cast<double>(score.true_positives) / flagged_n
                    : 0.0;
  score.recall = truth_n > 0
                     ? static_cast<double>(score.true_positives) / truth_n
                     : 0.0;
  return score;
}

}  // namespace gpuvar
