#include "core/variability.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"
#include "stats/quantile.hpp"

namespace gpuvar {

namespace {

MetricVariability analyze_metric(std::span<const RunRecord> records,
                                 Metric m) {
  MetricVariability out;
  out.box = stats::box_summary(metric_column(records, m));
  out.variation_pct =
      out.box.median != 0.0 ? out.box.variation() * 100.0 : 0.0;
  return out;
}

}  // namespace

VariabilityReport analyze_variability(std::span<const RunRecord> records) {
  GPUVAR_REQUIRE(!records.empty());
  VariabilityReport r;
  r.perf = analyze_metric(records, Metric::kPerf);
  r.freq = analyze_metric(records, Metric::kFreq);
  r.power = analyze_metric(records, Metric::kPower);
  r.temp = analyze_metric(records, Metric::kTemp);
  r.records = records.size();
  r.gpus = per_gpu_medians(records).size();
  return r;
}

int group_key(const RunRecord& r, GroupBy g) {
  switch (g) {
    case GroupBy::kCabinet:
      return r.loc.cabinet;
    case GroupBy::kRow:
      return r.loc.row;
    case GroupBy::kColumn:
      return r.loc.column;
    case GroupBy::kNode:
      return r.loc.node;
    case GroupBy::kDayOfWeek:
      return r.day_of_week;
  }
  return 0;
}

std::string group_label(GroupBy g, int key) {
  char buf[32];
  switch (g) {
    case GroupBy::kCabinet:
      std::snprintf(buf, sizeof(buf), "c%03d", key);
      return buf;
    case GroupBy::kRow:
      std::snprintf(buf, sizeof(buf), "row %c",
                    static_cast<char>('A' + std::max(0, key)));
      return buf;
    case GroupBy::kColumn:
      std::snprintf(buf, sizeof(buf), "col %02d", key + 1);
      return buf;
    case GroupBy::kNode:
      std::snprintf(buf, sizeof(buf), "node %03d", key);
      return buf;
    case GroupBy::kDayOfWeek: {
      static const char* days[] = {"Mon", "Tue", "Wed", "Thu",
                                   "Fri", "Sat", "Sun"};
      if (key >= 0 && key < 7) return days[key];
      return "day ?";
    }
  }
  return "?";
}

std::vector<stats::NamedSeries> series_by_group(
    std::span<const RunRecord> records, Metric metric, GroupBy group) {
  std::map<int, std::vector<double>> groups;
  for (const auto& r : records) {
    groups[group_key(r, group)].push_back(metric_value(r, metric));
  }
  std::vector<stats::NamedSeries> out;
  out.reserve(groups.size());
  for (auto& [key, values] : groups) {
    out.push_back(stats::NamedSeries{group_label(group, key),
                                     std::move(values)});
  }
  return out;
}

std::map<int, VariabilityReport> variability_by_group(
    std::span<const RunRecord> records, GroupBy group) {
  std::map<int, std::vector<RunRecord>> groups;
  for (const auto& r : records) groups[group_key(r, group)].push_back(r);
  std::map<int, VariabilityReport> out;
  for (const auto& [key, rs] : groups) {
    out.emplace(key, analyze_variability(rs));
  }
  return out;
}

std::vector<GpuRepeatability> per_gpu_repeatability(
    std::span<const RunRecord> records) {
  std::map<std::size_t, std::vector<const RunRecord*>> by_gpu;
  for (const auto& r : records) by_gpu[r.gpu_index].push_back(&r);

  std::vector<GpuRepeatability> out;
  for (const auto& [gpu, rs] : by_gpu) {
    if (rs.size() < 2) continue;
    std::vector<double> perf;
    perf.reserve(rs.size());
    for (const RunRecord* r : rs) perf.push_back(r->perf_ms);
    GpuRepeatability rep;
    rep.gpu_index = gpu;
    rep.name = rs.front()->loc.name;
    rep.runs = static_cast<int>(rs.size());
    rep.median_perf_ms = stats::median(perf);
    const double lo = *std::min_element(perf.begin(), perf.end());
    const double hi = *std::max_element(perf.begin(), perf.end());
    GPUVAR_ASSERT(rep.median_perf_ms > 0.0);
    rep.variation_pct = (hi - lo) / rep.median_perf_ms * 100.0;
    out.push_back(std::move(rep));
  }
  return out;
}

double slow_assignment_probability(std::span<const RunRecord> records,
                                   int gpus_per_job,
                                   double slowdown_threshold) {
  GPUVAR_REQUIRE(gpus_per_job >= 1);
  GPUVAR_REQUIRE(slowdown_threshold > 0.0);
  const auto gpus = per_gpu_medians(records);
  GPUVAR_REQUIRE(!gpus.empty());
  std::vector<double> perf;
  perf.reserve(gpus.size());
  for (const auto& g : gpus) perf.push_back(g.perf_ms);
  const double med = stats::median(perf);
  std::size_t slow = 0;
  for (double p : perf) {
    if (p > med * (1.0 + slowdown_threshold)) ++slow;
  }
  const double p_slow =
      static_cast<double>(slow) / static_cast<double>(perf.size());
  // P(at least one of k independent draws is slow).
  return 1.0 - std::pow(1.0 - p_slow, gpus_per_job);
}

}  // namespace gpuvar
