#include "core/variability.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"
#include "query/source.hpp"
#include "stats/kernels.hpp"
#include "stats/ascii_plot.hpp"
#include "stats/boxplot.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"
#include "common/location.hpp"

namespace gpuvar {

namespace {

MetricVariability analyze_metric(std::span<const double> column) {
  MetricVariability out;
  out.box = stats::box_summary(column);
  out.variation_pct =
      out.box.median != 0.0 ? out.box.variation() * 100.0 : 0.0;
  return out;
}

}  // namespace

VariabilityReport analyze_variability(const query::Source& source,
                                      const VariabilityOptions&) {
  GPUVAR_REQUIRE(!source.empty());
  VariabilityReport r;
  r.perf = analyze_metric(source.metric(Metric::kPerf));
  r.freq = analyze_metric(source.metric(Metric::kFreq));
  r.power = analyze_metric(source.metric(Metric::kPower));
  r.temp = analyze_metric(source.metric(Metric::kTemp));
  r.records = source.size();
  r.gpus = source.gpu_count();
  return r;
}

VariabilityReport analyze_variability(const RecordFrame& frame) {
  return analyze_variability(query::Source(frame));
}

int group_key(const RunRecord& r, GroupBy g) {
  switch (g) {
    case GroupBy::kCabinet:
      return r.loc.cabinet;
    case GroupBy::kRow:
      return r.loc.row;
    case GroupBy::kColumn:
      return r.loc.column;
    case GroupBy::kNode:
      return r.loc.node;
    case GroupBy::kDayOfWeek:
      return r.day_of_week;
  }
  return 0;
}

int group_key(const RecordFrame& frame, std::size_t row, GroupBy g) {
  if (g == GroupBy::kDayOfWeek) return frame.day_of_week(row);
  const GpuLocation& loc = frame.loc(row);
  switch (g) {
    case GroupBy::kCabinet:
      return loc.cabinet;
    case GroupBy::kRow:
      return loc.row;
    case GroupBy::kColumn:
      return loc.column;
    case GroupBy::kNode:
      return loc.node;
    case GroupBy::kDayOfWeek:
      break;  // handled above
  }
  return 0;
}

std::string group_label(GroupBy g, int key) {
  char buf[32];
  switch (g) {
    case GroupBy::kCabinet:
      std::snprintf(buf, sizeof(buf), "c%03d", key);
      return buf;
    case GroupBy::kRow:
      std::snprintf(buf, sizeof(buf), "row %c",
                    static_cast<char>('A' + std::max(0, key)));
      return buf;
    case GroupBy::kColumn:
      std::snprintf(buf, sizeof(buf), "col %02d", key + 1);
      return buf;
    case GroupBy::kNode:
      std::snprintf(buf, sizeof(buf), "node %03d", key);
      return buf;
    case GroupBy::kDayOfWeek: {
      static const char* days[] = {"Mon", "Tue", "Wed", "Thu",
                                   "Fri", "Sat", "Sun"};
      if (key >= 0 && key < 7) return days[key];
      return "day ?";
    }
  }
  return "?";
}

std::vector<stats::NamedSeries> series_by_group(const RecordFrame& frame,
                                                Metric metric, GroupBy group) {
  const auto column = frame.metric(metric);
  std::map<int, std::vector<double>> groups;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    groups[group_key(frame, i, group)].push_back(column[i]);
  }
  std::vector<stats::NamedSeries> out;
  out.reserve(groups.size());
  for (auto& [key, values] : groups) {
    out.push_back(stats::NamedSeries{group_label(group, key),
                                     std::move(values)});
  }
  return out;
}

std::map<int, VariabilityReport> variability_by_group(const RecordFrame& frame,
                                                      GroupBy group) {
  std::map<int, VariabilityReport> out;
  if (group == GroupBy::kDayOfWeek) {
    // The day split keys off a dense int16 column, so each group is
    // one vectorized range-mask + mask-select instead of a per-row
    // std::map of row-index lists.
    const auto days = frame.days_of_week();
    std::vector<std::uint8_t> mask(days.size());
    for (int day = 0; day < 7; ++day) {
      stats::kernels::mask_range_i16(days, day, day, mask);
      if (stats::kernels::mask_count(mask) == 0) continue;
      out.emplace(day, analyze_variability(frame.select(mask)));
    }
    return out;
  }
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    groups[group_key(frame, i, group)].push_back(i);
  }
  for (const auto& [key, rows] : groups) {
    out.emplace(key, analyze_variability(frame.select(rows)));
  }
  return out;
}

std::vector<GpuRepeatability> per_gpu_repeatability(const RecordFrame& frame) {
  const auto groups = group_rows_by_gpu(frame);
  const auto perf_col = frame.perf_ms();

  std::vector<GpuRepeatability> out;
  std::vector<double> perf;
  for (std::uint32_t id : groups.order) {
    const std::size_t begin = groups.offsets[id];
    const std::size_t end = groups.offsets[id + 1];
    if (end - begin < 2) continue;
    perf.clear();
    perf.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      perf.push_back(perf_col[groups.rows[i]]);
    }
    const GpuRef& g = frame.gpu(id);
    GpuRepeatability rep;
    rep.gpu_index = g.gpu_index;
    rep.name = g.loc.name;
    rep.runs = static_cast<int>(perf.size());
    // min/max sweep before the median: median_inplace permutes the
    // scratch (that is what saves the per-GPU sorted copy).
    const stats::kernels::MinMax mm = stats::kernels::min_max(perf);
    rep.median_perf_ms = stats::kernels::median_inplace(perf);
    GPUVAR_ASSERT(rep.median_perf_ms > 0.0);
    rep.variation_pct = (mm.max - mm.min) / rep.median_perf_ms * 100.0;
    out.push_back(std::move(rep));
  }
  return out;
}

double slow_assignment_probability(const RecordFrame& frame, int gpus_per_job,
                                   double slowdown_threshold) {
  GPUVAR_REQUIRE(gpus_per_job >= 1);
  GPUVAR_REQUIRE(slowdown_threshold > 0.0);
  const auto gpus = per_gpu_medians(frame);
  GPUVAR_REQUIRE(!gpus.empty());
  std::vector<double> perf;
  perf.reserve(gpus.size());
  for (const auto& g : gpus) perf.push_back(g.perf_ms);
  // In-place selection: the count below only reads values, so the
  // permutation is harmless.
  const double med = stats::kernels::median_inplace(perf);
  std::size_t slow = 0;
  for (double p : perf) {
    if (p > med * (1.0 + slowdown_threshold)) ++slow;
  }
  const double p_slow =
      static_cast<double>(slow) / static_cast<double>(perf.size());
  // P(at least one of k independent draws is slow).
  return 1.0 - std::pow(1.0 - p_slow, gpus_per_job);
}

}  // namespace gpuvar
