#include "core/experiment.hpp"

#include "cluster/allocator.hpp"
#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace gpuvar {

ExperimentConfig default_config(const Cluster& cluster, WorkloadSpec workload,
                                int runs_per_gpu) {
  ExperimentConfig cfg;
  cfg.workload = std::move(workload);
  cfg.runs_per_gpu = runs_per_gpu;
  cfg.run_options = RunOptions::for_sku(cluster.sku());
  return cfg;
}

ExperimentResult run_experiment(const Cluster& cluster,
                                const ExperimentConfig& config) {
  config.workload.validate();
  GPUVAR_REQUIRE(config.runs_per_gpu >= 1);

  ExclusiveAllocator allocator(cluster);
  const auto allocations = allocator.sample_coverage(config.node_coverage);

  RunOptions opts = config.run_options;
  // Fold the day tag into seeds so Monday's transients differ from
  // Tuesday's while the hardware population stays identical.
  opts.run_salt = config.salt * 101 +
                  (config.day_of_week >= 0
                       ? static_cast<std::uint64_t>(config.day_of_week) + 1
                       : 0);

  // One result bucket per node job: threads never share a bucket, and
  // the buckets are concatenated in allocation order below, so the
  // record stream is identical whatever the pool size or schedule.
  std::vector<std::vector<RunRecord>> buckets(allocations.size());
  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
  pool.parallel_for(allocations.size(), [&](std::size_t ai) {
    const auto& alloc = allocations[ai];
    auto& bucket = buckets[ai];
    for (int run = 0; run < config.runs_per_gpu; ++run) {
      const auto results =
          run_on_node(cluster, alloc.node, config.workload, run, opts);
      for (const auto& res : results) {
        bucket.push_back(to_record(cluster, res, config.day_of_week));
      }
    }
  });

  ExperimentResult out;
  out.nodes_measured = allocations.size();
  std::size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  out.records.reserve(total);
  for (auto& b : buckets) {
    out.records.insert(out.records.end(), b.begin(), b.end());
  }
  out.gpus_measured = per_gpu_medians(out.records).size();
  return out;
}

}  // namespace gpuvar
