#include "core/experiment.hpp"

#include "cluster/allocator.hpp"
#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace gpuvar {

ExperimentConfig default_config(const Cluster& cluster, WorkloadSpec workload,
                                int runs_per_gpu) {
  ExperimentConfig cfg;
  cfg.workload = std::move(workload);
  cfg.runs_per_gpu = runs_per_gpu;
  cfg.run_options = RunOptions::for_sku(cluster.sku());
  return cfg;
}

ExperimentResult run_experiment(const Cluster& cluster,
                                const ExperimentConfig& config) {
  config.workload.validate();
  GPUVAR_REQUIRE(config.runs_per_gpu >= 1);

  ExclusiveAllocator allocator(cluster);
  const auto allocations = allocator.sample_coverage(config.node_coverage);

  RunOptions opts = config.run_options;
  // Fold the day tag into seeds so Monday's transients differ from
  // Tuesday's while the hardware population stays identical.
  opts.run_salt = config.salt * 101 +
                  (config.day_of_week >= 0
                       ? static_cast<std::uint64_t>(config.day_of_week) + 1
                       : 0);

  // One frame bucket per node job: threads never share a bucket, and
  // finish() merges the buckets in allocation order, so the frame's row
  // stream is identical whatever the pool size or schedule.
  FrameBuilder builder(allocations.size());
  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
  pool.parallel_for(allocations.size(), [&](std::size_t ai) {
    const auto& alloc = allocations[ai];
    auto& bucket = builder.bucket(ai);
    for (int run = 0; run < config.runs_per_gpu; ++run) {
      const auto results =
          run_on_node(cluster, alloc.node, config.workload, run, opts);
      for (const auto& res : results) {
        bucket.append_row(to_record(cluster, res, config.day_of_week));
      }
    }
  });

  ExperimentResult out;
  out.nodes_measured = allocations.size();
  out.frame = builder.finish();
  // Distinct-GPU count straight off the interned pool — no aggregation.
  out.gpus_measured = out.frame.gpu_count();
  out.records = out.frame.to_records();  // deprecated row adapter
  return out;
}

}  // namespace gpuvar
