#include "core/experiment.hpp"

#include <string>

#include "cluster/allocator.hpp"
#include "common/mutex.hpp"
#include "common/require.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "cluster/cluster.hpp"
#include "cluster/faults.hpp"
#include "core/record.hpp"
#include "telemetry/frame.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

namespace {

/// Shared by the node jobs: the guarded counter behind
/// ExperimentConfig::progress.
struct ProgressState {
  Mutex mu;
  std::size_t done GPUVAR_GUARDED_BY(mu) = 0;
};

}  // namespace

ExperimentConfig default_config(const Cluster& cluster, WorkloadSpec workload,
                                int runs_per_gpu) {
  ExperimentConfig cfg;
  cfg.workload = std::move(workload);
  cfg.runs_per_gpu = runs_per_gpu;
  cfg.run_options = RunOptions::for_sku(cluster.sku());
  return cfg;
}

ExperimentResult run_experiment(const Cluster& cluster,
                                const ExperimentConfig& config) {
  config.workload.validate();
  GPUVAR_REQUIRE(config.runs_per_gpu >= 1);

  ExclusiveAllocator allocator(cluster);
  const auto allocations = allocator.sample_coverage(config.node_coverage);

  RunOptions opts = config.run_options;
  // Fold the day tag into seeds so Monday's transients differ from
  // Tuesday's while the hardware population stays identical.
  opts.run_salt = config.salt * 101 +
                  (config.day_of_week >= 0
                       ? static_cast<std::uint64_t>(config.day_of_week) + 1
                       : 0);

  // Lane 0 is the campaign timeline; each node job owns lane ai+1, so
  // the trace (like the frame) is a deterministic merge of per-job
  // streams whatever the pool size.
  obs::LaneScope campaign_lane(0, "campaign");
  GPUVAR_TRACE_SPAN("experiment", "run_experiment", "nodes",
                    static_cast<std::int64_t>(allocations.size()));
  GPUVAR_METRIC_MAX("experiment.nodes", allocations.size());
  GPUVAR_METRIC_MAX("experiment.runs_per_gpu", config.runs_per_gpu);

  // One frame bucket per node job: threads never share a bucket, and
  // finish() merges the buckets in allocation order, so the frame's row
  // stream is identical whatever the pool size or schedule.
  FrameBuilder builder(allocations.size());
  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::global();
  // Progress accounting shared with the node jobs. The workers take
  // prog.mu per completion; nothing may hold it across the dispatch
  // below or a worker would deadlock the pool (the lockorder pass's
  // lock-held-across-wait flagged the original launch guard here).
  ProgressState prog;
  pool.parallel_for(allocations.size(), [&](std::size_t ai) {
    const auto& alloc = allocations[ai];
    obs::LaneScope job_lane(static_cast<std::uint32_t>(ai) + 1,
                            "node " + std::to_string(alloc.node));
    GPUVAR_TRACE_SPAN("experiment", "node_job", "node", alloc.node);
    GPUVAR_METRIC_COUNT("experiment.node_jobs");
    auto& bucket = builder.bucket(ai);
    for (int run = 0; run < config.runs_per_gpu; ++run) {
      const auto results =
          run_on_node(cluster, alloc.node, config.workload, run, opts);
      for (const auto& res : results) {
        bucket.append_row(to_record(cluster, res, config.day_of_week));
      }
    }
    if (config.progress != nullptr) {
      MutexLock lock(prog.mu);
      ++prog.done;
      config.progress(prog.done, allocations.size());
    }
  });

  ExperimentResult out;
  out.nodes_measured = allocations.size();
  out.frame = builder.finish();
  // Distinct-GPU count straight off the interned pool — no aggregation.
  out.gpus_measured = out.frame.gpu_count();
  GPUVAR_METRIC_ADD("experiment.records", out.frame.size());
  return out;
}

}  // namespace gpuvar
