#include "core/experiment.hpp"

#include <utility>

#include "cluster/cluster.hpp"
#include "core/engine.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

ExperimentConfig default_config(const Cluster& cluster, WorkloadSpec workload,
                                int runs_per_gpu) {
  ExperimentConfig cfg;
  cfg.workload = std::move(workload);
  cfg.runs_per_gpu = runs_per_gpu;
  cfg.run_options = RunOptions::for_sku(cluster.sku());
  return cfg;
}

ExperimentResult run_experiment(const Cluster& cluster,
                                const ExperimentConfig& config) {
  // One cycle through the campaign engine with no checkpoint directory
  // and an unlimited shard budget: every bucket stays resident, nothing
  // touches disk, and the merged frame is byte-for-byte the engine's
  // in-memory path — run_experiment is now a name for that special
  // case, not a second implementation.
  CampaignResult r = run_campaign(cluster, config, CampaignOptions{});
  ExperimentResult out;
  out.frame = std::move(r.frame);
  out.gpus_measured = r.gpus_measured;
  out.nodes_measured = r.nodes_measured;
  return out;
}

}  // namespace gpuvar
