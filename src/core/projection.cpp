#include "core/projection.hpp"

#include "common/require.hpp"
#include "stats/boxplot.hpp"
#include "stats/normal.hpp"
#include "telemetry/frame.hpp"

namespace gpuvar {

SizeProjection project_to_cluster_size(const RecordFrame& frame,
                                       std::size_t target_gpus) {
  GPUVAR_REQUIRE(target_gpus >= 2);
  const auto gpus = per_gpu_medians(frame);
  GPUVAR_REQUIRE(gpus.size() >= 3);

  std::vector<double> perf;
  perf.reserve(gpus.size());
  for (const auto& g : gpus) perf.push_back(g.perf_ms);
  const auto box = stats::box_summary(perf);
  const auto healthy = stats::without_outliers(perf, box);
  GPUVAR_REQUIRE(healthy.size() >= 3);

  SizeProjection out;
  out.source_gpus = gpus.size();
  out.target_gpus = target_gpus;
  out.source_variation_pct = box.variation() * 100.0;
  out.projected_variation_pct =
      stats::project_variability(healthy, target_gpus) * 100.0;
  return out;
}

}  // namespace gpuvar
