#include "core/record.hpp"
#include "cluster/cluster.hpp"
#include "telemetry/record.hpp"
#include "telemetry/run_result.hpp"

namespace gpuvar {

RunRecord to_record(const Cluster& cluster, const GpuRunResult& result,
                    int day_of_week) {
  RunRecord r;
  r.gpu_index = result.gpu_index;
  r.loc = cluster.gpu(result.gpu_index).loc;
  r.run_index = result.run_index;
  r.day_of_week = day_of_week;
  r.perf_ms = result.perf_ms;
  r.freq_mhz = result.telemetry.freq.median;
  r.power_w = result.telemetry.power.median;
  r.temp_c = result.telemetry.temp.median;
  r.counters = result.counters;
  return r;
}

}  // namespace gpuvar
