// Temporal drift detection for periodic variability benchmarking.
//
// §VII "Blacklisting, Maintenance": operators should benchmark
// periodically so a degrading GPU is caught *before* it gates every
// bulk-synchronous job scheduled onto it. Given a run history per GPU
// (ordered by run index — days or weeks of canary runs), this detector
// compares an exponentially weighted moving average of recent runs
// against the GPU's own early baseline, normalized by the population's
// run-to-run noise. A healthy GPU (the paper: "ill-performing GPUs are
// consistently ill-performing", i.e. *stable*) never trips it; a clogged
// heatsink or degrading VRM shows up as a sustained upward runtime trend.
#pragma once

#include <string>
#include <vector>

namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"
namespace gpuvar::query { class Source; }  // was: #include "query/source.hpp"

namespace gpuvar {

struct DriftOptions {
  double ewma_alpha = 0.3;       ///< weight of the newest run
  int baseline_runs = 3;         ///< first runs forming the baseline
  int min_runs = 6;              ///< GPUs with fewer runs are skipped
  /// Flag when |EWMA - baseline| exceeds this many population noise
  /// sigmas AND this relative change.
  double threshold_sigmas = 4.0;
  double min_drift_fraction = 0.01;
};

struct DriftFlag {
  std::size_t gpu_index = 0;
  std::string name;
  int runs = 0;
  double baseline_ms = 0.0;   ///< median of the early runs
  double recent_ewma_ms = 0.0;
  double drift_pct = 0.0;     ///< (recent - baseline) / baseline * 100
  double noise_sigmas = 0.0;  ///< drift magnitude in noise units
};

/// Population run-to-run noise estimate: median absolute successive
/// difference of per-GPU runs, scaled to a sigma (MAD * 1.4826 / sqrt 2).
double estimate_run_noise_ms(const query::Source& source);
double estimate_run_noise_ms(const RecordFrame& frame);

/// Detects sustained performance drift per GPU; returns flags sorted by
/// |drift| descending. Positive drift_pct = getting slower.
std::vector<DriftFlag> analyze_drift(const query::Source& source,
                                     const DriftOptions& options = {});

/// Forwarding shim (one deprecation cycle): prefer analyze_drift.
// gpuvar-lint: allow(analysis-signature)
std::vector<DriftFlag> detect_performance_drift(
    const RecordFrame& frame, const DriftOptions& options = {});

}  // namespace gpuvar
