#include "core/classify.hpp"
#include "telemetry/counters.hpp"

namespace gpuvar {

std::string to_string(AppClass c) {
  switch (c) {
    case AppClass::kComputeBound:
      return "compute-bound";
    case AppClass::kMemoryBandwidthBound:
      return "memory-bandwidth-bound";
    case AppClass::kMemoryLatencyBound:
      return "memory-latency-bound";
    case AppClass::kBalanced:
      return "balanced";
  }
  return "unknown";
}

AppClass classify_application(const ProfilerCounters& c) {
  // Thresholds follow the paper's exemplars: SGEMM (FU 10, stalls 3%) is
  // compute-bound; LAMMPS (DRAM util ~9, mem stalls 7%) bandwidth-bound;
  // PageRank (61% memory-dependency stalls, low DRAM util) latency-bound;
  // ResNet/BERT (FU ~5) balanced.
  if (c.mem_stall_frac >= 0.40) return AppClass::kMemoryLatencyBound;
  if (c.dram_util >= 5.0) return AppClass::kMemoryBandwidthBound;
  if (c.fu_util >= 7.0) return AppClass::kComputeBound;
  return AppClass::kBalanced;
}

PlacementAdvice advise_placement(const ProfilerCounters& c) {
  PlacementAdvice advice;
  advice.app_class = classify_application(c);
  switch (advice.app_class) {
    case AppClass::kComputeBound:
      advice.tolerates_variable_nodes = false;
      advice.frequency_sensitivity_pct = 1.0;  // runtime ∝ 1/f
      advice.note =
          "runtime tracks the SM clock: schedule on low-variation nodes";
      break;
    case AppClass::kBalanced:
      advice.tolerates_variable_nodes = false;
      advice.frequency_sensitivity_pct = 0.6;
      advice.note =
          "mixed kernels: prefer low-variation nodes, especially for "
          "bulk-synchronous multi-GPU jobs";
      break;
    case AppClass::kMemoryBandwidthBound:
    case AppClass::kMemoryLatencyBound:
      advice.tolerates_variable_nodes = true;
      advice.frequency_sensitivity_pct = 0.1;
      advice.note =
          "runtime is clock-insensitive: safe to place on high-variation "
          "nodes without significant performance loss";
      break;
  }
  return advice;
}

}  // namespace gpuvar
