#include "core/compare.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/require.hpp"
#include "core/drift.hpp"
#include "query/source.hpp"
#include "stats/kernels.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

CampaignComparison analyze_compare(const query::Source& before,
                                   const query::Source& after,
                                   const CompareOptions& options) {
  GPUVAR_REQUIRE(!before.empty() && !after.empty());
  GPUVAR_REQUIRE(options.significance_sigmas > 0.0);

  const auto before_gpus = per_gpu_medians(before);
  const auto after_gpus = per_gpu_medians(after);
  std::map<std::string, const GpuAggregate*> by_name;
  for (const auto& g : before_gpus) by_name.emplace(g.loc.name, &g);

  CampaignComparison cmp;

  // Noise floor: run-to-run noise of whichever campaign has repeats;
  // fall back to the other, then to zero (single-run campaigns).
  double noise_ms = 0.0;
  for (const query::Source* campaign : {&before, &after}) {
    try {
      noise_ms = std::max(noise_ms, estimate_run_noise_ms(*campaign));
    } catch (const std::invalid_argument&) {
      // single-run campaign: no successive differences available
    }
  }

  std::vector<double> deltas;
  for (const auto& g : after_gpus) {
    const auto it = by_name.find(g.loc.name);
    if (it == by_name.end()) {
      ++cmp.only_after;
      continue;
    }
    const GpuAggregate& b = *it->second;
    GpuDelta d;
    d.name = g.loc.name;
    d.before_ms = b.perf_ms;
    d.after_ms = g.perf_ms;
    GPUVAR_ASSERT(b.perf_ms > 0.0);
    d.delta_pct = (g.perf_ms - b.perf_ms) / b.perf_ms * 100.0;
    d.before_power_w = b.power_w;
    d.after_power_w = g.power_w;
    d.before_temp_c = b.temp_c;
    d.after_temp_c = g.temp_c;
    deltas.push_back(d.delta_pct);
    cmp.all.push_back(std::move(d));
    ++cmp.matched_gpus;
  }
  cmp.only_before = before_gpus.size() - cmp.matched_gpus;
  GPUVAR_REQUIRE_MSG(cmp.matched_gpus > 0,
                     "campaigns share no GPU names");

  // Both inputs are scratch vectors, so select the medians in place.
  cmp.median_delta_pct = stats::kernels::median_inplace(deltas);
  std::vector<double> before_ms;
  before_ms.reserve(cmp.all.size());
  for (const auto& d : cmp.all) before_ms.push_back(d.before_ms);
  const double median_before = stats::kernels::median_inplace(before_ms);
  cmp.noise_floor_pct =
      median_before > 0.0 ? noise_ms / median_before * 100.0 : 0.0;

  const double threshold_pct =
      std::max(options.significance_sigmas * cmp.noise_floor_pct,
               options.min_delta_fraction * 100.0);
  for (const auto& d : cmp.all) {
    if (std::abs(d.delta_pct) >= threshold_pct) {
      cmp.significant.push_back(d);
    }
  }
  std::sort(cmp.significant.begin(), cmp.significant.end(),
            [](const GpuDelta& a, const GpuDelta& b) {
              // Magnitude descending; the (unique) GPU name breaks float
              // ties deterministically.
              const double ka = std::abs(a.delta_pct);
              const double kb = std::abs(b.delta_pct);
              return ka != kb ? ka > kb : a.name < b.name;
            });
  return cmp;
}

CampaignComparison compare_campaigns(const RecordFrame& before,
                                     const RecordFrame& after,
                                     const CompareOptions& options) {
  return analyze_compare(query::Source(before), query::Source(after), options);
}

}  // namespace gpuvar
