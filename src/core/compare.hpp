// Campaign comparison: the before/after-maintenance workflow.
//
// Operators acting on flag reports (§VII) need to verify the fix: did
// replacing the GPU / fixing the pump actually move the numbers? This
// module matches two campaigns' records by GPU name and reports per-GPU
// deltas, the population-level shift, and the GPUs whose change clears
// the fleet's run-to-run noise floor.
#pragma once

#include <string>
#include <vector>

namespace gpuvar { class RecordFrame; }  // was: #include "telemetry/frame.hpp"
namespace gpuvar::query { class Source; }  // was: #include "query/source.hpp"

namespace gpuvar {

struct GpuDelta {
  std::string name;
  double before_ms = 0.0;  ///< per-GPU median, first campaign
  double after_ms = 0.0;   ///< per-GPU median, second campaign
  double delta_pct = 0.0;  ///< (after - before) / before * 100
  double before_power_w = 0.0;
  double after_power_w = 0.0;
  double before_temp_c = 0.0;
  double after_temp_c = 0.0;
};

struct CampaignComparison {
  std::size_t matched_gpus = 0;      ///< present in both campaigns
  std::size_t only_before = 0;       ///< measured only in the first
  std::size_t only_after = 0;        ///< measured only in the second
  double median_delta_pct = 0.0;     ///< population-level shift
  double noise_floor_pct = 0.0;      ///< run-to-run noise, as % of median
  /// GPUs whose |delta| exceeds `significance_sigmas` noise floors,
  /// sorted by |delta| descending.
  std::vector<GpuDelta> significant;
  /// All matched GPUs (same order as significant's superset, by name).
  std::vector<GpuDelta> all;
};

struct CompareOptions {
  double significance_sigmas = 3.0;
  /// Ignore deltas below this fraction even if they clear the noise test.
  double min_delta_fraction = 0.005;
};

/// Matches records by GPU name. Requires each campaign to be non-empty
/// and at least one GPU to appear in both.
CampaignComparison analyze_compare(const query::Source& before,
                                   const query::Source& after,
                                   const CompareOptions& options = {});

/// Forwarding shim (one deprecation cycle): prefer analyze_compare.
// gpuvar-lint: allow(analysis-signature)
CampaignComparison compare_campaigns(const RecordFrame& before,
                                     const RecordFrame& after,
                                     const CompareOptions& options = {});

}  // namespace gpuvar
