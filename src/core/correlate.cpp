#include "core/correlate.hpp"

#include "common/require.hpp"
#include "query/source.hpp"
#include "stats/correlation.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

MetricCorrelation correlate_pair(const query::Source& source, Metric x,
                                 Metric y) {
  GPUVAR_REQUIRE(source.size() >= 2);
  MetricCorrelation out;
  out.x = x;
  out.y = y;
  // Column views; the stats layer takes spans directly.
  const auto xs = source.metric(x);
  const auto ys = source.metric(y);
  out.rho = stats::pearson(xs, ys);
  out.spearman = stats::spearman(xs, ys);
  out.strength = stats::correlation_strength(out.rho);
  return out;
}

MetricCorrelation correlate_pair(const RecordFrame& frame, Metric x,
                                 Metric y) {
  return correlate_pair(query::Source(frame), x, y);
}

CorrelationReport analyze_correlation(const query::Source& source,
                                      const CorrelateOptions&) {
  CorrelationReport r;
  r.perf_temp = correlate_pair(source, Metric::kTemp, Metric::kPerf);
  r.perf_power = correlate_pair(source, Metric::kPower, Metric::kPerf);
  r.perf_freq = correlate_pair(source, Metric::kFreq, Metric::kPerf);
  r.power_temp = correlate_pair(source, Metric::kTemp, Metric::kPower);
  return r;
}

CorrelationReport correlate_metrics(const RecordFrame& frame) {
  return analyze_correlation(query::Source(frame));
}

}  // namespace gpuvar
