#include "core/correlate.hpp"

#include "common/require.hpp"
#include "stats/correlation.hpp"

namespace gpuvar {

MetricCorrelation correlate_pair(std::span<const RunRecord> records, Metric x,
                                 Metric y) {
  GPUVAR_REQUIRE(records.size() >= 2);
  MetricCorrelation out;
  out.x = x;
  out.y = y;
  const auto xs = metric_column(records, x);
  const auto ys = metric_column(records, y);
  out.rho = stats::pearson(xs, ys);
  out.spearman = stats::spearman(xs, ys);
  out.strength = stats::correlation_strength(out.rho);
  return out;
}

CorrelationReport correlate_metrics(std::span<const RunRecord> records) {
  CorrelationReport r;
  r.perf_temp = correlate_pair(records, Metric::kTemp, Metric::kPerf);
  r.perf_power = correlate_pair(records, Metric::kPower, Metric::kPerf);
  r.perf_freq = correlate_pair(records, Metric::kFreq, Metric::kPerf);
  r.power_temp = correlate_pair(records, Metric::kTemp, Metric::kPower);
  return r;
}

}  // namespace gpuvar
