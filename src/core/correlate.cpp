#include "core/correlate.hpp"

#include "common/require.hpp"
#include "stats/correlation.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

MetricCorrelation correlate_pair(const RecordFrame& frame, Metric x,
                                 Metric y) {
  GPUVAR_REQUIRE(frame.size() >= 2);
  MetricCorrelation out;
  out.x = x;
  out.y = y;
  // Zero-copy column views; the stats layer takes spans directly.
  const auto xs = metric_column(frame, x);
  const auto ys = metric_column(frame, y);
  out.rho = stats::pearson(xs, ys);
  out.spearman = stats::spearman(xs, ys);
  out.strength = stats::correlation_strength(out.rho);
  return out;
}

CorrelationReport correlate_metrics(const RecordFrame& frame) {
  CorrelationReport r;
  r.perf_temp = correlate_pair(frame, Metric::kTemp, Metric::kPerf);
  r.perf_power = correlate_pair(frame, Metric::kPower, Metric::kPerf);
  r.perf_freq = correlate_pair(frame, Metric::kFreq, Metric::kPerf);
  r.power_temp = correlate_pair(frame, Metric::kTemp, Metric::kPower);
  return r;
}

}  // namespace gpuvar
