#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "query/source.hpp"
#include "stats/kernels.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"

namespace gpuvar {

namespace {

/// One GPU's (run_index, perf_ms) history in chronological order,
/// gathered from the grouped row indices. Sorting the pairs
/// lexicographically matches the legacy row path exactly (ties on
/// run_index fall back to perf).
std::vector<std::pair<int, double>> gpu_history(
    std::span<const double> perf, std::span<const std::int32_t> run,
    const GpuRowGroups& groups, std::uint32_t id) {
  std::vector<std::pair<int, double>> out;
  const std::size_t begin = groups.offsets[id];
  const std::size_t end = groups.offsets[id + 1];
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t row = groups.rows[i];
    out.emplace_back(run[row], perf[row]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double estimate_run_noise_ms(const query::Source& source) {
  const auto groups = group_rows_by_gpu(source);
  const auto perf = source.metric(Metric::kPerf);
  const auto run = source.run_indices();
  std::vector<double> abs_diffs;
  for (std::uint32_t id : groups.order) {
    const auto runs = gpu_history(perf, run, groups, id);
    for (std::size_t i = 1; i < runs.size(); ++i) {
      abs_diffs.push_back(std::abs(runs[i].second - runs[i - 1].second));
    }
  }
  GPUVAR_REQUIRE_MSG(!abs_diffs.empty(),
                     "need at least one GPU with two runs");
  // MAD of successive differences -> sigma: each diff is N(0, sqrt(2)·σ),
  // and median(|N(0,s)|) = s / 1.4826. abs_diffs is scratch, so select
  // the median in place instead of sorting a copy.
  return stats::kernels::median_inplace(abs_diffs) * 1.4826 / std::sqrt(2.0);
}

double estimate_run_noise_ms(const RecordFrame& frame) {
  return estimate_run_noise_ms(query::Source(frame));
}

std::vector<DriftFlag> analyze_drift(const query::Source& source,
                                     const DriftOptions& options) {
  GPUVAR_REQUIRE(!source.empty());
  GPUVAR_REQUIRE(options.ewma_alpha > 0.0 && options.ewma_alpha <= 1.0);
  GPUVAR_REQUIRE(options.baseline_runs >= 1);
  GPUVAR_REQUIRE(options.min_runs > options.baseline_runs);

  const double noise_sigma = estimate_run_noise_ms(source);
  const auto groups = group_rows_by_gpu(source);
  const auto perf = source.metric(Metric::kPerf);
  const auto run = source.run_indices();

  std::vector<DriftFlag> flags;
  for (std::uint32_t id : groups.order) {
    const auto runs = gpu_history(perf, run, groups, id);
    if (static_cast<int>(runs.size()) < options.min_runs) continue;

    std::vector<double> early;
    for (int i = 0; i < options.baseline_runs; ++i) {
      early.push_back(runs[static_cast<std::size_t>(i)].second);
    }
    const double baseline = stats::kernels::median_inplace(early);
    GPUVAR_ASSERT(baseline > 0.0);

    double ewma = baseline;
    for (std::size_t i = static_cast<std::size_t>(options.baseline_runs);
         i < runs.size(); ++i) {
      ewma = options.ewma_alpha * runs[i].second +
             (1.0 - options.ewma_alpha) * ewma;
    }

    const double drift = ewma - baseline;
    // The EWMA of m-effective samples has sd ≈ σ·sqrt(α/(2-α)); be
    // conservative and compare against one run's σ directly.
    const double sigmas = noise_sigma > 0.0
                              ? std::abs(drift) / noise_sigma
                              : (drift == 0.0 ? 0.0 : 1e18);
    if (sigmas >= options.threshold_sigmas &&
        std::abs(drift) / baseline >= options.min_drift_fraction) {
      const GpuRef& g = source.gpu(id);
      DriftFlag f;
      f.gpu_index = g.gpu_index;
      f.name = g.loc.name;
      f.runs = static_cast<int>(runs.size());
      f.baseline_ms = baseline;
      f.recent_ewma_ms = ewma;
      f.drift_pct = drift / baseline * 100.0;
      f.noise_sigmas = sigmas;
      flags.push_back(std::move(f));
    }
  }
  std::sort(flags.begin(), flags.end(),
            [](const DriftFlag& a, const DriftFlag& b) {
              // Magnitude descending, gpu_index breaking float ties.
              const double ka = std::abs(a.drift_pct);
              const double kb = std::abs(b.drift_pct);
              return ka != kb ? ka > kb : a.gpu_index < b.gpu_index;
            });
  return flags;
}

std::vector<DriftFlag> detect_performance_drift(const RecordFrame& frame,
                                                const DriftOptions& options) {
  return analyze_drift(query::Source(frame), options);
}

}  // namespace gpuvar
