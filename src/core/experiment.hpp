// The experiment runner: the paper's data-collection campaign in code.
//
// For a (cluster, workload) pair it allocates nodes exclusively, performs
// the configured number of runs per GPU (each preceded by the workload's
// warm-up), and returns flattened RunRecords. Node jobs are independent,
// so they execute in parallel on the host thread pool; determinism is
// preserved because every random draw is keyed by (cluster seed, GPU
// path, run index), never by scheduling order.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
namespace gpuvar { class ThreadPool; }  // was: #include "common/thread_pool.hpp"
#include "telemetry/frame.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

/// Campaign progress callback: (node jobs completed, node jobs total).
/// Invoked from pool worker threads as each node job finishes, so it
/// must be cheap and must not touch the pool (no submit/wait from
/// inside the callback).
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

struct ExperimentConfig {
  WorkloadSpec workload;
  int runs_per_gpu = 3;
  /// Fraction of nodes measured (the paper covers >90% of each cluster).
  double node_coverage = 1.0;
  RunOptions run_options;
  /// Day-of-week tag stamped on the records (-1 = untagged); also folded
  /// into the run seeds so different days draw fresh transient noise.
  int day_of_week = -1;
  /// Extra salt for independent repetitions of the same campaign.
  std::uint64_t salt = 0;
  /// Called as node jobs complete (long campaigns: summit is 27k GPUs).
  /// Null = no reporting. Calls are serialized; counts are monotone.
  ProgressFn progress;
  /// Pool to parallelize node jobs on; null = the process-global pool.
  /// Results are byte-identical for any pool size (the determinism_replay
  /// test pins this): records land in per-node buckets concatenated in
  /// node order, and every random draw is seed-path-keyed.
  ThreadPool* pool = nullptr;
};

struct ExperimentResult {
  /// The canonical columnar interchange: every analysis takes this.
  RecordFrame frame;
  std::size_t gpus_measured = 0;
  std::size_t nodes_measured = 0;
};

/// Runs the full campaign. Thread-safe; parallel across nodes.
ExperimentResult run_experiment(const Cluster& cluster,
                                const ExperimentConfig& config);

/// Convenience: a ready-to-run config with sensible defaults for a SKU
/// (tick at the control period, summary-only telemetry).
ExperimentConfig default_config(const Cluster& cluster,
                                WorkloadSpec workload, int runs_per_gpu = 3);

}  // namespace gpuvar
