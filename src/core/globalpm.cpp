#include "core/globalpm.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "gpu/power_model.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "core/experiment.hpp"
#include "core/record.hpp"
#include "gpu/kernel.hpp"
#include "telemetry/frame.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

Watts PowerAssignment::total() const {
  Watts sum{};
  for (Watts w : limits) sum += w;
  return sum;
}

PowerAssignment uniform_assignment(const Cluster& cluster, Watts envelope) {
  GPUVAR_REQUIRE(envelope > Watts{});
  GPUVAR_REQUIRE(cluster.size() > 0);
  PowerAssignment a;
  const Watts each =
      std::min(cluster.sku().tdp,
               envelope / static_cast<double>(cluster.size()));
  a.limits.assign(cluster.size(), each);
  return a;
}

Watts predicted_steady_power(const Cluster& cluster, std::size_t i,
                             const KernelSpec& kernel, MegaHertz f) {
  const auto& inst = cluster.gpu(i);
  PowerModel pm(cluster.sku(), inst.silicon);
  const double activity =
      effective_activity(kernel, cluster.sku(), inst.silicon, f);
  // Thermal/leakage fixed point at this operating point.
  Celsius t = inst.thermal.coolant;
  for (int it = 0; it < 40; ++it) {
    const Watts p = pm.total_power(f, activity, t);
    const Celsius next =
        inst.thermal.coolant + Celsius{p.value() * inst.thermal.r_c_per_w};
    if (abs(next - t) < Celsius{1e-6}) break;
    t = next;
  }
  return pm.total_power(f, activity, t);
}

PowerAssignment equal_frequency_assignment(const Cluster& cluster,
                                           Watts envelope,
                                           const KernelSpec& kernel) {
  GPUVAR_REQUIRE(envelope > Watts{});
  kernel.validate();
  const auto ladder = cluster.sku().frequency_ladder();

  // Highest common frequency whose total predicted power fits.
  PowerAssignment best;
  std::vector<Watts> predicted(cluster.size(), Watts{});
  for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
    const MegaHertz f = *it;
    Watts total{};
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      predicted[i] = predicted_steady_power(cluster, i, kernel, f);
      total += predicted[i];
    }
    if (total <= envelope) {
      best.target_freq = f;
      best.limits.resize(cluster.size());
      // Distribute the leftover headroom evenly so Σ limits == envelope.
      const Watts spare =
          (envelope - total) / static_cast<double>(cluster.size());
      for (std::size_t i = 0; i < cluster.size(); ++i) {
        best.limits[i] = std::min(cluster.sku().tdp, predicted[i] + spare);
      }
      return best;
    }
  }
  // Envelope below even the floor state: fall back to uniform.
  return uniform_assignment(cluster, envelope);
}

ExperimentResult run_under_assignment(const Cluster& cluster,
                                      const WorkloadSpec& workload,
                                      const PowerAssignment& assignment,
                                      int runs_per_gpu) {
  workload.validate();
  GPUVAR_REQUIRE_MSG(workload.gpus_per_job == 1,
                     "per-GPU assignments need single-GPU jobs");
  GPUVAR_REQUIRE(assignment.limits.size() == cluster.size());
  GPUVAR_REQUIRE(runs_per_gpu >= 1);

  FrameBuilder builder(cluster.size());
  parallel_for(cluster.size(), [&](std::size_t gi) {
    RunOptions opts = RunOptions::for_sku(cluster.sku());
    opts.power_limit_override = assignment.limits[gi];
    for (int run = 0; run < runs_per_gpu; ++run) {
      const auto res = run_on_gpu(cluster, gi, workload, run, opts);
      builder.bucket(gi).append_row(to_record(cluster, res));
    }
  });

  ExperimentResult out;
  out.nodes_measured = static_cast<std::size_t>(cluster.node_count());
  out.frame = builder.finish();
  out.gpus_measured = cluster.size();
  return out;
}

}  // namespace gpuvar
