// The `gpuvar` command-line driver, as a testable library. Subcommands:
//
//   clusters                         list the built-in cluster models
//   workloads                        list the built-in workload models
//   simulate  --cluster L --workload W [--runs N] [--reps N]
//             [--coverage F] [--power-limit W] [--out FILE]
//                                    run a campaign, emit a results CSV
//   analyze   FILE.csv               variability + correlation report
//   flag      FILE.csv [--slowdown-temp T]
//                                    operator early-warning report
//   project   FILE.csv --target N    scaled-normal cluster-size projection
//
// `analyze`, `flag` and `project` consume any CSV with the results schema
// — including ones collected on real hardware — so the suite works as a
// standalone fleet-analysis tool, not only with the simulator.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "workloads/workload.hpp"

namespace gpuvar::cli {

/// Known cluster names for --cluster.
std::vector<std::string> cluster_names();
/// Builds a spec by name; throws std::invalid_argument on unknown names.
ClusterSpec cluster_by_name(const std::string& name);

/// Known workload names for --workload.
std::vector<std::string> workload_names();
/// Builds a workload by name with an iteration/repetition override
/// (<= 0 keeps the paper's default).
WorkloadSpec workload_by_name(const std::string& name, int iterations = 0);

/// Entry point. Returns the process exit code; writes human output to
/// `out` and errors/usage to `err`. Never throws.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace gpuvar::cli
