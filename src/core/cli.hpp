// The `gpuvar` command-line driver, as a testable library. Subcommands:
//
//   clusters                         list the built-in cluster models
//   workloads                        list the built-in workload models
//   simulate  --cluster L --workload W [--runs N] [--reps N]
//             [--coverage F] [--power-limit W] [--out FILE]
//             [--trace FILE] [--metrics FILE]
//                                    run a campaign, emit a results CSV
//                                    (plus a Chrome trace / metrics dump)
//   analyze   FILE.csv               variability + correlation report
//   flag      FILE.csv [--slowdown-temp T]
//                                    operator early-warning report
//   project   FILE.csv --target N    scaled-normal cluster-size projection
//   query     DIR [--analysis A] [--where F=LO..HI,...]
//                                    stream an analysis straight off a
//                                    checkpointed campaign store
//
// `analyze`, `flag` and `project` consume any CSV with the results schema
// — including ones collected on real hardware — so the suite works as a
// standalone fleet-analysis tool, not only with the simulator.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "workloads/workload.hpp"

namespace gpuvar::cli {

/// One row of the cluster registry: the single source of truth behind
/// name resolution, the `clusters` listing, and error suggestions.
struct ClusterEntry {
  const char* name;
  const char* description;
  /// Hidden entries resolve by name but stay out of listings (variants
  /// like summit-full that exist for scripting, not discovery).
  bool hidden;
  ClusterSpec (*make)();
};

/// One row of the workload registry (see ClusterEntry). The factory
/// receives the iteration override already defaulted.
struct WorkloadEntry {
  const char* name;
  const char* description;
  bool hidden;
  int default_iterations;
  WorkloadSpec (*make)(int iterations);
};

/// One flag a subcommand accepts. A null value_hint marks a boolean
/// flag (present/absent, no value token follows it).
struct FlagSpec {
  const char* name;        ///< without the leading "--"
  const char* value_hint;  ///< e.g. "N", "FILE"; nullptr = boolean
  const char* description;
};

/// One subcommand row: the same single-table discipline as
/// ClusterEntry/WorkloadEntry, extended to the command plane. The table
/// drives dispatch, the usage renderer, and unknown-flag suggestions —
/// adding a command or flag is one row, never three hand-kept lists.
struct CommandSpec {
  const char* name;
  const char* args_hint;  ///< positional args, e.g. "FILE.csv"; "" if none
  const char* description;
  std::span<const FlagSpec> flags;
};

/// The full registries, hidden entries included.
std::span<const ClusterEntry> cluster_registry();
std::span<const WorkloadEntry> workload_registry();
std::span<const CommandSpec> command_registry();

/// Builds a spec by name; throws std::invalid_argument on unknown names,
/// listing the valid ones.
ClusterSpec cluster_by_name(const std::string& name);

/// Builds a workload by name with an iteration/repetition override
/// (<= 0 keeps the paper's default). Unknown names throw
/// std::invalid_argument, listing the valid ones.
WorkloadSpec workload_by_name(const std::string& name, int iterations = 0);

/// Entry point. Returns the process exit code; writes human output to
/// `out` and errors/usage to `err`. Never throws.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace gpuvar::cli
