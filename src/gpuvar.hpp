// gpuvar — umbrella header.
//
// A characterization suite for performance/power/thermal variability in
// large-scale, accelerator-rich systems, reproducing Sinha et al.,
// "Not All GPUs Are Created Equal" (SC '22), together with the simulated
// GPU-cluster substrate it runs on.
//
// Typical flow:
//   auto cluster = gpuvar::Cluster(gpuvar::longhorn_spec());
//   auto cfg = gpuvar::default_config(cluster, gpuvar::sgemm_workload());
//   auto result = gpuvar::run_experiment(cluster, cfg);
//   auto report = gpuvar::analyze_variability(result.frame);
//
// Checkpointed campaigns can also be analyzed without materializing:
//   auto dataset = gpuvar::query::Dataset::open(dir);
//   auto report = gpuvar::analyze_variability(gpuvar::query::Source(dataset));
#pragma once

#include "cluster/allocator.hpp"   // IWYU pragma: export
#include "cluster/cluster.hpp"     // IWYU pragma: export
#include "cluster/faults.hpp"      // IWYU pragma: export
#include "workloads/tenancy.hpp"     // IWYU pragma: export
#include "cluster/topology.hpp"    // IWYU pragma: export
#include "common/csv.hpp"          // IWYU pragma: export
#include "common/location.hpp"     // IWYU pragma: export
#include "common/csv_reader.hpp"   // IWYU pragma: export
#include "common/require.hpp"      // IWYU pragma: export
#include "common/rng.hpp"          // IWYU pragma: export
#include "common/thread_pool.hpp"  // IWYU pragma: export
#include "common/units.hpp"        // IWYU pragma: export
#include "core/classify.hpp"       // IWYU pragma: export
#include "core/compare.hpp"        // IWYU pragma: export
#include "core/correlate.hpp"      // IWYU pragma: export
#include "core/engine.hpp"         // IWYU pragma: export
#include "core/experiment.hpp"     // IWYU pragma: export
#include "core/drift.hpp"          // IWYU pragma: export
#include "core/flagging.hpp"       // IWYU pragma: export
#include "core/globalpm.hpp"       // IWYU pragma: export
#include "core/markdown_report.hpp" // IWYU pragma: export
#include "core/projection.hpp"     // IWYU pragma: export
#include "core/record.hpp"         // IWYU pragma: export
#include "core/report.hpp"         // IWYU pragma: export
#include "core/scheduler.hpp"      // IWYU pragma: export
#include "core/user_impact.hpp"    // IWYU pragma: export
#include "core/variability.hpp"    // IWYU pragma: export
#include "gpu/device.hpp"          // IWYU pragma: export
#include "gpu/dvfs.hpp"            // IWYU pragma: export
#include "gpu/kernel.hpp"          // IWYU pragma: export
#include "gpu/power_model.hpp"     // IWYU pragma: export
#include "gpu/silicon.hpp"         // IWYU pragma: export
#include "gpu/sku.hpp"             // IWYU pragma: export
#include "hostbench/graph.hpp"        // IWYU pragma: export
#include "obs/export.hpp"          // IWYU pragma: export
#include "obs/metrics.hpp"         // IWYU pragma: export
#include "obs/trace.hpp"           // IWYU pragma: export
#include "query/dataset.hpp"       // IWYU pragma: export
#include "query/source.hpp"        // IWYU pragma: export
#include "hostbench/host_device.hpp"  // IWYU pragma: export
#include "hostbench/matrix.hpp"       // IWYU pragma: export
#include "hostbench/pagerank_cpu.hpp" // IWYU pragma: export
#include "hostbench/sgemm_cpu.hpp"    // IWYU pragma: export
#include "hostbench/spmv_cpu.hpp"     // IWYU pragma: export
#include "hostbench/stream_cpu.hpp"   // IWYU pragma: export
#include "stats/ascii_plot.hpp"    // IWYU pragma: export
#include "stats/bootstrap.hpp"     // IWYU pragma: export
#include "stats/boxplot.hpp"       // IWYU pragma: export
#include "stats/correlation.hpp"   // IWYU pragma: export
#include "stats/descriptive.hpp"   // IWYU pragma: export
#include "stats/histogram.hpp"     // IWYU pragma: export
#include "stats/kernels.hpp"       // IWYU pragma: export
#include "stats/normal.hpp"        // IWYU pragma: export
#include "stats/quantile.hpp"      // IWYU pragma: export
#include "stats/sampling.hpp"      // IWYU pragma: export
#include "telemetry/counters.hpp"  // IWYU pragma: export
#include "telemetry/frame.hpp"     // IWYU pragma: export
#include "telemetry/shard.hpp"     // IWYU pragma: export
#include "telemetry/record.hpp"    // IWYU pragma: export
#include "telemetry/run_result.hpp" // IWYU pragma: export
#include "telemetry/export.hpp"    // IWYU pragma: export
#include "gpu/pmapi.hpp"     // IWYU pragma: export
#include "gpu/sampler.hpp"   // IWYU pragma: export
#include "gpu/timeseries.hpp" // IWYU pragma: export
#include "thermal/cooling.hpp"     // IWYU pragma: export
#include "thermal/thermal.hpp"     // IWYU pragma: export
#include "workloads/runner.hpp"    // IWYU pragma: export
#include "workloads/workload.hpp"  // IWYU pragma: export
