// PageRank over a rajat30-like circuit-simulation graph (§V-D).
//
// Pull-based PageRank is an SpMV per sweep: its access pattern is highly
// irregular, so it is *latency*-bound rather than bandwidth-bound — the
// paper measures 61% memory-dependency stalls (vs 7% for LAMMPS, 3% for
// SGEMM), 4.24× lower DRAM utilization than LAMMPS, and negligible FU
// execution-dependency stalls (12× less than SGEMM). The chip spends its
// time waiting, so power is low, the clock pins at boost, and performance
// variability is ~1%.
#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

namespace {

KernelSpec spmv_kernel() {
  // rajat30: 643,994 vertices, ~6.2M non-zeros. One launch performs a
  // batch of 30 sweeps so the kernel comfortably exceeds the profilers'
  // 1 ms sampling floor (the paper's input-size tuning rule, §III).
  KernelSpec k;
  k.name = "pagerank_spmv";
  const double nnz = 6.18e6;
  const double n = 643994.0;
  const double bytes_per_sweep = nnz * 8.0 + n * 12.0;
  k.bytes = 30.0 * bytes_per_sweep;
  k.flops = 30.0 * 2.0 * nnz;
  k.compute_efficiency = 0.05;
  k.bw_efficiency = 0.08;  // random-access effective bandwidth
  k.activity = 0.42;
  k.stall_activity_floor = 0.25;  // latency-bound: chip mostly idles
  k.fu_util = 0.6;
  k.dram_util = 2.2;
  k.mem_stall_frac = 0.61;
  k.exec_stall_frac = 0.03;
  k.validate();
  return k;
}

}  // namespace

WorkloadSpec pagerank_workload(int sweeps) {
  WorkloadSpec w;
  w.name = "pagerank-rajat30";
  w.metric = PerfMetric::kKernelMedian;
  w.gpus_per_job = 1;
  w.iterations = sweeps;
  w.warmup_iterations = 2;
  w.iteration.push_back(KernelStep{spmv_kernel(), 1, true});
  w.inter_kernel_gap = Seconds{0.001};
  w.gpu_sensitivity_sigma = 0.0;
  return w;
}

}  // namespace gpuvar
