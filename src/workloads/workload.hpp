// Workload descriptions (Table II).
//
// A workload is a per-iteration kernel sequence plus a performance-metric
// definition. The paper's metric differs per application (§V):
//   SGEMM            — median kernel duration over 100 repetitions
//   ResNet-50 / BERT — median iteration duration (kernels too short/many)
//   LAMMPS           — sum of the long kernels' durations (98% of runtime)
//   PageRank         — median kernel duration
//
// `gpu_sensitivity_sigma` models the per-GPU persistent spread of the
// non-SM-frequency path (memory subsystem, host preprocessing, NCCL/
// framework efficiency). Pure single-kernel workloads like SGEMM have
// essentially none; full training frameworks have the most — which is why
// the paper finds variability to be application-specific (Takeaway 5).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

enum class PerfMetric {
  kKernelMedian,    ///< median duration of long kernels (ms)
  kIterationMedian, ///< median iteration duration (ms)
  kLongKernelSum,   ///< total duration of long kernels over the run (ms)
};

std::string to_string(PerfMetric m);

struct KernelStep {
  KernelSpec kernel;
  int count = 1;           ///< consecutive launches of this kernel
  bool long_kernel = true; ///< participates in the performance metric
};

struct WorkloadSpec {
  std::string name;
  PerfMetric metric = PerfMetric::kKernelMedian;
  int gpus_per_job = 1;
  int iterations = 100;
  int warmup_iterations = 2;
  std::vector<KernelStep> iteration;
  Seconds inter_kernel_gap{0.002};  ///< launch overhead between kernels
  /// Bulk-synchronous gradient exchange per iteration (multi-GPU only).
  Seconds allreduce_seconds{};
  /// σ of the per-GPU persistent lognormal factor on the memory path.
  double gpu_sensitivity_sigma = 0.0;
  /// σ of the per-GPU persistent lognormal factor on power activity
  /// (algorithm-selection spread: different cuDNN/framework code paths
  /// draw very different power for the same math).
  double power_jitter_sigma = 0.0;

  void validate() const;

  /// Total FLOPs / bytes of one iteration (for reporting).
  double iteration_flops() const;
  double iteration_bytes() const;
};

/// SGEMM (§IV): `reps` repetitions of one n×n×n matrix-multiply kernel.
/// n defaults to the paper's 25536 (NVIDIA) — pass 24576 for MI60 runs.
WorkloadSpec sgemm_workload(std::size_t n = 25536, int reps = 100);

/// ResNet-50 training (§V-A), 4-GPU data-parallel, batch 64.
WorkloadSpec resnet50_multi_workload(int iterations = 500);
/// ResNet-50 single-GPU variant, batch 16 (§V-A, Fig. 16).
WorkloadSpec resnet50_single_workload(int iterations = 500);

/// BERT-Large pre-training (§V-B), 4-GPU, batch 64, 250 iterations.
WorkloadSpec bert_workload(int iterations = 250);

/// LAMMPS REAXC, input (8,16,16) (§V-C): memory-bound long kernels.
WorkloadSpec lammps_workload(int timesteps = 10);

/// PageRank over a rajat30-like circuit graph (§V-D): latency-bound SpMV.
WorkloadSpec pagerank_workload(int sweeps = 50);

}  // namespace gpuvar
