#include "workloads/workload.hpp"

#include "common/require.hpp"
#include "common/units.hpp"

namespace gpuvar {

std::string to_string(PerfMetric m) {
  switch (m) {
    case PerfMetric::kKernelMedian:
      return "median kernel duration";
    case PerfMetric::kIterationMedian:
      return "median iteration duration";
    case PerfMetric::kLongKernelSum:
      return "total long-kernel duration";
  }
  return "unknown";
}

void WorkloadSpec::validate() const {
  GPUVAR_REQUIRE_MSG(!name.empty(), "workload needs a name");
  GPUVAR_REQUIRE_MSG(!iteration.empty(), name + ": empty iteration");
  GPUVAR_REQUIRE_MSG(gpus_per_job >= 1, name);
  GPUVAR_REQUIRE_MSG(iterations >= 1, name);
  GPUVAR_REQUIRE_MSG(warmup_iterations >= 0, name);
  GPUVAR_REQUIRE_MSG(inter_kernel_gap >= Seconds{}, name);
  GPUVAR_REQUIRE_MSG(allreduce_seconds >= Seconds{}, name);
  GPUVAR_REQUIRE_MSG(gpu_sensitivity_sigma >= 0.0, name);
  GPUVAR_REQUIRE_MSG(power_jitter_sigma >= 0.0, name);
  bool any_long = false;
  for (const auto& step : iteration) {
    GPUVAR_REQUIRE_MSG(step.count >= 1, name);
    step.kernel.validate();
    any_long = any_long || step.long_kernel;
  }
  GPUVAR_REQUIRE_MSG(any_long, name + ": no metric-bearing kernel");
}

double WorkloadSpec::iteration_flops() const {
  double f = 0.0;
  for (const auto& s : iteration) f += s.kernel.flops * s.count;
  return f;
}

double WorkloadSpec::iteration_bytes() const {
  double b = 0.0;
  for (const auto& s : iteration) b += s.kernel.bytes * s.count;
  return b;
}

}  // namespace gpuvar
