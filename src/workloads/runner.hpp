// Executes workloads on cluster GPUs and extracts the paper's metrics.
//
// Single-GPU jobs simulate one device end to end. Multi-GPU jobs run
// bulk-synchronously: each iteration every rank executes its kernel
// sequence, then all ranks meet at an allreduce — so the iteration takes
// as long as the slowest rank, and faster ranks idle-wait at the barrier
// (the amplification the paper observes for 4-GPU ResNet/BERT).
#pragma once

#include <cstdint>
#include <vector>

namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
#include "telemetry/run_result.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
namespace gpuvar { struct GpuSku; }  // was: #include "gpu/sku.hpp"
namespace gpuvar { struct WorkloadSpec; }  // was: #include "workloads/workload.hpp"

namespace gpuvar {

struct RunOptions {
  SimOptions sim;
  bool collect_series = false;
  Seconds series_interval{0.05};
  /// Admin power-limit override (W); 0 keeps the GPU's own cap/TDP.
  Watts power_limit_override{};
  /// Folded into run seeds so repeated runs (and day-of-week splits)
  /// draw independent transient noise.
  std::uint64_t run_salt = 0;

  /// Ticks at the SKU's control period by default (the controller acts at
  /// most once per period, so finer ticks only burn time). Time-series
  /// collection switches to the 1 ms profiler resolution.
  static RunOptions for_sku(const GpuSku& sku);
};

/// Run a single-GPU workload on one GPU of the cluster.
GpuRunResult run_on_gpu(const Cluster& cluster, std::size_t gpu_index,
                        const WorkloadSpec& workload, int run_index,
                        const RunOptions& opts = {});

/// Run a (possibly multi-GPU) workload on a node. Returns one result per
/// participating GPU; for multi-GPU jobs all results share iteration
/// durations and perf_ms but have their own telemetry.
std::vector<GpuRunResult> run_on_node(const Cluster& cluster, int node,
                                      const WorkloadSpec& workload,
                                      int run_index,
                                      const RunOptions& opts = {});

/// Extracts the workload's performance metric (ms) from collected
/// long-kernel and iteration durations.
double extract_perf_metric(const WorkloadSpec& workload,
                           const std::vector<double>& long_kernel_ms,
                           const std::vector<double>& iteration_ms);

/// The per-GPU persistent sensitivity factor used for (cluster, gpu,
/// workload) — exposed so analyses can inspect ground truth.
double gpu_sensitivity_factor(const Cluster& cluster, std::size_t gpu_index,
                              const WorkloadSpec& workload);

/// The per-GPU persistent power-activity factor for (cluster, gpu,
/// workload) — exposed so analyses can inspect ground truth.
double gpu_power_jitter_factor(const Cluster& cluster, std::size_t gpu_index,
                               const WorkloadSpec& workload);

}  // namespace gpuvar
