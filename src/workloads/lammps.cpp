// LAMMPS with the REAXC potential, input (8,16,16) (§V-C).
//
// Profile shape from the paper: two kernel families — four unique
// *long-running* kernels (20-200 ms) that make up 98% of runtime, and a
// swarm of short (≤60 µs) kernels; DRAM utilization 42× ResNet's and FU
// utilization 4.3× *lower*; memory-dependency stalls only 7% (streaming,
// bandwidth-bound, not latency-bound). Power stays ≤ ~180 W, so the SM
// clock pins at boost and performance barely varies (Takeaway 7).
#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

namespace {

KernelSpec reaxc_long_kernel(const std::string& name, double target_ms,
                             double dram_util) {
  KernelSpec k;
  k.name = name;
  k.compute_efficiency = 0.20;
  k.bw_efficiency = 0.78;  // streaming neighbor-list / force arrays
  k.bytes = target_ms * 1e-3 * (900e9 * 0.78);
  k.flops = k.bytes * 0.5;
  k.activity = 0.50;
  k.stall_activity_floor = 0.75;  // bandwidth-bound: DRAM pipes stay hot
  k.fu_util = 1.4;
  k.dram_util = dram_util;
  k.mem_stall_frac = 0.07;
  k.exec_stall_frac = 0.05;
  k.validate();
  return k;
}

KernelSpec reaxc_short_kernels(double target_ms) {
  // The ≤60 µs swarm, aggregated; ~2% of runtime.
  KernelSpec k;
  k.name = "reaxc_short";
  k.compute_efficiency = 0.10;
  k.bw_efficiency = 0.30;
  k.bytes = target_ms * 1e-3 * (900e9 * 0.30);
  k.flops = k.bytes * 0.3;
  k.activity = 0.25;
  k.stall_activity_floor = 0.40;
  k.fu_util = 0.8;
  k.dram_util = 2.0;
  k.mem_stall_frac = 0.10;
  k.exec_stall_frac = 0.05;
  k.validate();
  return k;
}

}  // namespace

WorkloadSpec lammps_workload(int timesteps) {
  WorkloadSpec w;
  w.name = "lammps-reaxc";
  w.metric = PerfMetric::kLongKernelSum;
  w.gpus_per_job = 1;
  w.iterations = timesteps;
  w.warmup_iterations = 1;
  w.iteration.push_back(
      KernelStep{reaxc_long_kernel("reaxc_forces", 200.0, 9.4), 1, true});
  w.iteration.push_back(
      KernelStep{reaxc_long_kernel("reaxc_bonds", 120.0, 9.2), 1, true});
  w.iteration.push_back(
      KernelStep{reaxc_long_kernel("reaxc_neighbor", 60.0, 8.8), 1, true});
  w.iteration.push_back(
      KernelStep{reaxc_long_kernel("reaxc_charges", 20.0, 8.6), 1, true});
  w.iteration.push_back(KernelStep{reaxc_short_kernels(8.0), 1, false});
  w.inter_kernel_gap = Seconds{0.0008};
  w.gpu_sensitivity_sigma = 0.0;  // no framework path; pure kernels
  return w;
}

}  // namespace gpuvar
