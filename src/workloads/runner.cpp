#include "workloads/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/quantile.hpp"
#include "cluster/cluster.hpp"
#include "cluster/faults.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
#include "gpu/sampler.hpp"
#include "gpu/sku.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/run_result.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

RunOptions RunOptions::for_sku(const GpuSku& sku) {
  RunOptions o;
  o.sim.tick = sku.dvfs_control_period;
  return o;
}

double gpu_sensitivity_factor(const Cluster& cluster, std::size_t gpu_index,
                              const WorkloadSpec& workload) {
  const double sigma = workload.gpu_sensitivity_sigma;
  if (sigma <= 0.0) return 1.0;
  Rng rng(cluster.spec().seed,
          cluster.gpu_seed_path(gpu_index) + "/wl:" + workload.name);
  return std::exp(rng.truncated_normal(0.0, sigma, -3.0 * sigma, 3.0 * sigma));
}

double gpu_power_jitter_factor(const Cluster& cluster, std::size_t gpu_index,
                               const WorkloadSpec& workload) {
  const double sigma = workload.power_jitter_sigma;
  if (sigma <= 0.0) return 1.0;
  Rng rng(cluster.spec().seed,
          cluster.gpu_seed_path(gpu_index) + "/pj:" + workload.name);
  return std::exp(rng.truncated_normal(0.0, sigma, -2.5 * sigma, 2.5 * sigma));
}

double extract_perf_metric(const WorkloadSpec& w,
                           const std::vector<double>& long_kernel_ms,
                           const std::vector<double>& iteration_ms) {
  switch (w.metric) {
    case PerfMetric::kKernelMedian:
      GPUVAR_REQUIRE(!long_kernel_ms.empty());
      return stats::median(long_kernel_ms);
    case PerfMetric::kIterationMedian:
      GPUVAR_REQUIRE(!iteration_ms.empty());
      return stats::median(iteration_ms);
    case PerfMetric::kLongKernelSum: {
      double sum = 0.0;
      for (double d : long_kernel_ms) sum += d;
      return sum;
    }
  }
  GPUVAR_ASSERT(false);
  return 0.0;
}

namespace {

double run_noise_factor(const Cluster& cluster, std::size_t gpu_index,
                        const WorkloadSpec& workload, int run_index,
                        std::uint64_t salt) {
  const double sigma = cluster.spec().run_noise_sigma;
  if (sigma <= 0.0) return 1.0;
  Rng rng(cluster.spec().seed,
          cluster.gpu_seed_path(gpu_index) + "/wl:" + workload.name +
              "/run:" + std::to_string(run_index) +
              "/salt:" + std::to_string(salt));
  return std::exp(rng.normal(0.0, sigma));
}

struct Rank {
  std::size_t gpu_index = 0;
  std::unique_ptr<SimulatedGpu> device;
  std::unique_ptr<Sampler> sampler;
  double stall_scale = 1.0;
  double activity_scale = 1.0;
  double noise = 1.0;
  std::vector<double> long_kernel_ms;
  std::vector<double> iteration_ms;
  CounterAccumulator counters;
};

/// Runs `workload` bulk-synchronously across the given ranks.
std::vector<GpuRunResult> run_job(const Cluster& cluster,
                                  const std::vector<std::size_t>& gpu_indices,
                                  const WorkloadSpec& workload, int run_index,
                                  const RunOptions& opts) {
  workload.validate();
  GPUVAR_REQUIRE(!gpu_indices.empty());
  GPUVAR_REQUIRE(static_cast<int>(gpu_indices.size()) ==
                 workload.gpus_per_job);

  SimOptions sim = opts.sim;
  SamplerOptions sampler_opts;
  sampler_opts.keep_series = opts.collect_series;
  sampler_opts.series_interval = opts.series_interval;
  if (opts.collect_series) {
    // Time-series figures need profiler-resolution dynamics; disable
    // fast-forwarding and tick at 1 ms.
    sim.fast_forward = false;
    sim.tick = std::min(sim.tick, kMinSamplingInterval);
  }

  double allreduce_scale = 1.0;
  std::vector<Rank> ranks;
  ranks.reserve(gpu_indices.size());
  for (std::size_t gi : gpu_indices) {
    allreduce_scale =
        std::max(allreduce_scale, cluster.gpu(gi).interconnect_factor);
    Rank r;
    r.gpu_index = gi;
    r.device = cluster.make_device(gi, sim, opts.power_limit_override);
    r.sampler = std::make_unique<Sampler>(sampler_opts);
    r.stall_scale = gpu_sensitivity_factor(cluster, gi, workload);
    r.activity_scale = gpu_power_jitter_factor(cluster, gi, workload);
    r.noise = run_noise_factor(cluster, gi, workload, run_index,
                               opts.run_salt);
    ranks.push_back(std::move(r));
  }

  GPUVAR_TRACE_SPAN("runner", "run_job", "run", run_index);
  GPUVAR_METRIC_COUNT("runner.jobs");
  GPUVAR_METRIC_MAX("runner.ranks_per_job", ranks.size());

  const auto run_iteration = [&](bool measuring) {
    Seconds max_elapsed{};
    std::vector<Seconds> elapsed(ranks.size(), Seconds{});

    for (std::size_t ri = 0; ri < ranks.size(); ++ri) {
      Rank& r = ranks[ri];
      Sampler* sampler = measuring ? r.sampler.get() : nullptr;
      const Seconds t0 = r.device->clock();
      for (const auto& step : workload.iteration) {
        for (int c = 0; c < step.count; ++c) {
          const KernelResult kr = r.device->run_kernel(
              step.kernel, sampler, r.noise, r.stall_scale,
              r.activity_scale);
          if (measuring) {
            if (step.long_kernel) {
              r.long_kernel_ms.push_back(to_ms(kr.duration));
            }
            r.counters.add(step.kernel, kr.duration);
          }
          r.device->idle_for(workload.inter_kernel_gap, sampler);
        }
      }
      elapsed[ri] = r.device->clock() - t0;
      max_elapsed = std::max(max_elapsed, elapsed[ri]);
    }

    // Bulk-synchronous barrier + allreduce: the iteration ends when the
    // slowest rank has computed and the collective has completed.
    const Seconds iteration_time =
        max_elapsed + workload.allreduce_seconds * allreduce_scale;
    for (std::size_t ri = 0; ri < ranks.size(); ++ri) {
      Rank& r = ranks[ri];
      Sampler* sampler = measuring ? r.sampler.get() : nullptr;
      r.device->idle_for(iteration_time - elapsed[ri], sampler);
      if (measuring) r.iteration_ms.push_back(to_ms(iteration_time));
    }
    // Two macro call sites, not one with a ternary name: each call site
    // caches its Counter* per install epoch, so the name must be fixed.
    if (measuring) {
      GPUVAR_METRIC_COUNT("runner.iterations");
    } else {
      GPUVAR_METRIC_COUNT("runner.warmup_iterations");
    }
    // All ranks settle at the same device clock after the barrier; that
    // clock is the job's simulation timeline.
    GPUVAR_TRACE_ADVANCE(ranks.front().device->clock());
  };

  {
    GPUVAR_TRACE_SPAN("runner", "warmup", "iters",
                      workload.warmup_iterations);
    for (int iter = 0; iter < workload.warmup_iterations; ++iter) {
      run_iteration(false);
    }
  }
  {
    GPUVAR_TRACE_SPAN("runner", "measure", "iters", workload.iterations);
    for (int iter = 0; iter < workload.iterations; ++iter) {
      run_iteration(true);
    }
  }

  std::vector<GpuRunResult> results;
  results.reserve(ranks.size());
  for (Rank& r : ranks) {
    GpuRunResult out;
    out.gpu_index = r.gpu_index;
    out.run_index = run_index;
    out.perf_ms =
        extract_perf_metric(workload, r.long_kernel_ms, r.iteration_ms);
    GPUVAR_METRIC_HIST("runner.perf_us", out.perf_ms * 1000.0);
    out.iteration_ms = std::move(r.iteration_ms);
    out.telemetry = r.sampler->summary();
    out.counters = r.counters.aggregate();
    if (opts.collect_series) out.series = r.sampler->series();
    results.push_back(std::move(out));
  }
  return results;
}

}  // namespace

GpuRunResult run_on_gpu(const Cluster& cluster, std::size_t gpu_index,
                        const WorkloadSpec& workload, int run_index,
                        const RunOptions& opts) {
  GPUVAR_REQUIRE_MSG(workload.gpus_per_job == 1,
                     workload.name + " is a multi-GPU workload");
  auto results = run_job(cluster, {gpu_index}, workload, run_index, opts);
  return std::move(results.front());
}

std::vector<GpuRunResult> run_on_node(const Cluster& cluster, int node,
                                      const WorkloadSpec& workload,
                                      int run_index, const RunOptions& opts) {
  const auto node_gpus = cluster.node_gpus(node);
  GPUVAR_REQUIRE_MSG(
      workload.gpus_per_job <= static_cast<int>(node_gpus.size()),
      workload.name + ": job wider than the node");

  if (workload.gpus_per_job == 1) {
    // Single-GPU workload measured on every GPU of the node, one job each
    // (the paper's exclusive-node, per-GPU measurement discipline).
    std::vector<GpuRunResult> results;
    results.reserve(node_gpus.size());
    for (std::size_t gi : node_gpus) {
      results.push_back(run_on_gpu(cluster, gi, workload, run_index, opts));
    }
    return results;
  }

  const std::vector<std::size_t> job_gpus(
      node_gpus.begin(), node_gpus.begin() + workload.gpus_per_job);
  return run_job(cluster, job_gpus, workload, run_index, opts);
}

}  // namespace gpuvar
