// Spatial and temporal tenancy effects (§VII "Spatial Effects").
//
// The paper measured with exclusive nodes, eliminating interference from
// co-located jobs, and names spatial (neighbour jobs on the same node)
// and temporal (a preceding job on the same GPU) effects as future work.
// This module implements both:
//
//   * spatial — GPUs in one chassis share airflow/coolant: each GPU's
//     effective inlet temperature rises with the heat its neighbours
//     dump into the shared stream. We model this as
//         inlet_i = baseline_i + κ · Σ_{j≠i} max(0, P_j - P_idle)
//     with κ per cooling technology (air ≫ water), re-evaluated at every
//     iteration boundary of a lock-stepped node simulation.
//   * temporal — a job that starts right after a hot job inherits the
//     previous occupant's thermal state instead of the idle equilibrium.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "telemetry/run_result.hpp"
#include "thermal/cooling.hpp"
namespace gpuvar { struct WorkloadSpec; }  // was: #include "workloads/workload.hpp"
namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"
namespace gpuvar { struct RunOptions; }  // was: #include "workloads/runner.hpp"

namespace gpuvar {

struct TenancyOptions {
  /// Inlet-temperature rise per watt of neighbour dissipation (°C/W).
  /// Defaults are per cooling technology: shared air streams couple
  /// strongly, pumped loops barely at all.
  double coupling_c_per_w = -1.0;  ///< <0 = derive from the cooling type
  /// Sustained power of the job that previously occupied the GPUs (W);
  /// 0 = cold start (the exclusive-allocation baseline).
  Watts previous_job_power{};
};

double default_coupling(CoolingType type);

/// Runs `workload` on every GPU of `node` *simultaneously* (one job per
/// GPU, the multi-tenant scenario), with spatial thermal coupling between
/// the co-located jobs and optional temporal pre-heating. Single-GPU
/// workloads only. Returns one result per GPU.
std::vector<GpuRunResult> run_on_node_shared(const Cluster& cluster, int node,
                                             const WorkloadSpec& workload,
                                             int run_index,
                                             const RunOptions& opts,
                                             const TenancyOptions& tenancy);

/// Convenience: the paper's exclusive baseline vs the shared scenario,
/// as a per-GPU slowdown factor (shared / exclusive runtime).
struct TenancyImpact {
  std::size_t gpu_index = 0;
  double exclusive_perf_ms = 0.0;
  double shared_perf_ms = 0.0;
  double slowdown = 1.0;
  Celsius exclusive_temp{};
  Celsius shared_temp{};
};

std::vector<TenancyImpact> measure_tenancy_impact(
    const Cluster& cluster, int node, const WorkloadSpec& workload,
    const RunOptions& opts, const TenancyOptions& tenancy);

}  // namespace gpuvar
