// ResNet-50 training (§V-A).
//
// A real iteration launches ~2,600 kernels from ~85 unique ones; 75% run
// under 2 ms. We aggregate them into three phases with the time/energy
// footprint the paper profiles: convolutions (compute-heavy, the SGEMM-like
// part), dense GEMMs, and the elementwise/batch-norm/pooling tail
// (streaming, memory-side). The per-kernel counters are calibrated to the
// paper's measurements: average FU utilization ≈ 5.4 (vs 10 for SGEMM) and
// DRAM utilization ≈ 1/42 of LAMMPS'.
#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

namespace {

// Phase builder: pick FLOPs/bytes so a healthy V100 at max clocks spends
// roughly `target_ms` in the phase. (Workload models are defined against
// the V100 reference; on other SKUs durations scale with the roofline.)
KernelSpec conv_phase(double target_ms) {
  KernelSpec k;
  k.name = "resnet_conv";
  k.compute_efficiency = 0.55;  // implicit-GEMM convs, fp32
  k.bw_efficiency = 0.75;
  // 80 SMs * 128 flop/cycle * 1530 MHz * 0.55 eff = 8.61e12 flop/s.
  k.flops = target_ms * 1e-3 * 8.61e12;
  k.bytes = k.flops / 40.0;  // high arithmetic intensity, cache-resident
  k.activity = 0.72;
  k.fu_util = 7.5;
  k.dram_util = 0.20;
  k.mem_stall_frac = 0.06;
  k.exec_stall_frac = 0.30;
  k.validate();
  return k;
}

KernelSpec gemm_phase(double target_ms) {
  KernelSpec k;
  k.name = "resnet_gemm";
  k.compute_efficiency = 0.80;
  k.bw_efficiency = 0.80;
  k.flops = target_ms * 1e-3 * 1.253e13;  // 1.566e13 * 0.80
  k.bytes = k.flops / 60.0;
  k.activity = 0.70;
  k.fu_util = 9.0;
  k.dram_util = 0.10;
  k.mem_stall_frac = 0.04;
  k.exec_stall_frac = 0.34;
  k.validate();
  return k;
}

KernelSpec elementwise_phase(double target_ms) {
  KernelSpec k;
  k.name = "resnet_elementwise";
  k.compute_efficiency = 0.30;
  k.bw_efficiency = 0.75;  // 675 GB/s effective on V100
  k.bytes = target_ms * 1e-3 * 675e9;
  k.flops = k.bytes * 0.25;  // ~1 flop per 4 bytes streamed
  k.activity = 0.45;
  k.stall_activity_floor = 0.70;  // streaming keeps DRAM/L2 busy
  k.fu_util = 2.2;
  k.dram_util = 0.30;
  k.mem_stall_frac = 0.30;
  k.exec_stall_frac = 0.08;
  k.validate();
  return k;
}

WorkloadSpec resnet_base(int iterations, double scale) {
  WorkloadSpec w;
  w.metric = PerfMetric::kIterationMedian;
  w.iterations = iterations;
  w.warmup_iterations = 5;
  w.iteration.push_back(KernelStep{conv_phase(55.0 * scale), 1, true});
  w.iteration.push_back(KernelStep{gemm_phase(15.0 * scale), 1, true});
  w.iteration.push_back(KernelStep{elementwise_phase(40.0 * scale), 1, true});
  w.inter_kernel_gap = Seconds{0.001};
  return w;
}

}  // namespace

WorkloadSpec resnet50_multi_workload(int iterations) {
  WorkloadSpec w = resnet_base(iterations, 1.0);
  w.name = "resnet50-4gpu";
  w.gpus_per_job = 4;
  w.allreduce_seconds = Seconds{0.008};  // NCCL ring over NVLink, 25M params
  // Full framework stack (dataloader, cuDNN heuristics, NCCL): the widest
  // per-GPU non-frequency spread of all our workloads.
  w.gpu_sensitivity_sigma = 0.055;
  w.power_jitter_sigma = 0.18;
  return w;
}

WorkloadSpec resnet50_single_workload(int iterations) {
  // Batch scaled 64 -> 16: per-iteration work shrinks accordingly.
  WorkloadSpec w = resnet_base(iterations, 0.62);
  w.name = "resnet50-1gpu";
  w.gpus_per_job = 1;
  w.gpu_sensitivity_sigma = 0.026;  // no NCCL / multi-GPU input path
  w.power_jitter_sigma = 0.06;
  return w;
}

}  // namespace gpuvar
