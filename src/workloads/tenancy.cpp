#include "workloads/tenancy.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "cluster/cluster.hpp"
#include "cluster/faults.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
#include "gpu/sampler.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/run_result.hpp"
#include "thermal/cooling.hpp"
#include "workloads/runner.hpp"
#include "workloads/workload.hpp"

namespace gpuvar {

double default_coupling(CoolingType type) {
  switch (type) {
    case CoolingType::kAir:
      // Downstream GPUs in a shared air stream pick up a large fraction
      // of their neighbours' heat: ~15 °C per kW of neighbour power.
      return 0.015;
    case CoolingType::kMineralOil:
      return 0.006;  // the bath integrates heat but circulates
    case CoolingType::kWater:
      return 0.002;  // per-device cold plates: nearly decoupled
  }
  return 0.0;
}

std::vector<GpuRunResult> run_on_node_shared(const Cluster& cluster, int node,
                                             const WorkloadSpec& workload,
                                             int run_index,
                                             const RunOptions& opts,
                                             const TenancyOptions& tenancy) {
  workload.validate();
  GPUVAR_REQUIRE_MSG(workload.gpus_per_job == 1,
                     "shared-node tenancy models one job per GPU");
  const auto gpu_indices = cluster.node_gpus(node);
  const double kappa = tenancy.coupling_c_per_w >= 0.0
                           ? tenancy.coupling_c_per_w
                           : default_coupling(cluster.spec().cooling.type);

  struct Tenant {
    std::size_t gpu_index = 0;
    std::unique_ptr<SimulatedGpu> device;
    std::unique_ptr<Sampler> sampler;
    double stall_scale = 1.0;
    double activity_scale = 1.0;
    double noise = 1.0;
    std::vector<double> long_kernel_ms;
    std::vector<double> iteration_ms;
    CounterAccumulator counters;
    Watts mean_power{};  ///< over the last completed iteration
  };

  std::vector<Tenant> tenants;
  tenants.reserve(gpu_indices.size());
  for (std::size_t gi : gpu_indices) {
    Tenant t;
    t.gpu_index = gi;
    t.device = cluster.make_device(gi, opts.sim, opts.power_limit_override);
    if (tenancy.previous_job_power > Watts{}) {
      t.device->preheat(tenancy.previous_job_power);
    }
    SamplerOptions sampler_opts;
    sampler_opts.keep_series = false;
    t.sampler = std::make_unique<Sampler>(sampler_opts);
    t.stall_scale = gpu_sensitivity_factor(cluster, gi, workload);
    t.activity_scale = gpu_power_jitter_factor(cluster, gi, workload);
    {
      Rng rng(cluster.spec().seed,
              cluster.gpu_seed_path(gi) + "/wl:" + workload.name +
                  "/shared-run:" + std::to_string(run_index));
      const double sigma = cluster.spec().run_noise_sigma;
      t.noise = sigma > 0.0 ? std::exp(rng.normal(0.0, sigma)) : 1.0;
    }
    tenants.push_back(std::move(t));
  }

  auto update_coupling = [&] {
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      Watts neighbour_heat{};
      for (std::size_t j = 0; j < tenants.size(); ++j) {
        if (j == i) continue;
        neighbour_heat +=
            std::max(Watts{}, tenants[j].mean_power - Watts{40.0} /* ~idle */);
      }
      tenants[i].device->set_inlet_delta(
          Celsius{kappa * neighbour_heat.value()});
    }
  };

  const int total_iters = workload.warmup_iterations + workload.iterations;
  for (int iter = 0; iter < total_iters; ++iter) {
    const bool measuring = iter >= workload.warmup_iterations;
    for (auto& t : tenants) {
      Sampler* sampler = measuring ? t.sampler.get() : nullptr;
      const Seconds t0 = t.device->clock();
      Joules energy{};
      for (const auto& step : workload.iteration) {
        for (int c = 0; c < step.count; ++c) {
          const KernelResult kr = t.device->run_kernel(
              step.kernel, sampler, t.noise, t.stall_scale,
              t.activity_scale);
          energy += kr.energy;
          if (measuring) {
            if (step.long_kernel) {
              t.long_kernel_ms.push_back(to_ms(kr.duration));
            }
            t.counters.add(step.kernel, kr.duration);
          }
          t.device->idle_for(workload.inter_kernel_gap, sampler);
        }
      }
      const Seconds elapsed = t.device->clock() - t0;
      GPUVAR_ASSERT(elapsed > Seconds{});
      t.mean_power = energy / elapsed;
      if (measuring) t.iteration_ms.push_back(to_ms(elapsed));
    }
    // Neighbour heat from this iteration shapes the next one.
    update_coupling();
  }

  std::vector<GpuRunResult> results;
  results.reserve(tenants.size());
  for (auto& t : tenants) {
    GpuRunResult out;
    out.gpu_index = t.gpu_index;
    out.run_index = run_index;
    out.perf_ms =
        extract_perf_metric(workload, t.long_kernel_ms, t.iteration_ms);
    out.iteration_ms = std::move(t.iteration_ms);
    out.telemetry = t.sampler->summary();
    out.counters = t.counters.aggregate();
    results.push_back(std::move(out));
  }
  return results;
}

std::vector<TenancyImpact> measure_tenancy_impact(
    const Cluster& cluster, int node, const WorkloadSpec& workload,
    const RunOptions& opts, const TenancyOptions& tenancy) {
  // Exclusive baseline: the paper's methodology (each GPU alone).
  const auto exclusive = run_on_node(cluster, node, workload, 0, opts);
  const auto shared =
      run_on_node_shared(cluster, node, workload, 0, opts, tenancy);
  GPUVAR_ASSERT(exclusive.size() == shared.size());

  std::vector<TenancyImpact> impacts;
  impacts.reserve(shared.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    TenancyImpact imp;
    imp.gpu_index = shared[i].gpu_index;
    imp.exclusive_perf_ms = exclusive[i].perf_ms;
    imp.shared_perf_ms = shared[i].perf_ms;
    imp.slowdown = shared[i].perf_ms / exclusive[i].perf_ms;
    imp.exclusive_temp = Celsius{exclusive[i].telemetry.temp.median};
    imp.shared_temp = Celsius{shared[i].telemetry.temp.median};
    impacts.push_back(imp);
  }
  return impacts;
}

}  // namespace gpuvar
