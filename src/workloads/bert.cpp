// BERT-Large pre-training (§V-B): 24 encoders, 16 attention heads,
// batch 64 across 4 GPUs, 250 iterations.
//
// The paper's key profiling facts: GEMMs are 30-65% of runtime but only
// utilize 40-50% of the GPU (unlike ResNet's near-peak convs), so BERT's
// median power sits ~40 W below ResNet's and its performance variability
// (8%) is between SGEMM's and ResNet's.
#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

namespace {

KernelSpec bert_gemm_phase(double target_ms) {
  KernelSpec k;
  k.name = "bert_gemm";
  k.compute_efficiency = 0.45;  // 40-50% utilization per the paper
  k.bw_efficiency = 0.75;
  k.flops = target_ms * 1e-3 * (1.566e13 * 0.45);
  k.bytes = k.flops / 30.0;
  k.activity = 0.58;
  k.fu_util = 5.0;
  k.dram_util = 0.25;
  k.mem_stall_frac = 0.10;
  k.exec_stall_frac = 0.28;
  k.validate();
  return k;
}

KernelSpec bert_attention_phase(double target_ms) {
  // Attention score/context batched GEMMs + softmax: moderate intensity.
  KernelSpec k;
  k.name = "bert_attention";
  k.compute_efficiency = 0.30;
  k.bw_efficiency = 0.70;
  k.flops = target_ms * 1e-3 * (1.566e13 * 0.30);
  k.bytes = k.flops / 25.0;
  k.activity = 0.46;
  k.fu_util = 3.5;
  k.dram_util = 0.30;
  k.mem_stall_frac = 0.18;
  k.exec_stall_frac = 0.15;
  k.validate();
  return k;
}

KernelSpec bert_tail_phase(double target_ms) {
  // Layer-norm, dropout, transpose, embedding gathers: bandwidth-heavy
  // data movement ("data movement is all you need").
  KernelSpec k;
  k.name = "bert_tail";
  k.compute_efficiency = 0.20;
  k.bw_efficiency = 0.70;
  k.bytes = target_ms * 1e-3 * (900e9 * 0.70);
  k.flops = k.bytes * 0.30;
  k.activity = 0.39;
  k.stall_activity_floor = 0.75;
  k.fu_util = 1.8;
  k.dram_util = 0.45;
  k.mem_stall_frac = 0.32;
  k.exec_stall_frac = 0.07;
  k.validate();
  return k;
}

}  // namespace

WorkloadSpec bert_workload(int iterations) {
  WorkloadSpec w;
  w.name = "bert-large-4gpu";
  w.metric = PerfMetric::kIterationMedian;
  w.gpus_per_job = 4;
  w.iterations = iterations;
  w.warmup_iterations = 5;
  // Dense GEMMs ~45% of iteration time, in the middle of the paper's
  // 30-65% band; the run-median power lands in the attention phase.
  w.iteration.push_back(KernelStep{bert_gemm_phase(190.0), 1, true});
  w.iteration.push_back(KernelStep{bert_attention_phase(130.0), 1, true});
  w.iteration.push_back(KernelStep{bert_tail_phase(110.0), 1, true});
  w.inter_kernel_gap = Seconds{0.001};
  w.allreduce_seconds = Seconds{0.022};  // 340M parameters
  w.gpu_sensitivity_sigma = 0.018;
  w.power_jitter_sigma = 0.22;
  return w;
}

}  // namespace gpuvar
