// SGEMM (§IV-A): one optimized cuBLAS/hipBLAS-style matrix-multiply
// kernel repeated `reps` times. The matrix size is tuned so the kernel
// (i) runs long enough for the DVFS controller to reach a stable state,
// (ii) achieves near-peak FLOP rates, and (iii) fully occupies the
// SMs/CUs — exactly the tuning discipline the paper describes.
#include "workloads/workload.hpp"
#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace gpuvar {

WorkloadSpec sgemm_workload(std::size_t n, int reps) {
  WorkloadSpec w;
  w.name = "sgemm";
  w.metric = PerfMetric::kKernelMedian;
  w.gpus_per_job = 1;
  w.iterations = reps;
  w.warmup_iterations = 2;
  w.iteration.push_back(KernelStep{make_sgemm_kernel(n), 1, true});
  w.inter_kernel_gap = Seconds{0.004};
  w.gpu_sensitivity_sigma = 0.0;  // a single BLAS kernel: no framework path
  return w;
}

}  // namespace gpuvar
