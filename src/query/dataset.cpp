#include "query/dataset.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/record.hpp"
#include "telemetry/shard.hpp"

namespace gpuvar::query {

namespace {

namespace fs = std::filesystem;

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("cannot open " + path.string());
  }
  std::string bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    bytes.append(buf, static_cast<std::size_t>(in.gcount()));
  }
  return bytes;
}

/// Reads at most the fixed-size header prefix — the whole point of the
/// v2 stats block is that planning a query costs header bytes, not
/// payload bytes. A shorter file yields fewer bytes and the header
/// parser reports the truncation.
std::string read_header_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("cannot open " + path.string());
  }
  std::string bytes(kFrameShardHeaderBytes, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(in.gcount()));
  return bytes;
}

}  // namespace

Dataset Dataset::open(const std::string& dir, const DatasetOptions& options) {
  GPUVAR_TRACE_SPAN("query", "open");
  Dataset ds;
  ds.dir_ = dir;
  ds.options_ = options;
  ds.cache_ = std::make_unique<Cache>();

  const fs::path d(dir);
  const CampaignManifest m =
      read_campaign_manifest(d / kCampaignManifestName);
  if (!m.exists) {
    throw std::runtime_error(dir +
                             ": no campaign manifest (not a checkpoint "
                             "directory)");
  }
  ds.config_hash_ = m.config_hash;
  ds.complete_ = m.done && !fs::exists(d / kCampaignMarkerName);

  ds.shards_.reserve(m.entries.size());
  for (const auto& [idx, e] : m.entries) {
    DatasetShard s;
    s.path = d / campaign_shard_file_name(static_cast<std::size_t>(idx));
    s.header = parse_frame_shard_header(read_header_bytes(s.path),
                                        s.path.string());
    const FrameShardInfo& h = s.header.info;
    if (h.bucket_index != e.info.bucket_index || h.rows != e.info.rows ||
        h.payload_bytes != e.info.payload_bytes ||
        h.payload_hash != e.info.payload_hash) {
      throw std::runtime_error(
          s.path.string() +
          ": shard header disagrees with the campaign manifest (stale or "
          "foreign shard)");
    }
    ds.total_rows_ += h.rows;
    ds.shards_.push_back(std::move(s));
  }
  {
    MutexLock lock(ds.cache_->mu);
    ds.cache_->entries.resize(ds.shards_.size());
  }
  GPUVAR_METRIC_COUNT("query.datasets_opened");
  return ds;
}

ThreadPool& Dataset::scan_pool() const {
  return options_.pool != nullptr ? *options_.pool : ThreadPool::global();
}

std::shared_ptr<const DecodedShardColumns> Dataset::fetch(
    std::size_t i, unsigned columns) const {
  columns &= kShardColsAll;
  {
    MutexLock lock(cache_->mu);
    CacheEntry& e = cache_->entries[i];
    if (e.data != nullptr && (columns & ~e.data->columns) == 0) {
      e.last_use = ++cache_->tick;
      GPUVAR_METRIC_COUNT("query.cache_hits");
      return e.data;
    }
    // Replacement keeps what the old entry already paid for: the new
    // decode carries the union of old and requested columns.
    if (e.data != nullptr) columns |= e.data->columns;
  }
  GPUVAR_METRIC_COUNT("query.cache_misses");
  const DatasetShard& shard = shards_[i];
  GPUVAR_TRACE_SPAN(
      "query", "decode_shard", "bucket",
      static_cast<std::int64_t>(shard.header.info.bucket_index));
  // Decode outside the lock: two threads may race to decode the same
  // shard (wasted work, not wrong results — the file is immutable and
  // last insert wins).
  const std::string bytes = read_file_bytes(shard.path);
  auto decoded = std::make_shared<const DecodedShardColumns>(
      decode_frame_shard_columns(bytes, shard.path.string(), columns));

  const auto cost = static_cast<std::uint64_t>(decoded->memory_bytes());
  MutexLock lock(cache_->mu);
  CacheEntry& e = cache_->entries[i];
  if (e.data != nullptr) cache_->resident_bytes -= e.bytes;
  e.data = decoded;
  e.bytes = cost;
  e.last_use = ++cache_->tick;
  cache_->resident_bytes += cost;
  // High-water is recorded before eviction restores the budget: the
  // honest bound is budget + one decoded shard, and the property tests
  // assert exactly that.
  GPUVAR_METRIC_MAX("query.cache_bytes_peak", cache_->resident_bytes);
  while (cache_->resident_bytes > options_.cache_budget_bytes) {
    std::size_t victim = cache_->entries.size();
    for (std::size_t j = 0; j < cache_->entries.size(); ++j) {
      const CacheEntry& c = cache_->entries[j];
      if (c.data == nullptr) continue;
      if (victim == cache_->entries.size() ||
          c.last_use < cache_->entries[victim].last_use) {
        victim = j;
      }
    }
    if (victim == cache_->entries.size()) break;  // nothing left to evict
    cache_->resident_bytes -= cache_->entries[victim].bytes;
    cache_->entries[victim] = CacheEntry{};
    GPUVAR_METRIC_COUNT("query.cache_evictions");
  }
  return decoded;
}

RecordFrame Dataset::materialize() const {
  GPUVAR_TRACE_SPAN("query", "materialize", "shards",
                    static_cast<std::int64_t>(shards_.size()));
  std::vector<std::shared_ptr<const DecodedShardColumns>> decoded(
      shards_.size());
  scan_pool().parallel_for(shards_.size(), [&](std::size_t i) {
    decoded[i] = fetch(i, kShardColsAll);
  });
  // Bucket-index order (shards_ is manifest order, which is bucket
  // order); rows re-intern in first-appearance order exactly as the
  // engine's merge stage did when it wrote the checkpoint.
  RecordFrame out;
  out.reserve(static_cast<std::size_t>(total_rows_));
  for (const auto& d : decoded) {
    const std::size_t rows = d->gpu_ids.size();
    for (std::size_t r = 0; r < rows; ++r) {
      const GpuRef& g = d->pool[d->gpu_ids[r]];
      RunRecord rec;
      rec.gpu_index = g.gpu_index;
      rec.loc = g.loc;
      rec.run_index = d->runs[r];
      rec.day_of_week = d->days[r];
      rec.perf_ms = d->metric_cols[0][r];
      rec.freq_mhz = d->metric_cols[1][r];
      rec.power_w = d->metric_cols[2][r];
      rec.temp_c = d->metric_cols[3][r];
      rec.counters.fu_util = d->metric_cols[4][r];
      rec.counters.dram_util = d->metric_cols[5][r];
      rec.counters.mem_stall_frac = d->metric_cols[6][r];
      rec.counters.exec_stall_frac = d->metric_cols[7][r];
      out.append_row(rec);
    }
  }
  return out;
}

}  // namespace gpuvar::query
