// The accessor seam between analyses and their data.
//
// Every core analysis (variability, flagging, drift, compare,
// user_impact, correlate) reads columns through a Source instead of a
// concrete RecordFrame. A frame-backed Source is a zero-cost borrow:
// every accessor returns the frame's own spans. A dataset-backed
// Source evaluates the query lazily: predicate pushdown picks the
// shards, and each column is assembled — through the Dataset's decoded
// -shard cache, surviving shards merged in bucket-index order — the
// first time an analysis touches it. Column pruning therefore falls
// out of the analyses themselves: an analysis that never reads
// temperatures never decodes the temperature column.
//
// Determinism: assembled columns and pool-id assignment are pure
// functions of (manifest order, predicate) — shard decodes are
// parallel but the merge is ordered and interning is first-appearance,
// exactly RecordFrame's contract. Analyses over a Source are therefore
// byte-identical to the same analyses over the materialized frame
// (frame.select of the matching rows), at any thread count and cache
// budget. The property tests in test_query.cpp pin this.
//
// Threading: a Source is confined to one thread (lazy assembly mutates
// under const); the parallelism lives inside the scans it issues.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "query/dataset.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"
#include "telemetry/shard.hpp"

namespace gpuvar::query {

class Source {
 public:
  /// Borrows a materialized frame (implicit: analysis call sites keep
  /// accepting a RecordFrame transparently). The frame must outlive
  /// the Source.
  Source(const RecordFrame& frame);  // NOLINT(runtime/explicit)

  /// Streams from a checkpoint Dataset, restricted to rows matching
  /// `where`. The Dataset must outlive the Source.
  explicit Source(const Dataset& dataset, Predicate where = {});

  /// Rows (after the predicate, for a dataset-backed source).
  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t gpu_count() const;

  /// The column for one analysis metric; assembled on first touch for
  /// a dataset-backed source, zero-copy for a frame-backed one.
  std::span<const double> metric(Metric m) const;
  std::span<const std::uint32_t> gpu_ids() const;
  std::span<const GpuRef> gpus() const;
  const GpuRef& gpu(std::uint32_t id) const { return gpus()[id]; }
  std::span<const std::int32_t> run_indices() const;
  std::span<const std::int16_t> days_of_week() const;

 private:
  void ensure_plan() const;
  void ensure_identity() const;
  void ensure_runs() const;
  void ensure_days() const;
  void ensure_metric(std::size_t k) const;
  /// Parallel fetch of every picked shard with the given column mask.
  std::vector<std::shared_ptr<const DecodedShardColumns>> scan(
      unsigned columns) const;

  const RecordFrame* frame_ = nullptr;
  const Dataset* dataset_ = nullptr;
  Predicate where_;

  // Lazy dataset-backed assembly (single-thread confined, see header
  // comment).
  mutable bool planned_ = false;
  mutable bool filtered_ = false;
  mutable std::size_t rows_ = 0;
  mutable std::vector<std::size_t> picked_;
  /// Per picked shard: matching row indices. Parallel to picked_; only
  /// populated when the predicate filters rows.
  mutable std::vector<std::vector<std::uint32_t>> match_rows_;
  mutable bool identity_done_ = false;
  mutable bool runs_done_ = false;
  mutable bool days_done_ = false;
  mutable std::vector<std::uint32_t> ids_;
  mutable std::vector<GpuRef> pool_;
  mutable std::vector<std::int32_t> runs_;
  mutable std::vector<std::int16_t> days_;
  mutable std::array<std::vector<double>, 4> metric_cols_;
  mutable std::array<bool, 4> metric_done_{};
};

/// group_rows_by_gpu / per_gpu_medians over the seam: same shared
/// column cores as the RecordFrame overloads (telemetry/frame.hpp), so
/// grouping a Source is bit-identical to grouping the equivalent frame.
GpuRowGroups group_rows_by_gpu(const Source& source);
std::vector<GpuAggregate> per_gpu_medians(const Source& source);

}  // namespace gpuvar::query
