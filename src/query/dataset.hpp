// Streaming query plane over checkpointed campaign stores.
//
// A checkpoint directory (telemetry/manifest.hpp + one FrameShard per
// bucket) is the durable form of a campaign. Every analysis used to
// require materializing the whole thing back into one RecordFrame; a
// Dataset instead treats the directory as an immutable, queryable
// store and evaluates analyses by streaming shards:
//
//  - predicate pushdown: the v2 shard header carries per-shard
//    node/gpu-index/day ranges, so a query whose Predicate cannot
//    overlap a shard skips it on header facts alone — the payload is
//    never read, let alone decoded;
//  - column pruning: scanned shards decode only the metric columns the
//    analysis touches (telemetry/shard.hpp streaming decode);
//  - parallel scans: surviving shards decode on a gpuvar::ThreadPool
//    and merge in bucket-index order, so results are byte-identical at
//    any thread count — the same determinism discipline as the
//    campaign engine's write path;
//  - caching: decoded shards live in a byte-budgeted LRU keyed by file
//    path, shared by every query against the Dataset. Hits, misses,
//    evictions and the resident-bytes high-water mark surface as
//    query.* metrics.
//
// Trust model: Dataset::open verifies each listed shard's header
// against the manifest, and every payload that is actually decoded is
// hash-checked (a reader never trusts the file). Unlike the campaign
// engine, the query plane cannot re-run a bad bucket — any defect is
// std::runtime_error naming the shard.
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/bytesize.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/shard.hpp"

namespace gpuvar {
class ThreadPool;
}

namespace gpuvar::query {

/// Inclusive [lo, hi] bound on one integer field; the default bounds
/// match everything, so an unset range costs nothing to test.
struct FieldRange {
  std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t hi = std::numeric_limits<std::int64_t>::max();

  bool is_all() const {
    return lo == std::numeric_limits<std::int64_t>::min() &&
           hi == std::numeric_limits<std::int64_t>::max();
  }
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  /// Whether [min, max] (a shard's header stats) can hold a match. An
  /// empty stats range (min > max, i.e. zero rows) never matches.
  bool overlaps(std::int64_t min, std::int64_t max) const {
    return min <= max && lo <= max && min <= hi;
  }
};

/// Row filter over interned pool fields and the day-of-week column.
/// node / gpu_index / day have per-shard header stats and participate
/// in pushdown; cabinet / row / column filter rows after decode only.
struct Predicate {
  FieldRange node;
  FieldRange gpu_index;
  FieldRange day;
  FieldRange cabinet;
  FieldRange row;
  FieldRange column;

  bool is_all() const {
    return node.is_all() && gpu_index.is_all() && day.is_all() &&
           cabinet.is_all() && row.is_all() && column.is_all();
  }
  /// The pool-backed half of the row test — constant per interned GPU,
  /// so a scan evaluates it once per pool entry, not once per row.
  bool matches_gpu(const GpuRef& g) const {
    return node.contains(g.loc.node) &&
           gpu_index.contains(static_cast<std::int64_t>(g.gpu_index)) &&
           cabinet.contains(g.loc.cabinet) && row.contains(g.loc.row) &&
           column.contains(g.loc.column);
  }
  /// Row-level test: the row's interned GPU plus its day value.
  bool matches(const GpuRef& g, std::int16_t day_of_week) const {
    return matches_gpu(g) && day.contains(day_of_week);
  }
  /// Shard-level test against header stats: false only when no row in
  /// the shard can possibly match (the pushdown rule). Fields without
  /// header stats never veto a shard.
  bool may_match(const FrameShardStats& s) const {
    return node.overlaps(s.node_min, s.node_max) &&
           gpu_index.overlaps(s.gpu_index_min, s.gpu_index_max) &&
           day.overlaps(s.day_min, s.day_max);
  }
};

struct DatasetOptions {
  /// Byte budget for the decoded-shard LRU cache. 0 disables retention
  /// (every scan re-decodes); kUnlimitedBytes never evicts.
  std::uint64_t cache_budget_bytes = kUnlimitedBytes;
  /// When false, header-stats pushdown is disabled and every shard is
  /// scanned (row-level filtering still applies). Exists so the
  /// pushdown-on/off property tests can pin byte-identical results.
  bool pushdown = true;
  /// Pool for parallel shard scans; nullptr means ThreadPool::global().
  ThreadPool* pool = nullptr;
};

/// One manifest-listed shard: where it lives and what its header
/// promises. Stats come from the header, already cross-checked against
/// the manifest by Dataset::open.
struct DatasetShard {
  std::filesystem::path path;
  FrameShardHeader header;
};

class Dataset {
 public:
  /// Opens a checkpoint directory: reads the manifest, then reads and
  /// verifies each listed shard's fixed-size header (magic, version,
  /// and agreement with the manifest's rows/payload/hash facts).
  /// Throws std::runtime_error on a missing/foreign manifest or any
  /// header defect. An incomplete campaign (no "done" line, or the
  /// IN_PROGRESS marker present) opens fine — complete() reports it.
  static Dataset open(const std::string& dir,
                      const DatasetOptions& options = {});

  const std::string& dir() const { return dir_; }
  std::uint64_t config_hash() const { return config_hash_; }
  bool complete() const { return complete_; }
  const std::vector<DatasetShard>& shards() const { return shards_; }
  /// Total rows across all shards (before any predicate).
  std::uint64_t total_rows() const { return total_rows_; }
  bool pushdown_enabled() const { return options_.pushdown; }
  ThreadPool& scan_pool() const;

  /// Fetches shard `i` decoded with at least the given metric-column
  /// mask, through the LRU cache. The returned snapshot is immutable
  /// and stays valid after eviction (shared ownership).
  std::shared_ptr<const DecodedShardColumns> fetch(std::size_t i,
                                                   unsigned columns) const;

  /// Reads every shard and merges them in bucket-index order into one
  /// RecordFrame — byte-identical to the frame the campaign engine
  /// merged when it wrote the checkpoint. The escape hatch for
  /// consumers that genuinely need the whole frame (and the reference
  /// half of the "query == materialize" property tests).
  RecordFrame materialize() const;

  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

 private:
  Dataset() = default;

  /// Byte-budgeted LRU of decoded shards, keyed by shard index. An
  /// entry is replaced (never widened in place) when a fetch needs
  /// columns it lacks; eviction drops the least-recently-used entry
  /// until resident bytes fit the budget. Entries are immutable
  /// shared_ptrs, so a scan holding one is unaffected by eviction.
  struct CacheEntry {
    std::shared_ptr<const DecodedShardColumns> data;
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;
  };
  struct Cache {
    Mutex mu;
    std::vector<CacheEntry> entries GPUVAR_GUARDED_BY(mu);
    std::uint64_t resident_bytes GPUVAR_GUARDED_BY(mu) = 0;
    std::uint64_t tick GPUVAR_GUARDED_BY(mu) = 0;
  };

  std::string dir_;
  DatasetOptions options_;
  std::uint64_t config_hash_ = 0;
  bool complete_ = false;
  std::uint64_t total_rows_ = 0;
  std::vector<DatasetShard> shards_;
  /// unique_ptr: the cache holds a Mutex (not movable), the Dataset
  /// must be (factory return).
  mutable std::unique_ptr<Cache> cache_;
};

}  // namespace gpuvar::query
