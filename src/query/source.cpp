#include "query/source.hpp"

#include <map>
#include <utility>

#include "common/require.hpp"
#include "common/thread_pool.hpp"  // gpuvar-lint: allow(unused-include)
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "query/dataset.hpp"
#include "stats/kernels.hpp"
#include "telemetry/frame.hpp"
#include "telemetry/record.hpp"
#include "telemetry/shard.hpp"

namespace gpuvar::query {

Source::Source(const RecordFrame& frame) : frame_(&frame) {}

Source::Source(const Dataset& dataset, Predicate where)
    : dataset_(&dataset), where_(std::move(where)) {}

void Source::ensure_plan() const {
  if (planned_) return;
  planned_ = true;
  const auto& shards = dataset_->shards();
  GPUVAR_TRACE_SPAN("query", "plan", "shards",
                    static_cast<std::int64_t>(shards.size()));
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (dataset_->pushdown_enabled() &&
        !where_.may_match(shards[i].header.stats)) {
      // Pushdown: the header ranges prove no row can match, so the
      // payload of this shard is never read.
      ++skipped;
      continue;
    }
    picked_.push_back(i);
  }
  GPUVAR_METRIC_ADD("query.shards_skipped", skipped);
  GPUVAR_METRIC_ADD("query.shards_scanned", picked_.size());

  filtered_ = !where_.is_all();
  if (!filtered_) {
    rows_ = 0;
    for (std::size_t i : picked_) {
      rows_ += static_cast<std::size_t>(shards[i].header.info.rows);
    }
    return;
  }

  // Row-level filter: needs only the always-decoded id/run/day columns
  // and the pool snapshot (column mask 0).
  const auto decoded = scan(0);
  match_rows_.resize(picked_.size());
  rows_ = 0;
  for (std::size_t j = 0; j < picked_.size(); ++j) {
    const DecodedShardColumns& d = *decoded[j];
    // One location-match verdict per pool entry (the only part that
    // inspects strings), then vectorized per-row mask kernels: gather
    // the verdict through the id column, AND in the day-range mask,
    // and emit the surviving row indices in one pass each.
    std::vector<std::uint8_t> gpu_ok(d.pool.size(), 0);
    for (std::size_t id = 0; id < d.pool.size(); ++id) {
      gpu_ok[id] = where_.matches_gpu(d.pool[id]) ? std::uint8_t{1}
                                                  : std::uint8_t{0};
    }
    std::vector<std::uint8_t> mask(d.gpu_ids.size());
    stats::kernels::mask_gather_u32(d.gpu_ids, gpu_ok, mask);
    if (!where_.day.is_all()) {
      std::vector<std::uint8_t> day_mask(d.days.size());
      stats::kernels::mask_range_i16(d.days, where_.day.lo, where_.day.hi,
                                     day_mask);
      stats::kernels::mask_and(mask, day_mask, mask);
    }
    stats::kernels::mask_to_indices(mask, match_rows_[j]);
    rows_ += match_rows_[j].size();
  }
  // Shards the row filter emptied out contribute nothing; drop them so
  // later column scans stop paying their decode.
  std::size_t keep = 0;
  for (std::size_t j = 0; j < picked_.size(); ++j) {
    if (match_rows_[j].empty()) continue;
    if (keep != j) {  // guard the self-move when nothing was dropped
      picked_[keep] = picked_[j];
      match_rows_[keep] = std::move(match_rows_[j]);
    }
    ++keep;
  }
  picked_.resize(keep);
  match_rows_.resize(keep);
  GPUVAR_METRIC_ADD("query.rows_matched", rows_);
}

std::vector<std::shared_ptr<const DecodedShardColumns>> Source::scan(
    unsigned columns) const {
  GPUVAR_TRACE_SPAN("query", "scan", "shards",
                    static_cast<std::int64_t>(picked_.size()));
  std::vector<std::shared_ptr<const DecodedShardColumns>> out(picked_.size());
  dataset_->scan_pool().parallel_for(picked_.size(), [&](std::size_t j) {
    out[j] = dataset_->fetch(picked_[j], columns);
  });
  return out;
}

void Source::ensure_identity() const {
  ensure_plan();
  if (identity_done_) return;
  identity_done_ = true;
  const auto decoded = scan(0);
  ids_.reserve(rows_);
  // First-appearance interning keyed by gpu_index across the ordered
  // merge — RecordFrame::append_row's exact id-assignment rule, which
  // is what makes gpu_ids()/gpus() byte-identical to the materialized
  // frame's.
  std::map<std::size_t, std::uint32_t> id_by_gpu_index;
  for (std::size_t j = 0; j < decoded.size(); ++j) {
    const DecodedShardColumns& d = *decoded[j];
    const auto emit = [&](std::size_t r) {
      const GpuRef& g = d.pool[d.gpu_ids[r]];
      const auto [it, inserted] = id_by_gpu_index.try_emplace(
          g.gpu_index, static_cast<std::uint32_t>(pool_.size()));
      if (inserted) pool_.push_back(g);
      ids_.push_back(it->second);
    };
    if (filtered_) {
      for (std::uint32_t r : match_rows_[j]) emit(r);
    } else {
      for (std::size_t r = 0; r < d.gpu_ids.size(); ++r) emit(r);
    }
  }
}

void Source::ensure_runs() const {
  ensure_plan();
  if (runs_done_) return;
  runs_done_ = true;
  const auto decoded = scan(0);
  runs_.reserve(rows_);
  for (std::size_t j = 0; j < decoded.size(); ++j) {
    const DecodedShardColumns& d = *decoded[j];
    if (filtered_) {
      for (std::uint32_t r : match_rows_[j]) runs_.push_back(d.runs[r]);
    } else {
      runs_.insert(runs_.end(), d.runs.begin(), d.runs.end());
    }
  }
}

void Source::ensure_days() const {
  ensure_plan();
  if (days_done_) return;
  days_done_ = true;
  const auto decoded = scan(0);
  days_.reserve(rows_);
  for (std::size_t j = 0; j < decoded.size(); ++j) {
    const DecodedShardColumns& d = *decoded[j];
    if (filtered_) {
      for (std::uint32_t r : match_rows_[j]) days_.push_back(d.days[r]);
    } else {
      days_.insert(days_.end(), d.days.begin(), d.days.end());
    }
  }
}

void Source::ensure_metric(std::size_t k) const {
  ensure_plan();
  if (metric_done_[k]) return;
  metric_done_[k] = true;
  const auto decoded = scan(1u << k);
  auto& col = metric_cols_[k];
  col.reserve(rows_);
  for (std::size_t j = 0; j < decoded.size(); ++j) {
    const std::vector<double>& src = decoded[j]->metric_cols[k];
    if (filtered_) {
      for (std::uint32_t r : match_rows_[j]) col.push_back(src[r]);
    } else {
      col.insert(col.end(), src.begin(), src.end());
    }
  }
}

std::size_t Source::size() const {
  if (frame_ != nullptr) return frame_->size();
  ensure_plan();
  return rows_;
}

std::size_t Source::gpu_count() const {
  if (frame_ != nullptr) return frame_->gpu_count();
  ensure_identity();
  return pool_.size();
}

std::span<const double> Source::metric(Metric m) const {
  if (frame_ != nullptr) return frame_->metric(m);
  // Metric enumerators (kPerf, kFreq, kPower, kTemp) match the first
  // four shard column bits in serialized order.
  const auto k = static_cast<std::size_t>(m);
  ensure_metric(k);
  return metric_cols_[k];
}

std::span<const std::uint32_t> Source::gpu_ids() const {
  if (frame_ != nullptr) return frame_->gpu_ids();
  ensure_identity();
  return ids_;
}

std::span<const GpuRef> Source::gpus() const {
  if (frame_ != nullptr) return frame_->gpus();
  ensure_identity();
  return pool_;
}

std::span<const std::int32_t> Source::run_indices() const {
  if (frame_ != nullptr) return frame_->run_indices();
  ensure_runs();
  return runs_;
}

std::span<const std::int16_t> Source::days_of_week() const {
  if (frame_ != nullptr) return frame_->days_of_week();
  ensure_days();
  return days_;
}

GpuRowGroups group_rows_by_gpu(const Source& source) {
  return group_rows_by_ids(source.gpu_ids(), source.gpus());
}

std::vector<GpuAggregate> per_gpu_medians(const Source& source) {
  GPUVAR_REQUIRE(!source.empty());
  const auto groups = group_rows_by_gpu(source);
  return per_gpu_medians_grouped(groups, source.gpus(),
                                 source.metric(Metric::kPerf),
                                 source.metric(Metric::kFreq),
                                 source.metric(Metric::kPower),
                                 source.metric(Metric::kTemp));
}

}  // namespace gpuvar::query
