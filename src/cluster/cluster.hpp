// Cluster construction: turns a ClusterSpec into a population of GPU
// instances with deterministically sampled silicon, thermals and faults,
// and manufactures simulated devices for them on demand.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/faults.hpp"
#include "cluster/topology.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "thermal/cooling.hpp"
#include "thermal/thermal.hpp"
#include "common/location.hpp"

namespace gpuvar {

struct ClusterSpec {
  std::string name;
  GpuSku sku;
  CoolingSpec cooling;
  ClusterLayout layout;
  FaultPlan faults;
  /// σ of the per-run multiplicative runtime noise (transient effects;
  /// the paper's Fig. 8 shows AMD runs are far noisier than NVIDIA runs).
  double run_noise_sigma = 0.002;
  /// σ of the per-node lognormal interconnect (NVLink/NCCL) efficiency
  /// spread; scales multi-GPU allreduce time.
  double interconnect_sigma = 0.04;
  std::uint64_t seed = 0x5EED;
  int node_label_base = 0;  ///< offset for printed node names
};

/// One physical GPU: its location and everything sampled for it.
struct GpuInstance {
  GpuLocation loc;
  SiliconSample silicon;   ///< already includes fault-driven degradation
  ThermalParams thermal;   ///< already includes cooling faults
  AppliedFaults faults;
  Watts power_cap{};   ///< effective limit; 0 = SKU TDP
  /// Node-shared allreduce-time multiplier (>= ~1; >1 = slower links).
  double interconnect_factor = 1.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  const GpuSku& sku() const { return spec_.sku; }
  std::size_t size() const { return gpus_.size(); }
  int node_count() const { return spec_.layout.nodes; }
  int gpus_per_node() const { return spec_.layout.gpus_per_node; }

  const GpuInstance& gpu(std::size_t i) const;
  const std::vector<GpuInstance>& gpus() const { return gpus_; }

  /// Per-GPU location table indexed by global GPU index — the shape the
  /// telemetry exports consume (they never see the Cluster itself).
  std::vector<GpuLocation> locations() const;

  /// Global GPU index of (node, gpu-in-node).
  std::size_t index_of(int node, int gpu) const;
  /// All GPU indices on a node.
  std::vector<std::size_t> node_gpus(int node) const;

  /// Ground truth: indices of GPUs with any injected fault.
  std::vector<std::size_t> faulty_gpus() const;

  /// Builds a fresh simulated device for GPU i (thermal state at idle
  /// equilibrium, DVFS at boost, power limit = min(cap, override)).
  /// `power_limit_override` of 0 keeps the instance's own cap/TDP.
  std::unique_ptr<SimulatedGpu> make_device(
      std::size_t i, const SimOptions& opts = {},
      Watts power_limit_override = Watts{}) const;

  /// The seed path prefix identifying GPU i (for run-noise derivation).
  std::string gpu_seed_path(std::size_t i) const;

 private:
  ClusterSpec spec_;
  std::vector<GpuInstance> gpus_;
};

// --- Factories for the paper's systems (Table I). ---

/// TACC Longhorn: 104 nodes × 4 V100, air-cooled.
ClusterSpec longhorn_spec(std::uint64_t seed = 0x10A6);
/// ORNL Summit: water-cooled V100s in rows × columns. `nodes_per_column`
/// scales the build (18 = full 27,648-GPU machine; benches default lower).
ClusterSpec summit_spec(std::uint64_t seed = 0x5077, int rows = 8,
                        int columns = 29, int nodes_per_column = 18,
                        int gpus_per_node = 6);
/// LLNL Corona: 82 nodes × 4 MI60, air-cooled.
ClusterSpec corona_spec(std::uint64_t seed = 0xC060);
/// SNL Vortex: 54 nodes × 4 V100, water-cooled.
ClusterSpec vortex_spec(std::uint64_t seed = 0x0642);
/// TACC Frontera RTX partition: 90 nodes × 4 RTX 5000, mineral oil.
ClusterSpec frontera_spec(std::uint64_t seed = 0xF207);
/// NSF CloudLab: 3 nodes × 4 V100, air-cooled, admin-controllable.
ClusterSpec cloudlab_spec(std::uint64_t seed = 0x22);

}  // namespace gpuvar
