#include "cluster/allocator.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "cluster/cluster.hpp"

namespace gpuvar {

ExclusiveAllocator::ExclusiveAllocator(const Cluster& cluster)
    : cluster_(&cluster) {}

std::vector<NodeAllocation> ExclusiveAllocator::all_nodes() const {
  std::vector<NodeAllocation> out;
  out.reserve(static_cast<std::size_t>(cluster_->node_count()));
  for (int node = 0; node < cluster_->node_count(); ++node) {
    out.push_back(NodeAllocation{node, cluster_->node_gpus(node)});
  }
  return out;
}

std::vector<NodeAllocation> ExclusiveAllocator::sample_nodes(
    std::size_t count) const {
  const auto n = static_cast<std::size_t>(cluster_->node_count());
  GPUVAR_REQUIRE(count >= 1);
  if (count >= n) return all_nodes();
  Rng rng(cluster_->spec().seed, cluster_->name() + "/allocator");
  auto picks = rng.sample_without_replacement(n, count);
  std::sort(picks.begin(), picks.end());
  std::vector<NodeAllocation> out;
  out.reserve(count);
  for (auto p : picks) {
    const int node = static_cast<int>(p);
    out.push_back(NodeAllocation{node, cluster_->node_gpus(node)});
  }
  return out;
}

std::vector<NodeAllocation> ExclusiveAllocator::sample_coverage(
    double coverage) const {
  GPUVAR_REQUIRE(coverage >= 0.0 && coverage <= 1.0);
  const auto n = static_cast<std::size_t>(cluster_->node_count());
  // Zero coverage (or an empty cluster) is a valid degenerate campaign:
  // nothing to measure, so no allocations.
  if (coverage == 0.0 || n == 0) return {};
  const auto count = static_cast<std::size_t>(
      std::ceil(coverage * static_cast<double>(n)));
  return sample_nodes(std::max<std::size_t>(1, count));
}

}  // namespace gpuvar
