#include "cluster/faults.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "common/location.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace gpuvar {

namespace {

/// Static-literal fault name: shared by to_string and the trace
/// instants (TraceEvent stores `name` by pointer; a temporary
/// std::string would dangle).
const char* fault_label(FaultKind k) {
  switch (k) {
    case FaultKind::kPowerCap:
      return "power-cap";
    case FaultKind::kDegradedBoard:
      return "degraded-board";
    case FaultKind::kCoolingDegraded:
      return "cooling-degraded";
    case FaultKind::kPumpFailure:
      return "pump-failure";
    case FaultKind::kWeakSilicon:
      return "weak-silicon";
    case FaultKind::kDegradedInterconnect:
      return "degraded-interconnect";
  }
  return "unknown";
}

}  // namespace

std::string to_string(FaultKind k) { return fault_label(k); }

bool AppliedFaults::has(FaultKind k) const {
  return std::find(kinds.begin(), kinds.end(), k) != kinds.end();
}

namespace {

bool in_scope(const FaultRule& rule, const GpuLocation& loc) {
  if (rule.cabinets.empty() && rule.row_columns.empty() &&
      rule.nodes.empty()) {
    return true;  // cluster-wide rule
  }
  if (std::find(rule.cabinets.begin(), rule.cabinets.end(), loc.cabinet) !=
      rule.cabinets.end()) {
    return true;
  }
  if (std::find(rule.nodes.begin(), rule.nodes.end(), loc.node) !=
      rule.nodes.end()) {
    return true;
  }
  for (const auto& [row, col] : rule.row_columns) {
    if (loc.row == row && loc.column == col) return true;
  }
  return false;
}

}  // namespace

AppliedFaults apply_faults(const FaultPlan& plan, const GpuLocation& loc,
                           Rng& rng) {
  AppliedFaults out;
  for (const auto& rule : plan.rules) {
    // Consume one Bernoulli draw per rule regardless of scope so that a
    // GPU's fault outcome is independent of other rules' scopes.
    const bool hit = rng.bernoulli(rule.probability);
    if (!in_scope(rule, loc) || !hit) continue;

    out.kinds.push_back(rule.kind);
    GPUVAR_METRIC_COUNT("faults.injected");
    GPUVAR_TRACE_INSTANT("faults", fault_label(rule.kind), "node", loc.node);
    switch (rule.kind) {
      case FaultKind::kPowerCap:
      case FaultKind::kPumpFailure: {
        const Watts cap{std::max(
            50.0, rng.normal(rule.cap_mean.value(), rule.cap_sigma.value()))};
        out.power_cap =
            out.power_cap == Watts{} ? cap : std::min(out.power_cap, cap);
        break;
      }
      case FaultKind::kDegradedBoard: {
        const Watts cap{std::max(
            50.0, rng.normal(rule.cap_mean.value(), rule.cap_sigma.value()))};
        out.power_cap =
            out.power_cap == Watts{} ? cap : std::min(out.power_cap, cap);
        out.mem_bw_factor =
            std::min(out.mem_bw_factor, std::max(0.05, rule.mem_bw_factor));
        break;
      }
      case FaultKind::kCoolingDegraded:
        out.r_multiplier = std::max(out.r_multiplier, rule.r_multiplier);
        out.inlet_delta += rule.inlet_delta;
        break;
      case FaultKind::kWeakSilicon:
        out.vf_extra += rule.vf_extra_sigma;  // scaled by process σ later
        break;
      case FaultKind::kDegradedInterconnect:
        out.interconnect_multiplier =
            std::max(out.interconnect_multiplier,
                     rule.interconnect_multiplier);
        break;
    }
  }
  return out;
}

}  // namespace gpuvar
