#include "cluster/topology.hpp"

#include <cstdio>

#include "common/require.hpp"
#include "common/location.hpp"

namespace gpuvar {

int ClusterLayout::cabinets() const {
  GPUVAR_REQUIRE(nodes_per_cabinet > 0);
  return (nodes + nodes_per_cabinet - 1) / nodes_per_cabinet;
}

void ClusterLayout::validate() const {
  // Zero nodes is a legal (empty) cluster: the campaign engine returns
  // an empty frame for it instead of refusing to construct.
  GPUVAR_REQUIRE(nodes >= 0);
  GPUVAR_REQUIRE(gpus_per_node > 0);
  if (nodes == 0) return;
  if (is_row_layout()) {
    GPUVAR_REQUIRE(columns > 0 && nodes_per_column > 0);
    GPUVAR_REQUIRE_MSG(nodes == rows * columns * nodes_per_column,
                       "row layout dimensions must multiply to node count");
  } else {
    GPUVAR_REQUIRE(nodes_per_cabinet > 0);
  }
}

char row_letter(int row) {
  GPUVAR_REQUIRE(row >= 0 && row < 26);
  return static_cast<char>('a' + row);
}

GpuLocation locate(const ClusterLayout& layout, int node, int gpu,
                   int node_label_base) {
  GPUVAR_REQUIRE(node >= 0 && node < layout.nodes);
  GPUVAR_REQUIRE(gpu >= 0 && gpu < layout.gpus_per_node);

  GpuLocation loc;
  loc.node = node;
  loc.gpu = gpu;
  char buf[64];
  if (layout.is_row_layout()) {
    const int nodes_per_row = layout.columns * layout.nodes_per_column;
    loc.row = node / nodes_per_row;
    const int in_row = node % nodes_per_row;
    loc.column = in_row / layout.nodes_per_column;
    loc.node_in_group = in_row % layout.nodes_per_column;
    // Cabinet == column group for plotting convenience on row layouts.
    loc.cabinet = loc.row * layout.columns + loc.column;
    std::snprintf(buf, sizeof(buf), "row%c-col%02d-n%02d-%d",
                  row_letter(loc.row), loc.column + 1, loc.node_in_group + 1,
                  gpu + 1);
  } else {
    loc.cabinet = node / layout.nodes_per_cabinet;
    loc.node_in_group = node % layout.nodes_per_cabinet;
    std::snprintf(buf, sizeof(buf), "c%03d-%03d-gpu%d",
                  loc.cabinet + node_label_base, loc.node_in_group + 1, gpu);
  }
  loc.name = buf;
  return loc;
}

}  // namespace gpuvar
