// Cluster topology: where every GPU physically sits.
//
// Two layout families cover the paper's systems:
//   * cabinet-style (Longhorn, Corona, Vortex, Frontera, CloudLab):
//     nodes grouped into cabinets of a few nodes each; the paper colours
//     its plots by cabinet.
//   * row/column-style (Summit): rows A..H of columns of nodes, following
//     ORNL's floor layout; the paper breaks Summit down by row and drills
//     into row H, column 36.
#pragma once

#include <cstddef>
#include <string>

#include "common/location.hpp"

namespace gpuvar {

struct ClusterLayout {
  int nodes = 0;
  int gpus_per_node = 0;
  int nodes_per_cabinet = 3;  ///< cabinet-style grouping

  // Row/column layout (Summit). When rows > 0, the cluster is laid out as
  // rows × columns × nodes_per_column and `nodes` must equal the product.
  int rows = 0;
  int columns = 0;
  int nodes_per_column = 0;

  bool is_row_layout() const { return rows > 0; }
  int total_gpus() const { return nodes * gpus_per_node; }
  int cabinets() const;

  void validate() const;
};

/// Computes the location of (node, gpu) under a layout. `node_label_base`
/// offsets printed cabinet/node numbers to match each center's naming
/// convention (e.g. Corona nodes print as c115).
GpuLocation locate(const ClusterLayout& layout, int node, int gpu,
                   int node_label_base = 0);

/// Row letter for a row index (0 -> 'a').
char row_letter(int row);

}  // namespace gpuvar
