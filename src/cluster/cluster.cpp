#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "cluster/faults.hpp"
#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "gpu/device.hpp"
#include "gpu/silicon.hpp"
#include "gpu/sku.hpp"
#include "thermal/cooling.hpp"
#include "common/location.hpp"

namespace gpuvar {

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  spec_.layout.validate();
  GPUVAR_REQUIRE(spec_.run_noise_sigma >= 0.0);

  const int n_nodes = spec_.layout.nodes;
  const int n_gpus = spec_.layout.gpus_per_node;
  gpus_.reserve(static_cast<std::size_t>(n_nodes) * n_gpus);

  // One spatial (hot-aisle) offset per cabinet, shared by its GPUs.
  const int n_cabinets = spec_.layout.is_row_layout()
                             ? spec_.layout.rows * spec_.layout.columns
                             : spec_.layout.cabinets();
  std::vector<Celsius> cabinet_offsets(static_cast<std::size_t>(n_cabinets));
  for (int c = 0; c < n_cabinets; ++c) {
    Rng rng(spec_.seed, spec_.name + "/cabinet:" + std::to_string(c));
    cabinet_offsets[static_cast<std::size_t>(c)] =
        sample_cabinet_offset(spec_.cooling, rng);
  }

  for (int node = 0; node < n_nodes; ++node) {
    // The interconnect (NVLink topology, NCCL ring) is a node property:
    // one draw shared by the node's GPUs.
    double node_interconnect = 1.0;
    if (spec_.interconnect_sigma > 0.0) {
      Rng link_rng(spec_.seed,
                   spec_.name + "/node:" + std::to_string(node) + "/link");
      node_interconnect = std::exp(link_rng.truncated_normal(
          0.0, spec_.interconnect_sigma, -2.0 * spec_.interconnect_sigma,
          3.0 * spec_.interconnect_sigma));
    }
    for (int g = 0; g < n_gpus; ++g) {
      GpuInstance inst;
      inst.loc = locate(spec_.layout, node, g, spec_.node_label_base);

      const std::string path = spec_.name + "/" + inst.loc.name;
      Rng silicon_rng(spec_.seed, path + "/silicon");
      inst.silicon = sample_silicon(spec_.sku, silicon_rng);

      Rng fault_rng(spec_.seed, path + "/faults");
      inst.faults = apply_faults(spec_.faults, inst.loc, fault_rng);

      // Fault-driven silicon degradation.
      if (inst.faults.vf_extra > 0.0) {
        inst.silicon.vf_offset +=
            inst.faults.vf_extra * spec_.sku.spread.vf_offset_sigma;
      }
      inst.silicon.mem_bw_factor *= inst.faults.mem_bw_factor;
      inst.power_cap = inst.faults.power_cap;
      inst.interconnect_factor =
          node_interconnect * inst.faults.interconnect_multiplier;

      CoolingSpec cooling = spec_.cooling;
      Rng thermal_rng(spec_.seed, path + "/thermal");
      const Celsius offset =
          cabinet_offsets[static_cast<std::size_t>(inst.loc.cabinet)] +
          inst.faults.inlet_delta;
      inst.thermal = sample_thermal(cooling, offset, thermal_rng);
      inst.thermal.r_c_per_w *= inst.faults.r_multiplier;

      gpus_.push_back(std::move(inst));
    }
  }
}

const GpuInstance& Cluster::gpu(std::size_t i) const {
  GPUVAR_REQUIRE(i < gpus_.size());
  return gpus_[i];
}

std::vector<GpuLocation> Cluster::locations() const {
  std::vector<GpuLocation> locs;
  locs.reserve(gpus_.size());
  for (const auto& g : gpus_) locs.push_back(g.loc);
  return locs;
}

std::size_t Cluster::index_of(int node, int gpu) const {
  GPUVAR_REQUIRE(node >= 0 && node < spec_.layout.nodes);
  GPUVAR_REQUIRE(gpu >= 0 && gpu < spec_.layout.gpus_per_node);
  return static_cast<std::size_t>(node) * spec_.layout.gpus_per_node + gpu;
}

std::vector<std::size_t> Cluster::node_gpus(int node) const {
  std::vector<std::size_t> out;
  out.reserve(static_cast<std::size_t>(spec_.layout.gpus_per_node));
  for (int g = 0; g < spec_.layout.gpus_per_node; ++g) {
    out.push_back(index_of(node, g));
  }
  return out;
}

std::vector<std::size_t> Cluster::faulty_gpus() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < gpus_.size(); ++i) {
    if (gpus_[i].faults.any()) out.push_back(i);
  }
  return out;
}

std::unique_ptr<SimulatedGpu> Cluster::make_device(
    std::size_t i, const SimOptions& opts, Watts power_limit_override) const {
  const GpuInstance& inst = gpu(i);
  auto dev = std::make_unique<SimulatedGpu>(spec_.sku, inst.silicon,
                                            inst.thermal, opts);
  Watts limit = inst.power_cap > Watts{} ? inst.power_cap : spec_.sku.tdp;
  if (power_limit_override > Watts{}) {
    limit = std::min(limit, power_limit_override);
  }
  dev->set_power_limit(limit);
  return dev;
}

std::string Cluster::gpu_seed_path(std::size_t i) const {
  return spec_.name + "/" + gpu(i).loc.name;
}

// ---------------------------------------------------------------------
// Factories (Table I), with fault plans reproducing the paper's outliers.
// ---------------------------------------------------------------------

ClusterSpec longhorn_spec(std::uint64_t seed) {
  ClusterSpec s;
  s.name = "longhorn";
  s.sku = make_v100_sxm2();
  s.cooling = air_cooling(Celsius{28.0});
  s.layout.nodes = 104;
  s.layout.gpus_per_node = 4;
  s.layout.nodes_per_cabinet = 8;  // 13 cabinets, coloured in the figures
  s.run_noise_sigma = 0.0025;
  s.seed = seed;

  // Cabinet c002: the consistently bad GPUs that show up as SGEMM power
  // outliers (~250 W) and as ResNet/BERT stragglers (degraded boards).
  FaultRule c002;
  c002.kind = FaultKind::kDegradedBoard;
  c002.cabinets = {2};
  c002.probability = 0.22;
  c002.cap_mean = Watts{252.0};
  c002.cap_sigma = Watts{6.0};
  c002.mem_bw_factor = 0.22;
  s.faults.rules.push_back(c002);

  // A sprinkling of cluster-wide power-delivery outliers.
  FaultRule caps;
  caps.kind = FaultKind::kPowerCap;
  caps.probability = 0.012;
  caps.cap_mean = Watts{262.0};
  caps.cap_sigma = Watts{9.0};
  s.faults.rules.push_back(caps);

  // Cabinet c004 sits in a hot aisle: high temperature but healthy
  // silicon (the paper's "runs hot yet completes fast" example).
  FaultRule hot;
  hot.kind = FaultKind::kCoolingDegraded;
  hot.cabinets = {4};
  hot.probability = 0.8;
  hot.r_multiplier = 1.25;
  hot.inlet_delta = Celsius{7.0};
  s.faults.rules.push_back(hot);
  return s;
}

ClusterSpec summit_spec(std::uint64_t seed, int rows, int columns,
                        int nodes_per_column, int gpus_per_node) {
  GPUVAR_REQUIRE(rows > 0 && columns > 0 && nodes_per_column > 0);
  ClusterSpec s;
  s.name = "summit";
  s.sku = make_v100_sxm2();
  s.cooling = water_cooling(Celsius{26.0});
  s.layout.rows = rows;
  s.layout.columns = columns;
  s.layout.nodes_per_column = nodes_per_column;
  s.layout.nodes = rows * columns * nodes_per_column;
  s.layout.gpus_per_node = gpus_per_node;
  s.run_noise_sigma = 0.001;
  s.seed = seed;

  // Power outliers concentrated in a few row/column pairs (row H columns
  // 13, 14, 28, 33, 36 in the paper's Appendix B; rows A and H overall).
  const int row_a = 0;
  const int row_h = std::min(7, rows - 1);
  FaultRule rowh_caps;
  rowh_caps.kind = FaultKind::kPowerCap;
  for (int col : {12, 13, 27, 32, 35}) {  // 0-based analogues
    if (col < columns) rowh_caps.row_columns.emplace_back(row_h, col);
  }
  rowh_caps.probability = 0.28;
  rowh_caps.cap_mean = Watts{268.0};
  rowh_caps.cap_sigma = Watts{10.0};
  s.faults.rules.push_back(rowh_caps);

  FaultRule rowa_caps;
  rowa_caps.kind = FaultKind::kPowerCap;
  for (int col : {4, 18}) {
    if (col < columns) rowa_caps.row_columns.emplace_back(row_a, col);
  }
  rowa_caps.probability = 0.20;
  rowa_caps.cap_mean = Watts{272.0};
  rowa_caps.cap_sigma = Watts{8.0};
  s.faults.rules.push_back(rowa_caps);

  // Rows D and F: performance/frequency outliers from weak silicon.
  FaultRule weak;
  weak.kind = FaultKind::kWeakSilicon;
  for (int col = 0; col < columns; col += 6) {
    if (3 < rows) weak.row_columns.emplace_back(3, col);  // row D
    if (5 < rows) weak.row_columns.emplace_back(5, col);  // row F
  }
  weak.probability = 0.10;
  weak.vf_extra_sigma = 2.5;
  s.faults.rules.push_back(weak);

  // One node in row H col 36 with temperature-only outliers: water loop
  // partially clogged (runs up to ~73 °C but silicon is healthy).
  FaultRule clog;
  clog.kind = FaultKind::kCoolingDegraded;
  if (35 < columns) clog.row_columns.emplace_back(row_h, 35);
  clog.probability = 0.07;
  clog.r_multiplier = 1.8;
  clog.inlet_delta = Celsius{6.0};
  s.faults.rules.push_back(clog);
  return s;
}

ClusterSpec corona_spec(std::uint64_t seed) {
  ClusterSpec s;
  s.name = "corona";
  s.sku = make_mi60();
  // Corona's MI60s run close to their (higher) slowdown temperature.
  s.cooling = air_cooling(Celsius{30.0});
  s.cooling.r_mean = 0.185;
  s.cooling.r_sigma = 0.012;
  s.cooling.cabinet_sigma = Celsius{3.0};
  s.cooling.gpu_sigma = Celsius{3.0};
  s.layout.nodes = 82;
  s.layout.gpus_per_node = 4;
  s.layout.nodes_per_cabinet = 3;  // "cabinets" of 12 GPUs, as in §IV-D
  // AMD runs show far higher run-to-run noise (Fig. 8: 6.06% median).
  s.run_noise_sigma = 0.015;
  s.seed = seed;
  s.node_label_base = 100;  // nodes print as c100.. (the outlier is c115)

  // Node c115: the severely under-performing GPU drawing only ~165 W.
  FaultRule c115;
  c115.kind = FaultKind::kPumpFailure;  // board-level severe cap
  c115.nodes = {15};
  c115.probability = 0.6;
  c115.cap_mean = Watts{165.0};
  c115.cap_sigma = Watts{4.0};
  s.faults.rules.push_back(c115);
  return s;
}

ClusterSpec vortex_spec(std::uint64_t seed) {
  ClusterSpec s;
  s.name = "vortex";
  s.sku = make_v100_sxm2();
  s.cooling = water_cooling(Celsius{22.0});
  s.cooling.r_mean = 0.075;
  s.layout.nodes = 54;
  s.layout.gpus_per_node = 4;
  s.layout.nodes_per_cabinet = 3;
  s.run_noise_sigma = 0.002;
  s.seed = seed;
  // Vortex showed clean behaviour: all GPUs within ~5 W of TDP.
  return s;
}

ClusterSpec frontera_spec(std::uint64_t seed) {
  ClusterSpec s;
  s.name = "frontera";
  s.sku = make_rtx5000();
  s.cooling = mineral_oil_cooling(Celsius{48.0});
  s.layout.nodes = 90;
  s.layout.gpus_per_node = 4;
  s.layout.nodes_per_cabinet = 3;
  s.run_noise_sigma = 0.002;
  s.seed = seed;
  s.node_label_base = 190;  // cabinets print as c190.. (outlier: c197)

  // Cabinet c197: degraded oil-circulation pump. The two afflicted GPUs
  // run 1100-1600 ms slower, ~16 °C cooler and ~59 W below median power —
  // consistent with a severe enforced power cap.
  FaultRule pump;
  pump.kind = FaultKind::kPumpFailure;
  pump.cabinets = {7};
  pump.probability = 0.18;
  pump.cap_mean = Watts{168.0};
  pump.cap_sigma = Watts{6.0};
  s.faults.rules.push_back(pump);
  return s;
}

ClusterSpec cloudlab_spec(std::uint64_t seed) {
  ClusterSpec s;
  s.name = "cloudlab";
  s.sku = make_v100_sxm2();
  s.cooling = air_cooling(Celsius{26.0});
  s.cooling.cabinet_sigma = Celsius{3.0};  // one machine room, less spatial spread
  s.layout.nodes = 3;
  s.layout.gpus_per_node = 4;
  s.layout.nodes_per_cabinet = 1;
  s.run_noise_sigma = 0.002;
  s.seed = seed;
  return s;
}

}  // namespace gpuvar
