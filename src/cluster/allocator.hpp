// Exclusive-node allocation, matching the paper's measurement discipline:
// every job owns a whole node (no time-sharing, no spatial interference
// from co-located jobs). The allocator enumerates node allocations and can
// subsample the cluster (the paper measured >90% of GPUs, 184 of Vortex's
// 216, etc.).
#pragma once

#include <cstddef>
#include <vector>

namespace gpuvar { class Cluster; }  // was: #include "cluster/cluster.hpp"

namespace gpuvar {

struct NodeAllocation {
  int node = 0;
  std::vector<std::size_t> gpu_indices;  ///< global GPU indices on the node
};

class ExclusiveAllocator {
 public:
  explicit ExclusiveAllocator(const Cluster& cluster);

  /// Every node in the cluster, in order.
  std::vector<NodeAllocation> all_nodes() const;

  /// A deterministic subsample of `count` nodes (seeded by the cluster's
  /// own seed, stable across calls).
  std::vector<NodeAllocation> sample_nodes(std::size_t count) const;

  /// The fraction of nodes needed to cover at least `coverage` of GPUs.
  std::vector<NodeAllocation> sample_coverage(double coverage) const;

 private:
  const Cluster* cluster_;
};

}  // namespace gpuvar
