// Declarative fault injection.
//
// The paper's striking outliers all trace to *persistent* hardware
// conditions: GPUs whose boards cap power below TDP (Summit row H,
// Longhorn's 250 W outliers), a cabinet whose mineral-oil pump degraded
// (Frontera c197), one severely under-performing node (Corona c115), and
// nodes with degraded airflow that run hot. A FaultPlan places such
// conditions deterministically; the cluster records ground truth so the
// flagging analysis (src/core/flagging) can be scored against it.
#pragma once

#include <string>
#include <vector>

namespace gpuvar { class Rng; }  // was: #include "common/rng.hpp"
#include "common/units.hpp"

namespace gpuvar {

enum class FaultKind {
  kPowerCap,        ///< board limits power below TDP (degraded delivery)
  kDegradedBoard,   ///< power cap + crippled memory bandwidth
  kCoolingDegraded, ///< higher thermal resistance / hotter inlet
  kPumpFailure,     ///< cabinet-wide severe power cap (oil pump incident)
  kWeakSilicon,     ///< extra V/f offset (bottom-of-bin chip escaped QA)
  kDegradedInterconnect,  ///< slow NVLink/PCIe path (flaky lanes retrain)
};

std::string to_string(FaultKind k);

/// Scope selection for a rule. A GPU is in scope if it matches *any* listed
/// cabinet / (row, column) pair, or — when both lists are empty — the whole
/// cluster. Within scope, each GPU is afflicted independently with
/// `probability`.
struct FaultRule {
  FaultKind kind = FaultKind::kPowerCap;
  std::vector<int> cabinets;                      ///< cabinet indices
  std::vector<std::pair<int, int>> row_columns;   ///< (row, column) pairs
  std::vector<int> nodes;                         ///< explicit node indices
  double probability = 1.0;

  // Parameters (used according to kind):
  Watts cap_mean{260.0};
  Watts cap_sigma{8.0};
  double mem_bw_factor = 0.30;   ///< kDegradedBoard
  double r_multiplier = 1.5;     ///< kCoolingDegraded
  Celsius inlet_delta{6.0};     ///< kCoolingDegraded
  double vf_extra_sigma = 3.0;   ///< kWeakSilicon: added offset in process σ
  double interconnect_multiplier = 3.0;  ///< kDegradedInterconnect
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  bool empty() const { return rules.empty(); }
};

/// The effect of the applied faults on one GPU.
struct AppliedFaults {
  std::vector<FaultKind> kinds;
  Watts power_cap{};        ///< 0 = no cap (TDP)
  double mem_bw_factor = 1.0;   ///< multiplier applied to the chip's factor
  double r_multiplier = 1.0;
  Celsius inlet_delta{};
  double vf_extra = 0.0;   ///< extra V/f offset in units of process σ
  double interconnect_multiplier = 1.0;

  bool any() const { return !kinds.empty(); }
  bool has(FaultKind k) const;
};

struct GpuLocation;  // cluster/topology.hpp

/// Evaluates the plan for a GPU at `loc`. Deterministic: the rng must be
/// seeded from the GPU's identity path.
AppliedFaults apply_faults(const FaultPlan& plan, const GpuLocation& loc,
                           Rng& rng);

}  // namespace gpuvar
