#include "thermal/thermal.hpp"

#include <cmath>

#include "common/require.hpp"
#include "obs/metrics.hpp"
#include "common/units.hpp"

namespace gpuvar {

ThermalModel::ThermalModel(const ThermalParams& params) : params_(params) {
  GPUVAR_REQUIRE(params.r_c_per_w > 0.0);
  GPUVAR_REQUIRE(params.c_j_per_c > 0.0);
  temp_ = params.coolant;
}

Seconds ThermalModel::time_constant() const {
  return Seconds{params_.r_c_per_w * params_.c_j_per_c};
}

void ThermalModel::step(Seconds dt, Watts p) {
  GPUVAR_REQUIRE(dt >= Seconds{});
  GPUVAR_ASSERT(p >= Watts{});
  // Hottest loop in the simulator (one call per tick per GPU): a
  // counter is one cached pointer hop + sharded fetch_add, no span.
  GPUVAR_METRIC_COUNT("thermal.rc_steps");
  // Exact solution of the linear ODE over dt (unconditionally stable,
  // exact for constant p): T(t+dt) = Teq + (T - Teq)·exp(-dt/τ).
  const Celsius teq = equilibrium(p);
  const double decay = std::exp(-(dt / time_constant()));
  temp_ = teq + (temp_ - teq) * decay;
  GPUVAR_ASSERT(temp_ > kAbsoluteZero);
}

Celsius ThermalModel::equilibrium(Watts p) const {
  return params_.coolant + Celsius{p.value() * params_.r_c_per_w};
}

void ThermalModel::settle(Watts p) {
  GPUVAR_ASSERT(p >= Watts{});
  temp_ = equilibrium(p);
  GPUVAR_ASSERT(temp_ > kAbsoluteZero);
}

void ThermalModel::reset(Watts idle_power) { settle(idle_power); }

}  // namespace gpuvar
