// Cooling-loop descriptions and per-GPU thermal sampling.
//
// The paper contrasts three cooling technologies:
//   air         — wide inlet-temperature spread across cabinets (hot
//                 aisles, rack position), ≥30 °C observed temperature range
//   water       — narrow spread, low coolant temperature
//   mineral oil — narrow spread but a high bath temperature; pumps can
//                 degrade per cabinet (the Frontera c197 incident)
//
// A CoolingSpec holds the *distributions*; each GPU draws its own
// ThermalParams from them, with a shared per-cabinet spatial offset so
// physical neighbours correlate (as the paper's cabinet-coloured plots
// show).
#pragma once

#include <string>

namespace gpuvar { class Rng; }  // was: #include "common/rng.hpp"
#include "common/units.hpp"
#include "thermal/thermal.hpp"

namespace gpuvar {

enum class CoolingType { kAir, kWater, kMineralOil };

std::string to_string(CoolingType t);

struct CoolingSpec {
  CoolingType type = CoolingType::kAir;
  Celsius coolant_base{25.0};   ///< nominal inlet / loop temperature
  Celsius cabinet_sigma{};   ///< spatial spread across cabinets
  Celsius gpu_sigma{};       ///< residual spread within a node
  double r_mean = 0.10;          ///< mean thermal resistance, °C/W
  double r_sigma = 0.0;
  double c_mean = 80.0;         ///< thermal capacitance, J/°C
  double c_sigma = 8.0;
};

/// Default parameterizations per technology, calibrated to the paper's
/// observed temperature medians and IQRs.
CoolingSpec air_cooling(Celsius inlet_base = Celsius{28.0});
CoolingSpec water_cooling(Celsius loop_temp = Celsius{24.0});
CoolingSpec mineral_oil_cooling(Celsius bath_temp = Celsius{48.0});

/// Draws the per-cabinet spatial offset (hot-aisle effect). One draw per
/// cabinet, shared by every GPU in it.
Celsius sample_cabinet_offset(const CoolingSpec& spec, Rng& rng);

/// Draws one GPU's thermal parameters given its cabinet's offset.
ThermalParams sample_thermal(const CoolingSpec& spec, Celsius cabinet_offset,
                             Rng& rng);

}  // namespace gpuvar
