// Lumped RC thermal model of a GPU package + heatsink.
//
//   C · dT/dt = P - (T - T_coolant) / R
//
// R (°C/W) captures the heatsink + airflow/coolant loop; C (J/°C) the
// package thermal mass. Equilibrium temperature is T_coolant + P·R. The
// coolant temperature and R are sampled per GPU from the cooling spec —
// air-cooled racks see a wide inlet-temperature spread (hot aisles),
// water loops a narrow one.
#pragma once

#include "common/units.hpp"

namespace gpuvar {

struct ThermalParams {
  double r_c_per_w = 0.1;   ///< thermal resistance, °C/W
  double c_j_per_c = 120.0; ///< thermal capacitance, J/°C
  Celsius coolant{25.0};   ///< local coolant / inlet temperature
};

class ThermalModel {
 public:
  explicit ThermalModel(const ThermalParams& params);

  Celsius temperature() const { return temp_; }
  const ThermalParams& params() const { return params_; }

  /// Advance the model by dt under dissipated power p (explicit Euler with
  /// sub-stepping if dt is large relative to the RC time constant).
  void step(Seconds dt, Watts p);

  /// The steady-state temperature under constant power p.
  Celsius equilibrium(Watts p) const;

  /// Jump directly to the steady state for power p (used by the
  /// fast-forward optimizer once the control loop has stabilized).
  void settle(Watts p);

  /// Reset to the idle equilibrium for the given idle power.
  void reset(Watts idle_power);

  /// RC time constant (s).
  Seconds time_constant() const;

  /// Adjusts the local coolant/inlet temperature (spatial coupling: heat
  /// picked up from co-located neighbours under shared airflow).
  void set_coolant(Celsius coolant) { params_.coolant = coolant; }

 private:
  ThermalParams params_;
  Celsius temp_;
};

}  // namespace gpuvar
