#include "thermal/cooling.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "thermal/thermal.hpp"

#include <algorithm>


namespace gpuvar {

std::string to_string(CoolingType t) {
  switch (t) {
    case CoolingType::kAir:
      return "air";
    case CoolingType::kWater:
      return "water";
    case CoolingType::kMineralOil:
      return "mineral oil";
  }
  return "unknown";
}

CoolingSpec air_cooling(Celsius inlet_base) {
  CoolingSpec s;
  s.type = CoolingType::kAir;
  s.coolant_base = inlet_base;
  // Hot aisles, rack position and chassis airflow quality give air-cooled
  // clusters their ≥30 °C observed range (Longhorn, Fig. 2d).
  s.cabinet_sigma = Celsius{10.0};
  s.gpu_sigma = Celsius{5.0};
  s.r_mean = 0.135;
  s.r_sigma = 0.025;
  return s;
}

CoolingSpec water_cooling(Celsius loop_temp) {
  CoolingSpec s;
  s.type = CoolingType::kWater;
  s.coolant_base = loop_temp;
  s.cabinet_sigma = Celsius{1.5};
  s.gpu_sigma = Celsius{2.0};
  s.r_mean = 0.080;
  s.r_sigma = 0.015;
  return s;
}

CoolingSpec mineral_oil_cooling(Celsius bath_temp) {
  CoolingSpec s;
  s.type = CoolingType::kMineralOil;
  s.coolant_base = bath_temp;  // the bath runs warm but very uniform
  s.cabinet_sigma = Celsius{0.8};
  s.gpu_sigma = Celsius{0.8};
  s.r_mean = 0.125;
  s.r_sigma = 0.007;
  return s;
}

Celsius sample_cabinet_offset(const CoolingSpec& spec, Rng& rng) {
  if (spec.cabinet_sigma <= Celsius{}) return Celsius{};
  // Skew the air distribution warm: a few cabinets sit in hot aisles.
  const double z = rng.normal();
  const double skew = (spec.type == CoolingType::kAir && z > 0.0) ? 1.6 : 1.0;
  return spec.cabinet_sigma * (z * skew);
}

ThermalParams sample_thermal(const CoolingSpec& spec, Celsius cabinet_offset,
                             Rng& rng) {
  ThermalParams p;
  p.coolant = std::max(Celsius{10.0},
                     spec.coolant_base + cabinet_offset +
                         Celsius{rng.normal(0.0, spec.gpu_sigma.value())});
  p.r_c_per_w = std::max(0.01, rng.normal(spec.r_mean, spec.r_sigma));
  p.c_j_per_c = std::max(30.0, rng.normal(spec.c_mean, spec.c_sigma));
  return p;
}

}  // namespace gpuvar
