// Figures 9 & 10: SGEMM on SNL Vortex (water-cooled V100s).
//
// Paper shape: 9% perf variation; frequencies 1330-1442 MHz; temperature
// Q1..Q3 spread ~10 C (water); all GPUs within ~5 W of the 300 W TDP;
// rho(perf,freq) ~ -0.98, rho(perf,temp) ~ 0.04.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 9-10", "SGEMM on SNL Vortex");
  Cluster vortex(vortex_spec());
  const auto result = bench::sgemm_experiment(vortex);
  bench::print_figure_block(result, GroupBy::kCabinet);

  print_section(std::cout, "Figure 10 scatter plots");
  print_scatter(std::cout, result.frame, Metric::kFreq, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kTemp, Metric::kPerf);

  const auto report = analyze_variability(result.frame);
  std::printf(
      "\nTakeaway 3 check: all GPUs within %.1f W of the %d W limit; "
      "temperature Q3-Q1 = %.1f C\n",
      300.0 - report.power.box.min, 300,
      report.temp.box.q3 - report.temp.box.q1);
  return 0;
}
