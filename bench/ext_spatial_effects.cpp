// Extension (§VII "Spatial Effects", the paper's stated future work):
// quantify spatial interference from co-located jobs and temporal
// inheritance from a preceding job, per cooling technology.
#include "bench_util.hpp"

using namespace gpuvar;

namespace {

void spatial_for(const ClusterSpec& spec) {
  Cluster cluster(spec);
  const auto opts = RunOptions::for_sku(cluster.sku());
  const std::size_t n =
      cluster.sku().vendor == Vendor::kAmd ? 24576 : 25536;
  const auto w = sgemm_workload(n, std::max(6, bench::sgemm_reps() / 2));

  double slow_sum = 0.0, dt_sum = 0.0;
  int count = 0;
  for (int node : {0, 1, 2}) {
    const auto impacts =
        measure_tenancy_impact(cluster, node, w, opts, TenancyOptions{});
    for (const auto& imp : impacts) {
      slow_sum += imp.slowdown;
      dt_sum += (imp.shared_temp - imp.exclusive_temp).value();
      ++count;
    }
  }
  std::printf("  %-10s (%-11s): mean slowdown %5.2f%%, mean temp rise "
              "%5.1f C (kappa=%.3f C/W)\n",
              spec.name.c_str(), to_string(spec.cooling.type).c_str(),
              (slow_sum / count - 1.0) * 100.0, dt_sum / count,
              default_coupling(spec.cooling.type));
}

}  // namespace

int main() {
  bench::print_header("Extension",
                      "spatial & temporal tenancy effects (SVII)");
  std::printf("SGEMM, 4 co-located single-GPU jobs vs the paper's "
              "exclusive-node baseline:\n");
  spatial_for(longhorn_spec());
  spatial_for(vortex_spec());
  spatial_for(frontera_spec());

  print_section(std::cout, "temporal effects: inheriting a hot GPU");
  Cluster longhorn(longhorn_spec());
  const auto opts = RunOptions::for_sku(longhorn.sku());
  const auto w = sgemm_workload(25536, 6);
  for (Watts prev : {Watts{0.0}, Watts{150.0}, Watts{295.0}}) {
    TenancyOptions t;
    t.coupling_c_per_w = 0.0;  // isolate the temporal effect
    t.previous_job_power = prev;
    const auto results = run_on_node_shared(longhorn, 0, w, 0, opts, t);
    double perf = 0.0, temp = 0.0;
    for (const auto& r : results) {
      perf += r.perf_ms;
      temp += r.telemetry.temp.median;
    }
    std::printf("  previous job at %3.0f W: median kernel %7.1f ms, "
                "temp %5.1f C\n",
                prev.value(), perf / results.size(), temp / results.size());
  }
  std::printf(
      "\nConclusion: air-cooled clusters see a real multi-tenant penalty "
      "(shared airflow); water-cooled nodes are nearly immune — the "
      "paper's exclusive-allocation methodology was the right call, and "
      "cloud-style per-GPU allocation needs cooling-aware colocation.\n");
  return 0;
}
