// Extension (§VII "Blacklisting, Maintenance"): temporal drift detection
// over a multi-week canary history. A healthy fleet must stay silent
// (the paper: variability is persistent, not transient); a GPU whose
// cooling degrades over the campaign must be caught early.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Extension",
                      "performance-drift detection over a campaign");
  Cluster vortex(vortex_spec());

  // A 10-"week" canary history across a quarter of the cluster.
  std::vector<RunRecord> history;
  for (int week = 0; week < 10; ++week) {
    auto cfg = default_config(vortex, sgemm_workload(25536, 6), 1);
    cfg.node_coverage = 0.25;
    cfg.salt = static_cast<std::uint64_t>(week);
    const auto frame = run_experiment(vortex, cfg).frame;
    for (std::size_t i = 0; i < frame.size(); ++i) {
      RunRecord r = frame.row(i);
      r.run_index = week;
      history.push_back(std::move(r));
    }
  }
  std::printf("history: %zu records; estimated run noise sigma: %.2f ms\n",
              history.size(),
              estimate_run_noise_ms(bench::frame_from(history)));

  const auto clean = detect_performance_drift(bench::frame_from(history));
  std::printf("healthy fleet: %zu drift flags (expected 0 — the paper's "
              "variability is persistent, not drifting)\n",
              clean.size());

  // Inject a slow cooling degradation into one GPU's history: +0.6%
  // runtime per week (a clogging heatsink).
  auto degraded = history;
  const std::size_t victim = degraded.front().gpu_index;
  std::string victim_name;
  for (auto& r : degraded) {
    if (r.gpu_index == victim) {
      victim_name = r.loc.name;
      r.perf_ms *= 1.0 + 0.006 * r.run_index;
    }
  }
  const auto flags = detect_performance_drift(bench::frame_from(degraded));
  std::printf("\nafter injecting +0.6%%/week degradation into %s:\n",
              victim_name.c_str());
  for (const auto& f : flags) {
    std::printf("  DRIFT %s: baseline %.0f ms -> recent %.0f ms "
                "(%+.2f%%, %.1f noise sigmas over %d runs)\n",
                f.name.c_str(), f.baseline_ms, f.recent_ewma_ms,
                f.drift_pct, f.noise_sigmas, f.runs);
  }
  std::printf("\n%s\n",
              flags.size() == 1 && flags.front().gpu_index == victim
                  ? "-> exactly the degraded GPU was caught, weeks before "
                    "it would gate bulk-synchronous jobs"
                  : "-> UNEXPECTED detection result");
  return 0;
}
