// Micro-benchmarks for the campaign engine's durability plane
// (google-benchmark): FrameShard serialize/parse throughput — the cost
// a spilled bucket pays on the way out and back in — plus whole-campaign
// comparisons of the in-memory path against spill-everything and
// resume-everything runs on a small cluster. The spill overhead is the
// price of the bounded-memory contract; these numbers keep it honest.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "gpuvar.hpp"

namespace {

namespace fs = std::filesystem;

using gpuvar::RecordFrame;
using gpuvar::RunRecord;

/// Synthetic bucket shaped like one node job's worth of records.
RecordFrame synth_bucket(std::size_t rows) {
  gpuvar::Rng rng(0xBE9C);
  RecordFrame frame;
  frame.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    RunRecord r;
    r.gpu_index = i % 8;
    r.loc.node = 3;
    r.loc.gpu = static_cast<int>(i % 8);
    r.loc.cabinet = 1;
    r.loc.name = "c1-3-gpu" + std::to_string(i % 8);
    r.run_index = static_cast<int>(i / 8);
    r.day_of_week = static_cast<int>(i % 7);
    r.perf_ms = rng.normal(2500.0, 40.0);
    r.freq_mhz = rng.normal(1390.0, 12.0);
    r.power_w = rng.normal(300.0, 5.0);
    r.temp_c = rng.normal(62.0, 4.0);
    r.counters.fu_util = rng.uniform(0.4, 0.9);
    r.counters.dram_util = rng.uniform(0.1, 0.6);
    r.counters.mem_stall_frac = rng.uniform(0.05, 0.3);
    r.counters.exec_stall_frac = rng.uniform(0.05, 0.3);
    frame.append_row(r);
  }
  return frame;
}

// --- shard codec ----------------------------------------------------------

void BM_ShardSerialize(benchmark::State& state) {
  const RecordFrame bucket =
      synth_bucket(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string s = gpuvar::serialize_frame_shard(bucket, 0);
    bytes = s.size();
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bucket.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ShardSerialize)->Arg(10000)->Arg(100000);

void BM_ShardParse(benchmark::State& state) {
  const RecordFrame bucket =
      synth_bucket(static_cast<std::size_t>(state.range(0)));
  const std::string bytes = gpuvar::serialize_frame_shard(bucket, 0);
  for (auto _ : state) {
    const gpuvar::FrameShard shard =
        gpuvar::parse_frame_shard(bytes, "bench");
    benchmark::DoNotOptimize(shard.frame.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bucket.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_ShardParse)->Arg(10000)->Arg(100000);

// --- whole campaigns ------------------------------------------------------

gpuvar::ExperimentConfig bench_config(const gpuvar::Cluster& cluster) {
  return gpuvar::default_config(cluster, gpuvar::sgemm_workload(16384, 2), 2);
}

void BM_CampaignInMemory(benchmark::State& state) {
  const gpuvar::Cluster cluster(gpuvar::cloudlab_spec());
  const auto cfg = bench_config(cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::run_campaign(cluster, cfg).frame.size());
  }
}
BENCHMARK(BM_CampaignInMemory);

void BM_CampaignSpillAll(benchmark::State& state) {
  // Budget 0: every bucket is serialized, written, evicted, and read
  // back at merge. The delta vs BM_CampaignInMemory is the full price
  // of the bounded-memory contract on this campaign size.
  const gpuvar::Cluster cluster(gpuvar::cloudlab_spec());
  const auto cfg = bench_config(cluster);
  const fs::path dir = fs::temp_directory_path() / "gpuvar_engine_bench";
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    fs::create_directories(dir);
    state.ResumeTiming();
    gpuvar::CampaignOptions opts;
    opts.checkpoint_dir = dir.string();
    opts.shard_budget_bytes = 0;
    benchmark::DoNotOptimize(
        gpuvar::run_campaign(cluster, cfg, opts).frame.size());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_CampaignSpillAll);

void BM_CampaignResume(benchmark::State& state) {
  // Resume of a finished campaign: the manifest scan re-validates and
  // restores every shard without running a single node job — the cost
  // of picking a killed campaign back up, minus the missing buckets.
  const gpuvar::Cluster cluster(gpuvar::cloudlab_spec());
  const auto cfg = bench_config(cluster);
  const fs::path dir = fs::temp_directory_path() / "gpuvar_engine_bench_rs";
  fs::remove_all(dir);
  fs::create_directories(dir);
  gpuvar::CampaignOptions opts;
  opts.checkpoint_dir = dir.string();
  gpuvar::run_campaign(cluster, cfg, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpuvar::run_campaign(cluster, cfg, opts).frame.size());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_CampaignResume);

}  // namespace

BENCHMARK_MAIN();
