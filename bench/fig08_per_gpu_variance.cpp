// Figure 8: normalized performance variation *within* a GPU across
// independent SGEMM runs, for Longhorn, Summit and Corona.
//
// Paper shape: medians of 0.44% (Longhorn), 0.12% (Summit) and 6.06%
// (Corona) — runs are repeatable on NVIDIA parts, far noisier on the AMD
// parts, and the noisiest repeaters are NOT the worst performers.
#include "bench_util.hpp"

using namespace gpuvar;

namespace {

void analyze(const ClusterSpec& spec) {
  Cluster cluster(spec);
  const std::size_t n = spec.sku.vendor == Vendor::kAmd ? 24576 : 25536;
  auto cfg = default_config(
      cluster, sgemm_workload(n, bench::sgemm_reps()),
      std::max(3, bench::runs_per_gpu()));
  const auto result = run_experiment(cluster, cfg);
  const auto reps = per_gpu_repeatability(result.frame);

  std::vector<double> vars, perf;
  for (const auto& r : reps) {
    vars.push_back(r.variation_pct);
    perf.push_back(r.median_perf_ms);
  }
  const auto box = stats::box_summary(vars);
  std::printf("  %-10s per-GPU run variation: median %5.2f%%  Q3 %5.2f%%  "
              "max %5.2f%%  (GPUs: %zu)\n",
              spec.name.c_str(), box.median, box.q3, box.max, reps.size());

  // Are the worst repeaters the worst performers? (paper: no)
  const double rho = stats::pearson(vars, perf);
  std::printf("    rho(per-GPU variation, median perf) = %+.2f — %s\n", rho,
              std::abs(rho) < 0.5 ? "noisy GPUs are NOT the slow GPUs"
                                  : "noise tracks slowness");
  std::cout << stats::render_box_chart(
      std::vector<stats::NamedSeries>{{spec.name, vars}},
      stats::BoxChartOptions{60, "%", true});
}

}  // namespace

int main() {
  bench::print_header("Figure 8",
                      "per-GPU run-to-run performance variation");
  analyze(longhorn_spec());
  analyze(summit_spec(0x5077, 8, 29, bench::summit_nodes_per_column(), 6));
  analyze(corona_spec());
  std::printf(
      "\nPaper shape: medians 0.44%% / 0.12%% / 6.06%% — ill-performing "
      "GPUs are consistently ill-performing.\n");
  return 0;
}
