// Figures 12 & 13: SGEMM on TACC Frontera (RTX 5000, mineral oil).
//
// Paper shape: 5% perf and 7% frequency variation; operating clocks higher
// than V100s; nearly all GPUs within ~5 W of the 230 W TDP; narrow but
// *warm* temperature band (Q3-Q1 ~ 4 C around ~76 C); two GPUs in cabinet
// c197 run 1100-1600 ms slower, ~16 C cooler and ~59 W lower — the
// degraded oil-pump incident; rho(perf,power) ~ -0.96.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 12-13", "SGEMM on TACC Frontera");
  Cluster frontera(frontera_spec());
  const auto result = bench::sgemm_experiment(frontera);
  bench::print_figure_block(result, GroupBy::kCabinet);

  print_section(std::cout, "Figure 13 scatter plots");
  print_scatter(std::cout, result.frame, Metric::kPower, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kTemp, Metric::kPower);

  print_section(std::cout, "pump-incident detection (SVII)");
  FlagOptions fopts;
  fopts.slowdown_temp = frontera.sku().slowdown_temp;
  const auto flags = flag_anomalies(result.frame, fopts);
  print_flags(std::cout, flags);
  const auto med =
      stats::median(metric_column(result.frame, Metric::kPower));
  for (const auto& f : flags.gpus) {
    const auto& inst = frontera.gpu(f.gpu_index);
    if (inst.faults.has(FaultKind::kPumpFailure)) {
      std::printf("  -> %s confirmed: injected pump fault (cap %.0f W, "
                  "median power deficit %.0f W)\n",
                  f.name.c_str(), inst.power_cap.value(),
                  med - inst.power_cap.value());
    }
  }
  return 0;
}
