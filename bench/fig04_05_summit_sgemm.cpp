// Figures 4 & 5: SGEMM on ORNL Summit, broken down by row.
//
// Paper shape: 8% perf variation; ~100 MHz frequency spread per row with
// outliers below 1300 MHz in rows D/F; power IQRs at 295-300 W with
// sub-290 W outliers concentrated in rows A and H; a narrow 40-62 C
// temperature band (water cooling); rho(perf,freq) ~ -0.99 and
// rho(perf,power) ~ -0.09.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 4-5", "SGEMM on ORNL Summit (by row)");
  Cluster summit(
      summit_spec(0x5077, 8, 29, bench::summit_nodes_per_column(), 6));
  std::printf("(built %zu GPUs; GPUVAR_SUMMIT=18 for the full machine)\n",
              summit.size());
  const auto result = bench::sgemm_experiment(summit);
  bench::print_figure_block(result, GroupBy::kRow);

  print_section(std::cout, "Figure 5 scatter plots");
  print_scatter(std::cout, result.frame, Metric::kFreq, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kPower, Metric::kPerf);

  print_section(std::cout, "power outliers per row (Takeaway 2)");
  const auto by_row = variability_by_group(result.frame, GroupBy::kRow);
  for (const auto& [row, rep] : by_row) {
    std::printf("  %s: %3zu power outliers (min %3.0f W), %3zu perf outliers\n",
                group_label(GroupBy::kRow, row).c_str(),
                rep.power.box.outlier_count(), rep.power.box.min,
                rep.perf.box.outlier_count());
  }

  print_section(std::cout, "scaled-normal projection (SIV-D)");
  const auto proj = project_to_cluster_size(result.frame, 27648);
  std::printf(
      "  measured variation at %zu GPUs: %.1f%%; projected at 27648 GPUs: "
      "%.1f%% (paper projects Longhorn to 9.4%%)\n",
      proj.source_gpus, proj.source_variation_pct,
      proj.projected_variation_pct);
  return 0;
}
