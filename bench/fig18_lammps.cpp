// Figure 18: LAMMPS (REAXC, input (8,16,16)) on Longhorn.
//
// Paper shape: median power <= ~180 W (never near TDP); frequency pinned
// at 1530 MHz; performance varies by <1%; yet power varies ~20% and the
// temperature Q1..Q3 spread is ~8 C. High energy draw without performance
// return — memory-bound work doesn't stress the TDP.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figure 18", "LAMMPS REAXC on TACC Longhorn");
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(longhorn, lammps_workload(5),
                            bench::runs_per_gpu());
  const auto result = run_experiment(longhorn, cfg);
  bench::print_figure_block(result, GroupBy::kCabinet);

  const auto report = analyze_variability(result.frame);
  print_section(std::cout, "Takeaway 7 checks");
  std::printf("  perf variation %.2f%% (paper <1%%), power variation %.1f%% "
              "(paper ~20%%), freq median %.0f MHz (pinned)\n",
              report.perf.variation_pct, report.power.variation_pct,
              report.freq.box.median);
  std::printf("  median power %.0f W — far below the 300 W TDP\n",
              report.power.box.median);

  // Energy-efficiency observation: memory-bound kernels burn energy
  // without performance return on the worst GPUs.
  print_section(std::cout, "placement advice from counters (SVII)");
  const auto advice = advise_placement(result.frame.counters(0));
  std::printf("  class: %s — %s\n", to_string(advice.app_class).c_str(),
              advice.note.c_str());
  return 0;
}
