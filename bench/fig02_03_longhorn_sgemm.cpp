// Figures 2 & 3: SGEMM on TACC Longhorn — box plots of all four metrics
// (coloured by cabinet in the paper; grouped by cabinet here) and the
// metric-pair scatter plots with their Pearson correlations.
//
// Paper shape: 9% perf variation; GPUs settle at 1300-1440 MHz despite a
// 1530 MHz configuration; >30 C temperature spread; power outliers near
// 250 W; rho(perf,freq) ~ -0.97, rho(perf,temp) ~ +0.46 (weak),
// rho(perf,power) ~ -0.35, rho(power,temp) ~ -0.1.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 2-3", "SGEMM on TACC Longhorn");
  Cluster longhorn(longhorn_spec());
  const auto result = bench::sgemm_experiment(longhorn);
  bench::print_figure_block(result, GroupBy::kCabinet);

  print_section(std::cout, "Figure 3 scatter plots");
  print_scatter(std::cout, result.frame, Metric::kTemp, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kPower, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kFreq, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kTemp, Metric::kPower);

  print_section(std::cout, "operator early-warning report (SVII)");
  FlagOptions fopts;
  fopts.slowdown_temp = longhorn.sku().slowdown_temp;
  print_flags(std::cout, flag_anomalies(result.frame, fopts));
  return 0;
}
