// Extension (§VII "New Hardware and System Design"): global power
// management across GPUs. Compares today's uniform per-GPU caps against
// an equal-frequency coordinator that uses exposed PM information, at the
// same cluster power envelope.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Extension", "global power management (SVII)");
  Cluster vortex(vortex_spec());
  const auto kernel = make_sgemm_kernel(25536);
  const auto workload = sgemm_workload(25536, bench::sgemm_reps() / 2 + 3);

  std::printf("%10s %14s | %10s %8s | %10s %8s | %s\n", "envelope",
              "W/GPU", "uniform ms", "var %", "coord ms", "var %",
              "target MHz");
  for (double per_gpu : {290.0, 275.0, 260.0, 240.0, 220.0}) {
    const Watts envelope{per_gpu * static_cast<double>(vortex.size())};
    const auto uni = analyze_variability(
        run_under_assignment(vortex, workload,
                             uniform_assignment(vortex, envelope))
            .frame);
    const auto assignment =
        equal_frequency_assignment(vortex, envelope, kernel);
    const auto coord = analyze_variability(
        run_under_assignment(vortex, workload, assignment).frame);
    std::printf("%9.0fW %13.0fW | %10.0f %8.2f | %10.0f %8.2f | %7.0f\n",
                envelope.value(), per_gpu, uni.perf.box.median,
                uni.perf.variation_pct, coord.perf.box.median,
                coord.perf.variation_pct, assignment.target_freq.value());
  }

  std::printf(
      "\nReading the table: at every envelope the coordinator collapses "
      "the performance spread (bulk-synchronous jobs pay for the slowest "
      "GPU, so uniform-cap clusters effectively run at their worst bin). "
      "The median barely moves — the win is uniformity, not peak speed.\n");

  print_section(std::cout, "per-GPU budget redistribution");
  const Watts envelope{275.0 * static_cast<double>(vortex.size())};
  const auto a = equal_frequency_assignment(vortex, envelope, kernel);
  double lo = 1e18, hi = 0.0;
  for (Watts w : a.limits) {
    lo = std::min(lo, w.value());
    hi = std::max(hi, w.value());
  }
  std::printf("  limits span %.0f-%.0f W (best bins donate ~%.0f W to the "
              "worst bins) at a common %.0f MHz\n",
              lo, hi, hi - lo, a.target_freq.value());
  return 0;
}
