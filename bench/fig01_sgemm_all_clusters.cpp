// Figure 1: normalized SGEMM runtime across the five compute clusters.
// Every cluster shows significant variability (paper: 7-9%) with outliers
// up to ~1.5x the median GPU.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figure 1",
                      "normalized SGEMM runtime across five clusters");

  std::vector<stats::NamedSeries> series;
  std::printf("%-10s %6s %9s %6s %9s %9s\n", "cluster", "GPUs", "median ms",
              "var %", "outliers", "worst/med");

  auto add_cluster = [&](const ClusterSpec& spec) {
    Cluster cluster(spec);
    const auto result = bench::sgemm_experiment(cluster);
    const auto gpus = per_gpu_medians(result.frame);
    std::vector<double> perf;
    perf.reserve(gpus.size());
    for (const auto& g : gpus) perf.push_back(g.perf_ms);
    const auto box = stats::box_summary(perf);
    // Normalize to a median of 1 (the paper's Figure 1 convention).
    std::vector<double> normalized;
    normalized.reserve(perf.size());
    for (double p : perf) normalized.push_back(p / box.median);
    series.push_back(stats::NamedSeries{spec.name, normalized});
    std::printf("%-10s %6zu %9.0f %6.1f %9zu %9.2f\n", spec.name.c_str(),
                gpus.size(), box.median, box.variation() * 100.0,
                box.outlier_count(), box.max / box.median);
  };

  add_cluster(longhorn_spec());
  add_cluster(summit_spec(0x5077, 8, 29, bench::summit_nodes_per_column(), 6));
  add_cluster(corona_spec());
  add_cluster(vortex_spec());
  add_cluster(frontera_spec());

  std::printf("\nnormalized runtime (median = 1.0):\n");
  stats::BoxChartOptions opts;
  opts.unit = "x";
  std::cout << stats::render_box_chart(series, opts);
  std::printf(
      "\nPaper shape: 7-9%% variation on every cluster; outliers up to "
      "~1.5x the median GPU.\n");
  return 0;
}
