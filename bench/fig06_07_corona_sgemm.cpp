// Figures 6 & 7: SGEMM on LLNL Corona (AMD MI60, air cooled).
//
// Paper shape: 7% runtime variation; much coarser frequency levels than
// V100s (weaker perf-freq coupling); power never reaches the 300 W TDP;
// temperatures close to the 100 C slowdown threshold; one severe outlier
// node (c115) drawing only ~165 W.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 6-7", "SGEMM on LLNL Corona (AMD MI60)");
  Cluster corona(corona_spec());
  const auto result = bench::sgemm_experiment(corona);
  bench::print_figure_block(result, GroupBy::kCabinet);

  print_section(std::cout, "Figure 7 scatter plots");
  print_scatter(std::cout, result.frame, Metric::kTemp, Metric::kPerf);
  print_scatter(std::cout, result.frame, Metric::kPower, Metric::kPerf);

  print_section(std::cout, "outlier-node drilldown (the paper's c115)");
  const auto gpus = per_gpu_medians(result.frame);
  const auto power_box =
      stats::box_summary(metric_column(result.frame, Metric::kPower));
  for (const auto& g : gpus) {
    if (g.power_w < power_box.lo_whisker - 20.0) {
      std::printf(
          "  %s: %.0f ms at %.0f W, %.0f MHz, %.0f C — severe power outlier;"
          " replacement candidate\n",
          g.loc.name.c_str(), g.perf_ms, g.power_w, g.freq_mhz, g.temp_c);
    }
  }

  print_section(std::cout, "MI60 vs V100 frequency ladder coarseness");
  std::printf("  MI60 step: %.0f MHz, V100 step: %.1f MHz (SIV-D)\n",
              make_mi60().ladder_step_mhz, make_v100_sxm2().ladder_step_mhz);
  return 0;
}
