// Micro-benchmarks for the simulator substrate (google-benchmark):
// per-kernel simulation cost, cluster construction, and full-campaign
// throughput — the numbers behind "18,800 hours of data in seconds".
#include <benchmark/benchmark.h>

#include "gpuvar.hpp"

namespace {

using namespace gpuvar;

void BM_SgemmKernelSim(benchmark::State& state) {
  const auto sku = make_v100_sxm2();
  const SiliconSample chip;
  SimOptions opts;
  opts.tick = sku.dvfs_control_period;
  opts.fast_forward = state.range(0) != 0;
  const auto k = make_sgemm_kernel(25536);
  double simulated = 0.0;
  for (auto _ : state) {
    SimulatedGpu dev(sku, chip, ThermalParams{0.1, 80.0, Celsius{28.0}}, opts);
    const auto r = dev.run_kernel(k, nullptr);
    simulated += r.duration.value();
    benchmark::DoNotOptimize(r.duration.value());
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      simulated, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmKernelSim)->Arg(0)->Arg(1);

void BM_DeviceTick(benchmark::State& state) {
  // Cost of one full-resolution tick (1 ms) including sampling.
  const auto sku = make_v100_sxm2();
  const SiliconSample chip;
  SimOptions opts;
  opts.fast_forward = false;
  SimulatedGpu dev(sku, chip, ThermalParams{0.1, 80.0, Celsius{28.0}}, opts);
  KernelSpec k;
  k.name = "endless";
  k.flops = 1e18;  // never finishes inside the benchmark loop
  k.activity = 1.0;
  Sampler sampler;
  // run_kernel processes whole kernels; instead measure short kernels.
  KernelSpec unit = k;
  unit.flops = 1e10;  // ~1 ms at boost
  for (auto _ : state) {
    const auto r = dev.run_kernel(unit, &sampler);
    benchmark::DoNotOptimize(r.duration.value());
  }
}
BENCHMARK(BM_DeviceTick);

void BM_ClusterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster(longhorn_spec());
    benchmark::DoNotOptimize(cluster.size());
  }
}
BENCHMARK(BM_ClusterConstruction);

void BM_VortexSgemmCampaign(benchmark::State& state) {
  Cluster vortex(vortex_spec());
  for (auto _ : state) {
    auto cfg = default_config(vortex, sgemm_workload(25536, 5), 1);
    const auto result = run_experiment(vortex, cfg);
    benchmark::DoNotOptimize(result.frame.size());
  }
  state.counters["gpu_runs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 216.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VortexSgemmCampaign)->Unit(benchmark::kMillisecond);

void BM_MultiGpuResnetNode(benchmark::State& state) {
  Cluster longhorn(longhorn_spec());
  const auto w = resnet50_multi_workload(20);
  const auto opts = RunOptions::for_sku(longhorn.sku());
  for (auto _ : state) {
    const auto results = run_on_node(longhorn, 3, w, 0, opts);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_MultiGpuResnetNode)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
