// Microbenchmarks for the analyzer's scan driver: cold single-thread
// vs cold parallel vs warm-cache scans of the repository tree, plus
// the full pass pipeline on a pre-scanned tree. The bench-smoke CI job
// archives the JSON output as BENCH_analyzer.json (tools/ci.sh), so
// scan-throughput regressions show up next to the simulator benches.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>

#include "driver.hpp"

namespace {

using gpuvar::analyzer::ScanOptions;
using gpuvar::analyzer::ScanStats;

std::filesystem::path repo_root() {
  if (const char* env = std::getenv("GPUVAR_REPO_ROOT")) return env;
#ifdef GPUVAR_BENCH_REPO_ROOT
  return GPUVAR_BENCH_REPO_ROOT;
#else
  return ".";
#endif
}

// Arg 0: scan threads (0 = one per hardware thread).
void BM_AnalyzerScanCold(benchmark::State& state) {
  ScanOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  std::size_t files = 0;
  for (auto _ : state) {
    ScanStats stats;
    const auto tree = gpuvar::analyzer::scan_tree(repo_root(), opts, &stats);
    benchmark::DoNotOptimize(tree.files.size());
    files = stats.files;
  }
  state.counters["files"] = static_cast<double>(files);
}
BENCHMARK(BM_AnalyzerScanCold)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_AnalyzerScanWarm(benchmark::State& state) {
  const auto cache = std::filesystem::temp_directory_path() /
                     "gpuvar_analyzer_bench_cache.txt";
  ScanOptions opts;
  opts.threads = 1;
  opts.cache_path = cache;
  (void)gpuvar::analyzer::scan_tree(repo_root(), opts, nullptr);  // prime
  for (auto _ : state) {
    ScanStats stats;
    const auto tree = gpuvar::analyzer::scan_tree(repo_root(), opts, &stats);
    benchmark::DoNotOptimize(tree.files.size());
    if (stats.scanned != 0) {
      state.SkipWithError("cache miss during warm run");
      break;
    }
  }
  std::filesystem::remove(cache);
}
BENCHMARK(BM_AnalyzerScanWarm)->Unit(benchmark::kMillisecond);

void BM_AnalyzerPasses(benchmark::State& state) {
  ScanOptions opts;
  const auto tree = gpuvar::analyzer::scan_tree(repo_root(), opts, nullptr);
  for (auto _ : state) {
    const auto result = gpuvar::analyzer::analyze_tree(tree);
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_AnalyzerPasses)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
