// Figure 11: frequency and power time series for two Vortex GPUs at the
// extremes of kernel performance.
//
// Paper shape: each kernel launch boosts the clock; power rises until it
// crosses the 300 W TDP; DVFS then walks the frequency down until power
// holds below the limit. The slow GPU settles ~1327 MHz, the fast one
// ~1440 MHz — same temperature, same power, 8% apart in runtime.
#include "bench_util.hpp"

using namespace gpuvar;

namespace {

std::size_t extreme_gpu(const Cluster& cluster, bool slowest) {
  // Pick extremes by silicon quality (ground truth; cheap and exact).
  std::size_t best = 0;
  double best_q = slowest ? 2.0 : -1.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const double q = cluster.gpu(i).silicon.quality_score(cluster.sku());
    if ((slowest && q < best_q) || (!slowest && q > best_q)) {
      best_q = q;
      best = i;
    }
  }
  return best;
}

void trace(const Cluster& cluster, std::size_t gpu, const char* label) {
  RunOptions opts = RunOptions::for_sku(cluster.sku());
  opts.collect_series = true;
  opts.series_interval = Seconds{0.02};
  auto w = sgemm_workload(25536, 4);  // a ~10 s slice: 4 kernels
  w.warmup_iterations = 0;       // capture the launch transient
  w.inter_kernel_gap = Seconds{0.4};      // idle gap: DVFS re-boosts per launch
  const auto r = run_on_gpu(cluster, gpu, w, 0, opts);

  std::printf("\n%s: %s — median %0.f MHz, %0.f W, %.1f C, kernel %0.f ms\n",
              label, cluster.gpu(gpu).loc.name.c_str(),
              r.telemetry.freq.median, r.telemetry.power.median,
              r.telemetry.temp.median, r.perf_ms);
  const auto ts = r.series.times();
  stats::LineChartOptions freq_opts;
  freq_opts.y_label = "frequency (MHz)";
  std::cout << stats::render_line_chart(ts, r.series.freqs(), freq_opts);
  stats::LineChartOptions pow_opts;
  pow_opts.y_label = "power (W)";
  std::cout << stats::render_line_chart(ts, r.series.powers(), pow_opts);
}

}  // namespace

int main() {
  bench::print_header("Figure 11",
                      "DVFS time series for two Vortex GPUs");
  Cluster vortex(vortex_spec());
  const auto slow = extreme_gpu(vortex, true);
  const auto fast = extreme_gpu(vortex, false);
  trace(vortex, fast, "GPU-2 (fast bin)");
  trace(vortex, slow, "GPU-1 (slow bin)");
  std::printf(
      "\nPaper shape: both GPUs boost, cross 300 W, and get walked down by "
      "DVFS; the slow bin settles ~100 MHz lower at the same temperature "
      "and power.\n");
  return 0;
}
