// Table II: summary of applications studied, plus the profiler-counter
// footprint used to classify them (§III, §VII).
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Table II", "Summary of applications studied");
  std::printf("%-18s %-6s %-28s %12s %12s\n", "Benchmark", "GPUs", "Metric",
              "GFLOP/iter", "GB/iter");
  const auto sku = make_v100_sxm2();
  SiliconSample typical;

  auto row = [&](const WorkloadSpec& w) {
    std::printf("%-18s %-6d %-28s %12.1f %12.2f\n", w.name.c_str(),
                w.gpus_per_job, to_string(w.metric).c_str(),
                w.iteration_flops() / 1e9, w.iteration_bytes() / 1e9);
  };
  row(sgemm_workload());
  row(resnet50_multi_workload());
  row(resnet50_single_workload());
  row(bert_workload());
  row(lammps_workload());
  row(pagerank_workload());

  bench::print_header("§III/§VII", "profiler counters & classification");
  std::printf("%-18s %8s %8s %10s %10s  %-24s %s\n", "Benchmark", "FU util",
              "DRAM", "mem-stall", "exec-stall", "class",
              "tolerates variable nodes");
  auto classify_row = [&](const WorkloadSpec& w) {
    CounterAccumulator acc;
    for (const auto& step : w.iteration) {
      const Seconds t =
          kernel_time_at(step.kernel, sku, typical, sku.max_mhz);
      acc.add(step.kernel, t * step.count);
    }
    const auto c = acc.aggregate();
    const auto advice = advise_placement(c);
    std::printf("%-18s %8.1f %8.2f %9.0f%% %9.0f%%  %-24s %s\n",
                w.name.c_str(), c.fu_util, c.dram_util,
                c.mem_stall_frac * 100.0, c.exec_stall_frac * 100.0,
                to_string(advice.app_class).c_str(),
                advice.tolerates_variable_nodes ? "yes" : "no");
  };
  classify_row(sgemm_workload());
  classify_row(resnet50_multi_workload());
  classify_row(bert_workload());
  classify_row(lammps_workload());
  classify_row(pagerank_workload());
  return 0;
}
