// Appendix B (Figures 23-26): drilling into Summit row H.
//
// Paper shape: most of row H's outliers come from a handful of columns
// (13, 14, 28, 33, 36); within row H column 36, 7 of 16 nodes show power
// outliers as low as 255 W while 9 are clean; the capped GPUs hold a flat
// frequency (~1312 MHz) while instantaneous power rises and falls under
// the cap; one node shows temperature-only outliers.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figures 23-26", "Summit row H drilldown");
  Cluster summit(summit_spec(
      0x5077, 8, 29, std::max(4, bench::summit_nodes_per_column()), 6));
  const auto result = bench::sgemm_experiment(summit);

  // Row H only.
  std::vector<std::size_t> rowh_rows;
  for (std::size_t i = 0; i < result.frame.size(); ++i) {
    if (result.frame.loc(i).row == 7) rowh_rows.push_back(i);
  }
  const RecordFrame rowh = result.frame.select(rowh_rows);
  std::printf("row H records: %zu\n", rowh.size());

  print_section(std::cout, "Figure 23: row H by column");
  print_group_boxes(std::cout, rowh, Metric::kPerf, GroupBy::kColumn);
  print_group_boxes(std::cout, rowh, Metric::kPower, GroupBy::kColumn);

  print_section(std::cout, "Figure 24: row H correlations");
  print_correlation_table(std::cout, correlate_metrics(rowh));
  print_scatter(std::cout, rowh, Metric::kPower, Metric::kPerf);

  print_section(std::cout, "outlier columns (paper: 13, 14, 28, 33, 36)");
  const auto by_col = variability_by_group(rowh, GroupBy::kColumn);
  for (const auto& [col, rep] : by_col) {
    const auto n =
        rep.power.box.outlier_count() + rep.perf.box.outlier_count();
    if (n > 0) {
      std::printf("  col %02d: %zu power / %zu perf outliers, power min "
                  "%.0f W\n",
                  col + 1, rep.power.box.outlier_count(),
                  rep.perf.box.outlier_count(), rep.power.box.min);
    }
  }

  print_section(std::cout, "Figure 26: row H column 36 per node");
  std::vector<std::size_t> col36_rows;
  for (std::size_t i = 0; i < rowh.size(); ++i) {
    if (rowh.loc(i).column == 35) col36_rows.push_back(i);
  }
  const RecordFrame col36 = rowh.select(col36_rows);
  if (!col36.empty()) {
    print_group_boxes(std::cout, col36, Metric::kPower, GroupBy::kNode);
    print_group_boxes(std::cout, col36, Metric::kTemp, GroupBy::kNode);
  }

  print_section(std::cout, "Figure 25: a power-capped GPU's flat-frequency trace");
  // Find a capped GPU in row H and trace it.
  std::size_t capped = summit.size();
  for (std::size_t i = 0; i < summit.size(); ++i) {
    const auto& g = summit.gpu(i);
    if (g.loc.row == 7 && g.power_cap > Watts{}) {
      capped = i;
      break;
    }
  }
  if (capped < summit.size()) {
    RunOptions opts = RunOptions::for_sku(summit.sku());
    opts.collect_series = true;
    opts.series_interval = Seconds{0.02};
    const auto r =
        run_on_gpu(summit, capped, sgemm_workload(25536, 3), 0, opts);
    std::printf("  %s (cap %.0f W): median %.0f MHz at %.0f W\n",
                summit.gpu(capped).loc.name.c_str(),
                summit.gpu(capped).power_cap.value(), r.telemetry.freq.median,
                r.telemetry.power.median);
    stats::LineChartOptions fo;
    fo.y_label = "frequency (MHz)";
    std::cout << stats::render_line_chart(r.series.times(), r.series.freqs(),
                                          fo);
    stats::LineChartOptions po;
    po.y_label = "power (W)";
    std::cout << stats::render_line_chart(r.series.times(), r.series.powers(),
                                          po);
  }
  return 0;
}
