// Ablation: performance variation as a function of the manufacturing
// process spread. Scales every process σ of the V100 population and
// re-runs the Vortex campaign (water-cooled, fault-free, so silicon is
// the only variable). Expected: variation grows monotonically with σ and
// extrapolates to near zero at σ = 0 — the quantitative version of the
// paper's "manufacturing variability" attribution.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Ablation", "variation vs process spread (Vortex)");
  std::printf("%12s %12s %12s %12s\n", "sigma scale", "perf var %",
              "freq var %", "freq range MHz");

  for (double scale : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    auto spec = vortex_spec();
    spec.sku.spread.vf_offset_sigma *= scale;
    spec.sku.spread.efficiency_sigma *= scale;
    spec.sku.spread.leakage_log_sigma *= scale;
    Cluster cluster(spec);
    const auto result = bench::sgemm_experiment(cluster);
    const auto rep = analyze_variability(result.frame);
    std::printf("%12.2f %12.2f %12.2f %12.0f\n", scale,
                rep.perf.variation_pct, rep.freq.variation_pct,
                rep.freq.box.max - rep.freq.box.min);
  }
  std::printf(
      "\nExpected: monotone growth; the paper's 8-9%% corresponds to the "
      "1.0x production spread.\n");
  return 0;
}
