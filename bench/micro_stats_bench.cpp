// Micro-benchmarks for the statistics kernels (google-benchmark): the
// analysis pipeline must digest tens of thousands of run records quickly.
#include <benchmark/benchmark.h>

#include "gpuvar.hpp"

namespace {

std::vector<double> sample(std::size_t n, std::uint64_t seed = 1) {
  gpuvar::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(2500.0, 40.0));
  return xs;
}

void BM_BoxSummary(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::box_summary(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoxSummary)->Range(1 << 8, 1 << 18);

void BM_Quantile(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::quantile(xs, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quantile)->Range(1 << 8, 1 << 18);

void BM_Pearson(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)), 1);
  const auto ys = sample(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::pearson(xs, ys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pearson)->Range(1 << 8, 1 << 18);

void BM_Spearman(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)), 1);
  const auto ys = sample(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::spearman(xs, ys));
  }
}
BENCHMARK(BM_Spearman)->Range(1 << 8, 1 << 16);

void BM_StreamingQuantileAdd(benchmark::State& state) {
  gpuvar::StreamingQuantile q(0.0, 800.0, 0.1);
  gpuvar::Rng rng(3);
  for (auto _ : state) {
    q.add(rng.uniform(100.0, 400.0), 0.01);
  }
  benchmark::DoNotOptimize(q.total_weight());
}
BENCHMARK(BM_StreamingQuantileAdd);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::normal_quantile(p));
    p += 1e-6;
    if (p >= 0.999) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_RngNormal(benchmark::State& state) {
  gpuvar::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

}  // namespace

BENCHMARK_MAIN();
