// Micro-benchmarks for the statistics kernels (google-benchmark): the
// analysis pipeline must digest tens of thousands of run records quickly.
#include <benchmark/benchmark.h>

#include <cmath>

#include "gpuvar.hpp"

namespace {

std::vector<double> sample(std::size_t n, std::uint64_t seed = 1) {
  gpuvar::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(2500.0, 40.0));
  return xs;
}

void BM_BoxSummary(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::box_summary(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BoxSummary)->Range(1 << 8, 1 << 18);

void BM_Quantile(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::quantile(xs, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quantile)->Range(1 << 8, 1 << 18);

void BM_Pearson(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)), 1);
  const auto ys = sample(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::pearson(xs, ys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pearson)->Range(1 << 8, 1 << 18);

void BM_Spearman(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)), 1);
  const auto ys = sample(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::spearman(xs, ys));
  }
}
BENCHMARK(BM_Spearman)->Range(1 << 8, 1 << 16);

// --- kernel-vs-baseline pairs -------------------------------------------
// The *Baseline benchmarks preserve the pre-kernel implementations
// verbatim (Welford describe, copy-sort quantile, two-pass scalar
// pearson, branchy row filter), so BENCH_stats.json archives the
// speedup of the SIMD kernels over exactly what they replaced at 1k,
// 100k and 1M rows.

void BM_DescribeBaseline(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    gpuvar::stats::Descriptive d;
    d.count = xs.size();
    d.min = xs[0];
    d.max = xs[0];
    double mean_acc = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (double x : xs) {
      ++n;
      sum += x;
      const double delta = x - mean_acc;
      mean_acc += delta / static_cast<double>(n);
      m2 += delta * (x - mean_acc);
      d.min = std::min(d.min, x);
      d.max = std::max(d.max, x);
    }
    d.sum = sum;
    d.mean = mean_acc;
    d.variance = (n > 1) ? m2 / static_cast<double>(n - 1) : 0.0;
    d.stddev = std::sqrt(d.variance);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DescribeBaseline)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_Describe(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::describe(xs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Describe)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_QuantileSortBaseline(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto v = gpuvar::stats::sorted_copy(xs);
    benchmark::DoNotOptimize(gpuvar::stats::quantile_sorted(v, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantileSortBaseline)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_QuantileSelect(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)));
  std::vector<double> scratch(xs.size());
  for (auto _ : state) {
    scratch.assign(xs.begin(), xs.end());
    benchmark::DoNotOptimize(
        gpuvar::stats::kernels::quantile_inplace(scratch, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantileSelect)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PearsonBaseline(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)), 1);
  const auto ys = sample(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    const std::size_t n = xs.size();
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mx += xs[i];
      my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = xs[i] - mx;
      const double dy = ys[i] - my;
      sxy += dx * dy;
      sxx += dx * dx;
      syy += dy * dy;
    }
    const double rho =
        (sxx == 0.0 || syy == 0.0) ? 0.0 : sxy / std::sqrt(sxx * syy);
    benchmark::DoNotOptimize(std::clamp(rho, -1.0, 1.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PearsonBaseline)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PearsonFused(benchmark::State& state) {
  const auto xs = sample(static_cast<std::size_t>(state.range(0)), 1);
  const auto ys = sample(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::pearson(xs, ys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PearsonFused)->Arg(1000)->Arg(100000)->Arg(1000000);

/// The query scan's row filter shape: a per-pool verdict table, an id
/// column gathered through it, a day-range test, surviving row indices.
struct FilterInput {
  std::vector<std::uint32_t> ids;
  std::vector<std::int16_t> days;
  std::vector<std::uint8_t> verdicts;
};

FilterInput filter_input(std::size_t n) {
  gpuvar::Rng rng(17);
  FilterInput in;
  in.verdicts.resize(64);
  for (auto& v : in.verdicts) {
    v = rng.uniform_index(2) == 0 ? std::uint8_t{0} : std::uint8_t{1};
  }
  in.ids.reserve(n);
  in.days.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    in.ids.push_back(static_cast<std::uint32_t>(rng.uniform_index(64)));
    in.days.push_back(static_cast<std::int16_t>(rng.uniform_index(7)));
  }
  return in;
}

void BM_PredicateMaskBaseline(benchmark::State& state) {
  const auto in = filter_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint32_t> rows;
  for (auto _ : state) {
    rows.clear();
    for (std::size_t r = 0; r < in.ids.size(); ++r) {
      if (in.verdicts[in.ids[r]] != 0 && in.days[r] >= 2 && in.days[r] <= 4) {
        rows.push_back(static_cast<std::uint32_t>(r));
      }
    }
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredicateMaskBaseline)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PredicateMask(benchmark::State& state) {
  namespace k = gpuvar::stats::kernels;
  const auto in = filter_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> mask(in.ids.size());
  std::vector<std::uint8_t> day_mask(in.ids.size());
  std::vector<std::uint32_t> rows;
  for (auto _ : state) {
    k::mask_gather_u32(in.ids, in.verdicts, mask);
    k::mask_range_i16(in.days, 2, 4, day_mask);
    k::mask_and(mask, day_mask, mask);
    k::mask_to_indices(mask, rows);
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredicateMask)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_StreamingQuantileAdd(benchmark::State& state) {
  gpuvar::StreamingQuantile q(0.0, 800.0, 0.1);
  gpuvar::Rng rng(3);
  for (auto _ : state) {
    q.add(rng.uniform(100.0, 400.0), 0.01);
  }
  benchmark::DoNotOptimize(q.total_weight());
}
BENCHMARK(BM_StreamingQuantileAdd);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::stats::normal_quantile(p));
    p += 1e-6;
    if (p >= 0.999) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_RngNormal(benchmark::State& state) {
  gpuvar::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_RngNormal);

}  // namespace

BENCHMARK_MAIN();
