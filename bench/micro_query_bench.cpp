// Micro-benchmarks for the streaming query plane (google-benchmark):
// the cost of opening a checkpoint store, of a cold scan (cache budget
// 0, every shard re-decoded), of a warm repeat scan served from the
// decoded-shard cache, and of a warm pushdown-filtered query, all
// against the full Dataset::materialize escape hatch. A warm filtered
// query touching one shard must beat materializing the whole store —
// that gap is the entire reason the query plane exists, and these
// numbers keep it honest.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "gpuvar.hpp"

namespace {

namespace fs = std::filesystem;

using gpuvar::query::Dataset;
using gpuvar::query::DatasetOptions;
using gpuvar::query::Predicate;
using gpuvar::query::Source;

/// Checkpoint store shared by every benchmark: the same cloudlab/sgemm
/// campaign the engine benches run, spilled fully (budget 0) so each
/// node bucket is one shard on disk. Built once, lazily.
const std::string& store_dir() {
  static const std::string dir = [] {
    const fs::path d = fs::temp_directory_path() / "gpuvar_query_bench";
    fs::remove_all(d);
    fs::create_directories(d);
    const gpuvar::Cluster cluster(gpuvar::cloudlab_spec());
    const auto cfg =
        gpuvar::default_config(cluster, gpuvar::sgemm_workload(16384, 2), 2);
    gpuvar::CampaignOptions opts;
    opts.checkpoint_dir = d.string();
    opts.shard_budget_bytes = 0;
    gpuvar::run_campaign(cluster, cfg, opts);
    return d.string();
  }();
  return dir;
}

void BM_QueryOpen(benchmark::State& state) {
  // Manifest read + per-shard header verification; no payload I/O.
  const std::string& dir = store_dir();
  for (auto _ : state) {
    const Dataset ds = Dataset::open(dir);
    benchmark::DoNotOptimize(ds.total_rows());
  }
}
BENCHMARK(BM_QueryOpen);

void BM_QueryColdScan(benchmark::State& state) {
  // Cache budget 0: every iteration reads, hash-checks, and decodes
  // every shard from disk — the floor a cache-starved query pays.
  DatasetOptions opts;
  opts.cache_budget_bytes = 0;
  const Dataset ds = Dataset::open(store_dir(), opts);
  for (auto _ : state) {
    const auto report = gpuvar::analyze_variability(Source(ds));
    benchmark::DoNotOptimize(report.perf.variation_pct);
  }
}
BENCHMARK(BM_QueryColdScan);

void BM_QueryWarmScan(benchmark::State& state) {
  // Unlimited budget, cache warmed before timing: the repeat-query
  // path every interactive session lives on. Delta vs BM_QueryColdScan
  // is what the decoded-shard cache buys.
  const Dataset ds = Dataset::open(store_dir());
  gpuvar::analyze_variability(Source(ds));
  for (auto _ : state) {
    const auto report = gpuvar::analyze_variability(Source(ds));
    benchmark::DoNotOptimize(report.perf.variation_pct);
  }
}
BENCHMARK(BM_QueryWarmScan);

void BM_QueryWarmFiltered(benchmark::State& state) {
  // Warm cache plus a node predicate that pushdown resolves to a
  // single shard. The acceptance bar: this must beat
  // BM_QueryMaterialize, or streaming queries have no reason to exist.
  const Dataset ds = Dataset::open(store_dir());
  Predicate where;
  where.node.lo = 0;
  where.node.hi = 0;
  gpuvar::analyze_variability(Source(ds, where));
  for (auto _ : state) {
    const auto report = gpuvar::analyze_variability(Source(ds, where));
    benchmark::DoNotOptimize(report.perf.variation_pct);
  }
}
BENCHMARK(BM_QueryWarmFiltered);

void BM_QueryMaterialize(benchmark::State& state) {
  // The pre-query-plane baseline: rebuild the whole RecordFrame from
  // disk, then analyze it. Budget 0 keeps the decoded-shard cache out
  // of the picture — the world before this plane had no such cache.
  DatasetOptions opts;
  opts.cache_budget_bytes = 0;
  const Dataset ds = Dataset::open(store_dir(), opts);
  for (auto _ : state) {
    const gpuvar::RecordFrame frame = ds.materialize();
    const auto report = gpuvar::analyze_variability(frame);
    benchmark::DoNotOptimize(report.perf.variation_pct);
  }
}
BENCHMARK(BM_QueryMaterialize);

}  // namespace

BENCHMARK_MAIN();
