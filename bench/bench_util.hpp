// Shared plumbing for the figure-reproduction binaries.
//
// Scale knobs (environment variables), so the same binaries serve quick
// smoke runs and full-fidelity reproductions:
//   GPUVAR_REPS    — SGEMM repetitions per run        (default 12)
//   GPUVAR_RUNS    — runs per GPU                     (default 2)
//   GPUVAR_SUMMIT  — Summit nodes per column          (default 2; 18 = full)
//   GPUVAR_ITERS   — training iterations for ML jobs  (default 60)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

// The figure binaries deliberately program against the umbrella — a
// bench file is a reproduction script, not a library layer — so this
// prelude re-exports it rather than making ~30 binaries spell out
// their header sets.
#include "gpuvar.hpp"  // IWYU pragma: export

namespace bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

inline int sgemm_reps() { return env_int("GPUVAR_REPS", 12); }
inline int runs_per_gpu() { return env_int("GPUVAR_RUNS", 2); }
inline int summit_nodes_per_column() { return env_int("GPUVAR_SUMMIT", 2); }
inline int ml_iterations() { return env_int("GPUVAR_ITERS", 60); }

/// Builds a frame from row records (bench-local: the library's bulk
/// row adapters are gone; benches that synthesize or mutate row vectors
/// convert here before calling the frame-only analysis APIs).
inline gpuvar::RecordFrame frame_from(
    const std::vector<gpuvar::RunRecord>& rows) {
  gpuvar::RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

inline gpuvar::ExperimentResult sgemm_experiment(
    const gpuvar::Cluster& cluster, int day_of_week = -1) {
  const std::size_t n =
      cluster.sku().vendor == gpuvar::Vendor::kAmd ? 24576 : 25536;
  auto cfg = gpuvar::default_config(
      cluster, gpuvar::sgemm_workload(n, sgemm_reps()), runs_per_gpu());
  cfg.day_of_week = day_of_week;
  return gpuvar::run_experiment(cluster, cfg);
}

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

/// Prints the standard per-figure block: variability table, grouped box
/// charts for every metric, and the correlation summary.
inline void print_figure_block(const gpuvar::ExperimentResult& result,
                               gpuvar::GroupBy group) {
  using namespace gpuvar;
  const auto report = analyze_variability(result.frame);
  print_variability_table(std::cout, report);
  for (Metric m :
       {Metric::kPerf, Metric::kFreq, Metric::kPower, Metric::kTemp}) {
    std::cout << '\n';
    print_group_boxes(std::cout, result.frame, m, group);
  }
  print_section(std::cout, "metric correlations (scatter summaries)");
  print_correlation_table(std::cout, correlate_metrics(result.frame));
}

}  // namespace bench
