// Figure 17: multi-GPU BERT-Large pre-training on Longhorn.
//
// Paper shape: median power ~40 W below ResNet-50's (BERT's GEMMs only
// utilize 40-50% of the GPU); large power variability (~87%) but only 8%
// performance variability; the performance outliers live in the same
// cabinet (c002) as ResNet's.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figure 17", "multi-GPU BERT on TACC Longhorn");
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(
      longhorn, bert_workload(std::max(10, bench::ml_iterations() / 2)),
      bench::runs_per_gpu());
  const auto result = run_experiment(longhorn, cfg);
  bench::print_figure_block(result, GroupBy::kCabinet);

  print_section(std::cout, "BERT vs ResNet power (Takeaway 6)");
  auto rcfg = default_config(
      longhorn, resnet50_multi_workload(bench::ml_iterations()), 1);
  rcfg.node_coverage = 0.5;
  const auto resnet = run_experiment(longhorn, rcfg);
  const double bert_p =
      stats::median(metric_column(result.frame, Metric::kPower));
  const double resnet_p =
      stats::median(metric_column(resnet.frame, Metric::kPower));
  std::printf(
      "  median power: BERT %.0f W vs ResNet %.0f W (delta %.0f W; paper "
      "~40 W)\n",
      bert_p, resnet_p, resnet_p - bert_p);

  print_section(std::cout, "shared outliers with ResNet (Takeaway 6)");
  FlagOptions fopts;
  fopts.slowdown_temp = longhorn.sku().slowdown_temp;
  const std::vector<FlagReport> reports{
      flag_anomalies(result.frame, fopts),
      flag_anomalies(resnet.frame, fopts)};
  const auto offenders = repeat_offenders(reports, 2);
  std::printf("  %zu GPUs flagged by BOTH BERT and ResNet-50\n",
              offenders.size());
  return 0;
}
