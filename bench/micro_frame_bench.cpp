// Micro-benchmarks for the columnar RecordFrame (google-benchmark):
// AoS rows vs SoA columns on the three hot paths of the analysis
// pipeline — column extraction, per-GPU aggregation, and frame
// construction — plus the bytes-per-record memory story. The *_Rows
// variants drive the deprecated row-oriented implementations that the
// frame replaces; the acceptance bar is >= 2x on extraction and
// aggregation at >= 100k records.
#include <benchmark/benchmark.h>

#include "gpuvar.hpp"

namespace {

using gpuvar::Metric;
using gpuvar::RecordFrame;
using gpuvar::RunRecord;

/// Synthetic campaign: `gpus` GPUs x `runs` runs, run-major like the
/// experiment runner emits, with realistic string names per location.
std::vector<RunRecord> synth_records(std::size_t gpus, int runs) {
  gpuvar::Rng rng(0xF0A);
  std::vector<RunRecord> out;
  out.reserve(gpus * static_cast<std::size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    for (std::size_t g = 0; g < gpus; ++g) {
      RunRecord r;
      r.gpu_index = g;
      r.loc.node = static_cast<int>(g / 4);
      r.loc.gpu = static_cast<int>(g % 4);
      r.loc.cabinet = static_cast<int>(g / 16);
      r.loc.name = "c" + std::to_string(g / 16) + "-" +
                   std::to_string((g / 4) % 4) + "-gpu" +
                   std::to_string(g % 4);
      r.run_index = run;
      r.day_of_week = static_cast<int>(g % 7);
      r.perf_ms = rng.normal(2500.0, 40.0);
      r.freq_mhz = rng.normal(1390.0, 12.0);
      r.power_w = rng.normal(300.0, 5.0);
      r.temp_c = rng.normal(62.0, 4.0);
      r.counters.fu_util = rng.uniform(0.4, 0.9);
      r.counters.dram_util = rng.uniform(0.1, 0.6);
      r.counters.mem_stall_frac = rng.uniform(0.05, 0.3);
      r.counters.exec_stall_frac = rng.uniform(0.05, 0.3);
      out.push_back(std::move(r));
    }
  }
  return out;
}

constexpr int kRuns = 4;

std::size_t gpus_for(benchmark::State& state) {
  return static_cast<std::size_t>(state.range(0)) / kRuns;
}

// --- column extraction ----------------------------------------------------

void BM_ColumnExtract_Rows(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  double sink = 0.0;
  for (auto _ : state) {
    // The deprecated path: allocate + copy per extraction.
    const auto col = gpuvar::metric_column(
        std::span<const RunRecord>(records), Metric::kPerf);
    for (double v : col) sink += v;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ColumnExtract_Rows)->Arg(100000)->Arg(400000);

void BM_ColumnExtract_Frame(benchmark::State& state) {
  const auto frame =
      RecordFrame::from_records(synth_records(gpus_for(state), kRuns));
  double sink = 0.0;
  for (auto _ : state) {
    // Zero-copy span view over the contiguous column.
    const auto col = gpuvar::metric_column(frame, Metric::kPerf);
    for (double v : col) sink += v;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_ColumnExtract_Frame)->Arg(100000)->Arg(400000);

// --- per-GPU aggregation --------------------------------------------------

void BM_PerGpuMedians_Rows(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpuvar::per_gpu_medians(std::span<const RunRecord>(records)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_PerGpuMedians_Rows)->Arg(100000)->Arg(400000);

void BM_PerGpuMedians_Frame(benchmark::State& state) {
  const auto frame =
      RecordFrame::from_records(synth_records(gpus_for(state), kRuns));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::per_gpu_medians(frame));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_PerGpuMedians_Frame)->Arg(100000)->Arg(400000);

// --- frame construction ---------------------------------------------------

void BM_FrameBuild(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RecordFrame::from_records(std::span<const RunRecord>(records)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_FrameBuild)->Arg(100000)->Arg(400000);

// --- memory footprint (reported as bytes/record counters) -----------------

void BM_MemoryBytesPerRecord(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  const auto frame = RecordFrame::from_records(records);
  std::size_t row_bytes = records.capacity() * sizeof(RunRecord);
  for (const auto& r : records) row_bytes += r.loc.name.capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.memory_bytes());
  }
  const double n = static_cast<double>(records.size());
  state.counters["rows_bytes_per_record"] =
      static_cast<double>(row_bytes) / n;
  state.counters["frame_bytes_per_record"] =
      static_cast<double>(frame.memory_bytes()) / n;
}
BENCHMARK(BM_MemoryBytesPerRecord)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
