// Micro-benchmarks for the columnar RecordFrame (google-benchmark):
// AoS rows vs SoA columns on the three hot paths of the analysis
// pipeline — column extraction, per-GPU aggregation, and frame
// construction — plus the bytes-per-record memory story. The *_Rows
// variants drive the row-oriented reference implementations the frame
// replaced — the library deleted those adapters, so the AoS bodies live
// here as the baseline under measurement; the acceptance bar is >= 2x on
// extraction and aggregation at >= 100k records.
#include <benchmark/benchmark.h>

#include <map>
#include <ostream>
#include <streambuf>

#include "gpuvar.hpp"

namespace {

using gpuvar::Metric;
using gpuvar::RecordFrame;
using gpuvar::RunRecord;

/// Synthetic campaign: `gpus` GPUs x `runs` runs, run-major like the
/// experiment runner emits, with realistic string names per location.
std::vector<RunRecord> synth_records(std::size_t gpus, int runs) {
  gpuvar::Rng rng(0xF0A);
  std::vector<RunRecord> out;
  out.reserve(gpus * static_cast<std::size_t>(runs));
  for (int run = 0; run < runs; ++run) {
    for (std::size_t g = 0; g < gpus; ++g) {
      RunRecord r;
      r.gpu_index = g;
      r.loc.node = static_cast<int>(g / 4);
      r.loc.gpu = static_cast<int>(g % 4);
      r.loc.cabinet = static_cast<int>(g / 16);
      r.loc.name = "c" + std::to_string(g / 16) + "-" +
                   std::to_string((g / 4) % 4) + "-gpu" +
                   std::to_string(g % 4);
      r.run_index = run;
      r.day_of_week = static_cast<int>(g % 7);
      r.perf_ms = rng.normal(2500.0, 40.0);
      r.freq_mhz = rng.normal(1390.0, 12.0);
      r.power_w = rng.normal(300.0, 5.0);
      r.temp_c = rng.normal(62.0, 4.0);
      r.counters.fu_util = rng.uniform(0.4, 0.9);
      r.counters.dram_util = rng.uniform(0.1, 0.6);
      r.counters.mem_stall_frac = rng.uniform(0.05, 0.3);
      r.counters.exec_stall_frac = rng.uniform(0.05, 0.3);
      out.push_back(std::move(r));
    }
  }
  return out;
}

/// Bench-local frame construction (the bulk row adapter left the
/// library with the deprecation cycle; streaming append_row is the API).
RecordFrame frame_from(const std::vector<RunRecord>& rows) {
  RecordFrame f;
  f.reserve(rows.size());
  for (const auto& r : rows) f.append_row(r);
  return f;
}

/// The retired AoS extraction: allocate + copy per call. Preserved here
/// verbatim as the *_Rows baseline.
std::vector<double> rows_metric_column(const std::vector<RunRecord>& records,
                                       Metric m) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(gpuvar::metric_value(r, m));
  return out;
}

/// The retired AoS aggregation: a map node per GPU, a pointer chase per
/// row. Preserved here verbatim as the *_Rows baseline.
std::vector<gpuvar::GpuAggregate> rows_per_gpu_medians(
    const std::vector<RunRecord>& records) {
  std::map<std::size_t, std::vector<const RunRecord*>> by_gpu;
  for (const auto& r : records) by_gpu[r.gpu_index].push_back(&r);

  std::vector<gpuvar::GpuAggregate> out;
  out.reserve(by_gpu.size());
  for (const auto& [gpu, rs] : by_gpu) {
    gpuvar::GpuAggregate agg;
    agg.gpu_index = gpu;
    agg.loc = rs.front()->loc;
    agg.runs = static_cast<int>(rs.size());
    std::vector<double> perf, freq, power, temp;
    perf.reserve(rs.size());
    for (const RunRecord* r : rs) {
      perf.push_back(r->perf_ms);
      freq.push_back(r->freq_mhz);
      power.push_back(r->power_w);
      temp.push_back(r->temp_c);
    }
    agg.perf_ms = gpuvar::stats::median(perf);
    agg.freq_mhz = gpuvar::stats::median(freq);
    agg.power_w = gpuvar::stats::median(power);
    agg.temp_c = gpuvar::stats::median(temp);
    out.push_back(std::move(agg));
  }
  return out;
}

constexpr int kRuns = 4;

std::size_t gpus_for(benchmark::State& state) {
  return static_cast<std::size_t>(state.range(0)) / kRuns;
}

// --- column extraction ----------------------------------------------------

void BM_ColumnExtract_Rows(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  double sink = 0.0;
  for (auto _ : state) {
    // The retired AoS path: allocate + copy per extraction.
    const auto col = rows_metric_column(records, Metric::kPerf);
    for (double v : col) sink += v;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ColumnExtract_Rows)->Arg(100000)->Arg(400000);

void BM_ColumnExtract_Frame(benchmark::State& state) {
  const auto frame = frame_from(synth_records(gpus_for(state), kRuns));
  double sink = 0.0;
  for (auto _ : state) {
    // Zero-copy span view over the contiguous column.
    const auto col = gpuvar::metric_column(frame, Metric::kPerf);
    for (double v : col) sink += v;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_ColumnExtract_Frame)->Arg(100000)->Arg(400000);

// --- per-GPU aggregation --------------------------------------------------

void BM_PerGpuMedians_Rows(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rows_per_gpu_medians(records));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_PerGpuMedians_Rows)->Arg(100000)->Arg(400000);

void BM_PerGpuMedians_Frame(benchmark::State& state) {
  const auto frame = frame_from(synth_records(gpus_for(state), kRuns));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpuvar::per_gpu_medians(frame));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_PerGpuMedians_Frame)->Arg(100000)->Arg(400000);

// --- frame construction ---------------------------------------------------

void BM_FrameBuild(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame_from(records));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_FrameBuild)->Arg(100000)->Arg(400000);

// --- CSV export -----------------------------------------------------------

/// Swallows every byte while counting them: the export benchmark
/// measures formatting + buffering, not filesystem throughput.
class CountingNullBuf : public std::streambuf {
 public:
  std::size_t bytes() const { return bytes_; }

 protected:
  int overflow(int c) override {
    ++bytes_;
    return c;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    bytes_ += static_cast<std::size_t>(n);
    return n;
  }

 private:
  std::size_t bytes_ = 0;
};

void BM_ExportFrameCsv(benchmark::State& state) {
  // The campaign artifact path: every cell goes through the buffered
  // CsvWriter (to_chars straight into its 16 KiB buffer, flushed in
  // chunks), so throughput here is the cost of streaming a merged
  // frame to disk minus the disk.
  const auto frame = frame_from(synth_records(gpus_for(state), kRuns));
  std::size_t bytes = 0;
  for (auto _ : state) {
    CountingNullBuf sink;
    std::ostream out(&sink);
    gpuvar::export_frame_csv(out, "bench", frame);
    bytes = sink.bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ExportFrameCsv)->Arg(100000)->Arg(400000);

// --- memory footprint (reported as bytes/record counters) -----------------

void BM_MemoryBytesPerRecord(benchmark::State& state) {
  const auto records = synth_records(gpus_for(state), kRuns);
  const auto frame = frame_from(records);
  std::size_t row_bytes = records.capacity() * sizeof(RunRecord);
  for (const auto& r : records) row_bytes += r.loc.name.capacity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.memory_bytes());
  }
  const double n = static_cast<double>(records.size());
  state.counters["rows_bytes_per_record"] =
      static_cast<double>(row_bytes) / n;
  state.counters["frame_bytes_per_record"] =
      static_cast<double>(frame.memory_bytes()) / n;
}
BENCHMARK(BM_MemoryBytesPerRecord)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
