// Extension (§VII "Application-aware Frameworks"): makespan comparison of
// placement policies on a mixed queue, with bootstrap confidence for the
// node-quality canary.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Extension",
                      "variability-aware scheduling policies (SVII)");
  Cluster longhorn(longhorn_spec());

  std::printf("profiling node quality (SGEMM canary on all %d nodes)...\n",
              longhorn.node_count());
  const auto quality = profile_node_quality(longhorn, 4);
  std::vector<double> freqs;
  for (const auto& q : quality) freqs.push_back(q.median_freq.value());
  const auto ci = stats::bootstrap_ci(
      freqs, stats::variation_pct_statistic, 500, 0.95);
  std::printf("  node-frequency variation: %.1f%% (95%% CI [%.1f, %.1f])\n",
              ci.point, ci.lo, ci.hi);

  std::vector<SchedulerJob> queue;
  queue.push_back(
      SchedulerJob{"sgemm", sgemm_workload(25536, 6), 40});
  queue.push_back(SchedulerJob{"pagerank", pagerank_workload(8), 30});
  queue.push_back(SchedulerJob{"lammps", lammps_workload(2), 20});
  queue.push_back(
      SchedulerJob{"resnet-4gpu", resnet50_multi_workload(15), 14});
  std::printf("  queue: 40x sgemm, 30x pagerank, 20x lammps, 14x resnet "
              "over %d nodes\n\n",
              longhorn.node_count());

  std::printf("%-16s %14s %16s %10s\n", "policy", "makespan (s)",
              "total GPU-hours", "vs random");
  double random_makespan = 0.0;
  for (auto policy :
       {PlacementPolicy::kRandom, PlacementPolicy::kFastestFirst,
        PlacementPolicy::kClassAware}) {
    const auto outcome =
        simulate_schedule(longhorn, queue, policy, quality, 3);
    if (policy == PlacementPolicy::kRandom) {
      random_makespan = outcome.makespan_ms;
    }
    std::printf("%-16s %14.1f %16.3f %9.1f%%\n",
                to_string(policy).c_str(), outcome.makespan_ms / 1e3,
                outcome.total_gpu_ms / 3.6e6,
                (outcome.makespan_ms / random_makespan - 1.0) * 100.0);
  }

  std::printf(
      "\nExpected shape: class-aware placement shortens the makespan by "
      "keeping clock-sensitive jobs off the slow bins while memory-bound "
      "jobs (Takeaway 8) absorb them for free.\n");
  return 0;
}
