// Figure 16: single-GPU ResNet-50 (batch scaled 64 -> 16).
//
// Paper shape: frequency pinned at 1530 MHz; absolute iteration times and
// power lower than the 4-GPU runs; still 14% performance and ~24% power
// variation — but the degradation is milder than multi-GPU because no
// bulk-synchronous barrier amplifies the slowest rank.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Figure 16", "single-GPU ResNet-50 on Longhorn");
  Cluster longhorn(longhorn_spec());
  auto cfg = default_config(
      longhorn, resnet50_single_workload(bench::ml_iterations()),
      bench::runs_per_gpu());
  const auto single = run_experiment(longhorn, cfg);
  bench::print_figure_block(single, GroupBy::kCabinet);

  print_section(std::cout, "bulk-synchronous amplification (Takeaway 5)");
  auto multi_cfg = default_config(
      longhorn, resnet50_multi_workload(bench::ml_iterations()), 1);
  const auto multi = run_experiment(longhorn, multi_cfg);
  const auto s = analyze_variability(single.frame);
  const auto m = analyze_variability(multi.frame);
  std::printf(
      "  perf variation: single-GPU %.1f%% vs multi-GPU %.1f%% "
      "(paper: 14%% vs 22%%)\n",
      s.perf.variation_pct, m.perf.variation_pct);
  std::printf(
      "  median iteration: single %.0f ms vs multi %.0f ms "
      "(multi does 4x the work per iteration)\n",
      s.perf.box.median, m.perf.box.median);
  return 0;
}
