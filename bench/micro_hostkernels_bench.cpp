// Micro-benchmarks for the real host kernels (google-benchmark): the
// measurement path a deployment would time on actual hardware.
#include <benchmark/benchmark.h>

#include "gpuvar.hpp"

namespace {

using namespace gpuvar;
using namespace gpuvar::host;

void BM_HostSgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  Matrix c(n, n, 0.0f);
  for (auto _ : state) {
    sgemm(1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      sgemm_flops(n, n, n) * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostSgemm)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_HostSgemmSerial(benchmark::State& state) {
  const std::size_t n = 512;
  Rng rng(1);
  const auto a = random_matrix(n, n, rng);
  const auto b = random_matrix(n, n, rng);
  Matrix c(n, n, 0.0f);
  SgemmOptions opts;
  opts.parallel = false;
  for (auto _ : state) {
    sgemm(1.0f, a, b, 0.0f, c, opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      sgemm_flops(n, n, n) * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostSgemmSerial)->Unit(benchmark::kMillisecond);

void BM_HostPagerankSpmv(benchmark::State& state) {
  Rng rng(2);
  const auto g = circuit_graph(static_cast<std::size_t>(state.range(0)), 4,
                               1.5, rng);
  std::vector<double> x(g.n, 1.0 / static_cast<double>(g.n)), y(g.n);
  for (auto _ : state) {
    pagerank_spmv(g, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["edges/s"] = benchmark::Counter(
      static_cast<double>(g.nnz()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostPagerankSpmv)->Arg(100000)->Arg(643994)
    ->Unit(benchmark::kMillisecond);

void BM_HostTriad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n, 1.0), c(n, 2.0);
  for (auto _ : state) {
    triad(a, b, c, 3.0);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      triad_bytes(n) * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostTriad)->Arg(1 << 20)->Arg(1 << 24);

void BM_HostPagerankFull(benchmark::State& state) {
  Rng rng(3);
  const auto g = circuit_graph(100000, 4, 1.5, rng);
  PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0.0;
  for (auto _ : state) {
    const auto res = pagerank(g, opts);
    benchmark::DoNotOptimize(res.rank.data());
  }
}
BENCHMARK(BM_HostPagerankFull)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
