// Ablation: what if Longhorn were water- or oil-cooled?
//
// Keeps the silicon population fixed (same seed, same faults) and swaps
// only the cooling loop — isolating how much of the observed variability
// is thermal versus manufacturing. Expected (Takeaway 3): temperature
// spread collapses under water, but performance/power variation barely
// moves because silicon dominates.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Ablation", "cooling-technology swap on Longhorn");
  std::printf("%-14s %10s %12s %12s %12s\n", "cooling", "perf var %",
              "temp median", "temp Q3-Q1", "freq median");

  auto run_with = [&](const char* label, const CoolingSpec& cooling) {
    auto spec = longhorn_spec();
    spec.cooling = cooling;
    Cluster cluster(spec);
    const auto result = bench::sgemm_experiment(cluster);
    const auto rep = analyze_variability(result.frame);
    std::printf("%-14s %10.1f %12.1f %12.1f %12.0f\n", label,
                rep.perf.variation_pct, rep.temp.box.median,
                rep.temp.box.q3 - rep.temp.box.q1, rep.freq.box.median);
  };

  run_with("air (actual)", air_cooling(Celsius{28.0}));
  run_with("water", water_cooling(Celsius{24.0}));
  run_with("mineral oil", mineral_oil_cooling(Celsius{48.0}));

  std::printf(
      "\nExpected: water/oil collapse the temperature spread; performance "
      "variation persists (silicon, not cooling, drives it).\n");
  return 0;
}
