// Table I: summary of clusters studied.
#include "bench_util.hpp"

using namespace gpuvar;

int main() {
  bench::print_header("Table I", "Summary of clusters studied");
  std::printf("%-10s %-22s %7s %7s %-12s %-8s %s\n", "Cluster", "GPU",
              "# GPUs", "# Nodes", "Cooling", "TDP (W)", "Faults injected");

  auto row = [](const ClusterSpec& spec) {
    Cluster cluster(spec);
    std::printf("%-10s %-22s %7zu %7d %-12s %-8.0f %zu GPUs\n",
                spec.name.c_str(), spec.sku.name.c_str(), cluster.size(),
                cluster.node_count(), to_string(spec.cooling.type).c_str(),
                spec.sku.tdp, cluster.faulty_gpus().size());
  };
  row(cloudlab_spec());
  row(longhorn_spec());
  row(frontera_spec());
  row(vortex_spec());
  row(summit_spec(0x5077, 8, 29, bench::summit_nodes_per_column(), 6));
  row(corona_spec());

  std::printf(
      "\n(Summit built with %d nodes/column; set GPUVAR_SUMMIT=18 for the "
      "full 27k-GPU machine.)\n",
      bench::summit_nodes_per_column());

  // §III sampling methodology: the recommended sample sizes.
  bench::print_header("§III", "statistical-significance check (Scogland)");
  for (const auto& spec : {longhorn_spec(), vortex_spec(), corona_spec()}) {
    Cluster cluster(spec);
    // Power CV at TDP is small; 2% is the conservative bound we measured.
    const auto plan = stats::recommend_sample_size(
        cluster.size(), 0.02, 0.005, 0.95);
    const std::size_t measured = cluster.size() * 9 / 10;
    std::printf(
        "  %-10s population %4zu  recommended sample %3zu  measured >=%4zu "
        " oversampling %.1fx\n",
        spec.name.c_str(), cluster.size(), plan.recommended, measured,
        stats::oversampling_factor(plan, measured));
  }
  return 0;
}
